#include "obs/trace.hpp"

#include <utility>

namespace marioh::obs {

namespace {

/// Monotone span ids, process-wide (0 is "no span").
std::atomic<uint64_t> g_next_span_id{1};

/// The span currently open on this thread; new spans record it as their
/// parent, giving parent/child links from plain lexical nesting.
thread_local uint64_t t_current_span = 0;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double TraceNowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       TraceEpoch())
      .count();
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

void TraceRing::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!full_) {
    ring_.push_back(std::move(span));
    if (ring_.size() == capacity_) full_ = true;
    return;
  }
  // Overwrite the oldest slot; next_ walks the ring.
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (!full_) {
    out = ring_;
    return out;
  }
  // Oldest first: the slot next_ points at is the oldest surviving span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  full_ = false;
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

TraceSpan::TraceSpan(std::string name, std::string detail, TraceRing* ring) {
  if (!Enabled()) return;  // inert span: id 0, nothing recorded
  ring_ = ring != nullptr ? ring : &TraceRing::Global();
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_current_span;
  saved_current_ = t_current_span;
  t_current_span = id_;
  name_ = std::move(name);
  detail_ = std::move(detail);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  t_current_span = saved_current_;
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.name = std::move(name_);
  span.detail = std::move(detail_);
  span.start_seconds =
      std::chrono::duration<double>(start_ - TraceEpoch()).count();
  span.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  ring_->Record(std::move(span));
}

}  // namespace marioh::obs
