#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace marioh::obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Finite bucket upper bounds, exact by construction (1e-6 doubled): the
/// same doubling a test can replay, so boundary assertions are equality,
/// not tolerance.
const std::array<double, Histogram::kBucketCount>& BucketBounds() {
  static const std::array<double, Histogram::kBucketCount> bounds = [] {
    std::array<double, Histogram::kBucketCount> b{};
    double bound = 1e-6;
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      b[i] = bound;
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

/// Escapes a string for a JSON value ("" and \\ plus control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatMetricValue(double value) {
  // Integers (the common case: counters, cumulative buckets, integral
  // gauges) render without an exponent or decimal point.
  if (value >= 0 && value < 9.007199254740992e15 &&
      static_cast<double>(static_cast<uint64_t>(value)) == value) {
    return std::to_string(static_cast<uint64_t>(value));
  }
  // Shortest round-trip-exact decimal: try increasing precision until
  // the parse comes back bit-identical.
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

double Histogram::BucketUpperBound(size_t i) { return BucketBounds()[i]; }

size_t Histogram::BucketIndex(double value) {
  const auto& bounds = BucketBounds();
  // First bucket whose upper bound is >= value (Prometheus `le`).
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<size_t>(it - bounds.begin());  // == kBucketCount: +Inf
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  while (value > max && !max_.compare_exchange_weak(
                            max, value, std::memory_order_relaxed)) {
  }
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i <= kBucketCount; ++i) {
    buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  double add = other.sum();
  while (!sum_.compare_exchange_weak(sum, sum + add,
                                     std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  double theirs = other.max();
  while (theirs > max && !max_.compare_exchange_weak(
                             max, theirs, std::memory_order_relaxed)) {
  }
}

std::optional<MemorySample> SampleProcessMemory() {
  std::ifstream status("/proc/self/status");
  if (!status) return std::nullopt;
  MemorySample sample;
  bool have_rss = false, have_peak = false;
  std::string line;
  while (std::getline(status, line)) {
    uint64_t* field = nullptr;
    bool* have = nullptr;
    if (line.rfind("VmRSS:", 0) == 0) {
      field = &sample.rss_bytes;
      have = &have_rss;
    } else if (line.rfind("VmHWM:", 0) == 0) {
      field = &sample.peak_rss_bytes;
      have = &have_peak;
    } else {
      continue;
    }
    // "VmRSS:     12345 kB"
    std::istringstream fields(line.substr(line.find(':') + 1));
    uint64_t kb = 0;
    if (fields >> kb) {
      *field = kb * 1024;
      *have = true;
    }
    if (have_rss && have_peak) break;
  }
  if (!have_rss || !have_peak) return std::nullopt;
  return sample;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = [] {
    auto* r = new MetricRegistry();
    // Built-in memory telemetry: published at Collect() time so every
    // snapshot carries the current and peak RSS without any subsystem
    // having to remember to sample.
    Gauge* rss = r->GetGauge("marioh_process_rss_bytes");
    Gauge* peak = r->GetGauge("marioh_process_peak_rss_bytes");
    r->AddCollectionHook([rss, peak] {
      if (std::optional<MemorySample> m = SampleProcessMemory()) {
        rss->Set(static_cast<double>(m->rss_bytes));
        peak->Set(static_cast<double>(m->peak_rss_bytes));
      }
    });
    return r;
  }();
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::GetEntry(const std::string& name,
                                                const std::string& labels,
                                                MetricSnapshot::Kind kind) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::string key = name + '\x1f' + labels;
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    // Kind mismatch is a programming error (two subsystems claiming one
    // name as different types), not runtime input — fail loudly.
    MARIOH_CHECK(it->second->kind == kind);
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = labels;
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricSnapshot::Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricSnapshot::Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  instruments_.emplace(std::move(key), std::move(entry));
  return raw;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& labels) {
  return GetEntry(name, labels, MetricSnapshot::Kind::kCounter)
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& labels) {
  return GetEntry(name, labels, MetricSnapshot::Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& labels) {
  return GetEntry(name, labels, MetricSnapshot::Kind::kHistogram)
      ->histogram.get();
}

uint64_t MetricRegistry::AddCollectionHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void MetricRegistry::RemoveCollectionHook(uint64_t id) {
  // The collect mutex is the run-exclusion: holding it guarantees no
  // hook is mid-flight, so once erased the hook can never run again.
  std::lock_guard<std::mutex> collecting(collect_mutex_);
  std::lock_guard<std::mutex> lock(map_mutex_);
  hooks_.erase(id);
}

std::vector<MetricSnapshot> MetricRegistry::Collect() {
  std::lock_guard<std::mutex> collecting(collect_mutex_);
  // Copy the hooks out so a hook that registers an instrument (taking
  // map_mutex_) cannot deadlock against us.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook();

  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(map_mutex_);
  out.reserve(instruments_.size());
  for (const auto& [key, entry] : instruments_) {
    MetricSnapshot snapshot;
    snapshot.name = entry->name;
    snapshot.labels = entry->labels;
    snapshot.kind = entry->kind;
    switch (entry->kind) {
      case MetricSnapshot::Kind::kCounter:
        snapshot.counter_value = entry->counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        snapshot.gauge_value = entry->gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        snapshot.count = h.count();
        snapshot.sum = h.sum();
        snapshot.max = h.max();
        uint64_t cumulative = 0;
        snapshot.buckets.reserve(Histogram::kBucketCount + 1);
        for (size_t i = 0; i <= Histogram::kBucketCount; ++i) {
          cumulative += h.bucket(i);
          MetricSnapshot::Bucket bucket;
          if (i < Histogram::kBucketCount) {
            bucket.le = Histogram::BucketUpperBound(i);
          }
          bucket.cumulative = cumulative;
          snapshot.buckets.push_back(bucket);
        }
        break;
      }
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

std::string MetricRegistry::PrometheusText() {
  std::vector<MetricSnapshot> metrics = Collect();
  std::string out;
  std::string last_typed;
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_typed) {
      const char* type =
          m.kind == MetricSnapshot::Kind::kCounter     ? "counter"
          : m.kind == MetricSnapshot::Kind::kGauge     ? "gauge"
                                                       : "histogram";
      out += "# TYPE " + m.name + " " + type + "\n";
      last_typed = m.name;
    }
    std::string braced = m.labels.empty() ? "" : "{" + m.labels + "}";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += m.name + braced + " " +
               FormatMetricValue(static_cast<double>(m.counter_value)) +
               "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += m.name + braced + " " + FormatMetricValue(m.gauge_value) +
               "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        for (const MetricSnapshot::Bucket& b : m.buckets) {
          std::string le =
              b.le.has_value() ? FormatMetricValue(*b.le) : "+Inf";
          std::string labels = m.labels.empty()
                                   ? "le=\"" + le + "\""
                                   : m.labels + ",le=\"" + le + "\"";
          out += m.name + "_bucket{" + labels + "} " +
                 FormatMetricValue(static_cast<double>(b.cumulative)) +
                 "\n";
        }
        out += m.name + "_sum" + braced + " " + FormatMetricValue(m.sum) +
               "\n";
        out += m.name + "_count" + braced + " " +
               FormatMetricValue(static_cast<double>(m.count)) + "\n";
        out += m.name + "_max" + braced + " " + FormatMetricValue(m.max) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::SnapshotJson() {
  std::vector<MetricSnapshot> metrics = Collect();
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& m : metrics) {
    std::string head = "{\"name\":\"" + JsonEscape(m.name) + "\"";
    if (!m.labels.empty()) {
      head += ",\"labels\":\"" + JsonEscape(m.labels) + "\"";
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters +=
            head + ",\"value\":" +
            FormatMetricValue(static_cast<double>(m.counter_value)) + "}";
        break;
      case MetricSnapshot::Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += head + ",\"value\":" + FormatMetricValue(m.gauge_value) +
                  "}";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        std::string buckets;
        for (const MetricSnapshot::Bucket& b : m.buckets) {
          if (!buckets.empty()) buckets += ",";
          buckets += "{\"le\":";
          buckets += b.le.has_value() ? FormatMetricValue(*b.le)
                                      : std::string("\"+Inf\"");
          buckets += ",\"count\":" +
                     FormatMetricValue(static_cast<double>(b.cumulative)) +
                     "}";
        }
        histograms +=
            head + ",\"count\":" +
            FormatMetricValue(static_cast<double>(m.count)) +
            ",\"sum\":" + FormatMetricValue(m.sum) +
            ",\"max\":" + FormatMetricValue(m.max) + ",\"buckets\":[" +
            buckets + "]}";
        break;
      }
    }
  }
  std::string spans;
  if (this == &Global()) {
    // Spans ride only the global snapshot: the global ring is the one
    // the RAII spans record into (private registries are instruments
    // only).
    for (const SpanRecord& span : TraceRing::Global().Snapshot()) {
      if (!spans.empty()) spans += ",";
      spans += "{\"id\":" + std::to_string(span.id) +
               ",\"parent\":" + std::to_string(span.parent_id) +
               ",\"name\":\"" + JsonEscape(span.name) + "\"";
      if (!span.detail.empty()) {
        spans += ",\"detail\":\"" + JsonEscape(span.detail) + "\"";
      }
      spans += ",\"start\":" + FormatMetricValue(span.start_seconds) +
               ",\"duration\":" +
               FormatMetricValue(span.duration_seconds) + "}";
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "],\"spans\":[" + spans +
         "]}";
}

}  // namespace marioh::obs
