/// \file metrics.hpp
/// \brief The process-wide observability registry: typed Counter / Gauge /
/// log-bucketed Histogram instruments, lazily registered by name (+ an
/// optional Prometheus-style label set), with lock-free hot-path updates
/// and two exposition formats — Prometheus text (`PrometheusText`) and a
/// machine-readable JSON snapshot (`SnapshotJson`). Every subsystem
/// publishes into `MetricRegistry::Global()` and every surface (the
/// `metrics` / `stats` verbs, `--stats-json`, `--metrics-json`, the soak
/// scrapers, CI artifacts) reads out of it, so the numbers cannot drift
/// between exposition paths.
///
/// Two publication styles coexist:
///  - *event-time* instruments (histograms, spans): observed at the
///    moment the event happens, gated on the process-wide enabled flag
///    (one relaxed atomic load, the `util::FailPoints::active()`
///    pattern) so a disabled registry costs nothing on hot paths;
///  - *pull-model* collection hooks: subsystems whose counters live
///    under their own mutex (e.g. `api::Service`'s terminal-partition
///    totals) register a hook that publishes a coherent snapshot into
///    the registry at `Collect()` time. Hooks run serialized under the
///    collect mutex, so invariants that hold under the publisher's lock
///    (accepted = terminals + queued + running) hold in every exposition
///    output exactly.
///
/// `obs` depends only on the C++ standard library, so any layer —
/// including `util` — may publish into it.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace marioh::obs {

/// Process-wide enable switch for *event-time* recording (histogram
/// observes, trace spans). Default on. Collection hooks and
/// counter/gauge publication always work — disabling only silences the
/// per-event paths, so exposition keeps functioning with frozen
/// distributions.
void SetEnabled(bool enabled);

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// One relaxed atomic load — cheap enough for any hot path.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Monotone counter. Lock-free; `Set` exists for pull-model hooks that
/// publish an externally maintained total.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Publishes an externally accumulated total (collection hooks only —
  /// mixing Set and Add on one counter loses increments by design).
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge. Lock-free (Add is a CAS loop — std::atomic<double>
/// has no fetch_add until C++20 libstdc++ catches up everywhere).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-2 bucketed histogram for durations in seconds: bucket upper
/// bounds are 1e-6 * 2^i (1 µs up to ~76 h) plus a +Inf overflow bucket.
/// `Observe` is lock-free (per-bucket atomic adds; sum/max via CAS) and
/// gated on `Enabled()` so a disabled registry records nothing. A value
/// lands in the first bucket whose upper bound is >= the value
/// (Prometheus `le` semantics).
class Histogram {
 public:
  /// Finite buckets; bucket index kBucketCount is the +Inf overflow.
  static constexpr size_t kBucketCount = 39;

  /// Upper bound of finite bucket `i` (exact: computed by doubling).
  static double BucketUpperBound(size_t i);
  /// Index of the bucket `value` lands in; kBucketCount for overflow.
  /// Values <= 0 land in bucket 0.
  static size_t BucketIndex(double value);

  void Observe(double value);
  /// Adds another histogram's counts/sum into this one; max is the
  /// pairwise max. Not atomic across instruments (snapshot semantics).
  void MergeFrom(const Histogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// Raw (non-cumulative) count of bucket `i`, 0..kBucketCount inclusive.
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBucketCount + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One instrument's state as captured by `MetricRegistry::Collect()`.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  /// Rendered Prometheus label pairs (`stage="train"`), empty when
  /// unlabeled.
  std::string labels;
  Kind kind = Kind::kCounter;
  uint64_t counter_value = 0;     ///< kCounter
  double gauge_value = 0.0;       ///< kGauge
  uint64_t count = 0;             ///< kHistogram
  double sum = 0.0;               ///< kHistogram
  double max = 0.0;               ///< kHistogram
  /// Cumulative bucket counts paired with their upper bounds; the last
  /// entry is the +Inf bucket (bound unset) and equals `count`.
  struct Bucket {
    std::optional<double> le;  ///< unset = +Inf
    uint64_t cumulative = 0;
  };
  std::vector<Bucket> buckets;  ///< kHistogram
};

/// VmRSS / VmHWM of this process, read from /proc/self/status. nullopt
/// where /proc is unavailable (non-Linux), so callers can skip cleanly.
struct MemorySample {
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
};
std::optional<MemorySample> SampleProcessMemory();

/// Named instrument registry. Instruments are created lazily on first
/// Get and live for the registry's lifetime (pointers are stable and
/// never invalidated — callers cache them and update lock-free).
/// `Global()` is the process-wide instance every subsystem shares; tests
/// construct private registries for isolation.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry. Registers a built-in collection hook
  /// publishing `marioh_process_rss_bytes` / `marioh_process_peak_rss_bytes`
  /// on first use.
  static MetricRegistry& Global();

  /// `labels` is a pre-rendered Prometheus label body (`stage="train"`),
  /// empty for unlabeled instruments. Returns the same pointer for the
  /// same (name, labels) forever. Getting a name that already exists
  /// with a different kind aborts (a programming error, not input).
  Counter* GetCounter(const std::string& name,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  /// Registers a pull-model hook run (serialized) at every Collect();
  /// returns an id for RemoveCollectionHook. Hooks typically take their
  /// subsystem's lock and publish a coherent counter snapshot.
  uint64_t AddCollectionHook(std::function<void()> hook);
  /// Unregisters; blocks until any in-flight Collect() has finished
  /// running hooks, so after return the hook can never run again —
  /// subsystems call this first thing in their destructor, before
  /// touching state the hook reads.
  void RemoveCollectionHook(uint64_t id);

  /// Runs every hook, then snapshots every instrument (sorted by name,
  /// then labels). The collect mutex serializes concurrent collectors.
  std::vector<MetricSnapshot> Collect();

  /// Prometheus text exposition (`# TYPE` lines, `_bucket{le=...}`
  /// cumulative buckets, `_sum` / `_count` / `_max`). Runs Collect().
  std::string PrometheusText();

  /// Compact single-line JSON: {"counters":[...],"gauges":[...],
  /// "histograms":[...],"spans":[...]} — same values as PrometheusText
  /// (both render from one Collect(), with one number formatter), plus
  /// the recent trace spans. Runs Collect().
  std::string SnapshotJson();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* GetEntry(const std::string& name, const std::string& labels,
                  MetricSnapshot::Kind kind);

  mutable std::mutex map_mutex_;  ///< guards instruments_ / hook maps
  /// Key: name + '\x1f' + labels — sorts by name first, so same-name
  /// label variants are adjacent in exposition output.
  std::map<std::string, std::unique_ptr<Entry>> instruments_;
  std::map<uint64_t, std::function<void()>> hooks_;
  uint64_t next_hook_id_ = 1;
  /// Serializes Collect() end-to-end (hooks + snapshot) and makes
  /// RemoveCollectionHook block out in-flight hook runs.
  std::mutex collect_mutex_;
};

/// Shared number formatter for both exposition formats: shortest
/// round-trip-exact decimal (so snapshot-vs-text equivalence is textual,
/// not approximate). Integers render without a decimal point.
std::string FormatMetricValue(double value);

}  // namespace marioh::obs
