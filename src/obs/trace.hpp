/// \file trace.hpp
/// \brief Trace spans: RAII scopes that record per-stage / per-job
/// timings into a bounded ring buffer with parent/child links. A span
/// opened while another span is live on the same thread records that
/// span as its parent (a thread-local current-span slot), so the job →
/// stage hierarchy falls out of plain lexical nesting. Recording is
/// gated on `obs::Enabled()` — a disabled registry records nothing and
/// costs one relaxed load per scope.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace marioh::obs {

/// One finished span. `start_seconds` is measured on the steady clock
/// since process start (well, since the first obs use — a fixed epoch),
/// so spans from different threads order consistently.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  std::string detail;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Fixed-capacity ring of finished spans: when full, the oldest span is
/// evicted. Mutex-guarded — spans finish at stage/job granularity, never
/// inside hot kernels, so contention is irrelevant.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096);

  /// The process-wide ring `TraceSpan` records into by default.
  static TraceRing& Global();

  void Record(SpanRecord span);
  /// All buffered spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  void Clear();
  size_t capacity() const { return capacity_; }
  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  ///< circular once full
  size_t next_ = 0;               ///< insertion slot once full
  bool full_ = false;
};

/// RAII span: stamps the start on construction, records into the ring on
/// destruction. Inert (id 0, nothing recorded) while `obs::Enabled()` is
/// false at construction.
class TraceSpan {
 public:
  /// `ring` defaults to TraceRing::Global(); tests pass their own.
  explicit TraceSpan(std::string name, std::string detail = "",
                     TraceRing* ring = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  TraceRing* ring_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t saved_current_ = 0;  ///< restored on destruction (nesting)
  std::string name_;
  std::string detail_;
  std::chrono::steady_clock::time_point start_{};
};

/// Seconds since the process-wide trace epoch (first use). Exposed for
/// tests that build SpanRecords by hand.
double TraceNowSeconds();

}  // namespace marioh::obs
