#include "core/marioh.hpp"

#include <algorithm>

#include "hypergraph/clique.hpp"
#include "util/check.hpp"

namespace marioh::core {

MariohOptions OptionsForVariant(MariohVariant variant, MariohOptions base) {
  switch (variant) {
    case MariohVariant::kFull:
      break;
    case MariohVariant::kNoMulti:
      base.feature_mode = FeatureMode::kStructural;
      break;
    case MariohVariant::kNoFilter:
      base.use_filtering = false;
      break;
    case MariohVariant::kNoBidir:
      base.use_bidirectional = false;
      break;
  }
  return base;
}

Marioh::Marioh(MariohOptions options)
    : options_(options),
      classifier_(options.feature_mode, options.classifier) {}

void Marioh::Train(const ProjectedGraph& g_source,
                   const Hypergraph& h_source) {
  util::ScopedStage stage(&timer_, "train");
  util::Rng rng(options_.seed);
  classifier_.Train(g_source, h_source, &rng);
}

Hypergraph Marioh::Reconstruct(const ProjectedGraph& g_target) const {
  MARIOH_CHECK(classifier_.trained());
  ProjectedGraph g = g_target;  // working copy G'
  Hypergraph h(g.num_nodes());
  last_stats_ = {};

  // The loop owns one CSR snapshot of `g` and keeps it fresh across
  // iterations: when an iteration's peels touch at most a
  // `snapshot_reuse` fraction of the nodes, the snapshot is patched (only
  // touched rows rebuilt — the common case late in a run, when a phase
  // accepts a handful of cliques); otherwise it is rebuilt from scratch.
  // Both routes yield bit-identical snapshots, so the reconstruction
  // output does not depend on the policy.
  CsrGraph snapshot;
  auto refresh_snapshot = [&](CsrGraph prev,
                              std::span<const NodeId> touched) {
    if (touched.empty()) return prev;  // no peels: still exact
    double fraction = static_cast<double>(touched.size()) /
                      static_cast<double>(g.num_nodes());
    if (fraction <= options_.snapshot_reuse) {
      ++last_stats_.snapshot_patches;
      return CsrGraph(prev, g, touched, options_.num_threads);
    }
    ++last_stats_.snapshot_rebuilds;
    return CsrGraph(g, options_.num_threads);
  };

  if (options_.use_filtering) {
    util::ScopedStage stage(&timer_, "filtering");
    CsrGraph pre_filter;
    FilteringStats fstats = Filtering(&g, &h, options_.num_threads,
                                      &pre_filter, options_.cancel);
    last_stats_.filtering_edges = fstats.edges_identified;
    if (util::ShouldStop(options_.cancel)) {
      last_stats_.cancelled = true;
      return h;
    }
    // Filtering already paid for a snapshot of the pre-filter graph;
    // reuse it for the first iteration instead of building a third.
    snapshot = refresh_snapshot(std::move(pre_filter),
                                fstats.touched_nodes);
  } else {
    snapshot = CsrGraph(g, options_.num_threads);
    ++last_stats_.snapshot_rebuilds;
  }

  util::Rng rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  double theta = options_.theta_init;
  size_t iterations = 0;
  {
    util::ScopedStage stage(&timer_, "bidirectional");
    while (!g.Empty() && iterations < options_.max_iterations &&
           !last_stats_.cancelled) {
      BidirectionalOptions bopt;
      bopt.theta = theta;
      bopt.r_percent = options_.r_percent;
      bopt.explore_subcliques = options_.use_bidirectional;
      bopt.num_threads = options_.num_threads;
      bopt.cancel = options_.cancel;
      BidirectionalStats stats =
          BidirectionalSearch(&g, snapshot, classifier_, bopt, &rng, &h);
      last_stats_.maximal_cliques += stats.maximal_cliques;
      last_stats_.accepted_phase1 += stats.accepted_phase1;
      last_stats_.accepted_phase2 += stats.accepted_phase2;
      last_stats_.subcliques_scored += stats.subcliques_scored;
      last_stats_.cliques_truncated |= stats.cliques_truncated;
      last_stats_.cancelled |= stats.cancelled;
      theta = std::max(theta - options_.alpha * options_.theta_init, 0.0);
      ++iterations;
      std::vector<NodeId> touched = std::move(stats.touched_nodes);
      // Termination safeguard: once theta is 0 every maximal clique scores
      // above the threshold (sigmoid output > 0), so Phase 1 must accept at
      // least one clique per iteration. If nothing was accepted anyway
      // (degenerate classifier), peel the best-scoring maximal clique via
      // a plain maximal-clique step to guarantee progress. Nothing was
      // peeled this iteration, so the snapshot is still exact and serves
      // the fallback enumeration directly.
      if (theta == 0.0 && stats.accepted_phase1 == 0 &&
          stats.accepted_phase2 == 0 && !g.Empty() &&
          !last_stats_.cancelled) {
        CliqueOptions copts;
        copts.num_threads = options_.num_threads;
        copts.cancel = options_.cancel;
        MaximalCliqueResult fallback =
            EnumerateMaximalCliques(snapshot, copts);
        if (fallback.cancelled) {
          last_stats_.cancelled = true;
          break;
        }
        MARIOH_CHECK(!fallback.cliques.empty());
        NodeSet first = fallback.cliques.Materialize(0);
        h.AddEdge(first, 1);
        g.PeelClique(first);
        touched.insert(touched.end(), first.begin(), first.end());
        Canonicalize(&touched);
      }
      if (!g.Empty() && iterations < options_.max_iterations &&
          !last_stats_.cancelled) {
        snapshot = refresh_snapshot(std::move(snapshot), touched);
      }
    }
  }
  // Catch a trip that landed after the last kernel poll (e.g. between
  // iterations, or with filtering disabled on a graph the loop never
  // entered) so callers get a consistent cancelled flag.
  last_stats_.cancelled |= util::ShouldStop(options_.cancel);
  last_stats_.iterations = iterations;
  return h;
}

}  // namespace marioh::core
