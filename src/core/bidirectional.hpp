/// \file bidirectional.hpp
/// \brief One iteration of MARIOH's bidirectional search (Algorithm 3):
/// apply high-scoring maximal cliques greedily, then explore random
/// sub-cliques of the least promising cliques.

#pragma once

#include <vector>

#include "core/classifier.hpp"
#include "hypergraph/csr.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace marioh::core {

/// Per-iteration statistics.
struct BidirectionalStats {
  size_t maximal_cliques = 0;   ///< cliques enumerated this iteration
  size_t accepted_phase1 = 0;   ///< hyperedges added from Q_pos
  size_t accepted_phase2 = 0;   ///< hyperedges added from sub-cliques
  size_t subcliques_scored = 0; ///< sub-clique candidates evaluated
  /// True if the enumeration cap truncated the maximal-clique set this
  /// iteration (the iteration then worked on a partial candidate pool).
  bool cliques_truncated = false;
  /// True if `BidirectionalOptions::cancel` tripped mid-iteration: the
  /// iteration stopped at its next preemption point, `*h` holds whatever
  /// was accepted before the trip, and the caller must abandon the run
  /// (the reconstruction loop does, and api::Session discards the
  /// partial hypergraph).
  bool cancelled = false;
  /// Sorted, duplicate-free set of nodes belonging to any clique peeled
  /// this iteration — exactly the rows of `g` that changed. The caller
  /// uses it to patch the next iteration's CSR snapshot instead of
  /// rebuilding it from scratch (see CsrGraph's patch constructor).
  std::vector<NodeId> touched_nodes;
};

/// Options controlling one bidirectional-search iteration.
struct BidirectionalOptions {
  /// Classification threshold theta for this iteration.
  double theta = 0.9;
  /// Negative prediction processing ratio r in percent: the fraction of
  /// non-promising cliques whose sub-cliques are explored.
  double r_percent = 20.0;
  /// Run Phase 2 (sub-clique exploration). false reproduces MARIOH-B.
  bool explore_subcliques = true;
  /// Threads for the read-only kernels of the iteration — maximal-clique
  /// enumeration and clique scoring (0 = all cores). Both are pure
  /// functions of the frozen iteration snapshot, so results are identical
  /// for any thread count.
  int num_threads = 1;
  /// Cooperative stop signal threaded into every kernel of the iteration
  /// (enumeration roots/emissions, per-clique scoring slots, per-peel
  /// and per-subclique loop steps). Null = non-cancellable; untriggered
  /// = bit-identical output.
  const util::CancelToken* cancel = nullptr;
};

/// Runs one iteration of Algorithm 3 on `g` in place, appending accepted
/// hyperedges to `h`. `snapshot` must be a CSR snapshot of `*g` in its
/// current (pre-iteration) state — the reconstruction loop owns it and
/// keeps it fresh across iterations via patch-or-rebuild, so late
/// iterations that peel little pay almost nothing for snapshot upkeep.
/// Returns per-iteration statistics, including the nodes whose adjacency
/// the peels changed. `rng` drives the random sub-clique sampling of
/// Phase 2.
BidirectionalStats BidirectionalSearch(ProjectedGraph* g,
                                       const CsrGraph& snapshot,
                                       const CliqueClassifier& classifier,
                                       const BidirectionalOptions& options,
                                       util::Rng* rng, Hypergraph* h);

/// Convenience overload that builds the snapshot itself (tests,
/// single-shot callers). The reconstruction loop uses the snapshot-reuse
/// overload above.
BidirectionalStats BidirectionalSearch(ProjectedGraph* g,
                                       const CliqueClassifier& classifier,
                                       const BidirectionalOptions& options,
                                       util::Rng* rng, Hypergraph* h);

}  // namespace marioh::core
