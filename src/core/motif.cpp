#include "core/motif.hpp"

#include <algorithm>
#include <vector>

namespace marioh::core {
namespace {

/// Collects up to `cap` neighbor ids of u in ascending order, skipping
/// `skip`. The ascending truncation order is what makes capped statistics
/// identical between the hash-map and CSR paths — the same convention as
/// features.cpp's SortedNeighborIds, enforced across both files by
/// test_hot_path's bit-identity properties.
std::vector<NodeId> CappedSortedNeighbors(const ProjectedGraph& g, NodeId u,
                                          NodeId skip, size_t cap) {
  std::vector<NodeId> out;
  out.reserve(g.Degree(u));
  for (const auto& [v, w] : g.Neighbors(u)) {
    (void)w;
    if (v != skip) out.push_back(v);
  }
  size_t keep = std::min(out.size(), cap);
  // Keep the `cap` smallest ids (O(d log cap), not O(d log d) on hubs).
  std::partial_sort(out.begin(), out.begin() + keep, out.end());
  out.resize(keep);
  return out;
}

std::vector<NodeId> CappedSortedNeighbors(const CsrGraph& g, NodeId u,
                                          NodeId skip, size_t cap) {
  std::vector<NodeId> out;
  auto nbrs = g.Neighbors(u);
  out.reserve(std::min(nbrs.size(), cap));
  for (NodeId v : nbrs) {
    if (v == skip) continue;
    out.push_back(v);
    if (out.size() >= cap) break;
  }
  return out;
}

template <typename Graph>
uint64_t SquaresThroughEdgeImpl(const Graph& g, NodeId u, NodeId v,
                                size_t max_neighbors) {
  std::vector<NodeId> nu = CappedSortedNeighbors(g, u, v, max_neighbors);
  std::vector<NodeId> nv = CappedSortedNeighbors(g, v, u, max_neighbors);
  // A square u-x-y-v-u needs x in N(u), y in N(v), edge (x,y), x != y.
  uint64_t squares = 0;
  for (NodeId x : nu) {
    for (NodeId y : nv) {
      if (x == y) continue;
      if (g.HasEdge(x, y)) ++squares;
    }
  }
  return squares;
}

}  // namespace

uint64_t TrianglesThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v) {
  return g.CommonNeighbors(u, v).size();
}

uint64_t TrianglesThroughEdge(const CsrGraph& g, NodeId u, NodeId v) {
  return g.CommonNeighborCount(u, v);
}

uint64_t TrianglesAtNode(const ProjectedGraph& g, NodeId u) {
  // Sum over incident edges of common-neighbor counts double-counts each
  // triangle at u exactly twice (once per incident edge).
  uint64_t twice = 0;
  for (const auto& [v, w] : g.Neighbors(u)) {
    (void)w;
    twice += TrianglesThroughEdge(g, u, v);
  }
  return twice / 2;
}

uint64_t TrianglesAtNode(const CsrGraph& g, NodeId u) {
  uint64_t twice = 0;
  for (NodeId v : g.Neighbors(u)) {
    twice += TrianglesThroughEdge(g, u, v);
  }
  return twice / 2;
}

uint64_t WedgesAtNode(const ProjectedGraph& g, NodeId u) {
  uint64_t d = g.Degree(u);
  return d * (d - 1) / 2;
}

uint64_t WedgesAtNode(const CsrGraph& g, NodeId u) {
  uint64_t d = g.Degree(u);
  return d * (d - 1) / 2;
}

double ClusteringCoefficient(const ProjectedGraph& g, NodeId u) {
  uint64_t wedges = WedgesAtNode(g, u);
  if (wedges == 0) return 0.0;
  return static_cast<double>(TrianglesAtNode(g, u)) /
         static_cast<double>(wedges);
}

double ClusteringCoefficient(const CsrGraph& g, NodeId u) {
  uint64_t wedges = WedgesAtNode(g, u);
  if (wedges == 0) return 0.0;
  return static_cast<double>(TrianglesAtNode(g, u)) /
         static_cast<double>(wedges);
}

uint64_t SquaresThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v,
                            size_t max_neighbors) {
  return SquaresThroughEdgeImpl(g, u, v, max_neighbors);
}

uint64_t SquaresThroughEdge(const CsrGraph& g, NodeId u, NodeId v,
                            size_t max_neighbors) {
  return SquaresThroughEdgeImpl(g, u, v, max_neighbors);
}

}  // namespace marioh::core
