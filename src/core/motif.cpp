#include "core/motif.hpp"

#include <algorithm>
#include <vector>

namespace marioh::core {

uint64_t TrianglesThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v) {
  return g.CommonNeighbors(u, v).size();
}

uint64_t TrianglesAtNode(const ProjectedGraph& g, NodeId u) {
  // Sum over incident edges of common-neighbor counts double-counts each
  // triangle at u exactly twice (once per incident edge).
  uint64_t twice = 0;
  for (const auto& [v, w] : g.Neighbors(u)) {
    (void)w;
    twice += TrianglesThroughEdge(g, u, v);
  }
  return twice / 2;
}

uint64_t WedgesAtNode(const ProjectedGraph& g, NodeId u) {
  uint64_t d = g.Degree(u);
  return d * (d - 1) / 2;
}

double ClusteringCoefficient(const ProjectedGraph& g, NodeId u) {
  uint64_t wedges = WedgesAtNode(g, u);
  if (wedges == 0) return 0.0;
  return static_cast<double>(TrianglesAtNode(g, u)) /
         static_cast<double>(wedges);
}

uint64_t SquaresThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v,
                            size_t max_neighbors) {
  // Collect bounded neighbor lists excluding the opposite endpoint.
  std::vector<NodeId> nu, nv;
  nu.reserve(std::min(g.Degree(u), max_neighbors));
  for (const auto& [x, w] : g.Neighbors(u)) {
    (void)w;
    if (x == v) continue;
    nu.push_back(x);
    if (nu.size() >= max_neighbors) break;
  }
  nv.reserve(std::min(g.Degree(v), max_neighbors));
  for (const auto& [y, w] : g.Neighbors(v)) {
    (void)w;
    if (y == u) continue;
    nv.push_back(y);
    if (nv.size() >= max_neighbors) break;
  }
  // A square u-x-y-v-u needs x in N(u), y in N(v), edge (x,y), x != y.
  uint64_t squares = 0;
  for (NodeId x : nu) {
    for (NodeId y : nv) {
      if (x == y) continue;
      if (g.HasEdge(x, y)) ++squares;
    }
  }
  return squares;
}

}  // namespace marioh::core
