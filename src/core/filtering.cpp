#include "core/filtering.hpp"

#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace marioh::core {

FilteringStats Filtering(ProjectedGraph* g, Hypergraph* h, int num_threads,
                         CsrGraph* pre_snapshot,
                         const util::CancelToken* cancel) {
  FilteringStats stats;
  // MHH is defined on the input graph, so compute every residual before
  // mutating any weight (Algorithm 2 reads w from G, not G'). The
  // residual pass only reads, so it runs on a frozen CSR snapshot: one
  // slot per node, each holding that node's u < v extractions in
  // ascending v order, concatenated afterwards into sorted edge order.
  struct Extraction {
    NodeId u;
    NodeId v;
    uint32_t count;
  };
  CsrGraph csr(*g, num_threads);
  const size_t n = csr.num_nodes();
  std::vector<std::vector<Extraction>> slots(n);
  util::ParallelFor(n, num_threads, cancel, [&](size_t u) {
    auto neighbors = csr.Neighbors(u);
    auto weights = csr.Weights(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      NodeId v = neighbors[i];
      if (v <= u) continue;  // each undirected edge once, as (min, max)
      uint64_t mhh = csr.Mhh(u, v);
      if (weights[i] > mhh) {
        slots[u].push_back(
            {static_cast<NodeId>(u), v,
             static_cast<uint32_t>(weights[i] - mhh)});
      }
    }
  });
  if (util::ShouldStop(cancel)) {
    // The slots are partial, so applying them would extract a
    // timing-dependent subset; skip the subtraction pass entirely and
    // hand back the (still exact) pre-subtraction snapshot.
    if (pre_snapshot != nullptr) *pre_snapshot = std::move(csr);
    return stats;
  }
  for (const std::vector<Extraction>& slot : slots) {
    for (const Extraction& ex : slot) {
      h->AddEdge(NodeSet{ex.u, ex.v}, ex.count);
      g->SubtractWeight(ex.u, ex.v, ex.count);
      stats.touched_nodes.push_back(ex.u);
      stats.touched_nodes.push_back(ex.v);
      ++stats.edges_identified;
      stats.total_multiplicity += ex.count;
    }
  }
  Canonicalize(&stats.touched_nodes);
  // Hand the pre-subtraction snapshot to the caller for patch-based
  // reuse rather than throwing the build away.
  if (pre_snapshot != nullptr) *pre_snapshot = std::move(csr);
  return stats;
}

}  // namespace marioh::core
