#include "core/filtering.hpp"

#include <vector>

namespace marioh::core {

FilteringStats Filtering(ProjectedGraph* g, Hypergraph* h) {
  FilteringStats stats;
  // MHH is defined on the input graph, so compute every residual before
  // mutating any weight (Algorithm 2 reads w from G, not G').
  struct Extraction {
    NodeId u;
    NodeId v;
    uint32_t count;
  };
  std::vector<Extraction> extractions;
  for (const ProjectedGraph::Edge& e : g->Edges()) {
    uint64_t mhh = g->Mhh(e.u, e.v);
    if (e.weight > mhh) {
      extractions.push_back(
          {e.u, e.v, static_cast<uint32_t>(e.weight - mhh)});
    }
  }
  for (const Extraction& ex : extractions) {
    h->AddEdge(NodeSet{ex.u, ex.v}, ex.count);
    g->SubtractWeight(ex.u, ex.v, ex.count);
    ++stats.edges_identified;
    stats.total_multiplicity += ex.count;
  }
  return stats;
}

}  // namespace marioh::core
