/// \file motif.hpp
/// \brief Local motif statistics (triangles, wedges, squares) around nodes
/// and edges of a projected graph — the extra signal SHyRe-Motif adds on
/// top of count features [6]. Every kernel has a hash-map
/// (`ProjectedGraph`) and a CSR-snapshot (`CsrGraph`) overload producing
/// bit-identical values: work caps truncate neighbor lists in ascending-id
/// order on both paths, so capped statistics do not depend on hash-map
/// iteration order.

#pragma once

#include <cstdint>

#include "hypergraph/csr.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh::core {

/// Number of triangles through the edge (u, v): |N(u) ∩ N(v)|.
uint64_t TrianglesThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v);
uint64_t TrianglesThroughEdge(const CsrGraph& g, NodeId u, NodeId v);

/// Number of triangles containing node u (each counted once).
uint64_t TrianglesAtNode(const ProjectedGraph& g, NodeId u);
uint64_t TrianglesAtNode(const CsrGraph& g, NodeId u);

/// Number of wedges (paths of length 2) centered at node u:
/// C(deg(u), 2).
uint64_t WedgesAtNode(const ProjectedGraph& g, NodeId u);
uint64_t WedgesAtNode(const CsrGraph& g, NodeId u);

/// Local clustering coefficient of node u: triangles / wedges (0 when the
/// node has fewer than two neighbors).
double ClusteringCoefficient(const ProjectedGraph& g, NodeId u);
double ClusteringCoefficient(const CsrGraph& g, NodeId u);

/// Number of squares (4-cycles) through the edge (u, v): pairs (x, y) with
/// x in N(u)\{v}, y in N(v)\{u}, x != y and {x,y} an edge. Work is capped
/// by `max_neighbors` per endpoint for dense graphs; the cap keeps the
/// `max_neighbors` smallest-id neighbors on both overloads.
uint64_t SquaresThroughEdge(const ProjectedGraph& g, NodeId u, NodeId v,
                            size_t max_neighbors = 64);
uint64_t SquaresThroughEdge(const CsrGraph& g, NodeId u, NodeId v,
                            size_t max_neighbors = 64);

}  // namespace marioh::core
