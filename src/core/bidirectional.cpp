#include "core/bidirectional.hpp"

#include <algorithm>
#include <cmath>

#include "hypergraph/clique.hpp"
#include "hypergraph/csr.hpp"
#include "util/check.hpp"

namespace marioh::core {
namespace {

struct ScoredClique {
  NodeSet nodes;
  double score;
};

/// Sorts descending by score; ties broken by the node set for determinism.
void SortByScoreDesc(std::vector<ScoredClique>* cliques) {
  std::sort(cliques->begin(), cliques->end(),
            [](const ScoredClique& a, const ScoredClique& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.nodes < b.nodes;
            });
}

/// Applies `clique` as a hyperedge if all its edges still exist in `g`:
/// adds it to `h` and peels one unit of weight from each clique edge.
bool TryApply(const NodeSet& clique, ProjectedGraph* g, Hypergraph* h) {
  if (!g->IsClique(clique)) return false;
  h->AddEdge(clique, 1);
  g->PeelClique(clique);
  return true;
}

}  // namespace

BidirectionalStats BidirectionalSearch(ProjectedGraph* g,
                                       const CliqueClassifier& classifier,
                                       const BidirectionalOptions& options,
                                       util::Rng* rng, Hypergraph* h) {
  MARIOH_CHECK(classifier.trained());
  BidirectionalStats stats;

  // Freeze the pre-iteration graph into a CSR snapshot: enumeration and
  // scoring below only read, so they run on the cache-friendly immutable
  // layout across all cores while the hash-map graph stays untouched
  // until the peel phase.
  CsrGraph csr(*g, options.num_threads);
  CliqueOptions clique_options;
  clique_options.num_threads = options.num_threads;
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(csr, clique_options);
  std::vector<NodeSet>& maximal = enumerated.cliques;
  stats.maximal_cliques = maximal.size();
  stats.cliques_truncated = enumerated.truncated;
  if (maximal.empty()) return stats;

  // Score all maximal cliques against the frozen snapshot; each score is
  // independent, so this is embarrassingly parallel and deterministic for
  // any thread count.
  std::vector<double> scores =
      classifier.ScoreAll(csr, maximal, /*is_maximal=*/true,
                          options.num_threads);
  std::vector<ScoredClique> pos, rest;
  for (size_t i = 0; i < maximal.size(); ++i) {
    if (scores[i] > options.theta) {
      pos.push_back({std::move(maximal[i]), scores[i]});
    } else {
      rest.push_back({std::move(maximal[i]), scores[i]});
    }
  }

  // Phase 1: most promising cliques, best first, re-validated against the
  // shrinking graph.
  SortByScoreDesc(&pos);
  for (const ScoredClique& sc : pos) {
    if (TryApply(sc.nodes, g, h)) ++stats.accepted_phase1;
  }

  if (!options.explore_subcliques || rest.empty()) return stats;

  // Phase 2: the lowest-r% scored cliques among the non-promising ones.
  std::sort(rest.begin(), rest.end(),
            [](const ScoredClique& a, const ScoredClique& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.nodes < b.nodes;
            });
  size_t take = static_cast<size_t>(
      std::ceil(options.r_percent / 100.0 * static_cast<double>(rest.size())));
  take = std::min(take, rest.size());

  // Phase 2 scores against the *mutable* graph, not the snapshot: Phase 1
  // peels already happened and sub-clique scores must see the residual
  // weights they would be applied to.
  std::vector<ScoredClique> subs;
  for (size_t i = 0; i < take; ++i) {
    const NodeSet& q = rest[i].nodes;
    // One random sample per sub-clique size k in [2, |Q|-1].
    for (size_t k = 2; k < q.size(); ++k) {
      NodeSet sub = rng->SampleWithoutReplacement(q, k);
      Canonicalize(&sub);
      double s = classifier.Score(*g, sub, /*is_maximal=*/false);
      ++stats.subcliques_scored;
      if (s > options.theta) subs.push_back({std::move(sub), s});
    }
  }
  SortByScoreDesc(&subs);
  for (const ScoredClique& sc : subs) {
    if (TryApply(sc.nodes, g, h)) ++stats.accepted_phase2;
  }
  return stats;
}

}  // namespace marioh::core
