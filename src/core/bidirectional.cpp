#include "core/bidirectional.hpp"

#include <algorithm>
#include <cmath>

#include "hypergraph/clique.hpp"
#include "util/check.hpp"

namespace marioh::core {
namespace {

/// A clique of the iteration's arena, addressed by index; the node data
/// stays in the `CliqueStore` until (and unless) the clique is accepted.
struct IndexedScore {
  uint32_t index;
  double score;
};

/// A Phase-2 sub-clique candidate (sampled, so it owns its nodes).
struct ScoredSubclique {
  NodeSet nodes;
  double score;
};

/// Sorts by score (descending when `best_first`, else ascending); ties
/// broken by the node sequence ascending for determinism — the single
/// source of the selection-order tie-break rule (the lexicographic order
/// `std::vector<NodeSet>` sorting would give).
void SortByScore(const CliqueStore& store, bool best_first,
                 std::vector<IndexedScore>* cliques) {
  std::sort(cliques->begin(), cliques->end(),
            [&store, best_first](const IndexedScore& a,
                                 const IndexedScore& b) {
              if (a.score != b.score) {
                return best_first ? a.score > b.score : a.score < b.score;
              }
              CliqueView va = store[a.index];
              CliqueView vb = store[b.index];
              return std::lexicographical_compare(va.begin(), va.end(),
                                                  vb.begin(), vb.end());
            });
}

}  // namespace

BidirectionalStats BidirectionalSearch(ProjectedGraph* g,
                                       const CsrGraph& snapshot,
                                       const CliqueClassifier& classifier,
                                       const BidirectionalOptions& options,
                                       util::Rng* rng, Hypergraph* h) {
  MARIOH_CHECK(classifier.trained());
  MARIOH_CHECK_EQ(snapshot.num_nodes(), g->num_nodes());
  BidirectionalStats stats;

  // Enumeration and scoring only read, so they run on the cache-friendly
  // immutable snapshot across all cores while the hash-map graph stays
  // untouched until the peel phase. Cliques live in the enumeration
  // arena end-to-end; only accepted ones materialize a NodeSet below.
  CliqueOptions clique_options;
  clique_options.num_threads = options.num_threads;
  clique_options.cancel = options.cancel;
  MaximalCliqueResult enumerated =
      EnumerateMaximalCliques(snapshot, clique_options);
  const CliqueStore& maximal = enumerated.cliques;
  stats.maximal_cliques = maximal.size();
  stats.cliques_truncated = enumerated.truncated;
  if (enumerated.cancelled || util::ShouldStop(options.cancel)) {
    // The clique pool is a timing-dependent subset — nothing downstream
    // may consume it (scoring or peeling it would make the output depend
    // on when the trip landed, on top of being doomed work).
    stats.cancelled = true;
    return stats;
  }
  if (maximal.empty()) return stats;

  // Score all maximal cliques against the frozen snapshot; each score is
  // independent, so this is embarrassingly parallel and deterministic for
  // any thread count.
  std::vector<double> scores =
      classifier.ScoreAll(snapshot, maximal, /*is_maximal=*/true,
                          options.num_threads, options.cancel);
  if (util::ShouldStop(options.cancel)) {
    stats.cancelled = true;
    return stats;
  }
  std::vector<IndexedScore> pos, rest;
  for (size_t i = 0; i < maximal.size(); ++i) {
    IndexedScore entry{static_cast<uint32_t>(i), scores[i]};
    if (scores[i] > options.theta) {
      pos.push_back(entry);
    } else {
      rest.push_back(entry);
    }
  }

  // Applies a candidate as a hyperedge if all its edges still exist in
  // `g`: adds it to `h` and peels one unit of weight from each clique
  // edge, recording the members as touched rows.
  auto try_apply = [&](CliqueView clique) {
    if (!g->IsClique(clique)) return false;
    h->AddEdge(NodeSet(clique.begin(), clique.end()), 1);
    g->PeelClique(clique);
    stats.touched_nodes.insert(stats.touched_nodes.end(), clique.begin(),
                               clique.end());
    return true;
  };

  // Phase 1: most promising cliques, best first, re-validated against the
  // shrinking graph. The peel loop polls the token per clique: stopping
  // early only leaves accepted hyperedges behind, which the cancelled
  // run discards wholesale anyway.
  util::CancelChecker cancel_check(options.cancel);
  SortByScore(maximal, /*best_first=*/true, &pos);
  for (const IndexedScore& sc : pos) {
    if (cancel_check.ShouldStop()) {
      stats.cancelled = true;
      break;
    }
    if (try_apply(maximal[sc.index])) ++stats.accepted_phase1;
  }

  if (!stats.cancelled && options.explore_subcliques && !rest.empty()) {
    // Phase 2: the lowest-r% scored cliques among the non-promising ones.
    SortByScore(maximal, /*best_first=*/false, &rest);
    size_t take = static_cast<size_t>(std::ceil(
        options.r_percent / 100.0 * static_cast<double>(rest.size())));
    take = std::min(take, rest.size());

    // Phase 2 scores against the *mutable* graph, not the snapshot:
    // Phase 1 peels already happened and sub-clique scores must see the
    // residual weights they would be applied to.
    std::vector<ScoredSubclique> subs;
    for (size_t i = 0; i < take && !stats.cancelled; ++i) {
      CliqueView q = maximal[rest[i].index];
      // One random sample per sub-clique size k in [2, |Q|-1].
      for (size_t k = 2; k < q.size(); ++k) {
        if (cancel_check.ShouldStop()) {
          stats.cancelled = true;
          break;
        }
        NodeSet sub = rng->SampleWithoutReplacement(q, k);
        Canonicalize(&sub);
        double s = classifier.Score(*g, sub, /*is_maximal=*/false);
        ++stats.subcliques_scored;
        if (s > options.theta) subs.push_back({std::move(sub), s});
      }
    }
    std::sort(subs.begin(), subs.end(),
              [](const ScoredSubclique& a, const ScoredSubclique& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.nodes < b.nodes;
              });
    for (const ScoredSubclique& sc : subs) {
      if (cancel_check.ShouldStop()) {
        stats.cancelled = true;
        break;
      }
      if (try_apply(sc.nodes)) ++stats.accepted_phase2;
    }
  }

  Canonicalize(&stats.touched_nodes);
  return stats;
}

BidirectionalStats BidirectionalSearch(ProjectedGraph* g,
                                       const CliqueClassifier& classifier,
                                       const BidirectionalOptions& options,
                                       util::Rng* rng, Hypergraph* h) {
  CsrGraph snapshot(*g, options.num_threads);
  return BidirectionalSearch(g, snapshot, classifier, options, rng, h);
}

}  // namespace marioh::core
