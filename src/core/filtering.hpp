/// \file filtering.hpp
/// \brief Theoretically-guaranteed filtering (Algorithm 2): extract edges
/// whose residual multiplicity proves they are size-2 hyperedges.

#pragma once

#include <vector>

#include "hypergraph/csr.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"
#include "util/cancel.hpp"

namespace marioh::core {

/// Statistics reported by a Filtering run.
struct FilteringStats {
  /// Number of distinct edges identified as guaranteed size-2 hyperedges.
  size_t edges_identified = 0;
  /// Total multiplicity of extracted size-2 hyperedges (sum of r_uv).
  size_t total_multiplicity = 0;
  /// Sorted, duplicate-free endpoints of the extracted edges — exactly
  /// the adjacency rows of `g` the subtraction pass changed. Together
  /// with `pre_snapshot` (below) this lets the reconstruction loop patch
  /// its first iteration snapshot instead of rebuilding it.
  std::vector<NodeId> touched_nodes;
};

/// Runs Algorithm 2 on `g` in place: for every edge (u,v), computes
/// `MHH(u,v)` (Eq. (1)) on the input graph and the residual
/// `r_uv = w(u,v) - MHH(u,v)`. If `r_uv > 0`, adds `{u,v}` to `h` with
/// multiplicity `r_uv` and subtracts `r_uv` from w(u,v), deleting the edge
/// when the weight reaches zero. By Lemmas 1-2 every extracted hyperedge is
/// guaranteed to be in the original hypergraph.
///
/// The MHH pass is read-only, so it runs over a CSR snapshot of `g` with
/// `num_threads` threads (0 = all cores); extractions are applied
/// sequentially in sorted edge order afterwards, so the result is
/// identical for any thread count. If `pre_snapshot` is non-null it
/// receives that internal snapshot (of `g` *before* the subtraction
/// pass), so the caller can reuse it — patched with
/// `FilteringStats::touched_nodes` — instead of paying a second build.
///
/// A tripped `cancel` token (null = non-cancellable) stops the MHH pass
/// within one node's row and skips the subtraction pass entirely, so a
/// cancelled call leaves `*g`/`*h` partially filtered at worst by the
/// already-applied extractions of *no* pass (the subtraction is
/// all-or-nothing); the caller discards the run either way.
FilteringStats Filtering(ProjectedGraph* g, Hypergraph* h,
                         int num_threads = 1,
                         CsrGraph* pre_snapshot = nullptr,
                         const util::CancelToken* cancel = nullptr);

}  // namespace marioh::core
