/// \file features.hpp
/// \brief Clique feature extraction for the multiplicity-aware classifier
/// (Sect. III-D) and for the SHyRe-Count-style structural features used by
/// the MARIOH-M ablation and the SHyRe baselines.

#pragma once

#include <cstddef>

#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"
#include "la/matrix.hpp"

namespace marioh::core {

/// Which feature family to compute for a clique.
enum class FeatureMode {
  /// The paper's multiplicity-aware features: weighted node degrees
  /// (aggregated), per-edge {multiplicity, MHH, MHH/multiplicity}
  /// (aggregated), plus {clique size, cut ratio, is-maximal}. 23 dims.
  kMultiplicityAware,
  /// SHyRe-Count-style purely structural features (no edge multiplicity):
  /// unweighted node degrees (aggregated), per-edge common-neighbor counts
  /// (aggregated), edge density of the neighborhood, clique size,
  /// is-maximal. 13 dims. Used by MARIOH-M and the SHyRe-Count baseline.
  kStructural,
  /// SHyRe-Motif features: the structural features plus motif statistics —
  /// per-node clustering coefficients and per-edge square (4-cycle) counts
  /// (both aggregated). 23 dims. Used by the SHyRe-Motif baseline.
  kMotif,
};

/// Extracts fixed-length feature vectors for cliques of a projected graph.
/// Node- and edge-level features are summarized with the five-number
/// aggregation {sum, mean, min, max, std} exactly as in the paper.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureMode mode) : mode_(mode) {}

  /// Dimensionality of the produced vectors.
  size_t dim() const;

  /// Feature vector of `clique` (canonical NodeSet, size >= 2) measured on
  /// graph `g`. `is_maximal` is the caller-supplied maximality indicator
  /// (cliques from the maximal enumeration pass 1, sub-cliques 0).
  la::Vector Extract(const ProjectedGraph& g, const NodeSet& clique,
                     bool is_maximal) const;

  FeatureMode mode() const { return mode_; }

 private:
  la::Vector ExtractMultiplicityAware(const ProjectedGraph& g,
                                      const NodeSet& clique,
                                      bool is_maximal) const;
  la::Vector ExtractStructural(const ProjectedGraph& g,
                               const NodeSet& clique, bool is_maximal) const;
  la::Vector ExtractMotif(const ProjectedGraph& g, const NodeSet& clique,
                          bool is_maximal) const;

  FeatureMode mode_;
};

}  // namespace marioh::core
