/// \file features.hpp
/// \brief Clique feature extraction for the multiplicity-aware classifier
/// (Sect. III-D) and for the SHyRe-Count-style structural features used by
/// the MARIOH-M ablation and the SHyRe baselines.
///
/// Every feature family can be computed against either the mutable
/// hash-map `ProjectedGraph` or an immutable `CsrGraph` snapshot; both
/// paths produce bit-identical vectors (work caps truncate neighbor sets
/// in ascending-id order on both). The CSR overload is the reconstruction
/// loop's hot path — `CliqueClassifier::ScoreAll` calls it per clique
/// inside one parallel loop over the frozen per-iteration snapshot —
/// and `ExtractAll` exposes the same batched parallel extraction
/// standalone (benches, tests, batch training).

#pragma once

#include <cstddef>
#include <span>

#include "hypergraph/clique.hpp"
#include "hypergraph/csr.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"
#include "la/matrix.hpp"

namespace marioh::core {

/// Which feature family to compute for a clique.
enum class FeatureMode {
  /// The paper's multiplicity-aware features: weighted node degrees
  /// (aggregated), per-edge {multiplicity, MHH, MHH/multiplicity}
  /// (aggregated), plus {clique size, cut ratio, is-maximal}. 23 dims.
  kMultiplicityAware,
  /// SHyRe-Count-style purely structural features (no edge multiplicity):
  /// unweighted node degrees (aggregated), per-edge common-neighbor counts
  /// (aggregated), edge density of the neighborhood, clique size,
  /// is-maximal. 13 dims. Used by MARIOH-M and the SHyRe-Count baseline.
  kStructural,
  /// SHyRe-Motif features: the structural features plus motif statistics —
  /// per-node clustering coefficients and per-edge square (4-cycle) counts
  /// (both aggregated). 23 dims. Used by the SHyRe-Motif baseline.
  kMotif,
};

/// Extracts fixed-length feature vectors for cliques of a projected graph.
/// Node- and edge-level features are summarized with the five-number
/// aggregation {sum, mean, min, max, std} exactly as in the paper.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureMode mode) : mode_(mode) {}

  /// Dimensionality of the produced vectors.
  size_t dim() const;

  /// Feature vector of `clique` (a canonical NodeSet or CliqueView,
  /// size >= 2) measured on graph `g`. `is_maximal` is the caller-supplied
  /// maximality indicator (cliques from the maximal enumeration pass 1,
  /// sub-cliques 0).
  la::Vector Extract(const ProjectedGraph& g, CliqueView clique,
                     bool is_maximal) const;

  /// Same features measured on a CSR snapshot; bit-identical to the
  /// ProjectedGraph overload on the same graph.
  la::Vector Extract(const CsrGraph& g, CliqueView clique,
                     bool is_maximal) const;

  /// Batched extraction over candidate cliques: row i of the result is
  /// `Extract(g, cliques[i], is_maximal)`. Rows are independent output
  /// slots filled with `util::ParallelFor` (0 = all cores), so the matrix
  /// is identical for any thread count.
  la::Matrix ExtractAll(const CsrGraph& g, std::span<const NodeSet> cliques,
                        bool is_maximal, int num_threads) const;

  /// Batched extraction straight off a clique arena (no per-clique
  /// NodeSet materialization) — the reconstruction loop's path.
  la::Matrix ExtractAll(const CsrGraph& g, const CliqueStore& cliques,
                        bool is_maximal, int num_threads) const;

  FeatureMode mode() const { return mode_; }

 private:
  FeatureMode mode_;
};

}  // namespace marioh::core
