#include "core/classifier.hpp"

#include <algorithm>

#include "hypergraph/clique.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace marioh::core {
namespace {

/// Draws one uniformly random k-subset of the canonical set `from`.
NodeSet RandomSubset(const NodeSet& from, size_t k, util::Rng* rng) {
  NodeSet out = rng->SampleWithoutReplacement(from, k);
  Canonicalize(&out);
  return out;
}

}  // namespace

CliqueClassifier::CliqueClassifier(FeatureMode mode,
                                   ClassifierOptions options)
    : extractor_(mode), options_(std::move(options)) {}

void CliqueClassifier::Train(const ProjectedGraph& g_source,
                             const Hypergraph& h_source, util::Rng* rng) {
  MARIOH_CHECK_GT(h_source.num_unique_edges(), 0u);

  // Positive examples: unique source hyperedges (optionally sub-sampled for
  // the semi-supervised setting), which are cliques of G_S by construction.
  std::vector<NodeSet> positives = h_source.UniqueEdges();
  if (options_.supervision_fraction < 1.0) {
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(options_.supervision_fraction *
                               static_cast<double>(positives.size())));
    positives = rng->SampleWithoutReplacement(positives, keep);
  }
  if (positives.size() > options_.max_positives) {
    positives =
        rng->SampleWithoutReplacement(positives, options_.max_positives);
  }

  std::unordered_set<NodeSet, util::VectorHash> positive_set(
      positives.begin(), positives.end());
  std::unordered_set<NodeSet, util::VectorHash> hyperedge_set;
  for (const auto& [e, m] : h_source.edges()) hyperedge_set.insert(e);

  // Maximality oracle for feature computation: the maximal cliques of
  // G_S, materialized out of the arena because the hash-set oracle and
  // the random sub-clique sampling below need owning sets.
  std::vector<NodeSet> max_cliques =
      EnumerateMaximalCliques(g_source).cliques.ToNodeSets();
  std::unordered_set<NodeSet, util::VectorHash> maximal_set(
      max_cliques.begin(), max_cliques.end());

  // Negative sampling: maximal cliques that are not hyperedges, plus random
  // sub-cliques of maximal cliques that are not hyperedges, plus random
  // edges (size-2 cliques) that are not hyperedges.
  size_t want_neg = static_cast<size_t>(options_.negatives_per_positive *
                                        static_cast<double>(positives.size()));
  want_neg = std::max<size_t>(want_neg, 16);
  std::vector<NodeSet> negatives;
  negatives.reserve(want_neg);
  std::unordered_set<NodeSet, util::VectorHash> negative_set;

  auto try_add_negative = [&](NodeSet q) {
    if (q.size() < 2) return;
    if (hyperedge_set.count(q) > 0) return;
    if (negative_set.insert(q).second) negatives.push_back(std::move(q));
  };

  // Hard negatives first: proper sub-cliques of true hyperedges. They are
  // cliques of G_S by construction and structurally closest to positives.
  if (options_.hard_negative_fraction > 0.0) {
    size_t want_hard = static_cast<size_t>(options_.hard_negative_fraction *
                                           static_cast<double>(want_neg));
    size_t hard_attempts = 0;
    const size_t max_hard_attempts = want_hard * 20 + 100;
    std::vector<const NodeSet*> large_positives;
    for (const NodeSet& e : positives) {
      if (e.size() >= 3) large_positives.push_back(&e);
    }
    while (!large_positives.empty() && negatives.size() < want_hard &&
           hard_attempts < max_hard_attempts) {
      ++hard_attempts;
      const NodeSet& e =
          *large_positives[rng->UniformIndex(large_positives.size())];
      size_t k = static_cast<size_t>(
          rng->UniformInt(2, static_cast<int64_t>(e.size()) - 1));
      try_add_negative(RandomSubset(e, k, rng));
    }
  }

  for (const NodeSet& q : max_cliques) {
    if (negatives.size() >= want_neg) break;
    try_add_negative(q);
  }
  std::vector<ProjectedGraph::Edge> edges = g_source.Edges();
  size_t attempts = 0;
  const size_t max_attempts = want_neg * 20 + 1000;
  while (negatives.size() < want_neg && attempts < max_attempts &&
         !max_cliques.empty()) {
    ++attempts;
    if (attempts % 2 == 0 && !edges.empty()) {
      const auto& e = edges[rng->UniformIndex(edges.size())];
      try_add_negative(NodeSet{e.u, e.v});
      continue;
    }
    const NodeSet& q = max_cliques[rng->UniformIndex(max_cliques.size())];
    if (q.size() <= 2) continue;
    size_t k = static_cast<size_t>(rng->UniformInt(
        2, static_cast<int64_t>(q.size()) - 1));
    try_add_negative(RandomSubset(q, k, rng));
  }

  // Assemble the training matrix.
  const size_t n = positives.size() + negatives.size();
  la::Matrix x(n, extractor_.dim());
  std::vector<double> y(n, 0.0);
  size_t row = 0;
  auto fill = [&](const std::vector<NodeSet>& cliques, double label) {
    for (const NodeSet& q : cliques) {
      la::Vector f = extractor_.Extract(g_source, q,
                                        maximal_set.count(q) > 0);
      std::copy(f.begin(), f.end(), x.Row(row));
      y[row] = label;
      ++row;
    }
  };
  fill(positives, 1.0);
  fill(negatives, 0.0);
  MARIOH_CHECK_EQ(row, n);

  scaler_.Fit(x);
  scaler_.Transform(&x);

  ml::MlpOptions mlp_options = options_.mlp;
  mlp_ = std::make_unique<ml::Mlp>(extractor_.dim(), 1, mlp_options);
  mlp_->Fit(x, y);
  train_counts_ = {positives.size(), negatives.size()};
}

double CliqueClassifier::Score(const ProjectedGraph& g, CliqueView clique,
                               bool is_maximal) const {
  MARIOH_CHECK(trained());
  la::Vector f = extractor_.Extract(g, clique, is_maximal);
  scaler_.Transform(&f);
  return mlp_->Predict(f);
}

double CliqueClassifier::Score(const CsrGraph& g, CliqueView clique,
                               bool is_maximal) const {
  MARIOH_CHECK(trained());
  la::Vector f = extractor_.Extract(g, clique, is_maximal);
  scaler_.Transform(&f);
  return mlp_->Predict(f);
}

std::vector<double> CliqueClassifier::ScoreAll(
    const CsrGraph& g, std::span<const NodeSet> cliques, bool is_maximal,
    int num_threads, const util::CancelToken* cancel) const {
  MARIOH_CHECK(trained());
  std::vector<double> scores(cliques.size());
  util::ParallelFor(cliques.size(), num_threads, cancel, [&](size_t i) {
    scores[i] = Score(g, cliques[i], is_maximal);
  });
  return scores;
}

std::vector<double> CliqueClassifier::ScoreAll(const CsrGraph& g,
                                               const CliqueStore& cliques,
                                               bool is_maximal,
                                               int num_threads,
                                               const util::CancelToken*
                                                   cancel) const {
  MARIOH_CHECK(trained());
  std::vector<double> scores(cliques.size());
  util::ParallelFor(cliques.size(), num_threads, cancel, [&](size_t i) {
    scores[i] = Score(g, cliques[i], is_maximal);
  });
  return scores;
}

}  // namespace marioh::core
