/// \file marioh.hpp
/// \brief The MARIOH reconstructor (Algorithm 1): filtering + iterated
/// bidirectional search with adaptive threshold decay, plus the ablation
/// variants evaluated in the paper (MARIOH-M / -F / -B).

#pragma once

#include <cstdint>
#include <memory>

#include "core/bidirectional.hpp"
#include "core/classifier.hpp"
#include "core/filtering.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/timer.hpp"

namespace marioh::core {

/// Full configuration of a MARIOH run. The defaults follow the paper's
/// settings (theta_init in the robust range of Fig. 4, alpha = 1/20).
struct MariohOptions {
  double theta_init = 0.9;   ///< initial classification threshold
  double r_percent = 20.0;   ///< negative prediction processing ratio (%)
  double alpha = 1.0 / 20;   ///< threshold adjust ratio
  bool use_filtering = true;       ///< false reproduces MARIOH-F
  bool use_bidirectional = true;   ///< false reproduces MARIOH-B
  /// kStructural reproduces MARIOH-M (SHyRe-Count-style features).
  FeatureMode feature_mode = FeatureMode::kMultiplicityAware;
  /// Safety cap on reconstruction iterations; the algorithm normally stops
  /// when the residual graph is empty.
  size_t max_iterations = 10'000;
  /// Threads for the read-only kernels of every iteration — filtering's
  /// MHH pass, CSR snapshot builds, maximal-clique enumeration, and
  /// clique scoring (0 = all cores). Results are identical for any value
  /// (the determinism contract of docs/ARCHITECTURE.md).
  int num_threads = 1;
  /// Snapshot-reuse policy for the reconstruction loop: when the fraction
  /// of nodes touched by an iteration's peels is at most this threshold,
  /// the next iteration's CSR snapshot is *patched* from the previous one
  /// (only the touched adjacency rows are rebuilt; see CsrGraph's patch
  /// constructor) instead of rebuilt from scratch. 0 always rebuilds,
  /// 1 always patches. Either way the snapshot — and therefore the
  /// reconstruction — is bit-identical; only wall-clock changes. The
  /// default follows the BM_CsrPatchRebuild crossover (patching still
  /// wins at 50% touched on the benchmark graphs, so the threshold sits
  /// safely below that).
  double snapshot_reuse = 0.4;
  uint64_t seed = 1;  ///< seed for training and sub-clique sampling
  ClassifierOptions classifier;
  /// Cooperative stop signal for Reconstruct, threaded into every hot
  /// kernel (filtering's MHH pass, clique enumeration roots/emissions,
  /// scoring slots, peel steps) so Cancel/deadline trips land mid-kernel
  /// within a bounded number of work items — not at the next stage
  /// boundary. Null (the default) is non-cancellable; an *untriggered*
  /// token leaves the output bit-identical (property-tested by
  /// test_cancellation). After a trip the returned hypergraph is partial
  /// — check `ReconstructionStats::cancelled` and discard it
  /// (api::Session does, mapping the trip to kCancelled /
  /// kDeadlineExceeded). The token must outlive the Reconstruct call.
  const util::CancelToken* cancel = nullptr;
};

/// Named ablation variants from the paper's effectiveness study.
enum class MariohVariant {
  kFull,      ///< MARIOH
  kNoMulti,   ///< MARIOH-M: structural features only
  kNoFilter,  ///< MARIOH-F: no theoretically-guaranteed filtering
  kNoBidir,   ///< MARIOH-B: no sub-clique exploration
};

/// Convenience: options for a named variant on top of `base`.
MariohOptions OptionsForVariant(MariohVariant variant,
                                MariohOptions base = {});

/// Aggregate counters of the most recent Reconstruct call.
struct ReconstructionStats {
  size_t iterations = 0;         ///< bidirectional-search iterations run
  size_t maximal_cliques = 0;    ///< cliques enumerated, summed over iters
  size_t accepted_phase1 = 0;    ///< hyperedges accepted from Q_pos
  size_t accepted_phase2 = 0;    ///< hyperedges accepted from sub-cliques
  size_t subcliques_scored = 0;  ///< sub-clique candidates evaluated
  size_t filtering_edges = 0;    ///< size-2 hyperedges from Algorithm 2
  /// Snapshot upkeep: how many CSR snapshots were patched from the
  /// previous iteration's snapshot vs rebuilt from scratch (the
  /// `snapshot_reuse` policy). Patches + rebuilds = snapshots built.
  size_t snapshot_patches = 0;
  size_t snapshot_rebuilds = 0;
  /// True if any iteration's maximal-clique enumeration was truncated by
  /// the clique cap — the reconstruction then worked on partial candidate
  /// pools and callers should not treat the output as exhaustive.
  bool cliques_truncated = false;
  /// True if `MariohOptions::cancel` tripped mid-run: the loop stopped at
  /// its next preemption point and the returned hypergraph is partial —
  /// discard it.
  bool cancelled = false;
};

/// Supervised multiplicity-aware hypergraph reconstructor.
///
/// Usage:
/// ```
/// Marioh m(options);
/// m.Train(g_source, h_source);
/// Hypergraph h_hat = m.Reconstruct(g_target);
/// ```
class Marioh {
 public:
  explicit Marioh(MariohOptions options = {});

  /// Trains the clique classifier on the source pair (Problem 1's
  /// supervision). Records time under stage "train".
  void Train(const ProjectedGraph& g_source, const Hypergraph& h_source);

  /// Reconstructs a hypergraph from the target projected graph
  /// (Algorithm 1). Records time under stages "filtering" and
  /// "bidirectional".
  Hypergraph Reconstruct(const ProjectedGraph& g_target) const;

  /// Wall-clock per stage from the most recent Train/Reconstruct calls;
  /// powers the Fig. 6 runtime-breakdown bench.
  const util::StageTimer& stage_timer() const { return timer_; }

  /// Counters of the most recent Reconstruct call (zeroed at its start).
  const ReconstructionStats& last_reconstruction_stats() const {
    return last_stats_;
  }

  /// Underlying classifier (trained after Train).
  const CliqueClassifier& classifier() const { return classifier_; }

  const MariohOptions& options() const { return options_; }

 private:
  MariohOptions options_;
  CliqueClassifier classifier_;
  mutable util::StageTimer timer_;
  mutable ReconstructionStats last_stats_;
};

}  // namespace marioh::core
