#include "core/features.hpp"

#include <algorithm>
#include <vector>

#include "core/motif.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace marioh::core {
namespace {

/// The neighborhood-density pass below consumes at most this many nodes
/// in total, so neighbor lists never need more than the 64 smallest ids.
constexpr size_t kHoodCap = 64;

/// The `kHoodCap` smallest neighbor ids of u in ascending order. The CSR
/// overload is a sorted-prefix view; the hash-map overload collects into
/// `scratch` and partial-sorts (O(d log 64), not O(d log d), on hubs).
/// Routing both representations through the same ascending order is what
/// makes capped neighborhood statistics identical across the two paths.
std::span<const NodeId> SortedNeighborIds(const CsrGraph& g, NodeId u,
                                          std::vector<NodeId>* scratch) {
  (void)scratch;
  auto nbrs = g.Neighbors(u);
  return nbrs.subspan(0, std::min(nbrs.size(), kHoodCap));
}

std::span<const NodeId> SortedNeighborIds(const ProjectedGraph& g, NodeId u,
                                          std::vector<NodeId>* scratch) {
  scratch->clear();
  for (const auto& [v, w] : g.Neighbors(u)) {
    (void)w;
    scratch->push_back(v);
  }
  size_t keep = std::min(scratch->size(), kHoodCap);
  std::partial_sort(scratch->begin(), scratch->begin() + keep,
                    scratch->end());
  return {scratch->data(), keep};
}

size_t FeatureDim(FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kMultiplicityAware:
      // 5 (weighted degree) + 3 * 5 (edge features) + 3 (clique-level).
      return 23;
    case FeatureMode::kStructural:
      // 5 (degree) + 5 (common neighbors) + 3 (density, size, maximal).
      return 13;
    case FeatureMode::kMotif:
      // Structural 13 + 5 (clustering coeff) + 5 (square counts).
      return 23;
  }
  MARIOH_CHECK(false);
  return 0;
}

template <typename Graph>
la::Vector ExtractMultiplicityAware(const Graph& g, CliqueView clique,
                                    bool is_maximal) {
  const size_t k = clique.size();

  // Node-level: weighted degree of each clique member.
  std::vector<double> wdeg;
  wdeg.reserve(k);
  for (NodeId u : clique) {
    wdeg.push_back(static_cast<double>(g.WeightedDegree(u)));
  }

  // Edge-level: multiplicity, MHH, MHH / multiplicity per clique edge.
  std::vector<double> mult, mhh, mhh_ratio;
  mult.reserve(k * (k - 1) / 2);
  mhh.reserve(mult.capacity());
  mhh_ratio.reserve(mult.capacity());
  double internal_weight = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      double w = static_cast<double>(g.Weight(clique[i], clique[j]));
      double m = static_cast<double>(g.Mhh(clique[i], clique[j]));
      mult.push_back(w);
      mhh.push_back(m);
      mhh_ratio.push_back(w > 0 ? m / w : 0.0);
      internal_weight += w;
    }
  }

  // Clique-level: size, cut ratio, maximality.
  double boundary = 0.0;
  for (double d : wdeg) boundary += d;
  boundary -= 2.0 * internal_weight;  // each internal edge counted twice
  double cut_ratio = (internal_weight + boundary) > 0
                         ? internal_weight / (internal_weight + boundary)
                         : 0.0;

  la::Vector out;
  out.reserve(FeatureDim(FeatureMode::kMultiplicityAware));
  auto append = [&out](const std::vector<double>& agg) {
    out.insert(out.end(), agg.begin(), agg.end());
  };
  append(util::Aggregate5(wdeg));
  append(util::Aggregate5(mult));
  append(util::Aggregate5(mhh));
  append(util::Aggregate5(mhh_ratio));
  out.push_back(static_cast<double>(k));
  out.push_back(cut_ratio);
  out.push_back(is_maximal ? 1.0 : 0.0);
  MARIOH_CHECK_EQ(out.size(), FeatureDim(FeatureMode::kMultiplicityAware));
  return out;
}

template <typename Graph>
la::Vector ExtractStructural(const Graph& g, CliqueView clique,
                             bool is_maximal) {
  const size_t k = clique.size();

  // Node-level: unweighted degree.
  std::vector<double> deg;
  deg.reserve(k);
  for (NodeId u : clique) deg.push_back(static_cast<double>(g.Degree(u)));

  // Edge-level: common-neighbor count of each edge's endpoints.
  std::vector<double> common;
  common.reserve(k * (k - 1) / 2);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      common.push_back(static_cast<double>(
          g.CommonNeighborCount(clique[i], clique[j])));
    }
  }

  // Neighborhood edge density: fraction of pairs among the union of the
  // clique's neighbors (capped for cost, in ascending-id order) that are
  // connected.
  NodeSet hood(clique.begin(), clique.end());
  std::vector<NodeId> scratch;
  for (NodeId u : clique) {
    for (NodeId v : SortedNeighborIds(g, u, &scratch)) {
      hood.push_back(v);
      if (hood.size() >= kHoodCap) break;
    }
    if (hood.size() >= kHoodCap) break;
  }
  Canonicalize(&hood);
  double density = 0.0;
  if (hood.size() >= 2) {
    size_t present = 0;
    size_t pairs = 0;
    for (size_t i = 0; i < hood.size(); ++i) {
      for (size_t j = i + 1; j < hood.size(); ++j) {
        ++pairs;
        if (g.HasEdge(hood[i], hood[j])) ++present;
      }
    }
    density = static_cast<double>(present) / static_cast<double>(pairs);
  }

  la::Vector out;
  out.reserve(FeatureDim(FeatureMode::kStructural));
  auto append = [&out](const std::vector<double>& agg) {
    out.insert(out.end(), agg.begin(), agg.end());
  };
  append(util::Aggregate5(deg));
  append(util::Aggregate5(common));
  out.push_back(density);
  out.push_back(static_cast<double>(k));
  out.push_back(is_maximal ? 1.0 : 0.0);
  // 13 structural dims; kMotif extends this vector afterwards.
  MARIOH_CHECK_EQ(out.size(), 13u);
  return out;
}

template <typename Graph>
la::Vector ExtractMotif(const Graph& g, CliqueView clique,
                        bool is_maximal) {
  // Structural features first (13 dims, computed identically to
  // kStructural), then motif statistics.
  la::Vector out = ExtractStructural(g, clique, is_maximal);

  std::vector<double> clustering;
  clustering.reserve(clique.size());
  for (NodeId u : clique) {
    clustering.push_back(ClusteringCoefficient(g, u));
  }
  std::vector<double> squares;
  squares.reserve(clique.size() * (clique.size() - 1) / 2);
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      squares.push_back(static_cast<double>(
          SquaresThroughEdge(g, clique[i], clique[j])));
    }
  }
  auto append = [&out](const std::vector<double>& agg) {
    out.insert(out.end(), agg.begin(), agg.end());
  };
  append(util::Aggregate5(clustering));
  append(util::Aggregate5(squares));
  MARIOH_CHECK_EQ(out.size(), FeatureDim(FeatureMode::kMotif));
  return out;
}

template <typename Graph>
la::Vector ExtractImpl(FeatureMode mode, const Graph& g, CliqueView clique,
                       bool is_maximal) {
  MARIOH_CHECK_GE(clique.size(), 2u);
  switch (mode) {
    case FeatureMode::kMultiplicityAware:
      return ExtractMultiplicityAware(g, clique, is_maximal);
    case FeatureMode::kStructural:
      return ExtractStructural(g, clique, is_maximal);
    case FeatureMode::kMotif:
      return ExtractMotif(g, clique, is_maximal);
  }
  MARIOH_CHECK(false);
  return {};
}

}  // namespace

size_t FeatureExtractor::dim() const { return FeatureDim(mode_); }

la::Vector FeatureExtractor::Extract(const ProjectedGraph& g,
                                     CliqueView clique,
                                     bool is_maximal) const {
  return ExtractImpl(mode_, g, clique, is_maximal);
}

la::Vector FeatureExtractor::Extract(const CsrGraph& g, CliqueView clique,
                                     bool is_maximal) const {
  return ExtractImpl(mode_, g, clique, is_maximal);
}

la::Matrix FeatureExtractor::ExtractAll(const CsrGraph& g,
                                        std::span<const NodeSet> cliques,
                                        bool is_maximal,
                                        int num_threads) const {
  la::Matrix x(cliques.size(), dim());
  util::ParallelFor(cliques.size(), num_threads, [&](size_t i) {
    la::Vector f = ExtractImpl(mode_, g, cliques[i], is_maximal);
    std::copy(f.begin(), f.end(), x.Row(i));
  });
  return x;
}

la::Matrix FeatureExtractor::ExtractAll(const CsrGraph& g,
                                        const CliqueStore& cliques,
                                        bool is_maximal,
                                        int num_threads) const {
  la::Matrix x(cliques.size(), dim());
  util::ParallelFor(cliques.size(), num_threads, [&](size_t i) {
    la::Vector f = ExtractImpl(mode_, g, cliques[i], is_maximal);
    std::copy(f.begin(), f.end(), x.Row(i));
  });
  return x;
}

}  // namespace marioh::core
