/// \file classifier.hpp
/// \brief The clique classifier M: an MLP over clique features trained on
/// the source pair (G_S, H_S) with negative sampling (Sect. III-D and the
/// paper's online appendix).

#pragma once

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/features.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "util/cancel.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::core {

/// Training options for the clique classifier.
struct ClassifierOptions {
  /// MLP hyperparameters (input dim is set by the feature mode).
  ml::MlpOptions mlp;
  /// Negative examples sampled per positive example.
  double negatives_per_positive = 3.0;
  /// Fraction of negatives drawn as "hard negatives": proper sub-cliques
  /// of true hyperedges that are not hyperedges themselves. These share
  /// most of their structure with positives, sharpening the decision
  /// boundary (cf. the paper's negative-sampling appendix). 0 disables.
  double hard_negative_fraction = 0.0;
  /// Cap on the number of positive examples (subsampled when exceeded).
  size_t max_positives = 20'000;
  /// Fraction of source hyperedges available as supervision (the
  /// semi-supervised setting of Table VI). 1.0 = full supervision.
  double supervision_fraction = 1.0;
};

/// Supervised clique scorer: trains on cliques of the source projected
/// graph labeled by membership in the source hypergraph, then assigns
/// P(clique is a hyperedge) to arbitrary cliques at reconstruction time.
class CliqueClassifier {
 public:
  CliqueClassifier(FeatureMode mode, ClassifierOptions options);

  /// Trains on the source pair. Positives are the (sub-sampled) unique
  /// hyperedges of `h_source`; negatives are maximal cliques of `g_source`
  /// and random sub-cliques of them that are not hyperedges.
  void Train(const ProjectedGraph& g_source, const Hypergraph& h_source,
             util::Rng* rng);

  /// Prediction score M(Q) in (0, 1) for a canonical NodeSet or
  /// CliqueView. Must be trained first.
  double Score(const ProjectedGraph& g, CliqueView clique,
               bool is_maximal) const;

  /// Score measured on a CSR snapshot; identical to the ProjectedGraph
  /// overload on the same graph.
  double Score(const CsrGraph& g, CliqueView clique, bool is_maximal) const;

  /// Batched scoring against a frozen snapshot: element i is
  /// `Score(g, cliques[i], is_maximal)`. Scores are independent pure
  /// functions of the snapshot, computed into per-index slots with
  /// `util::ParallelFor` (0 = all cores) — identical for any thread
  /// count. A tripped `cancel` token (null = non-cancellable) stops each
  /// range within one clique's scoring; the returned vector then holds
  /// unwritten (zero) slots and must be discarded by the caller.
  std::vector<double> ScoreAll(const CsrGraph& g,
                               std::span<const NodeSet> cliques,
                               bool is_maximal, int num_threads,
                               const util::CancelToken* cancel =
                                   nullptr) const;

  /// Batched scoring straight off a clique arena (no per-clique NodeSet
  /// materialization) — the reconstruction loop's path.
  std::vector<double> ScoreAll(const CsrGraph& g, const CliqueStore& cliques,
                               bool is_maximal, int num_threads,
                               const util::CancelToken* cancel =
                                   nullptr) const;

  /// True once Train has completed.
  bool trained() const { return mlp_ != nullptr; }

  /// Number of (positive, negative) training examples used by the last
  /// Train call.
  std::pair<size_t, size_t> train_counts() const { return train_counts_; }

  const FeatureExtractor& extractor() const { return extractor_; }

 private:
  FeatureExtractor extractor_;
  ClassifierOptions options_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Mlp> mlp_;
  std::pair<size_t, size_t> train_counts_ = {0, 0};
};

}  // namespace marioh::core
