/// \file builtin_methods.cpp
/// \brief Force-links every in-tree method registration.
///
/// The library is a static archive, so the linker only pulls in a
/// registration TU when some symbol in it is referenced. Each
/// `MARIOH_REGISTER_METHOD(tag, ...)` emits a no-op token function
/// `MariohMethodLinkToken_<tag>`; referencing the tokens here (and calling
/// this from `MethodRegistry::Global()`) guarantees the full roster is
/// present in every binary that touches the registry.

#include "api/registry.hpp"

namespace marioh::api::internal {

// One token per MARIOH_REGISTER_METHOD invocation, defined in the
// respective implementation TU.
int MariohMethodLinkToken_BayesianMdl();
int MariohMethodLinkToken_CFinder();
int MariohMethodLinkToken_CliqueCovering();
int MariohMethodLinkToken_Demon();
int MariohMethodLinkToken_Marioh();
int MariohMethodLinkToken_MariohB();
int MariohMethodLinkToken_MariohF();
int MariohMethodLinkToken_MariohM();
int MariohMethodLinkToken_MaxClique();
int MariohMethodLinkToken_ShyreCount();
int MariohMethodLinkToken_ShyreMotif();
int MariohMethodLinkToken_ShyreUnsup();

}  // namespace marioh::api::internal

namespace marioh::api {

void EnsureBuiltinMethodsRegistered() {
  using namespace internal;
  static const int kForceLink =
      MariohMethodLinkToken_BayesianMdl() + MariohMethodLinkToken_CFinder() +
      MariohMethodLinkToken_CliqueCovering() + MariohMethodLinkToken_Demon() +
      MariohMethodLinkToken_Marioh() + MariohMethodLinkToken_MariohB() +
      MariohMethodLinkToken_MariohF() + MariohMethodLinkToken_MariohM() +
      MariohMethodLinkToken_MaxClique() + MariohMethodLinkToken_ShyreCount() +
      MariohMethodLinkToken_ShyreMotif() + MariohMethodLinkToken_ShyreUnsup();
  (void)kForceLink;
}

}  // namespace marioh::api
