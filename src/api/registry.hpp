/// \file registry.hpp
/// \brief Self-registering method registry: the one place that maps table
/// names ("MARIOH", "CFinder", ...) to `Reconstructor` factories.
///
/// Each implementation translation unit registers itself with
/// `MARIOH_REGISTER_METHOD` at static-initialization time, so adding a
/// method never touches a central switch. Lookups of unknown names return
/// a `Status` that lists the known methods instead of aborting, which is
/// what lets `marioh_cli` (and a future server) report bad requests and
/// keep running.
///
/// Because the library is a static archive, a registration TU is only
/// linked into a binary if some symbol in it is referenced; the
/// force-link tokens emitted by the macro (and collected in
/// `builtin_methods.cpp`) guarantee the in-tree roster is always present.
/// Out-of-tree methods compiled directly into an executable need no
/// token: their registrar runs because executable objects are always
/// linked.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/method.hpp"
#include "api/status.hpp"

namespace marioh::core {
struct MariohOptions;  // typed base options, forwarded opaquely
}  // namespace marioh::core

namespace marioh::api {

/// Static metadata describing a registered method.
struct MethodInfo {
  std::string name;     ///< table name, unique registry key
  std::string summary;  ///< one-line description for --list-methods
  bool supervised = false;  ///< consumes the source pair in Train
  /// Meaningful in the multiplicity-preserved (Table III) setting.
  bool multiplicity_aware = false;
  int table2_order = -1;  ///< row position in Table II (-1: not listed)
  int table3_order = -1;  ///< row position in Table III (-1: not listed)
};

/// Construction-time configuration handed to a method factory.
struct MethodConfig {
  uint64_t seed = 1;
  /// Typed base options for the MARIOH family; null means defaults.
  /// Opaque here so the registry stays below `core/` in the layering.
  const core::MariohOptions* marioh_base = nullptr;
  /// `key=value` overrides. Factories must reject unknown keys and bad
  /// values with kInvalidArgument (see OverrideReader).
  std::vector<std::pair<std::string, std::string>> overrides;
};

using MethodFactory =
    std::function<StatusOr<std::unique_ptr<Reconstructor>>(
        const MethodConfig&)>;

/// Name → factory + metadata map. Thread-safe; normally used through the
/// process-wide `Global()` instance, but instantiable so tests can
/// exercise registration in isolation.
class MethodRegistry {
 public:
  /// The process-wide registry, with every in-tree method registered.
  static MethodRegistry& Global();

  /// Adds a method. kAlreadyExists if `info.name` is taken, and
  /// kInvalidArgument if the name or factory is empty.
  Status Register(MethodInfo info, MethodFactory factory);

  /// Instantiates `name`, or kNotFound listing the known methods.
  StatusOr<std::unique_ptr<Reconstructor>> Create(
      const std::string& name, const MethodConfig& config) const;

  /// Metadata for `name`, or kNotFound listing the known methods.
  StatusOr<MethodInfo> Info(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// All registered metadata, sorted by name.
  std::vector<MethodInfo> Methods() const;

 private:
  struct Entry {
    MethodInfo info;
    MethodFactory factory;
  };

  Status UnknownMethod(const std::string& name) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// The Table II method roster, in row order (from registry metadata).
std::vector<std::string> Table2Roster();

/// The Table III roster (methods applicable to multiplicity-preserved
/// reconstruction), in row order.
std::vector<std::string> Table3Roster();

/// Convenience for benches and tests running the fixed paper rosters:
/// creates the method or dies with a check failure. User-facing code
/// paths must use `MethodRegistry::Create` (or `Session`) instead.
std::unique_ptr<Reconstructor> MustCreateMethod(
    const std::string& name, uint64_t seed,
    const core::MariohOptions* marioh_base = nullptr);

/// Force-links every in-tree registration TU (defined in
/// builtin_methods.cpp). Called by `MethodRegistry::Global()`.
void EnsureBuiltinMethodsRegistered();

/// Typed consumption of `MethodConfig::overrides` inside a factory: call
/// `Get` once per supported key, then `Finish` to fail on unknown keys or
/// unparsable values.
class OverrideReader {
 public:
  explicit OverrideReader(const MethodConfig& config);

  void Get(const std::string& key, double* out);
  // Both unsigned widths so that uint64_t and size_t bind on every
  // platform (they are different underlying types on e.g. macOS).
  void Get(const std::string& key, unsigned long* out);       // NOLINT
  void Get(const std::string& key, unsigned long long* out);  // NOLINT
  void Get(const std::string& key, int* out);
  void Get(const std::string& key, bool* out);

  /// kInvalidArgument naming the offending key (and the supported keys
  /// of `method_name`) if any override was left unconsumed or failed to
  /// parse; OK otherwise.
  Status Finish(const std::string& method_name) const;

 private:
  const std::string* Find(const std::string& key);

  const MethodConfig& config_;
  std::vector<bool> consumed_;
  std::vector<std::string> known_keys_;
  std::string first_error_;
};

namespace internal {

/// Performs registration at static-init time; duplicate in-tree names are
/// programming errors and fail a check.
struct MethodRegistrar {
  MethodRegistrar(MethodInfo info, MethodFactory factory);
};

}  // namespace internal
}  // namespace marioh::api

/// Registers a method from an implementation TU. Use at namespace scope
/// (global namespace), typically at the bottom of the .cpp file:
///
///   MARIOH_REGISTER_METHOD(
///       CFinder,
///       (marioh::api::MethodInfo{...}),
///       [](const marioh::api::MethodConfig& config) -> ... { ... });
///
/// `tag` must be a unique identifier; it names the force-link token
/// (`MariohMethodLinkToken_<tag>`) that keeps the TU in static-library
/// links (see builtin_methods.cpp).
#define MARIOH_REGISTER_METHOD(tag, info, factory)                     \
  namespace marioh::api::internal {                                    \
  int MariohMethodLinkToken_##tag() { return 0; }                      \
  namespace {                                                          \
  const ::marioh::api::internal::MethodRegistrar                       \
      marioh_method_registrar_##tag((info), (factory));                \
  }                                                                    \
  }
