/// \file marioh_method.hpp
/// \brief Adapter exposing core::Marioh (any ablation variant) through the
/// common `api::Reconstructor` interface, and the registry entries for
/// MARIOH / MARIOH-M / MARIOH-F / MARIOH-B.

#pragma once

#include <string>

#include "api/method.hpp"
#include "core/marioh.hpp"

namespace marioh::api {

/// core::Marioh behind the `Reconstructor` interface. Usually obtained
/// from the registry (names MARIOH, MARIOH-M, MARIOH-F, MARIOH-B); the
/// concrete type remains public for callers that need `stage_timer()`.
class MariohMethod : public Reconstructor {
 public:
  MariohMethod(core::MariohVariant variant, core::MariohOptions options);

  std::string Name() const override;
  bool IsSupervised() const override { return true; }
  void Train(const ProjectedGraph& g_source,
             const Hypergraph& h_source) override;
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;
  std::vector<std::pair<std::string, double>> ReconstructionStats()
      const override;

  /// Stage timing of the wrapped reconstructor (Fig. 6).
  const util::StageTimer& stage_timer() const {
    return marioh_.stage_timer();
  }

 private:
  core::MariohVariant variant_;
  core::Marioh marioh_;
};

}  // namespace marioh::api
