#include "api/service.hpp"

#include <algorithm>
#include <utility>

#include "api/registry.hpp"

namespace marioh::api {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
    case JobState::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

Service::Service(std::shared_ptr<DatasetCache> cache,
                 ServiceOptions options)
    : cache_(std::move(cache)), options_(options) {
  MARIOH_CHECK(cache_ != nullptr);
  pool_ = std::make_unique<util::WorkerPool>(options_.num_workers);
}

Service::~Service() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->status = Status::Cancelled("service shut down before the job "
                                        "started");
        job->finish_seq = next_finish_seq_++;
        job->finished_at = std::chrono::steady_clock::now();
        ++totals_.cancelled;
      }
      // Running jobs stop at their next mid-kernel preemption point.
      job->cancel.Cancel();
    }
  }
  job_done_.notify_all();
  pool_->Shutdown();
}

StatusOr<std::shared_ptr<Service::Job>> Service::Admit(
    const ReconstructRequest& request) {
  StatusOr<MethodInfo> info = MethodRegistry::Global().Info(request.method);
  if (!info.ok()) return info.status();

  for (const auto& [key, value] : request.overrides) {
    if (key == "method" || key == "seed" || key == "time_budget_seconds") {
      return Status::InvalidArgument(
          "override key '" + key +
          "' is reserved; set the typed ReconstructRequest field instead");
    }
  }

  auto job = std::make_shared<Job>();
  job->request = request;

  if (request.target_dataset.empty()) {
    return Status::InvalidArgument("request names no target_dataset");
  }
  StatusOr<DatasetHandle> target = cache_->Get(request.target_dataset);
  if (!target.ok()) return target.status();
  if (!target->has_graph()) {
    return Status::FailedPrecondition(
        "dataset '" + request.target_dataset +
        "' holds no projected graph to reconstruct from");
  }
  job->target = std::move(target).value();

  if (!request.train_dataset.empty()) {
    StatusOr<DatasetHandle> train = cache_->Get(request.train_dataset);
    if (!train.ok()) return train.status();
    if (!train->has_hypergraph() || !train->has_graph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.train_dataset +
          "' is not a source pair (needs a hypergraph and its "
          "projection)");
    }
    job->train = std::move(train).value();
  } else if (info->supervised) {
    return Status::FailedPrecondition(
        "method '" + request.method +
        "' is supervised and needs a train_dataset");
  }

  if (!request.ground_truth_dataset.empty()) {
    StatusOr<DatasetHandle> truth =
        cache_->Get(request.ground_truth_dataset);
    if (!truth.ok()) return truth.status();
    if (!truth->has_hypergraph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.ground_truth_dataset +
          "' holds no hypergraph to evaluate against");
    }
    job->ground_truth = std::move(truth).value();
  }

  return job;
}

void Service::Enqueue(const std::shared_ptr<Job>& job) {
  util::TaskOptions scheduling;
  scheduling.priority = static_cast<int>(job->request.priority);
  scheduling.client = job->request.client_id;
  pool_->Submit([this, job] { RunJob(job); }, std::move(scheduling));
}

size_t Service::RetireExpiredLocked() {
  if (options_.job_ttl_seconds < 0.0) return 0;
  const auto now = std::chrono::steady_clock::now();
  size_t retired = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const Job& job = *it->second;
    bool terminal = job.state != JobState::kQueued &&
                    job.state != JobState::kRunning;
    if (terminal && job.finished_at.has_value() &&
        std::chrono::duration<double>(now - *job.finished_at).count() >
            options_.job_ttl_seconds) {
      it = jobs_.erase(it);
      ++retired;
    } else {
      ++it;
    }
  }
  totals_.jobs_retired += retired;
  return retired;
}

size_t Service::RetireExpired() {
  std::lock_guard<std::mutex> lock(mutex_);
  return RetireExpiredLocked();
}

Status Service::AdmitCapacityLocked(const std::string& client,
                                    size_t extra_queued,
                                    size_t extra_same_client) {
  size_t queued = extra_queued;
  size_t inflight_client = extra_same_client;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) ++queued;
    if ((job->state == JobState::kQueued ||
         job->state == JobState::kRunning) &&
        job->request.client_id == client) {
      ++inflight_client;
    }
  }
  if (options_.max_queued_jobs > 0 && queued >= options_.max_queued_jobs) {
    ++totals_.submits_rejected;
    return Status::ResourceExhausted(
        "queue is full (" + std::to_string(queued) + " of " +
        std::to_string(options_.max_queued_jobs) +
        " queued jobs); retry after jobs drain");
  }
  if (options_.max_inflight_per_client > 0 &&
      inflight_client >= options_.max_inflight_per_client) {
    ++totals_.submits_rejected;
    return Status::ResourceExhausted(
        "client '" + client + "' has " + std::to_string(inflight_client) +
        " of " + std::to_string(options_.max_inflight_per_client) +
        " in-flight jobs; wait for one to finish");
  }
  return Status::Ok();
}

StatusOr<JobId> Service::Submit(const ReconstructRequest& request) {
  StatusOr<std::shared_ptr<Job>> admitted = Admit(request);
  if (!admitted.ok()) return admitted.status();
  std::shared_ptr<Job> job = std::move(admitted).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RetireExpiredLocked();
    MARIOH_RETURN_IF_ERROR(
        AdmitCapacityLocked(request.client_id, 0, 0));
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
    ++totals_.accepted;
  }
  Enqueue(job);
  return job->id;
}

StatusOr<std::vector<JobId>> Service::SubmitBatch(
    const std::vector<ReconstructRequest>& requests) {
  // Validate everything before admitting anything: a batch is atomic.
  std::vector<std::shared_ptr<Job>> admitted;
  admitted.reserve(requests.size());
  for (const ReconstructRequest& request : requests) {
    StatusOr<std::shared_ptr<Job>> job = Admit(request);
    if (!job.ok()) return job.status();
    admitted.push_back(std::move(job).value());
  }
  std::vector<JobId> ids;
  ids.reserve(admitted.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RetireExpiredLocked();
    // Capacity is checked for the batch as a whole before anything is
    // inserted, counting the earlier batch members as already queued —
    // atomicity means a batch that would only half-fit is rejected
    // entirely.
    for (size_t i = 0; i < admitted.size(); ++i) {
      size_t same_client = 0;
      for (size_t j = 0; j < i; ++j) {
        if (admitted[j]->request.client_id ==
            admitted[i]->request.client_id) {
          ++same_client;
        }
      }
      MARIOH_RETURN_IF_ERROR(AdmitCapacityLocked(
          admitted[i]->request.client_id, i, same_client));
    }
    for (const std::shared_ptr<Job>& job : admitted) {
      job->id = next_id_++;
      jobs_.emplace(job->id, job);
      ++totals_.accepted;
      ids.push_back(job->id);
    }
  }
  for (const std::shared_ptr<Job>& job : admitted) Enqueue(job);
  return ids;
}

void Service::RunJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    if (job->cancel.cancelled()) {
      job->state = JobState::kCancelled;
      job->status = Status::Cancelled("job cancelled before it started");
      job->finish_seq = next_finish_seq_++;
      job->finished_at = std::chrono::steady_clock::now();
      ++totals_.cancelled;
      job_done_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
  }
  // The hard deadline covers *run* time, so arm it only now that the job
  // holds a worker — a job stuck behind a long queue keeps its full
  // allowance.
  if (job->request.deadline_seconds >= 0.0) {
    job->cancel.SetDeadline(job->request.deadline_seconds);
  }

  SessionOptions options;
  options.method = job->request.method;
  options.seed = job->request.seed;
  options.time_budget_seconds = job->request.time_budget_seconds;
  options.marioh = options_.marioh;
  if (job->request.kernel_threads > 0) {
    // Per-job thread budget: this job's ParallelFor fan-out width
    // (results are thread-count invariant; only its CPU share changes).
    options.marioh.num_threads = job->request.kernel_threads;
  }
  // The token gates every stage entry *and* rides into the MARIOH-family
  // kernels, so Cancel/deadline trips land mid-kernel; baselines still
  // stop at their next stage boundary.
  options.cancel = &job->cancel;

  Status status = Status::Ok();
  for (const auto& [key, value] : job->request.overrides) {
    status = ApplySessionOverride(&options, key + "=" + value);
    if (!status.ok()) break;
  }

  Session session;
  std::optional<EvaluationResult> evaluation;
  if (status.ok()) status = session.Configure(std::move(options));
  if (status.ok() && job->train.has_hypergraph()) {
    status = session.Train(job->train);
  }
  if (status.ok()) status = session.Reconstruct(job->target);
  if (status.ok() && job->ground_truth.has_hypergraph()) {
    StatusOr<EvaluationResult> scores =
        session.Evaluate(*job->ground_truth.hypergraph);
    if (scores.ok()) {
      evaluation = *scores;
    } else {
      status = scores.status();
    }
  }

  HypergraphHandle reconstruction;
  if (status.ok()) {
    StatusOr<Hypergraph> result = session.TakeReconstruction();
    if (result.ok()) {
      reconstruction = std::make_shared<const Hypergraph>(
          std::move(result).value());
    } else {
      status = result.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->status = status;
    job->budget_overrun = session.deadline_exceeded();
    job->evaluation = evaluation;
    job->stage_stats = session.stage_timer().stages();
    job->reconstruction = std::move(reconstruction);
    job->finish_seq = next_finish_seq_++;
    job->finished_at = std::chrono::steady_clock::now();
    bool preempted = false;
    if (status.ok()) {
      job->state = JobState::kDone;
      ++totals_.done;
    } else if (status.code() == StatusCode::kCancelled) {
      job->state = JobState::kCancelled;
      ++totals_.cancelled;
      preempted = true;
    } else if (status.code() == StatusCode::kDeadlineExceeded &&
               job->cancel.reason() == util::CancelReason::kDeadline) {
      // The *hard* deadline tripped the token mid-run. (A plain
      // kDeadlineExceeded without a tripped token is the soft
      // time_budget_seconds gate refusing a later stage — that run
      // produced and kept nothing extra, but it was not preempted.)
      job->state = JobState::kDeadlineExceeded;
      ++totals_.deadline_exceeded;
      preempted = true;
    } else {
      job->state = JobState::kFailed;
      ++totals_.failed;
    }
    if (job->budget_overrun) ++totals_.budget_overruns;
    if (preempted) {
      ++totals_.preempted;
      if (job->cancelled_at.has_value() &&
          job->state == JobState::kCancelled) {
        job->cancel_latency_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - *job->cancelled_at)
                .count();
        ++totals_.cancel_latency_count;
        totals_.cancel_latency_total_seconds += job->cancel_latency_seconds;
        totals_.cancel_latency_max_seconds =
            std::max(totals_.cancel_latency_max_seconds,
                     job->cancel_latency_seconds);
      }
    }
  }
  job_done_.notify_all();
}

JobSnapshot Service::SnapshotLocked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.method = job.request.method;
  snapshot.target_dataset = job.request.target_dataset;
  snapshot.priority = job.request.priority;
  snapshot.client_id = job.request.client_id;
  snapshot.status = job.status;
  snapshot.budget_overrun = job.budget_overrun;
  snapshot.finish_seq = job.finish_seq;
  snapshot.cancel_latency_seconds = job.cancel_latency_seconds;
  snapshot.evaluation = job.evaluation;
  snapshot.stage_stats = job.stage_stats;
  snapshot.reconstruction = job.reconstruction;
  return snapshot;
}

StatusOr<JobSnapshot> Service::Poll(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // TTL semantics before lookup: polling a job whose record just aged
  // out must already be kNotFound (same for Wait/Cancel/Forget below).
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return SnapshotLocked(*it->second);
}

StatusOr<JobSnapshot> Service::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  job_done_.wait(lock, [&job] {
    return job->state != JobState::kQueued &&
           job->state != JobState::kRunning;
  });
  return SnapshotLocked(*job);
}

Status Service::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      // The worker that eventually pops this job sees a non-queued state
      // and returns immediately.
      job.state = JobState::kCancelled;
      job.status = Status::Cancelled("job cancelled while queued");
      job.finish_seq = next_finish_seq_++;
      job.finished_at = std::chrono::steady_clock::now();
      ++totals_.cancelled;
      job_done_.notify_all();
      return Status::Ok();
    case JobState::kRunning:
      // Timestamp first so the measured latency can only over-count the
      // cancel-to-stop interval, never under-count it.
      job.cancelled_at = std::chrono::steady_clock::now();
      job.cancel.Cancel();
      return Status::Ok();
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
    case JobState::kDeadlineExceeded:
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " is already " +
          JobStateName(job.state));
  }
  return Status::Internal("unreachable");
}

Status Service::Forget(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The Forget-vs-TTL race resolves here: a job the TTL already retired
  // (or retires in this very sweep) is kNotFound, exactly like a second
  // Forget — never a crash, never a silent success.
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return Status::FailedPrecondition(
        "job " + std::to_string(id) + " is still " +
        JobStateName(job.state) + "; Cancel/Wait before Forget");
  }
  jobs_.erase(it);
  return Status::Ok();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = totals_;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) {
      ++stats.queued;
      switch (job->request.priority) {
        case Priority::kInteractive:
          ++stats.queued_interactive;
          break;
        case Priority::kNormal:
          ++stats.queued_normal;
          break;
        case Priority::kBatch:
          ++stats.queued_batch;
          break;
      }
    }
    if (job->state == JobState::kRunning) ++stats.running;
  }
  return stats;
}

}  // namespace marioh::api
