#include "api/service.hpp"

#include <utility>

#include "api/registry.hpp"

namespace marioh::api {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

Service::Service(std::shared_ptr<DatasetCache> cache,
                 ServiceOptions options)
    : cache_(std::move(cache)), options_(options) {
  MARIOH_CHECK(cache_ != nullptr);
  pool_ = std::make_unique<util::WorkerPool>(options_.num_workers);
}

Service::~Service() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->status = Status::Cancelled("service shut down before the job "
                                        "started");
        ++totals_.cancelled;
      }
      // Running jobs get a best-effort stop at their next stage boundary.
      job->cancel_requested.store(true);
    }
  }
  job_done_.notify_all();
  pool_->Shutdown();
}

StatusOr<std::shared_ptr<Service::Job>> Service::Admit(
    const ReconstructRequest& request) {
  StatusOr<MethodInfo> info = MethodRegistry::Global().Info(request.method);
  if (!info.ok()) return info.status();

  for (const auto& [key, value] : request.overrides) {
    if (key == "method" || key == "seed" || key == "time_budget_seconds") {
      return Status::InvalidArgument(
          "override key '" + key +
          "' is reserved; set the typed ReconstructRequest field instead");
    }
  }

  auto job = std::make_shared<Job>();
  job->request = request;

  if (request.target_dataset.empty()) {
    return Status::InvalidArgument("request names no target_dataset");
  }
  StatusOr<DatasetHandle> target = cache_->Get(request.target_dataset);
  if (!target.ok()) return target.status();
  if (!target->has_graph()) {
    return Status::FailedPrecondition(
        "dataset '" + request.target_dataset +
        "' holds no projected graph to reconstruct from");
  }
  job->target = std::move(target).value();

  if (!request.train_dataset.empty()) {
    StatusOr<DatasetHandle> train = cache_->Get(request.train_dataset);
    if (!train.ok()) return train.status();
    if (!train->has_hypergraph() || !train->has_graph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.train_dataset +
          "' is not a source pair (needs a hypergraph and its "
          "projection)");
    }
    job->train = std::move(train).value();
  } else if (info->supervised) {
    return Status::FailedPrecondition(
        "method '" + request.method +
        "' is supervised and needs a train_dataset");
  }

  if (!request.ground_truth_dataset.empty()) {
    StatusOr<DatasetHandle> truth =
        cache_->Get(request.ground_truth_dataset);
    if (!truth.ok()) return truth.status();
    if (!truth->has_hypergraph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.ground_truth_dataset +
          "' holds no hypergraph to evaluate against");
    }
    job->ground_truth = std::move(truth).value();
  }

  return job;
}

void Service::Enqueue(const std::shared_ptr<Job>& job) {
  pool_->Submit([this, job] { RunJob(job); });
}

StatusOr<JobId> Service::Submit(const ReconstructRequest& request) {
  StatusOr<std::shared_ptr<Job>> admitted = Admit(request);
  if (!admitted.ok()) return admitted.status();
  std::shared_ptr<Job> job = std::move(admitted).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
    ++totals_.accepted;
  }
  Enqueue(job);
  return job->id;
}

StatusOr<std::vector<JobId>> Service::SubmitBatch(
    const std::vector<ReconstructRequest>& requests) {
  // Validate everything before admitting anything: a batch is atomic.
  std::vector<std::shared_ptr<Job>> admitted;
  admitted.reserve(requests.size());
  for (const ReconstructRequest& request : requests) {
    StatusOr<std::shared_ptr<Job>> job = Admit(request);
    if (!job.ok()) return job.status();
    admitted.push_back(std::move(job).value());
  }
  std::vector<JobId> ids;
  ids.reserve(admitted.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Job>& job : admitted) {
      job->id = next_id_++;
      jobs_.emplace(job->id, job);
      ++totals_.accepted;
      ids.push_back(job->id);
    }
  }
  for (const std::shared_ptr<Job>& job : admitted) Enqueue(job);
  return ids;
}

void Service::RunJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    if (job->cancel_requested.load()) {
      job->state = JobState::kCancelled;
      job->status = Status::Cancelled("job cancelled before it started");
      ++totals_.cancelled;
      job_done_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
  }

  SessionOptions options;
  options.method = job->request.method;
  options.seed = job->request.seed;
  options.time_budget_seconds = job->request.time_budget_seconds;
  options.marioh = options_.marioh;
  // The cancel flag gates every stage entry; mid-stage work completes
  // (the Session stage boundary is the cancellation point).
  options.progress = [job](const std::string&, double) {
    return !job->cancel_requested.load();
  };

  Status status = Status::Ok();
  for (const auto& [key, value] : job->request.overrides) {
    status = ApplySessionOverride(&options, key + "=" + value);
    if (!status.ok()) break;
  }

  Session session;
  std::optional<EvaluationResult> evaluation;
  if (status.ok()) status = session.Configure(std::move(options));
  if (status.ok() && job->train.has_hypergraph()) {
    status = session.Train(job->train);
  }
  if (status.ok()) status = session.Reconstruct(job->target);
  if (status.ok() && job->ground_truth.has_hypergraph()) {
    StatusOr<EvaluationResult> scores =
        session.Evaluate(*job->ground_truth.hypergraph);
    if (scores.ok()) {
      evaluation = *scores;
    } else {
      status = scores.status();
    }
  }

  HypergraphHandle reconstruction;
  if (status.ok()) {
    StatusOr<Hypergraph> result = session.TakeReconstruction();
    if (result.ok()) {
      reconstruction = std::make_shared<const Hypergraph>(
          std::move(result).value());
    } else {
      status = result.status();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->status = status;
    job->deadline_exceeded = session.deadline_exceeded();
    job->evaluation = evaluation;
    job->stage_stats = session.stage_timer().stages();
    job->reconstruction = std::move(reconstruction);
    if (status.ok()) {
      job->state = JobState::kDone;
      ++totals_.done;
    } else if (status.code() == StatusCode::kCancelled) {
      job->state = JobState::kCancelled;
      ++totals_.cancelled;
    } else {
      job->state = JobState::kFailed;
      ++totals_.failed;
    }
    if (job->deadline_exceeded) ++totals_.deadline_exceeded;
  }
  job_done_.notify_all();
}

JobSnapshot Service::SnapshotLocked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.method = job.request.method;
  snapshot.target_dataset = job.request.target_dataset;
  snapshot.status = job.status;
  snapshot.deadline_exceeded = job.deadline_exceeded;
  snapshot.evaluation = job.evaluation;
  snapshot.stage_stats = job.stage_stats;
  snapshot.reconstruction = job.reconstruction;
  return snapshot;
}

StatusOr<JobSnapshot> Service::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return SnapshotLocked(*it->second);
}

StatusOr<JobSnapshot> Service::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  job_done_.wait(lock, [&job] {
    return job->state == JobState::kDone ||
           job->state == JobState::kFailed ||
           job->state == JobState::kCancelled;
  });
  return SnapshotLocked(*job);
}

Status Service::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      // The worker that eventually pops this job sees a non-queued state
      // and returns immediately.
      job.state = JobState::kCancelled;
      job.status = Status::Cancelled("job cancelled while queued");
      ++totals_.cancelled;
      job_done_.notify_all();
      return Status::Ok();
    case JobState::kRunning:
      job.cancel_requested.store(true);
      return Status::Ok();
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " is already " +
          JobStateName(job.state));
  }
  return Status::Internal("unreachable");
}

Status Service::Forget(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return Status::FailedPrecondition(
        "job " + std::to_string(id) + " is still " +
        JobStateName(job.state) + "; Cancel/Wait before Forget");
  }
  jobs_.erase(it);
  return Status::Ok();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = totals_;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) ++stats.queued;
    if (job->state == JobState::kRunning) ++stats.running;
  }
  return stats;
}

}  // namespace marioh::api
