#include "api/service.hpp"

#include <algorithm>
#include <utility>

#include "api/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"
#include "util/parse.hpp"

namespace marioh::api {

namespace {

/// Backoff before the next attempt after `failed_attempts` have failed:
/// exponential with a deterministic jitter (a pure function of job id
/// and attempt — replayed schedules back off identically).
double BackoffSeconds(const RetryPolicy& policy, JobId id,
                      int failed_attempts) {
  double base = std::max(0.0, policy.initial_backoff_seconds);
  for (int i = 1; i < failed_attempts; ++i) {
    base *= policy.backoff_multiplier;
    if (policy.max_backoff_seconds > 0.0 &&
        base >= policy.max_backoff_seconds) {
      break;
    }
  }
  if (policy.max_backoff_seconds > 0.0) {
    base = std::min(base, policy.max_backoff_seconds);
  }
  // splitmix64 of (id, attempt) -> uniform in [0, 1).
  uint64_t x = (id * 0x9E3779B97F4A7C15ULL) ^
               (static_cast<uint64_t>(failed_attempts) + 0x42ULL);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  double unit = static_cast<double>(x >> 11) * 0x1.0p-53;
  return base * (1.0 + std::max(0.0, policy.jitter_fraction) * unit);
}

/// True for a failure worth another attempt: the code is in the
/// request's retryable set and the failure is not a trip — cancellation
/// and hard deadlines are deliberate preemption, never retried.
bool RetryableFailure(const RetryPolicy& policy, const Status& status) {
  if (status.ok()) return false;
  if (status.code() == StatusCode::kCancelled ||
      status.code() == StatusCode::kDeadlineExceeded) {
    return false;
  }
  return policy.Retryable(status.code());
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
    case JobState::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

Service::Service(std::shared_ptr<DatasetCache> cache,
                 ServiceOptions options)
    : cache_(std::move(cache)), options_(options) {
  MARIOH_CHECK(cache_ != nullptr);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  wait_latency_seconds_ =
      registry.GetHistogram("marioh_wait_latency_seconds");
  cancel_latency_seconds_ =
      registry.GetHistogram("marioh_cancel_latency_seconds");
  pool_ = std::make_unique<util::WorkerPool>(options_.num_workers);
  // Recovery happens after the pool exists (re-admitted jobs enqueue
  // into it) and before the maintenance thread starts watching.
  if (!options_.journal_dir.empty()) RecoverFromJournal();
  maintenance_ = std::thread([this] { MaintenanceLoop(); });
  // Last: once the hook is live, any thread's Collect() may call back
  // into stats(), so the service must be fully constructed.
  metrics_hook_ = registry.AddCollectionHook([this] { PublishMetrics(); });
}

void Service::PublishMetrics() const {
  obs::MetricRegistry& r = obs::MetricRegistry::Global();
  // One stats() call = one coherent snapshot under mutex_: the terminal
  // partition (accepted = terminals + queued + running) holds across
  // the published values exactly, which the metrics-endpoint partition
  // assertions (test_net_server, both soaks) rely on.
  ServiceStats s = stats();
  r.GetCounter("marioh_jobs_accepted_total")->Set(s.accepted);
  r.GetGauge("marioh_jobs_queued")->Set(static_cast<double>(s.queued));
  r.GetGauge("marioh_jobs_running")->Set(static_cast<double>(s.running));
  r.GetCounter("marioh_jobs_done_total")->Set(s.done);
  r.GetCounter("marioh_jobs_failed_total")->Set(s.failed);
  r.GetCounter("marioh_jobs_cancelled_total")->Set(s.cancelled);
  r.GetCounter("marioh_jobs_deadline_exceeded_total")
      ->Set(s.deadline_exceeded);
  r.GetCounter("marioh_budget_overruns_total")->Set(s.budget_overruns);
  r.GetCounter("marioh_jobs_preempted_total")->Set(s.preempted);
  r.GetGauge("marioh_queue_depth", "priority=\"interactive\"")
      ->Set(static_cast<double>(s.queued_interactive));
  r.GetGauge("marioh_queue_depth", "priority=\"normal\"")
      ->Set(static_cast<double>(s.queued_normal));
  r.GetGauge("marioh_queue_depth", "priority=\"batch\"")
      ->Set(static_cast<double>(s.queued_batch));
  r.GetCounter("marioh_submits_rejected_total")->Set(s.submits_rejected);
  r.GetCounter("marioh_jobs_retired_total")->Set(s.jobs_retired);
  r.GetCounter("marioh_jobs_retried_total")->Set(s.jobs_retried);
  r.GetCounter("marioh_retries_exhausted_total")->Set(s.retries_exhausted);
  r.GetCounter("marioh_jobs_stalled_total")->Set(s.jobs_stalled);
  r.GetCounter("marioh_loadshed_rejects_total")->Set(s.loadshed_rejects);
  r.GetCounter("marioh_jobs_recovered_total")->Set(s.jobs_recovered);
  r.GetCounter("marioh_faults_injected_total")
      ->Set(util::FailPoints::TotalHits());
  r.GetGauge("marioh_cache_bytes")
      ->Set(static_cast<double>(cache_->total_bytes()));
  r.GetCounter("marioh_cache_evictions_total")->Set(cache_->evictions());
  if (journal_ != nullptr) {
    // Created lazily only when a journal exists, so journal-less
    // processes expose no journal series (and the legacy stats line
    // keeps its journal keys conditional, as before).
    util::JournalStats js = journal_->stats();
    r.GetCounter("marioh_journal_records_total")->Set(js.records_appended);
    r.GetCounter("marioh_journal_fsyncs_total")->Set(js.fsyncs);
    r.GetGauge("marioh_journal_segments")
        ->Set(static_cast<double>(journal_->segment_count()));
    r.GetCounter("marioh_journal_replayed_total")
        ->Set(js.records_replayed);
    r.GetCounter("marioh_journal_torn_tails_total")
        ->Set(js.torn_tails_truncated);
    r.GetCounter("marioh_journal_compacted_total")
        ->Set(js.segments_compacted);
  }
}

void Service::RecoverFromJournal() {
  /// What the journal said about one JobId, folded over its records in
  /// append order.
  struct Replayed {
    std::string request_text;  ///< the serialized accept payload
    bool have_request = false;
    int attempts = 0;   ///< highest attempt number journaled
    bool terminal = false;
  };
  std::map<JobId, Replayed> replayed;
  util::JournalOptions journal_options;
  journal_options.rotate_bytes = options_.journal_rotate_bytes;
  journal_options.fsync = options_.journal_fsync;
  StatusOr<std::unique_ptr<util::Journal>> journal = util::Journal::Open(
      options_.journal_dir,
      [&replayed](const util::JournalRecord& record) {
        Replayed& entry = replayed[record.key];
        if (record.terminal) {
          entry.terminal = true;
          return;
        }
        if (record.payload.rfind("accept ", 0) == 0) {
          entry.request_text = record.payload.substr(7);
          entry.have_request = true;
        } else if (record.payload.rfind("attempt ", 0) == 0) {
          std::optional<int> n =
              util::ParseNonNegativeInt(record.payload.substr(8));
          if (n.has_value()) entry.attempts = std::max(entry.attempts, *n);
        }
        // Unknown record kinds are skipped, not fatal: a newer journal
        // replayed by an older binary loses detail, never the jobs.
      },
      journal_options);
  if (!journal.ok()) {
    startup_status_ = journal.status();
    return;
  }
  journal_ = std::move(journal).value();
  for (const auto& [id, entry] : replayed) {
    // New ids must never collide with journaled ones — terminal or not.
    next_id_ = std::max(next_id_, id + 1);
    if (entry.terminal || !entry.have_request) continue;
    // This job was accepted by a previous life of the service and never
    // finished: re-admit it through the normal lanes under its original
    // identity. Its accept record stays in the old segments (open keys
    // block their compaction), so no re-journaling is needed.
    ReconstructRequest request;
    Status parsed = ParseReconstructRequest(entry.request_text, &request);
    StatusOr<std::shared_ptr<Job>> admitted =
        parsed.ok() ? Admit(request)
                    : StatusOr<std::shared_ptr<Job>>(parsed);
    if (admitted.ok()) {
      std::shared_ptr<Job> job = std::move(admitted).value();
      job->id = id;
      // The interrupted attempt produced nothing, so it is repeated
      // rather than charged: attempts resumes one below the journaled
      // high-water mark.
      job->attempts = std::max(0, entry.attempts - 1);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->admitted_at = std::chrono::steady_clock::now();
        jobs_.emplace(id, job);
        ++totals_.accepted;
        ++totals_.jobs_recovered;
      }
      Enqueue(job);
    } else {
      // Un-re-admittable (dataset gone, drifted record): the job still
      // counts, as a recovered failure under its original id — silently
      // dropping it is exactly what the journal exists to prevent.
      auto job = std::make_shared<Job>();
      job->id = id;
      job->request = request;
      job->state = JobState::kFailed;
      job->status = Status(admitted.status().code(),
                           "recovery could not re-admit the job: " +
                               admitted.status().message());
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->finish_seq = next_finish_seq_++;
        job->finished_at = std::chrono::steady_clock::now();
        jobs_.emplace(id, job);
        ++totals_.accepted;
        ++totals_.failed;
        ++totals_.jobs_recovered;
      }
      // Close the key so the failure is itself durable (best-effort:
      // a failed append just means one more doomed re-admission).
      (void)journal_->Append(id, "terminal FAILED", /*terminal=*/true);
    }
  }
}

Service::~Service() {
  // Hook first, holding no locks: RemoveCollectionHook blocks until any
  // in-flight Collect() finished running hooks, so after this line
  // PublishMetrics can never run against a dying service (and the
  // lock order hook-mutex → mutex_ is never reversed).
  obs::MetricRegistry::Global().RemoveCollectionHook(metrics_hook_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // The maintenance thread goes first: it must not re-enqueue a backoff
  // retry into a pool that is shutting down underneath it.
  maintenance_wake_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Jobs parked in the backoff heap are kQueued in the table below, so
    // the sweep cancels them like any other queued job; the heap entries
    // themselves just die with the service.
    retry_heap_.clear();
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->status = Status::Cancelled("service shut down before the job "
                                        "started");
        job->finish_seq = next_finish_seq_++;
        job->finished_at = std::chrono::steady_clock::now();
        ++totals_.cancelled;
      }
      // Running jobs stop at their next mid-kernel preemption point.
      job->cancel.Cancel();
    }
  }
  job_done_.notify_all();
  pool_->Shutdown();
}

StatusOr<std::shared_ptr<Service::Job>> Service::Admit(
    const ReconstructRequest& request) {
  StatusOr<MethodInfo> info = MethodRegistry::Global().Info(request.method);
  if (!info.ok()) return info.status();

  for (const auto& [key, value] : request.overrides) {
    if (key == "method" || key == "seed" || key == "time_budget_seconds") {
      return Status::InvalidArgument(
          "override key '" + key +
          "' is reserved; set the typed ReconstructRequest field instead");
    }
  }

  auto job = std::make_shared<Job>();
  job->request = request;

  if (request.target_dataset.empty()) {
    return Status::InvalidArgument("request names no target_dataset");
  }
  StatusOr<DatasetHandle> target = cache_->Get(request.target_dataset);
  if (!target.ok()) return target.status();
  if (!target->has_graph()) {
    return Status::FailedPrecondition(
        "dataset '" + request.target_dataset +
        "' holds no projected graph to reconstruct from");
  }
  job->target = std::move(target).value();

  if (!request.train_dataset.empty()) {
    StatusOr<DatasetHandle> train = cache_->Get(request.train_dataset);
    if (!train.ok()) return train.status();
    if (!train->has_hypergraph() || !train->has_graph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.train_dataset +
          "' is not a source pair (needs a hypergraph and its "
          "projection)");
    }
    job->train = std::move(train).value();
  } else if (info->supervised) {
    return Status::FailedPrecondition(
        "method '" + request.method +
        "' is supervised and needs a train_dataset");
  }

  if (!request.ground_truth_dataset.empty()) {
    StatusOr<DatasetHandle> truth =
        cache_->Get(request.ground_truth_dataset);
    if (!truth.ok()) return truth.status();
    if (!truth->has_hypergraph()) {
      return Status::FailedPrecondition(
          "dataset '" + request.ground_truth_dataset +
          "' holds no hypergraph to evaluate against");
    }
    job->ground_truth = std::move(truth).value();
  }

  return job;
}

void Service::Enqueue(const std::shared_ptr<Job>& job) {
  util::TaskOptions scheduling;
  scheduling.priority = static_cast<int>(job->request.priority);
  scheduling.client = job->request.client_id;
  pool_->Submit([this, job] { RunJob(job); }, std::move(scheduling));
}

size_t Service::RetireExpiredLocked() {
  if (options_.job_ttl_seconds < 0.0) return 0;
  const auto now = std::chrono::steady_clock::now();
  size_t retired = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    const Job& job = *it->second;
    bool terminal = job.state != JobState::kQueued &&
                    job.state != JobState::kRunning;
    if (terminal && job.finished_at.has_value() &&
        std::chrono::duration<double>(now - *job.finished_at).count() >
            options_.job_ttl_seconds) {
      it = jobs_.erase(it);
      ++retired;
    } else {
      ++it;
    }
  }
  totals_.jobs_retired += retired;
  return retired;
}

size_t Service::RetireExpired() {
  std::lock_guard<std::mutex> lock(mutex_);
  return RetireExpiredLocked();
}

Status Service::AdmitCapacityLocked(const std::string& client,
                                    Priority priority, size_t extra_queued,
                                    size_t extra_same_client) {
  size_t queued = extra_queued;
  size_t inflight_client = extra_same_client;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) ++queued;
    if ((job->state == JobState::kQueued ||
         job->state == JobState::kRunning) &&
        job->request.client_id == client) {
      ++inflight_client;
    }
  }
  if (options_.shed_batch_above_queued > 0 &&
      priority == Priority::kBatch &&
      queued >= options_.shed_batch_above_queued) {
    // Overload: shed bulk work before it buries the queue. Softer than
    // the hard cap below (which turns *everyone* away), and counted
    // separately so operators can tell pressure from misconfiguration.
    ++totals_.submits_rejected;
    ++totals_.loadshed_rejects;
    return Status::ResourceExhausted(
        "load shedding: batch admissions suspended while " +
        std::to_string(queued) + " jobs are queued (threshold " +
        std::to_string(options_.shed_batch_above_queued) +
        "); retry later or raise the priority");
  }
  if (options_.max_queued_jobs > 0 && queued >= options_.max_queued_jobs) {
    ++totals_.submits_rejected;
    return Status::ResourceExhausted(
        "queue is full (" + std::to_string(queued) + " of " +
        std::to_string(options_.max_queued_jobs) +
        " queued jobs); retry after jobs drain");
  }
  if (options_.max_inflight_per_client > 0 &&
      inflight_client >= options_.max_inflight_per_client) {
    ++totals_.submits_rejected;
    return Status::ResourceExhausted(
        "client '" + client + "' has " + std::to_string(inflight_client) +
        " of " + std::to_string(options_.max_inflight_per_client) +
        " in-flight jobs; wait for one to finish");
  }
  return Status::Ok();
}

StatusOr<JobId> Service::Submit(const ReconstructRequest& request) {
  StatusOr<std::shared_ptr<Job>> admitted = Admit(request);
  if (!admitted.ok()) return admitted.status();
  std::shared_ptr<Job> job = std::move(admitted).value();
  // Serialize outside the lock; both steps are no-ops when the journal
  // is disabled (no validation, no allocation, no syscalls).
  std::string wire;
  if (journal_ != nullptr) {
    MARIOH_RETURN_IF_ERROR(ValidateRequestSerializable(request));
    wire = SerializeReconstructRequest(request);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RetireExpiredLocked();
    MARIOH_RETURN_IF_ERROR(
        AdmitCapacityLocked(request.client_id, request.priority, 0, 0));
    if (journal_ != nullptr) {
      // Write-ahead: the accept record is on stable storage before the
      // job exists anywhere else. If the append fails, the submit fails
      // — an accepted-but-unjournaled job would be exactly the silent
      // loss this layer exists to prevent. The unused id is safely
      // reused by the next submit.
      MARIOH_RETURN_IF_ERROR(
          journal_->Append(next_id_, "accept " + wire, /*terminal=*/false));
    }
    job->id = next_id_++;
    job->admitted_at = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
    ++totals_.accepted;
  }
  Enqueue(job);
  return job->id;
}

StatusOr<std::vector<JobId>> Service::SubmitBatch(
    const std::vector<ReconstructRequest>& requests) {
  // Validate everything before admitting anything: a batch is atomic.
  std::vector<std::shared_ptr<Job>> admitted;
  admitted.reserve(requests.size());
  for (const ReconstructRequest& request : requests) {
    StatusOr<std::shared_ptr<Job>> job = Admit(request);
    if (!job.ok()) return job.status();
    admitted.push_back(std::move(job).value());
  }
  std::vector<std::string> wires;
  if (journal_ != nullptr) {
    wires.reserve(requests.size());
    for (const ReconstructRequest& request : requests) {
      MARIOH_RETURN_IF_ERROR(ValidateRequestSerializable(request));
      wires.push_back(SerializeReconstructRequest(request));
    }
  }
  std::vector<JobId> ids;
  ids.reserve(admitted.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RetireExpiredLocked();
    // Capacity is checked for the batch as a whole before anything is
    // inserted, counting the earlier batch members as already queued —
    // atomicity means a batch that would only half-fit is rejected
    // entirely.
    for (size_t i = 0; i < admitted.size(); ++i) {
      size_t same_client = 0;
      for (size_t j = 0; j < i; ++j) {
        if (admitted[j]->request.client_id ==
            admitted[i]->request.client_id) {
          ++same_client;
        }
      }
      MARIOH_RETURN_IF_ERROR(AdmitCapacityLocked(
          admitted[i]->request.client_id, admitted[i]->request.priority, i,
          same_client));
    }
    if (journal_ != nullptr) {
      for (size_t i = 0; i < wires.size(); ++i) {
        Status logged = journal_->Append(
            next_id_ + i, "accept " + wires[i], /*terminal=*/false);
        if (!logged.ok()) {
          // Batch atomicity extends to the journal: close the accepts
          // already written so a crash cannot resurrect half a batch
          // the caller was told failed (best-effort — if these appends
          // fail too, recovery re-admits jobs whose datasets were
          // pinned at this submit, which at-least-once semantics
          // tolerate).
          for (size_t j = 0; j < i; ++j) {
            (void)journal_->Append(next_id_ + j, "terminal CANCELLED",
                                   /*terminal=*/true);
          }
          return logged;
        }
      }
    }
    for (const std::shared_ptr<Job>& job : admitted) {
      job->id = next_id_++;
      job->admitted_at = std::chrono::steady_clock::now();
      jobs_.emplace(job->id, job);
      ++totals_.accepted;
      ids.push_back(job->id);
    }
  }
  for (const std::shared_ptr<Job>& job : admitted) Enqueue(job);
  return ids;
}

void Service::RunJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    if (job->cancel.cancelled()) {
      job->state = JobState::kCancelled;
      job->status = Status::Cancelled("job cancelled before it started");
      job->finish_seq = next_finish_seq_++;
      job->finished_at = std::chrono::steady_clock::now();
      ++totals_.cancelled;
      if (journal_ != nullptr && !stopping_) {
        (void)journal_->Append(job->id, "terminal CANCELLED",
                               /*terminal=*/true);
      }
      job_done_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
    if (job->admitted_at.has_value()) {
      // Queue wait for this attempt: admission (or retry scheduling) to
      // the moment a worker picked the job up.
      wait_latency_seconds_->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        *job->admitted_at)
              .count());
    }
    ++job->attempts;
    if (journal_ != nullptr) {
      // Best-effort attempt marker: losing it costs nothing but a
      // repeated attempt number after a crash.
      (void)journal_->Append(job->id,
                             "attempt " + std::to_string(job->attempts),
                             /*terminal=*/false);
    }
    // Arm the watchdog's stall clock for this attempt: progress is
    // "the heartbeat advanced since last sampled", starting now.
    job->last_heartbeat = job->cancel.heartbeat();
    job->last_progress = std::chrono::steady_clock::now();
  }
  // A sleeping maintenance thread starts its stall scans once something
  // is running.
  if (options_.stall_timeout_seconds >= 0.0) maintenance_wake_.notify_all();
  // The hard deadline covers *run* time, so arm it only now that the job
  // holds a worker — a job stuck behind a long queue keeps its full
  // allowance. Re-armed per attempt: every retry gets the full
  // allowance, like a fresh run would.
  if (job->request.deadline_seconds >= 0.0) {
    job->cancel.SetDeadline(job->request.deadline_seconds);
  }

  SessionOptions options;
  options.method = job->request.method;
  options.seed = job->request.seed;
  options.time_budget_seconds = job->request.time_budget_seconds;
  options.marioh = options_.marioh;
  if (job->request.kernel_threads > 0) {
    // Per-job thread budget: this job's ParallelFor fan-out width
    // (results are thread-count invariant; only its CPU share changes).
    options.marioh.num_threads = job->request.kernel_threads;
  }
  // The token gates every stage entry *and* rides into the MARIOH-family
  // kernels, so Cancel/deadline trips land mid-kernel; baselines still
  // stop at their next stage boundary.
  options.cancel = &job->cancel;

  Status status = Status::Ok();
  for (const auto& [key, value] : job->request.overrides) {
    status = ApplySessionOverride(&options, key + "=" + value);
    if (!status.ok()) break;
  }

  Session session;
  std::optional<EvaluationResult> evaluation;
  HypergraphHandle reconstruction;
  {
    // Root span of this attempt: the session's per-stage spans open
    // inside this scope, so they link to it as children.
    obs::TraceSpan job_span(
        "job", job->request.method + " job=" + std::to_string(job->id) +
                   " attempt=" + std::to_string(job->attempts));
    if (status.ok()) status = session.Configure(std::move(options));
    if (status.ok() && job->train.has_hypergraph()) {
      status = session.Train(job->train);
    }
    if (status.ok()) status = session.Reconstruct(job->target);
    if (status.ok() && job->ground_truth.has_hypergraph()) {
      StatusOr<EvaluationResult> scores =
          session.Evaluate(*job->ground_truth.hypergraph);
      if (scores.ok()) {
        evaluation = *scores;
      } else {
        status = scores.status();
      }
    }

    if (status.ok()) {
      StatusOr<Hypergraph> result = session.TakeReconstruction();
      if (result.ok()) {
        reconstruction = std::make_shared<const Hypergraph>(
            std::move(result).value());
      } else {
        status = result.status();
      }
    }
  }

  bool scheduled_retry = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Transient failure with attempts left and no cancel requested:
    // back off, then re-queue through the normal fair-share lanes. The
    // job keeps its id and returns to kQueued — not a terminal
    // transition, so no finish_seq and Wait() keeps blocking; the stats
    // partition flows through the `queued` gauge unbroken.
    if (RetryableFailure(job->request.retry, status) &&
        !job->cancel.cancelled() && !stopping_) {
      if (job->attempts < std::max(1, job->request.retry.max_attempts)) {
        job->state = JobState::kQueued;
        job->status = Status::Ok();
        // Re-arm the wait clock: the next kRunning transition samples
        // backoff + queue time for this retry, not time since the
        // original admission.
        job->admitted_at = std::chrono::steady_clock::now();
        ++totals_.jobs_retried;
        double backoff =
            BackoffSeconds(job->request.retry, job->id, job->attempts);
        auto due = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(backoff));
        retry_heap_.emplace_back(due, job);
        std::push_heap(retry_heap_.begin(), retry_heap_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
        scheduled_retry = true;
      } else {
        // Out of attempts: the last transient status becomes terminal.
        ++totals_.retries_exhausted;
      }
    }
    if (!scheduled_retry) {
      job->status = status;
      job->budget_overrun = session.deadline_exceeded();
      job->evaluation = evaluation;
      job->stage_stats = session.stage_timer().stages();
      job->reconstruction = std::move(reconstruction);
      job->finish_seq = next_finish_seq_++;
      job->finished_at = std::chrono::steady_clock::now();
      bool preempted = false;
      if (status.ok()) {
        job->state = JobState::kDone;
        ++totals_.done;
      } else if (status.code() == StatusCode::kCancelled) {
        job->state = JobState::kCancelled;
        ++totals_.cancelled;
        preempted = true;
      } else if (status.code() == StatusCode::kDeadlineExceeded &&
                 job->cancel.reason() == util::CancelReason::kDeadline) {
        // The *hard* deadline tripped the token mid-run. (A plain
        // kDeadlineExceeded without a tripped token is the soft
        // time_budget_seconds gate refusing a later stage — that run
        // produced and kept nothing extra, but it was not preempted.)
        job->state = JobState::kDeadlineExceeded;
        ++totals_.deadline_exceeded;
        preempted = true;
      } else {
        job->state = JobState::kFailed;
        ++totals_.failed;
      }
      if (job->stalled && job->state == JobState::kCancelled) {
        // A watchdog cancel, not a user one: say so. (If the job beat
        // the cancel to the finish line it stays kDone — best effort.)
        job->status = Status::Cancelled(
            "job stalled: watchdog observed no heartbeat for " +
            std::to_string(options_.stall_timeout_seconds) +
            "s and cancelled it");
      }
      if (job->budget_overrun) ++totals_.budget_overruns;
      if (preempted) {
        ++totals_.preempted;
        if (job->cancelled_at.has_value() &&
            job->state == JobState::kCancelled) {
          job->cancel_latency_seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - *job->cancelled_at)
                  .count();
          ++totals_.cancel_latency_count;
          totals_.cancel_latency_total_seconds +=
              job->cancel_latency_seconds;
          totals_.cancel_latency_max_seconds =
              std::max(totals_.cancel_latency_max_seconds,
                       job->cancel_latency_seconds);
          // Same sample, distribution form: count/sum/max of the
          // histogram match the legacy totals by construction.
          cancel_latency_seconds_->Observe(job->cancel_latency_seconds);
        }
      }
      // Close the job's journal key — except when shutdown preempted
      // it: a job the *service's death* cancelled is exactly the kind
      // the journal must keep open, so the next life re-admits it.
      bool shutdown_preempted =
          stopping_ && job->state == JobState::kCancelled;
      if (journal_ != nullptr && !shutdown_preempted) {
        (void)journal_->Append(
            job->id, std::string("terminal ") + JobStateName(job->state),
            /*terminal=*/true);
      }
    }
  }
  if (scheduled_retry) {
    // Wake the maintenance thread so it can (re)compute its next due
    // time; Wait()ers have nothing to see yet.
    maintenance_wake_.notify_all();
  } else {
    job_done_.notify_all();
  }
}

void Service::WatchdogTickLocked(
    std::chrono::steady_clock::time_point now) {
  for (auto& [id, job] : jobs_) {
    if (job->state != JobState::kRunning || job->stalled) continue;
    uint64_t heartbeat = job->cancel.heartbeat();
    if (heartbeat != job->last_heartbeat) {
      job->last_heartbeat = heartbeat;
      job->last_progress = now;
      continue;
    }
    double silent_seconds =
        std::chrono::duration<double>(now - job->last_progress).count();
    if (silent_seconds > options_.stall_timeout_seconds) {
      // Wedged (or at least not reaching any poll site): cancel through
      // the normal preemption path. The terminal transition in RunJob
      // rewrites the status to say "stalled" and samples the
      // detection-to-stop latency via cancelled_at.
      job->stalled = true;
      ++totals_.jobs_stalled;
      job->cancelled_at = now;
      job->cancel.Cancel();
    }
  }
}

void Service::MaintenanceLoop() {
  using std::chrono::steady_clock;
  const bool watchdog = options_.stall_timeout_seconds >= 0.0;
  // Scan period: fine enough that detection latency is dominated by the
  // stall timeout itself, coarse enough to stay invisible in profiles.
  const auto period = std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(
          watchdog
              ? std::clamp(options_.stall_timeout_seconds / 4.0, 0.010,
                           0.250)
              : 0.250));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    bool anything_running = false;
    if (watchdog) {
      for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          anything_running = true;
          break;
        }
      }
    }
    if (retry_heap_.empty() && !anything_running) {
      // Nothing to pace: sleep until a retry is scheduled, a job starts
      // running (with the watchdog on), or shutdown.
      maintenance_wake_.wait(lock);
    } else {
      steady_clock::time_point wake = steady_clock::now() + period;
      if (!retry_heap_.empty()) {
        wake = std::min(wake, retry_heap_.front().first);
      }
      maintenance_wake_.wait_until(lock, wake);
    }
    if (stopping_) break;
    const steady_clock::time_point now = steady_clock::now();
    std::vector<std::shared_ptr<Job>> due;
    while (!retry_heap_.empty() && retry_heap_.front().first <= now) {
      std::pop_heap(retry_heap_.begin(), retry_heap_.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
      due.push_back(std::move(retry_heap_.back().second));
      retry_heap_.pop_back();
    }
    if (watchdog) WatchdogTickLocked(now);
    if (!due.empty()) {
      // Enqueue outside the lock: the pool takes its own mutex. A job
      // cancelled during its backoff still enqueues harmlessly — RunJob
      // sees the non-queued state and returns.
      lock.unlock();
      for (const std::shared_ptr<Job>& job : due) Enqueue(job);
      lock.lock();
    }
  }
}

JobSnapshot Service::SnapshotLocked(const Job& job) const {
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.state = job.state;
  snapshot.method = job.request.method;
  snapshot.target_dataset = job.request.target_dataset;
  snapshot.priority = job.request.priority;
  snapshot.client_id = job.request.client_id;
  snapshot.status = job.status;
  snapshot.budget_overrun = job.budget_overrun;
  snapshot.finish_seq = job.finish_seq;
  snapshot.cancel_latency_seconds = job.cancel_latency_seconds;
  snapshot.attempts = job.attempts;
  snapshot.evaluation = job.evaluation;
  snapshot.stage_stats = job.stage_stats;
  snapshot.reconstruction = job.reconstruction;
  return snapshot;
}

StatusOr<JobSnapshot> Service::Poll(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // TTL semantics before lookup: polling a job whose record just aged
  // out must already be kNotFound (same for Wait/Cancel/Forget below).
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return SnapshotLocked(*it->second);
}

StatusOr<JobSnapshot> Service::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  job_done_.wait(lock, [&job] {
    return job->state != JobState::kQueued &&
           job->state != JobState::kRunning;
  });
  return SnapshotLocked(*job);
}

Status Service::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      // The worker that eventually pops this job sees a non-queued state
      // and returns immediately.
      job.state = JobState::kCancelled;
      job.status = Status::Cancelled("job cancelled while queued");
      job.finish_seq = next_finish_seq_++;
      job.finished_at = std::chrono::steady_clock::now();
      ++totals_.cancelled;
      if (journal_ != nullptr) {
        // An *explicit* cancel is terminal and durable — unlike the
        // shutdown sweep, which leaves jobs open for the next life.
        (void)journal_->Append(id, "terminal CANCELLED",
                               /*terminal=*/true);
      }
      job_done_.notify_all();
      return Status::Ok();
    case JobState::kRunning:
      // Timestamp first so the measured latency can only over-count the
      // cancel-to-stop interval, never under-count it.
      job.cancelled_at = std::chrono::steady_clock::now();
      job.cancel.Cancel();
      return Status::Ok();
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
    case JobState::kDeadlineExceeded:
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " is already " +
          JobStateName(job.state));
  }
  return Status::Internal("unreachable");
}

Status Service::Forget(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The Forget-vs-TTL race resolves here: a job the TTL already retired
  // (or retires in this very sweep) is kNotFound, exactly like a second
  // Forget — never a crash, never a silent success.
  RetireExpiredLocked();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return Status::FailedPrecondition(
        "job " + std::to_string(id) + " is still " +
        JobStateName(job.state) + "; Cancel/Wait before Forget");
  }
  jobs_.erase(it);
  return Status::Ok();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = totals_;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) {
      ++stats.queued;
      switch (job->request.priority) {
        case Priority::kInteractive:
          ++stats.queued_interactive;
          break;
        case Priority::kNormal:
          ++stats.queued_normal;
          break;
        case Priority::kBatch:
          ++stats.queued_batch;
          break;
      }
    }
    if (job->state == JobState::kRunning) ++stats.running;
  }
  return stats;
}

}  // namespace marioh::api
