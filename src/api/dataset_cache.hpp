/// \file dataset_cache.hpp
/// \brief Named, immutable, load-once dataset handles: the layer that lets
/// N concurrent sessions (or service jobs) share one in-memory copy of a
/// dataset instead of re-reading files per run.
///
/// A `DatasetCache` maps names to immutable datasets held through
/// `std::shared_ptr<const T>` handles. Loading is load-once: re-loading an
/// already-resident name from the same path returns the existing handle
/// without touching the file system. Handles keep their data alive
/// independently of the cache — evicting a name never invalidates a
/// handle a running session still holds — and because the pointees are
/// `const`, sharing one dataset across any number of threads is safe by
/// construction.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/status.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::api {

/// Shared read-only handle to a hypergraph.
using HypergraphHandle = std::shared_ptr<const Hypergraph>;

/// Shared read-only handle to a projected graph.
using GraphHandle = std::shared_ptr<const ProjectedGraph>;

/// One named dataset: a hypergraph, a projected graph, or both (a
/// hypergraph loaded for training carries its projection so sessions
/// never re-project). Either pointer may be null, never both.
struct DatasetHandle {
  std::string name;
  HypergraphHandle hypergraph;
  GraphHandle graph;

  bool has_hypergraph() const { return hypergraph != nullptr; }
  bool has_graph() const { return graph != nullptr; }
};

/// Thread-safe name → immutable dataset map. Normally one cache is shared
/// by every consumer of a process (the `api::Service` takes one at
/// construction; `Session` uses one through `SessionOptions::cache`), but
/// the class is instantiable so tests can build isolated fixtures.
///
/// **Resource governance.** The cache tracks an approximate byte
/// footprint per entry (`Hypergraph::ApproxBytes` +
/// `ProjectedGraph::ApproxBytes`, measured once at insert). When a
/// `max_bytes` budget is configured, every insert that pushes the total
/// over budget evicts least-recently-used entries until the cache fits —
/// but only entries whose handles are held by nobody else: an entry some
/// session, job, or caller still pins through a `shared_ptr` is never
/// evicted (evicting it would free no memory, only lose the name), so the
/// cache can sit temporarily over budget while everything resident is
/// pinned. Eviction drops the *name*; handles already given out stay
/// valid regardless (shared ownership), exactly like an explicit
/// `Erase`.
class DatasetCache {
 public:
  /// `max_bytes` of 0 means unlimited (no eviction, bytes still
  /// accounted).
  explicit DatasetCache(size_t max_bytes = 0) : max_bytes_(max_bytes) {}
  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  /// Reads a hypergraph file, projects it, and stores both under `name`.
  /// Load-once: if `name` is already resident *from the same path*, the
  /// existing handle is returned and the file is not re-read.
  /// kAlreadyExists if the name is taken by a different path or an
  /// in-memory insert; kNotFound / kInvalidArgument from the reader.
  StatusOr<DatasetHandle> LoadHypergraphFile(const std::string& name,
                                             const std::string& path);

  /// Reads a weighted edge list and stores it under `name` as a
  /// graph-only dataset. Same load-once and error contract as
  /// LoadHypergraphFile.
  StatusOr<DatasetHandle> LoadProjectedGraphFile(const std::string& name,
                                                 const std::string& path);

  /// Stores already-built handles under `name` (zero-copy: the cache
  /// shares ownership with the caller). At least one of
  /// `hypergraph`/`graph` must be non-null. kAlreadyExists if the name is
  /// taken, kInvalidArgument if both handles are null or the name is
  /// empty.
  StatusOr<DatasetHandle> Insert(const std::string& name,
                                 HypergraphHandle hypergraph,
                                 GraphHandle graph);

  /// Moves a hypergraph into the cache under `name`, projecting it so the
  /// handle is immediately trainable. kAlreadyExists if the name is taken.
  StatusOr<DatasetHandle> InsertHypergraph(const std::string& name,
                                           Hypergraph hypergraph);

  /// Moves a projected graph into the cache under `name` (graph-only
  /// dataset). kAlreadyExists if the name is taken.
  StatusOr<DatasetHandle> InsertProjectedGraph(const std::string& name,
                                               ProjectedGraph graph);

  /// The dataset stored under `name`, or kNotFound listing the resident
  /// names.
  StatusOr<DatasetHandle> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Drops `name` from the cache. Handles already given out stay valid
  /// (shared ownership). kNotFound if the name is not resident.
  Status Erase(const std::string& name);

  /// Resident dataset names, sorted.
  std::vector<std::string> Names() const;

  /// Number of resident datasets.
  size_t size() const;

  /// Approximate bytes held by resident entries (pinned-elsewhere data
  /// that was evicted no longer counts — the cache no longer owns it).
  size_t total_bytes() const;

  /// Entries evicted by the byte budget since construction (explicit
  /// `Erase` calls do not count).
  uint64_t evictions() const;

  /// The configured byte budget (0 = unlimited).
  size_t max_bytes() const;

  /// Re-configures the byte budget and immediately runs an eviction pass
  /// under the new value.
  void set_max_bytes(size_t max_bytes);

  // --- Persistence: the dataset manifest -------------------------------
  //
  // A journal-recovered job is only as good as its datasets: the service
  // can re-admit the request, but the handles must resolve again. The
  // manifest is a small text file recording *how each dataset got here* —
  // `hypergraph <name> <path>` / `graph <name> <path>` for file loads and
  // `gen <basename> <profile> <seed>` for generated triples — rewritten
  // atomically (temp file + rename) on every change, and replayed before
  // re-admission at startup. In-memory inserts with no recipe are not
  // restorable and are deliberately absent.

  /// One manifest line.
  struct ManifestEntry {
    std::string kind;  ///< "hypergraph", "graph", or "gen"
    std::string name;  ///< dataset name; the basename for "gen"
    std::string path;  ///< source path; the profile name for "gen"
    uint64_t seed = 0;  ///< "gen" only
  };

  /// Re-creates one generated triple (`gen <basename> <profile> <seed>`)
  /// during RestoreFromManifest — the cache cannot depend on the
  /// generator (it lives in eval/), so the caller supplies it.
  using GenResolver = std::function<Status(
      const std::string& basename, const std::string& profile,
      uint64_t seed)>;

  /// Starts maintaining a manifest at `path`: the current restorable
  /// state is written now, and every future load / RecordGenerated /
  /// Erase rewrites it (atomically). Errors are the write failing.
  Status EnableManifest(const std::string& path);

  /// Records that `basename`.train/.target/.truth were produced by
  /// generator `profile` under `seed`, so a manifest restore can
  /// re-create them. Called by the front ends' `gen` verb.
  void RecordGenerated(const std::string& basename,
                       const std::string& profile, uint64_t seed);

  /// Parses a manifest file. A missing file is an empty manifest (a
  /// fresh journal dir), not an error; a malformed line is.
  static StatusOr<std::vector<ManifestEntry>> ReadManifest(
      const std::string& path);

  /// Replays a manifest into this cache: file entries re-load through
  /// LoadHypergraphFile/LoadProjectedGraphFile, gen entries go through
  /// `gen` (pass null to fail them). Keeps going past individual
  /// failures — every restorable dataset is restored — and returns OK
  /// only if all entries succeeded (otherwise kUnavailable listing what
  /// failed, so the operator knows which recovered jobs are doomed).
  Status RestoreFromManifest(const std::string& path,
                             const GenResolver& gen);

 private:
  struct Entry {
    DatasetHandle dataset;
    std::string path;  ///< source file; empty for in-memory inserts
    size_t bytes = 0;  ///< ApproxBytes at insert time
    /// LRU stamp (monotone access counter). Mutable because the read
    /// path (`Get`) must refresh recency through a const cache.
    mutable uint64_t last_used = 0;
  };

  /// Comma-separated resident names for kNotFound messages. Requires
  /// `mutex_` held.
  std::string NamesForErrorLocked() const;

  /// The kAlreadyExists status for a name held by `entry`.
  Status ConflictLocked(const Entry& entry, const std::string& name) const;

  StatusOr<DatasetHandle> InsertLocked(const std::string& name,
                                       DatasetHandle dataset,
                                       const std::string& path);

  /// Stamps `entry` as just-used. Requires `mutex_` held.
  void TouchLocked(const Entry& entry) const;

  /// Evicts LRU unpinned entries (skipping `keep`) until the budget
  /// fits or nothing evictable remains. Requires `mutex_` held.
  void EvictLocked(const std::string& keep);

  /// Records a file-backed dataset in the manifest bookkeeping and
  /// rewrites the manifest if enabled. Requires `mutex_` held.
  void RecordFileLocked(const std::string& kind, const std::string& name,
                        const std::string& path);
  /// Atomically rewrites the manifest file from the bookkeeping maps
  /// (no-op while no manifest is enabled). Requires `mutex_` held.
  Status WriteManifestLocked();

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  size_t max_bytes_ = 0;
  size_t total_bytes_ = 0;
  uint64_t evictions_ = 0;
  /// Manifest state: the file being maintained (empty = disabled) and
  /// the restorable recipes — name → (kind, path) for file loads,
  /// basename → (profile, seed) for generated triples. Kept separately
  /// from `entries_` so eviction under memory pressure does not forget
  /// how to restore a dataset.
  std::string manifest_path_;
  std::map<std::string, std::pair<std::string, std::string>>
      manifest_files_;
  std::map<std::string, std::pair<std::string, uint64_t>> gen_recipes_;
  /// Advances on every access for LRU stamps (mutable: see
  /// Entry::last_used).
  mutable uint64_t use_clock_ = 0;
};

}  // namespace marioh::api
