#include "api/session.hpp"

#include <utility>

#include "eval/metrics.hpp"
#include "io/text_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace marioh::api {

namespace {

/// kInvalidArgument if a session-level key was already applied to this
/// SessionOptions (each may be assigned at most once). Called from each
/// session-level parse branch, so the set of session-level keys lives in
/// exactly one place: the branches themselves.
Status CheckNotDuplicate(const SessionOptions& options,
                         const std::string& key) {
  for (const std::string& applied : options.applied_session_keys) {
    if (applied == key) {
      return Status::InvalidArgument(
          "duplicate session option '" + key +
          "': it was already set by an earlier override");
    }
  }
  return Status::Ok();
}

/// Maps a tripped token to the stage's failure status: an armed deadline
/// becomes kDeadlineExceeded (the *hard* variant — the soft
/// time_budget_seconds path reports its own message), anything else
/// kCancelled.
Status StatusForTrip(util::CancelReason reason, const std::string& method,
                     const std::string& where) {
  if (reason == util::CancelReason::kDeadline) {
    return Status::DeadlineExceeded(method + ": hard deadline exceeded " +
                                    where);
  }
  return Status::Cancelled(method + ": run cancelled " + where);
}

}  // namespace

Status ApplySessionOverride(SessionOptions* options,
                            const std::string& assignment) {
  size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("expected key=value, got '" +
                                   assignment + "'");
  }
  if (eq == 0) {
    return Status::InvalidArgument("empty key in override '" + assignment +
                                   "'");
  }
  std::string key = assignment.substr(0, eq);
  std::string value = assignment.substr(eq + 1);
  if (value.empty()) {
    return Status::InvalidArgument("empty value for option '" + key + "'");
  }
  if (key == "method") {
    MARIOH_RETURN_IF_ERROR(CheckNotDuplicate(*options, key));
    options->method = value;
    options->applied_session_keys.push_back(key);
    return Status::Ok();
  }
  if (key == "seed" || key == "time_budget_seconds" || key == "threads") {
    MARIOH_RETURN_IF_ERROR(CheckNotDuplicate(*options, key));
    try {
      size_t pos = 0;
      if (key == "seed") {
        // stoull would silently wrap negatives; reject them instead.
        if (value.find('-') != std::string::npos) {
          throw std::invalid_argument(value);
        }
        options->seed = std::stoull(value, &pos);
      } else if (key == "threads") {
        int threads = std::stoi(value, &pos);
        if (threads < 0) throw std::invalid_argument(value);
        options->marioh.num_threads = threads;
      } else {
        options->time_budget_seconds = std::stod(value, &pos);
      }
      if (pos != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad value '" + value +
                                     "' for option '" + key + "'");
    }
    options->applied_session_keys.push_back(key);
    return Status::Ok();
  }
  options->overrides.emplace_back(std::move(key), std::move(value));
  return Status::Ok();
}

Status Session::Configure(SessionOptions options) {
  // Reset everything so a Session can be reused for a fresh run.
  method_.reset();
  reconstruction_.reset();
  source_handle_ = {};
  target_handle_ = {};
  stage_timer_.Clear();
  clock_.reset();
  trained_ = false;
  deadline_exceeded_ = false;

  StatusOr<MethodInfo> info =
      MethodRegistry::Global().Info(options.method);
  if (!info.ok()) return info.status();

  // Thread the session's stop token into the MARIOH-family kernels via
  // the typed base options (the method factory copies them), so a trip
  // lands mid-kernel instead of waiting for the next stage gate.
  options.marioh.cancel = options.cancel;

  MethodConfig config;
  config.seed = options.seed;
  config.marioh_base = &options.marioh;
  config.overrides = options.overrides;
  StatusOr<std::unique_ptr<Reconstructor>> method =
      MethodRegistry::Global().Create(options.method, config);
  if (!method.ok()) return method.status();

  options_ = std::move(options);
  info_ = std::move(info).value();
  method_ = std::move(method).value();
  // The instantiated method is the source of truth for supervision; keep
  // the metadata the session enforces in sync with it.
  info_.supervised = method_->IsSupervised();
  return Status::Ok();
}

const MethodInfo& Session::method_info() const {
  MARIOH_CHECK(configured());
  return info_;
}

double Session::elapsed_seconds() const {
  return clock_ ? clock_->Seconds() : 0.0;
}

Status Session::BeginStage(const std::string& stage) {
  if (!configured()) {
    return Status::FailedPrecondition(
        "session is not configured; call Configure before '" + stage +
        "'");
  }
  if (!clock_) clock_.emplace();
  double elapsed = clock_->Seconds();
  if (deadline_exceeded_) {
    return Status::DeadlineExceeded(
        info_.name + ": time budget of " +
        std::to_string(options_.time_budget_seconds) +
        "s exhausted before stage '" + stage + "'");
  }
  if (options_.cancel != nullptr) {
    util::CancelReason reason = options_.cancel->reason();
    if (reason != util::CancelReason::kNone) {
      return StatusForTrip(reason, info_.name,
                           "before stage '" + stage + "'");
    }
  }
  if (options_.progress && !options_.progress(stage, elapsed)) {
    return Status::Cancelled(info_.name + ": run cancelled before stage '" +
                             stage + "'");
  }
  // Stage gates double as liveness beats: a session that keeps crossing
  // stage boundaries is alive even if its kernels never poll a
  // CancelChecker (e.g. the fast baselines).
  if (options_.cancel != nullptr) options_.cancel->Beat();
  if (util::FailPoints::active()) {
    // Fault surface: a transient failure or wedge at a stage boundary
    // ("session.<stage>", e.g. "session.reconstruct"). The delay action
    // takes the session's cancel token so a watchdog Cancel cuts the
    // simulated wedge short; after the sleep the trip is re-checked so
    // the wedged stage still reports kCancelled / kDeadlineExceeded.
    util::FailAction action =
        util::FailPoints::Eval("session." + stage, options_.cancel);
    if (action == util::FailAction::kError) {
      return Status::Unavailable(info_.name + ": failpoint 'session." +
                                 stage +
                                 "': injected transient failure before "
                                 "stage '" + stage + "'");
    }
    if (options_.cancel != nullptr) {
      util::CancelReason reason = options_.cancel->reason();
      if (reason != util::CancelReason::kNone) {
        return StatusForTrip(reason, info_.name,
                             "before stage '" + stage + "'");
      }
    }
  }
  return Status::Ok();
}

void Session::EndStage(const std::string& stage, double stage_seconds) {
  stage_timer_.Add(stage, stage_seconds);
  if (obs::Enabled()) {
    obs::MetricRegistry::Global()
        .GetHistogram("marioh_stage_duration_seconds",
                      "stage=\"" + stage + "\"")
        ->Observe(stage_seconds);
    // Memory telemetry rides the stage stats (retires the ROADMAP
    // "memory-use counters" item): current and peak RSS as of the end
    // of the latest stage. Set, not Add — these are point samples.
    if (std::optional<obs::MemorySample> memory =
            obs::SampleProcessMemory()) {
      stage_timer_.Set("mem.rss_mb", static_cast<double>(memory->rss_bytes) /
                                         (1024.0 * 1024.0));
      stage_timer_.Set("mem.peak_rss_mb",
                       static_cast<double>(memory->peak_rss_bytes) /
                           (1024.0 * 1024.0));
    }
  }
  // The budget covers train + reconstruct only (not evaluation or idle
  // time between stages) and is accounted when a reconstruction
  // completes: a train stage alone never trips it (pre-empting between
  // train and reconstruct would pay for training and produce nothing).
  double budgeted_seconds = stage_timer_.Get("train") +
                            stage_timer_.Get("reconstruct");
  if (stage == "reconstruct" && options_.time_budget_seconds >= 0.0 &&
      budgeted_seconds > options_.time_budget_seconds) {
    deadline_exceeded_ = true;
    // Report how far past the budget the run landed — the overshoot a
    // stage-boundary-only check used to hide, and the number the
    // mid-kernel deadline path is asserted against.
    stage_timer_.Add("budget_overrun_seconds",
                     budgeted_seconds - options_.time_budget_seconds);
  }
}

Status Session::Train(const ProjectedGraph& g_source,
                      const Hypergraph& h_source) {
  MARIOH_RETURN_IF_ERROR(BeginStage("train"));
  obs::TraceSpan span("session.train", info_.name);
  util::Timer watch;
  method_->Train(g_source, h_source);
  trained_ = true;
  EndStage("train", watch.Seconds());
  if (util::ShouldStop(options_.cancel)) {
    return StatusForTrip(options_.cancel->reason(), info_.name,
                         "during stage 'train'");
  }
  return Status::Ok();
}

Status Session::Train(const DatasetHandle& source) {
  if (!source.has_hypergraph() || !source.has_graph()) {
    return Status::InvalidArgument(
        "dataset '" + source.name +
        "' is not a source pair (needs a hypergraph and its projection)");
  }
  source_handle_ = source;  // pin: outlives any cache eviction
  return Train(*source.graph, *source.hypergraph);
}

Status Session::TrainFromFile(const std::string& path) {
  if (options_.cache != nullptr) {
    // Shared load-once path: the cache keys the dataset by its path, so
    // N sessions reading the same file share one in-memory copy.
    StatusOr<DatasetHandle> handle =
        options_.cache->LoadHypergraphFile(path, path);
    if (!handle.ok()) return handle.status();
    return Train(*handle);
  }
  StatusOr<Hypergraph> source = io::TryReadHypergraphFile(path);
  if (!source.ok()) return source.status();
  return Train(source->Project(), *source);
}

Status Session::Reconstruct(const ProjectedGraph& g_target) {
  if (configured() && info_.supervised && !trained_) {
    return Status::FailedPrecondition(
        "supervised method '" + info_.name +
        "' requires Train before Reconstruct");
  }
  MARIOH_RETURN_IF_ERROR(BeginStage("reconstruct"));
  obs::TraceSpan span("session.reconstruct", info_.name);
  util::Timer watch;
  reconstruction_ = method_->Reconstruct(g_target);
  EndStage("reconstruct", watch.Seconds());
  // Accumulate the method's run counters alongside the stage times
  // (StageTimer sums per key, so like the times these are session
  // totals), making degraded runs — e.g. a truncated maximal-clique
  // enumeration — visible to callers instead of silently producing a
  // partial result.
  for (const auto& [name, value] : method_->ReconstructionStats()) {
    stage_timer_.Add("reconstruct." + name, value);
  }
  if (util::ShouldStop(options_.cancel)) {
    // The kernels stopped at a preemption point (or the trip landed
    // moments after they finished — indistinguishable, and moot): the
    // hypergraph is not trustworthy output. Drop it and surface the trip
    // as the stage status; the stage time and `reconstruct.*` counters
    // above stay recorded so callers can see how far the run got.
    reconstruction_.reset();
    return StatusForTrip(options_.cancel->reason(), info_.name,
                         "during stage 'reconstruct'");
  }
  return Status::Ok();
}

Status Session::Reconstruct(const DatasetHandle& target) {
  if (!target.has_graph()) {
    return Status::InvalidArgument(
        "dataset '" + target.name +
        "' holds no projected graph to reconstruct from");
  }
  target_handle_ = target;  // pin: outlives any cache eviction
  return Reconstruct(*target.graph);
}

Status Session::ReconstructFromFile(const std::string& path) {
  if (options_.cache != nullptr) {
    StatusOr<DatasetHandle> handle =
        options_.cache->LoadProjectedGraphFile(path, path);
    if (!handle.ok()) return handle.status();
    return Reconstruct(*handle);
  }
  StatusOr<ProjectedGraph> target = io::TryReadProjectedGraphFile(path);
  if (!target.ok()) return target.status();
  return Reconstruct(*target);
}

StatusOr<EvaluationResult> Session::Evaluate(
    const Hypergraph& ground_truth) {
  if (!reconstruction_) {
    return Status::FailedPrecondition(
        "nothing to evaluate: call Reconstruct first");
  }
  // Evaluation is outside the Train+Reconstruct budget (the paper's OOT
  // clock stops at reconstruction), so no BeginStage gate here.
  obs::TraceSpan span("session.evaluate", info_.name);
  util::Timer watch;
  EvaluationResult result;
  result.jaccard = eval::Jaccard(ground_truth, *reconstruction_);
  result.multi_jaccard = eval::MultiJaccard(ground_truth, *reconstruction_);
  result.reconstructed_unique_edges = reconstruction_->num_unique_edges();
  result.reconstructed_total_edges = reconstruction_->num_total_edges();
  stage_timer_.Add("evaluate", watch.Seconds());
  return result;
}

StatusOr<Hypergraph> Session::TakeReconstruction() {
  if (!reconstruction_) {
    return Status::FailedPrecondition(
        "nothing to take: call Reconstruct first");
  }
  Hypergraph out = std::move(*reconstruction_);
  reconstruction_.reset();
  return out;
}

Status Session::WriteReconstruction(const std::string& path) const {
  if (!reconstruction_) {
    return Status::FailedPrecondition(
        "nothing to write: call Reconstruct first");
  }
  return io::TryWriteHypergraphFile(*reconstruction_, path);
}

}  // namespace marioh::api
