/// \file service.hpp
/// \brief The async job layer: `ReconstructRequest` → `JobId` on a worker
/// pool, with Submit/SubmitBatch/Poll/Wait/Cancel, per-job `Status` +
/// stage stats + `EvaluationResult`, and service-level counters. This is
/// the serving loop the ROADMAP's "server front end" item asked for:
/// N jobs run concurrently over shared `DatasetCache` handles, each
/// inside its own `Session`, and — because datasets are immutable and
/// every method is a pure function of (dataset, seed, options) — a
/// concurrent schedule produces bit-identical hypergraphs to running the
/// same requests sequentially (asserted by `test_api_service`).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/request.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "core/marioh.hpp"
#include "util/cancel.hpp"
#include "util/journal.hpp"
#include "util/worker_pool.hpp"

namespace marioh::obs {
class Histogram;
}  // namespace marioh::obs

namespace marioh::api {

/// Identifies a submitted job; dense, starting at 1.
using JobId = uint64_t;

/// Lifecycle of a job. Terminal states: kDone, kFailed, kCancelled,
/// kDeadlineExceeded.
enum class JobState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< executing on a worker
  kDone,       ///< finished with an OK status
  kFailed,     ///< finished with an error status
  kCancelled,  ///< cancelled before completing
  /// Aborted mid-run by the request's *hard* `deadline_seconds` (the
  /// soft `time_budget_seconds` overrun still ends kDone, flagged
  /// `budget_overrun`).
  kDeadlineExceeded,
};

/// Stable upper-case name of a state ("QUEUED", ...).
const char* JobStateName(JobState state);

/// Point-in-time view of a job, returned by Poll/Wait. Result fields are
/// populated once the job is terminal.
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Echo of the request's method, target dataset and scheduling
  /// attributes, for display.
  std::string method;
  std::string target_dataset;
  Priority priority = Priority::kNormal;
  std::string client_id;
  /// Terminal status: OK for kDone, the failure for kFailed, kCancelled
  /// / kDeadlineExceeded for a preempted job. OK while the job is still
  /// queued/running.
  Status status;
  /// True if the run exceeded its soft time budget (the overrunning
  /// reconstruction still completed and scored; see Session — the
  /// overshoot is in `stage_stats["budget_overrun_seconds"]`).
  bool budget_overrun = false;
  /// Position in the service-wide terminal order (1 = first job to reach
  /// any terminal state; 0 while queued/running). Makes scheduling
  /// assertions exact: job A finished before job B iff
  /// A.finish_seq < B.finish_seq.
  uint64_t finish_seq = 0;
  /// Seconds from the Cancel() call to the job actually stopping, for a
  /// job preempted while running; negative when not applicable.
  double cancel_latency_seconds = -1.0;
  /// Attempts started so far (1 for a job that never retried; 0 while
  /// still queued for its first run). A terminal snapshot's value is the
  /// total attempts the job consumed.
  int attempts = 0;
  /// Scores, when the request named a ground-truth dataset.
  std::optional<EvaluationResult> evaluation;
  /// Stage wall-clock and reconstruction counters of the job's session
  /// ("train", "reconstruct", "reconstruct.iterations", ...).
  std::map<std::string, double> stage_stats;
  /// The reconstructed hypergraph (kDone only); shared so callers can
  /// keep it after the service forgets the job (see Service::Forget).
  HypergraphHandle reconstruction;

  bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled ||
           state == JobState::kDeadlineExceeded;
  }
};

/// Service-level counters. Gauges (`queued*`, `running`) describe the
/// current instant; the rest are monotone totals since construction.
/// The terminal totals partition the admitted jobs:
/// `accepted = done + failed + cancelled + deadline_exceeded + queued +
/// running` holds at every instant (asserted by test_service_stress).
struct ServiceStats {
  uint64_t accepted = 0;   ///< jobs admitted by Submit
  uint64_t queued = 0;     ///< currently waiting for a worker
  uint64_t running = 0;    ///< currently executing
  uint64_t done = 0;       ///< finished OK (soft overruns included)
  uint64_t failed = 0;     ///< finished with an error
  uint64_t cancelled = 0;  ///< cancelled before completing
  /// Aborted mid-run by their hard deadline (terminal state
  /// kDeadlineExceeded) — disjoint from every other terminal total.
  uint64_t deadline_exceeded = 0;
  /// Jobs that finished past their *soft* time budget (they still ended
  /// kDone and scored; overlaps `done`).
  uint64_t budget_overruns = 0;
  /// Running jobs stopped before completion — by Cancel() or the hard
  /// deadline (queued cancels don't count; nothing was interrupted).
  uint64_t preempted = 0;
  /// Queue-depth gauges per priority class (these sum to `queued`).
  uint64_t queued_interactive = 0;
  uint64_t queued_normal = 0;
  uint64_t queued_batch = 0;
  /// Cancel-to-stop latency over jobs preempted by an explicit Cancel()
  /// while running: sample count, running sum, and worst case. The mean
  /// is total / count.
  uint64_t cancel_latency_count = 0;
  double cancel_latency_total_seconds = 0.0;
  double cancel_latency_max_seconds = 0.0;
  /// Submits turned away by admission control (queued-work cap or
  /// per-client in-flight quota) with kResourceExhausted. Rejected
  /// submits are never `accepted`, so the terminal-partition invariant
  /// above is untouched by this counter.
  uint64_t submits_rejected = 0;
  /// Terminal jobs auto-retired by the `job_ttl_seconds` policy (manual
  /// Forget calls do not count). Retirement drops the job *record* only;
  /// the monotone terminal totals it already landed in are unaffected.
  uint64_t jobs_retired = 0;
  /// Transient-failure re-queues: bumped each time a retryable failure
  /// sent a job back for another attempt (a job retried twice counts
  /// twice). A retry is not a new admission — `accepted` counts the job
  /// once, and during its backoff the job sits in the `queued` gauge, so
  /// the terminal-partition invariant above holds through every retry.
  uint64_t jobs_retried = 0;
  /// Retryable failures with no attempts left: the job went kFailed
  /// carrying its last transient status.
  uint64_t retries_exhausted = 0;
  /// Running jobs the watchdog declared stalled (heartbeat silent past
  /// `stall_timeout_seconds`) and cancelled through the preemption path.
  uint64_t jobs_stalled = 0;
  /// Batch-priority submits turned away by load shedding
  /// (`shed_batch_above_queued`). A subset of `submits_rejected`.
  uint64_t loadshed_rejects = 0;
  /// Jobs re-admitted from the write-ahead journal at startup: accepted
  /// by a previous life of this service (same journal_dir) that died
  /// before they reached a terminal state. Each is counted in `accepted`
  /// too and keeps its original JobId/client/priority, so the
  /// terminal-partition invariant holds across the restart.
  uint64_t jobs_recovered = 0;
};

/// Configuration of a Service.
struct ServiceOptions {
  /// Concurrent jobs (worker threads); 0 = hardware concurrency.
  int num_workers = 0;
  /// Typed base options inherited by every job's MARIOH-family method;
  /// request overrides apply on top. The default keeps per-job kernels
  /// sequential (num_threads = 1) so job-level concurrency composes with
  /// kernel-level parallelism explicitly, not implicitly quadratically.
  core::MariohOptions marioh;
  /// Admission control: Submit returns kResourceExhausted while this
  /// many jobs are already queued (running jobs don't count — they hold
  /// workers, not queue slots). 0 = unlimited.
  size_t max_queued_jobs = 0;
  /// Per-client in-flight quota: Submit returns kResourceExhausted while
  /// the request's client_id already has this many queued + running
  /// jobs. 0 = unlimited. The empty client id is one (shared) client for
  /// quota purposes, same as for fair-share lanes.
  size_t max_inflight_per_client = 0;
  /// Age-based retirement of terminal jobs: a job that has been terminal
  /// for longer than this many seconds is dropped from the job table as
  /// if Forget had been called (Poll/Wait/Forget on it then return
  /// kNotFound). Swept lazily on every Service entry point and
  /// explicitly via RetireExpired() — long-lived servers tick the
  /// latter. Negative = keep forever (the pre-TTL behavior).
  double job_ttl_seconds = -1.0;
  /// Watchdog: a *running* job whose heartbeat — published by its
  /// kernels' CancelChecker polls and its session's stage gates — does
  /// not advance for this many seconds is declared stalled and cancelled
  /// through the normal preemption path. The job ends kCancelled with a
  /// "stalled" status; `jobs_stalled` counts it. Detection latency is
  /// bounded by `stall_timeout + watchdog period` (the period is
  /// stall_timeout/4, clamped to [10ms, 250ms]). Negative disables the
  /// watchdog entirely (no maintenance wakeups while idle).
  double stall_timeout_seconds = -1.0;
  /// Load shedding: while at least this many jobs are queued, new
  /// kBatch-priority submits are rejected with kResourceExhausted
  /// (`loadshed_rejects`) so background bulk work cannot bury
  /// interactive traffic during overload. Interactive/normal submits
  /// still admit up to `max_queued_jobs`. 0 disables shedding.
  size_t shed_batch_above_queued = 0;
  /// Durability: when non-empty, the service write-ahead journals the
  /// request lifecycle into this directory (see util::Journal) — every
  /// request is serialized and synced *before* Submit replies, and on
  /// construction the journal is replayed: jobs that never reached a
  /// terminal state in a previous life are re-admitted under their
  /// original JobId/client/priority (`jobs_recovered`). Empty (the
  /// default) disables journaling entirely — zero syscalls on the
  /// submit path.
  std::string journal_dir;
  /// Fsync policy of the journal (see util::JournalFsync); kAlways means
  /// an accepted job survives even power loss, kNever trades the most
  /// recent accepts for speed.
  util::JournalFsync journal_fsync = util::JournalFsync::kAlways;
  /// Journal segment rotation threshold (see JournalOptions).
  size_t journal_rotate_bytes = 4u << 20;
};

/// Runs reconstruction jobs asynchronously over a shared `DatasetCache`.
/// All methods are thread-safe; Submit never blocks on job execution.
/// Destruction cancels queued jobs, then waits for running ones.
class Service {
 public:
  explicit Service(std::shared_ptr<DatasetCache> cache,
                   ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Validates the request against the registry and the dataset cache
  /// (unknown method / unknown or ill-typed datasets / reserved override
  /// keys fail here, before any work is queued) and enqueues it.
  /// The job holds handles to its datasets from this point on, so cache
  /// eviction cannot affect an admitted job.
  StatusOr<JobId> Submit(const ReconstructRequest& request);

  /// Submits all requests atomically: either every request is admitted
  /// (ids returned in order) or none is and the first error is returned.
  StatusOr<std::vector<JobId>> SubmitBatch(
      const std::vector<ReconstructRequest>& requests);

  /// Non-blocking state snapshot. kNotFound for unknown ids — including
  /// ids whose record the job TTL just retired (the lazy sweep runs
  /// first). Non-const for exactly that reason.
  StatusOr<JobSnapshot> Poll(JobId id);

  /// Blocks until the job reaches a terminal state and returns its final
  /// snapshot. kNotFound for unknown ids.
  StatusOr<JobSnapshot> Wait(JobId id);

  /// Requests cancellation: a queued job never starts (kCancelled); a
  /// running job's CancelToken trips and the kernels stop at their next
  /// preemption point — mid-kernel, within bounded latency (the
  /// cancel-to-stop time lands in the job's `cancel_latency_seconds` and
  /// the service latency counters). Best-effort — a job that finishes
  /// first stays done/failed. kNotFound for unknown ids,
  /// kFailedPrecondition if the job is already terminal.
  Status Cancel(JobId id);

  /// Retires a *terminal* job: drops it from the job table, releasing
  /// its reconstruction and dataset pins (snapshots already taken stay
  /// valid — everything shared is handle-owned). Long-running servers
  /// call this after consuming a result so memory stays bounded; the
  /// monotone counters in stats() are unaffected. kNotFound for unknown
  /// ids, kFailedPrecondition while the job is still queued/running
  /// (Cancel and Wait first).
  Status Forget(JobId id);

  /// Retires every terminal job older than `job_ttl_seconds` now and
  /// returns how many were dropped (0 when the TTL is disabled). The
  /// same sweep also runs lazily inside Submit/Poll/Wait/Cancel/Forget/
  /// stats, so calling this is only needed to bound memory during long
  /// idle stretches (the net server does, from its event-loop tick).
  size_t RetireExpired();

  /// Current service counters.
  ServiceStats stats() const;

  const std::shared_ptr<DatasetCache>& cache() const { return cache_; }

  /// Whether construction-time recovery succeeded. A constructor cannot
  /// return a Status, so a journal that failed to open/replay lands
  /// here; front ends check it and refuse to serve (a service that
  /// silently dropped its durability promise is worse than one that
  /// won't start). Always OK when `journal_dir` is empty.
  const Status& startup_status() const { return startup_status_; }

  /// The write-ahead journal, or nullptr when journaling is disabled
  /// (or failed to open — see startup_status()). For stats surfaces and
  /// tests; never needed on the request path.
  const util::Journal* journal() const { return journal_.get(); }

 private:
  struct Job {
    JobId id = 0;
    ReconstructRequest request;
    /// Dataset handles resolved at submit time (own the data from then
    /// on).
    DatasetHandle train;
    DatasetHandle target;
    DatasetHandle ground_truth;
    JobState state = JobState::kQueued;
    /// The job's stop signal, threaded through Session into every
    /// kernel. Trips on Cancel() and on the request's hard deadline
    /// (armed when the job starts running). Lives here so it outlives
    /// the Session by construction.
    util::CancelToken cancel;
    /// When an explicit Cancel() hit the job while running (guarded by
    /// mutex_); the terminal transition turns it into a latency sample.
    std::optional<std::chrono::steady_clock::time_point> cancelled_at;
    /// When the job (re-)entered the queue — at admission, and again
    /// when a retry is scheduled — so the kQueued→kRunning transition
    /// can sample the wait-latency histogram. Guarded by mutex_.
    std::optional<std::chrono::steady_clock::time_point> admitted_at;
    Status status;
    bool budget_overrun = false;
    uint64_t finish_seq = 0;
    double cancel_latency_seconds = -1.0;
    /// Attempts started (guarded by mutex_); see JobSnapshot::attempts.
    int attempts = 0;
    /// Watchdog bookkeeping (guarded by mutex_): the heartbeat value
    /// last sampled off the token and when it last advanced. Reset each
    /// time the job transitions to kRunning.
    uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_progress{};
    /// The watchdog cancelled this job for missing heartbeats; its
    /// terminal status is rewritten to say so.
    bool stalled = false;
    /// When the job reached its terminal state; the TTL sweep measures
    /// age from here. Unset while queued/running.
    std::optional<std::chrono::steady_clock::time_point> finished_at;
    std::optional<EvaluationResult> evaluation;
    std::map<std::string, double> stage_stats;
    HypergraphHandle reconstruction;
  };

  /// Builds and admits a job (no enqueue). Requires nothing locked.
  StatusOr<std::shared_ptr<Job>> Admit(const ReconstructRequest& request);
  void Enqueue(const std::shared_ptr<Job>& job);
  void RunJob(const std::shared_ptr<Job>& job);
  /// Snapshot of `job` under `mutex_`.
  JobSnapshot SnapshotLocked(const Job& job) const;
  /// The TTL sweep. Requires `mutex_` held; returns jobs dropped.
  size_t RetireExpiredLocked();
  /// Admission control for one more job of `client` at `priority`, with
  /// `extra_queued` jobs (of which `extra_same_client` share the client
  /// id) already admitted ahead of it in the same batch. Requires
  /// `mutex_` held; OK or kResourceExhausted (counted in
  /// submits_rejected, plus loadshed_rejects when shed by priority).
  Status AdmitCapacityLocked(const std::string& client, Priority priority,
                             size_t extra_queued, size_t extra_same_client);
  /// The retry/watchdog thread: re-enqueues backoff-expired retries and
  /// runs the stall scan. Sleeps indefinitely when there is nothing to
  /// watch (no pending retries, watchdog disabled or no running jobs).
  void MaintenanceLoop();
  /// One stall scan over the running jobs. Requires `mutex_` held.
  void WatchdogTickLocked(std::chrono::steady_clock::time_point now);
  /// Opens the journal at `options_.journal_dir`, replays it, and
  /// re-admits every job a previous life accepted but never finished.
  /// Called from the constructor (after the pool exists, before the
  /// maintenance thread starts); failures land in `startup_status_`.
  void RecoverFromJournal();
  /// Pull-model metrics publication, run by the registry at every
  /// Collect(): takes one stats() snapshot under `mutex_` and Sets the
  /// `marioh_jobs_*` / queue-depth / cache / journal instruments from
  /// it, so the terminal-partition invariant holds exactly in every
  /// exposition output. Registered in the constructor; the destructor
  /// removes the hook (blocking out any in-flight collection) before
  /// touching anything else.
  void PublishMetrics() const;

  std::shared_ptr<DatasetCache> cache_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable job_done_;  ///< Wait blocks here
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  JobId next_id_ = 1;
  /// Next value of JobSnapshot::finish_seq, assigned at every terminal
  /// transition under mutex_.
  uint64_t next_finish_seq_ = 1;
  ServiceStats totals_;  ///< counters other than the live gauges

  /// Backoff queue: jobs between attempts, min-heap on due time (guarded
  /// by mutex_). Entries whose job was cancelled during the backoff pop
  /// harmlessly — RunJob sees a non-queued state and returns.
  std::vector<std::pair<std::chrono::steady_clock::time_point,
                        std::shared_ptr<Job>>>
      retry_heap_;
  std::condition_variable maintenance_wake_;
  bool stopping_ = false;  ///< guarded by mutex_; set by the destructor

  /// The write-ahead journal (null when disabled). Thread-safe on its
  /// own mutex; appended to under `mutex_` so lifecycle records land in
  /// the same order the state machine commits them. Shutdown-preempted
  /// jobs are deliberately *not* journaled terminal — they stay open so
  /// the next life re-admits them.
  std::unique_ptr<util::Journal> journal_;
  Status startup_status_;  ///< set once in the constructor, then const

  /// Event-time latency instruments (global registry; pointers are
  /// stable for the process lifetime) and the collection-hook id.
  obs::Histogram* wait_latency_seconds_ = nullptr;
  obs::Histogram* cancel_latency_seconds_ = nullptr;
  uint64_t metrics_hook_ = 0;

  /// Created last, destroyed first: workers must be gone before the job
  /// table they touch.
  std::unique_ptr<util::WorkerPool> pool_;
  /// The retry/watchdog thread (joined before the pool shuts down).
  std::thread maintenance_;
};

}  // namespace marioh::api
