#include "api/status.hpp"

namespace marioh::api {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace marioh::api
