/// \file request.hpp
/// \brief The typed request a service client submits: which method to run
/// on which cached datasets, under what seed/budget, with which
/// `key=value` overrides. Pure data — validation happens in
/// `Service::Submit` (dataset/method existence, reserved override keys)
/// and at job configure time (override values, via the method factories).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/status.hpp"

namespace marioh::api {

/// Scheduling class of a job. A higher class always dispatches before a
/// lower one (regardless of submission order); within a class the
/// service's worker pool round-robins across client ids (see
/// util::WorkerPool). The numeric values are the pool's priority ints.
enum class Priority {
  kBatch = 0,        ///< bulk work; yields to everything else
  kNormal = 1,       ///< the default
  kInteractive = 2,  ///< latency-sensitive; jumps every queue
};

/// Stable lower-case name of a priority ("batch", "normal",
/// "interactive").
inline const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "unknown";
}

/// Parses a priority name as printed by PriorityName. Returns false (and
/// leaves `*out` alone) for anything else.
inline bool ParsePriority(const std::string& name, Priority* out) {
  if (name == "batch") {
    *out = Priority::kBatch;
  } else if (name == "normal") {
    *out = Priority::kNormal;
  } else if (name == "interactive") {
    *out = Priority::kInteractive;
  } else {
    return false;
  }
  return true;
}

/// Per-request retry policy for *transient* failures. When an attempt
/// fails with a status code in `retryable` and attempts remain, the
/// service re-queues the job through its normal fair-share lanes after
/// an exponential backoff — the job stays the same JobId, returns to
/// QUEUED during the backoff (so the stats partition invariant holds
/// unchanged), and its hard deadline is re-armed per attempt. Trips are
/// never retried: a kCancelled / kDeadlineExceeded attempt, or any
/// failure after Cancel() was requested, is terminal regardless of the
/// retryable set.
struct RetryPolicy {
  /// Total attempts including the first; values below 1 mean 1 (the
  /// default: fail fast, no retries).
  int max_attempts = 1;
  /// Backoff before attempt k+1 after k failed attempts:
  /// `initial * multiplier^(k-1)`, capped at `max_backoff_seconds`,
  /// stretched by up to `jitter_fraction` of itself. The jitter is a
  /// pure function of (job id, attempt), so a replayed schedule backs
  /// off identically — determinism survives the fault path.
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  double jitter_fraction = 0.1;
  /// Status codes worth another attempt. Defaults to kUnavailable only —
  /// the code every injected/transient fault surface reports; permanent
  /// errors (kNotFound, kInvalidArgument, ...) stay fail-fast.
  std::vector<StatusCode> retryable = {StatusCode::kUnavailable};

  bool enabled() const { return max_attempts > 1; }
  bool Retryable(StatusCode code) const {
    for (StatusCode c : retryable) {
      if (c == code) return true;
    }
    return false;
  }
};

/// One reconstruction job. Dataset fields name entries of the service's
/// `DatasetCache`.
struct ReconstructRequest {
  /// Registry name of the method to run.
  std::string method = "MARIOH";

  /// Source pair for supervised training (must be a dataset holding a
  /// hypergraph *and* its projection, as `DatasetCache` hypergraph loads
  /// are). Empty skips the train stage — required for supervised methods,
  /// optional for unsupervised ones.
  std::string train_dataset;

  /// Reconstruction input (any dataset holding a graph). Required.
  std::string target_dataset;

  /// Ground truth to score the reconstruction against (any dataset
  /// holding a hypergraph). Empty skips evaluation.
  std::string ground_truth_dataset;

  uint64_t seed = 1;

  /// Wall-clock budget over train + reconstruct in seconds; negative
  /// means unlimited (the `Session` OOT semantics: the overrunning run
  /// still completes and scores, and the job reports `budget_overrun`).
  double time_budget_seconds = -1.0;

  /// Hard wall-clock deadline in seconds, armed when the job *starts
  /// running* (queue time does not count); negative means none. Unlike
  /// the soft budget above, overrunning it aborts the job mid-kernel via
  /// its CancelToken: the job ends DEADLINE_EXCEEDED with no result.
  double deadline_seconds = -1.0;

  /// Scheduling class (see Priority above).
  Priority priority = Priority::kNormal;

  /// Fair-share key: jobs with the same client id form one FIFO lane;
  /// distinct clients of equal priority are served round-robin, so one
  /// flooding client only delays itself. Empty is a valid shared
  /// (anonymous) lane — the default keeps single-tenant submission
  /// order.
  std::string client_id;

  /// Per-job thread budget for the reconstruction kernels' `ParallelFor`
  /// fan-out: overrides the service-wide `MariohOptions::num_threads`
  /// base when positive (0 keeps the base). Results are identical for
  /// any value (the thread-count-invariance contract); only this job's
  /// wall-clock and CPU share change.
  int kernel_threads = 0;

  /// Retry policy for transient failures (see RetryPolicy). The default
  /// never retries.
  RetryPolicy retry;

  /// Session/method `key=value` overrides, applied through
  /// `ApplySessionOverride` (so `threads=N`, `snapshot_reuse=0.3`,
  /// `theta_init=0.8`, ... all work). The structural keys `method`,
  /// `seed`, and `time_budget_seconds` are reserved — set the typed
  /// fields above instead; Submit rejects them with kInvalidArgument.
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Serializes `request` as one line of the `submit` wire grammar —
/// space-separated `key=value` tokens (`method= train= target= truth=
/// seed= budget= deadline= priority= client= kthreads= retries= backoff=
/// backoff_mult= backoff_cap= jitter= retryable=` then overrides), with
/// fields at their default value omitted. This is the single source of
/// truth shared by the LineProtocol `submit` verb and the write-ahead
/// journal's accept records, so the two formats cannot drift; doubles
/// round-trip exactly (17 significant digits). Callers must hold a
/// request that passes `ValidateRequestSerializable`.
std::string SerializeReconstructRequest(const ReconstructRequest& request);

/// Parses the wire grammar above into `*request`, which the caller
/// pre-initializes (typically default-constructed; the LineProtocol seeds
/// `client_id` with the connection default first). Typed keys overwrite
/// fields; unknown keys append to `overrides` for Submit to vet. Strict:
/// malformed tokens, bad values, and *any* duplicated key — typed or
/// override — are rejected with a precise kInvalidArgument, so a typo
/// can never silently half-apply.
Status ParseReconstructRequest(const std::string& text,
                               ReconstructRequest* request);

/// Whether `request` survives Serialize → Parse bit-identically: no
/// whitespace in string fields, no empty or typed-key-shadowing or
/// '='-bearing override keys, no empty override values. `Service`
/// enforces this at Submit when journaling (an unserializable request
/// could not be recovered faithfully).
Status ValidateRequestSerializable(const ReconstructRequest& request);

}  // namespace marioh::api
