/// \file request.hpp
/// \brief The typed request a service client submits: which method to run
/// on which cached datasets, under what seed/budget, with which
/// `key=value` overrides. Pure data — validation happens in
/// `Service::Submit` (dataset/method existence, reserved override keys)
/// and at job configure time (override values, via the method factories).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace marioh::api {

/// One reconstruction job. Dataset fields name entries of the service's
/// `DatasetCache`.
struct ReconstructRequest {
  /// Registry name of the method to run.
  std::string method = "MARIOH";

  /// Source pair for supervised training (must be a dataset holding a
  /// hypergraph *and* its projection, as `DatasetCache` hypergraph loads
  /// are). Empty skips the train stage — required for supervised methods,
  /// optional for unsupervised ones.
  std::string train_dataset;

  /// Reconstruction input (any dataset holding a graph). Required.
  std::string target_dataset;

  /// Ground truth to score the reconstruction against (any dataset
  /// holding a hypergraph). Empty skips evaluation.
  std::string ground_truth_dataset;

  uint64_t seed = 1;

  /// Wall-clock budget over train + reconstruct in seconds; negative
  /// means unlimited (the `Session` OOT semantics: the overrunning run
  /// still completes and scores, and the job reports
  /// `deadline_exceeded`).
  double time_budget_seconds = -1.0;

  /// Session/method `key=value` overrides, applied through
  /// `ApplySessionOverride` (so `threads=N`, `snapshot_reuse=0.3`,
  /// `theta_init=0.8`, ... all work). The structural keys `method`,
  /// `seed`, and `time_budget_seconds` are reserved — set the typed
  /// fields above instead; Submit rejects them with kInvalidArgument.
  std::vector<std::pair<std::string, std::string>> overrides;
};

}  // namespace marioh::api
