#include "api/registry.hpp"

#include <algorithm>
#include <type_traits>

#include "util/check.hpp"

namespace marioh::api {
namespace {

/// Renders "a, b, c" from a sorted name list.
std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

template <typename T>
bool ParseNumber(const std::string& text, T* out) {
  try {
    size_t pos = 0;
    if constexpr (std::is_same_v<T, double>) {
      *out = std::stod(text, &pos);
    } else if constexpr (std::is_same_v<T, int>) {
      *out = std::stoi(text, &pos);
    } else {
      unsigned long long v = std::stoull(text, &pos);
      if (text.find('-') != std::string::npos) return false;
      *out = static_cast<T>(v);
    }
    return pos == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

MethodRegistry& MethodRegistry::Global() {
  static MethodRegistry* registry = new MethodRegistry();
  EnsureBuiltinMethodsRegistered();
  return *registry;
}

Status MethodRegistry::Register(MethodInfo info, MethodFactory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("method name must not be empty");
  }
  if (!factory) {
    return Status::InvalidArgument("method '" + info.name +
                                   "' registered without a factory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Copy the key out before moving `info` into the entry: the key and
  // value expressions are unsequenced relative to each other.
  std::string name = info.name;
  auto [it, inserted] = entries_.try_emplace(
      std::move(name), Entry{std::move(info), std::move(factory)});
  if (!inserted) {
    return Status::AlreadyExists("method '" + it->first +
                                 "' is already registered");
  }
  return Status::Ok();
}

Status MethodRegistry::UnknownMethod(const std::string& name) const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return Status::NotFound("unknown method '" + name +
                          "'; known methods: " + JoinNames(names));
}

StatusOr<std::unique_ptr<Reconstructor>> MethodRegistry::Create(
    const std::string& name, const MethodConfig& config) const {
  MethodFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return UnknownMethod(name);
    factory = it->second.factory;
  }
  // Invoked outside the lock: factories may touch the registry.
  return factory(config);
}

StatusOr<MethodInfo> MethodRegistry::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return UnknownMethod(name);
  return it->second.info;
}

bool MethodRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

std::vector<std::string> MethodRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  return names;  // std::map iteration is already sorted
}

std::vector<MethodInfo> MethodRegistry::Methods() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MethodInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry.info);
  return out;
}

namespace {

std::vector<std::string> RosterByOrder(int MethodInfo::*order_field) {
  std::vector<MethodInfo> methods = MethodRegistry::Global().Methods();
  std::vector<const MethodInfo*> listed;
  for (const MethodInfo& m : methods) {
    if (m.*order_field >= 0) listed.push_back(&m);
  }
  std::sort(listed.begin(), listed.end(),
            [order_field](const MethodInfo* a, const MethodInfo* b) {
              return a->*order_field < b->*order_field;
            });
  std::vector<std::string> names;
  names.reserve(listed.size());
  for (const MethodInfo* m : listed) names.push_back(m->name);
  return names;
}

}  // namespace

std::vector<std::string> Table2Roster() {
  return RosterByOrder(&MethodInfo::table2_order);
}

std::vector<std::string> Table3Roster() {
  return RosterByOrder(&MethodInfo::table3_order);
}

std::unique_ptr<Reconstructor> MustCreateMethod(
    const std::string& name, uint64_t seed,
    const core::MariohOptions* marioh_base) {
  MethodConfig config;
  config.seed = seed;
  config.marioh_base = marioh_base;
  return ValueOrDie(MethodRegistry::Global().Create(name, config),
                    __FILE__, __LINE__);
}

OverrideReader::OverrideReader(const MethodConfig& config)
    : config_(config), consumed_(config.overrides.size(), false) {}

const std::string* OverrideReader::Find(const std::string& key) {
  known_keys_.push_back(key);
  const std::string* value = nullptr;
  for (size_t i = 0; i < config_.overrides.size(); ++i) {
    if (config_.overrides[i].first == key) {
      consumed_[i] = true;
      value = &config_.overrides[i].second;  // last assignment wins
    }
  }
  return value;
}

namespace {

template <typename T>
void ReadOverride(const std::string& key, const std::string* value, T* out,
                  std::string* first_error) {
  if (value == nullptr) return;
  T parsed{};
  if (!ParseNumber(*value, &parsed)) {
    if (first_error->empty()) {
      *first_error = "bad value '" + *value + "' for option '" + key + "'";
    }
    return;
  }
  *out = parsed;
}

}  // namespace

void OverrideReader::Get(const std::string& key, double* out) {
  ReadOverride(key, Find(key), out, &first_error_);
}
void OverrideReader::Get(const std::string& key, unsigned long* out) {
  ReadOverride(key, Find(key), out, &first_error_);
}
void OverrideReader::Get(const std::string& key, unsigned long long* out) {
  ReadOverride(key, Find(key), out, &first_error_);
}
void OverrideReader::Get(const std::string& key, int* out) {
  ReadOverride(key, Find(key), out, &first_error_);
}
void OverrideReader::Get(const std::string& key, bool* out) {
  const std::string* value = Find(key);
  if (value == nullptr) return;
  if (*value == "true" || *value == "1") {
    *out = true;
  } else if (*value == "false" || *value == "0") {
    *out = false;
  } else if (first_error_.empty()) {
    first_error_ = "bad value '" + *value + "' for option '" + key +
                   "' (expected true/false)";
  }
}

Status OverrideReader::Finish(const std::string& method_name) const {
  std::string supported = known_keys_.empty()
                              ? std::string("none")
                              : JoinNames(known_keys_);
  if (!first_error_.empty()) {
    return Status::InvalidArgument(method_name + ": " + first_error_);
  }
  for (size_t i = 0; i < consumed_.size(); ++i) {
    if (!consumed_[i]) {
      return Status::InvalidArgument(
          method_name + ": unknown option '" + config_.overrides[i].first +
          "'; supported options: " + supported);
    }
  }
  return Status::Ok();
}

namespace internal {

MethodRegistrar::MethodRegistrar(MethodInfo info, MethodFactory factory) {
  Status status =
      MethodRegistry::Global().Register(std::move(info), std::move(factory));
  if (!status.ok()) {
    // A duplicate in-tree registration is a programming error.
    util::CheckFailed(__FILE__, __LINE__, status.ToString());
  }
}

}  // namespace internal
}  // namespace marioh::api
