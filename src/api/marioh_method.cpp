#include "api/marioh_method.hpp"

#include <memory>
#include <utility>

#include "api/registry.hpp"

namespace marioh::api {

MariohMethod::MariohMethod(core::MariohVariant variant,
                           core::MariohOptions options)
    : variant_(variant),
      marioh_(core::OptionsForVariant(variant, std::move(options))) {}

std::string MariohMethod::Name() const {
  switch (variant_) {
    case core::MariohVariant::kFull:
      return "MARIOH";
    case core::MariohVariant::kNoMulti:
      return "MARIOH-M";
    case core::MariohVariant::kNoFilter:
      return "MARIOH-F";
    case core::MariohVariant::kNoBidir:
      return "MARIOH-B";
  }
  return "MARIOH";
}

void MariohMethod::Train(const ProjectedGraph& g_source,
                         const Hypergraph& h_source) {
  marioh_.Train(g_source, h_source);
}

Hypergraph MariohMethod::Reconstruct(const ProjectedGraph& g_target) {
  return marioh_.Reconstruct(g_target);
}

std::vector<std::pair<std::string, double>>
MariohMethod::ReconstructionStats() const {
  const core::ReconstructionStats& s = marioh_.last_reconstruction_stats();
  return {
      {"iterations", static_cast<double>(s.iterations)},
      {"maximal_cliques", static_cast<double>(s.maximal_cliques)},
      {"accepted_phase1", static_cast<double>(s.accepted_phase1)},
      {"accepted_phase2", static_cast<double>(s.accepted_phase2)},
      {"subcliques_scored", static_cast<double>(s.subcliques_scored)},
      {"filtering_edges", static_cast<double>(s.filtering_edges)},
      {"snapshot_patches", static_cast<double>(s.snapshot_patches)},
      {"snapshot_rebuilds", static_cast<double>(s.snapshot_rebuilds)},
      {"cliques_truncated", s.cliques_truncated ? 1.0 : 0.0},
      {"cancelled", s.cancelled ? 1.0 : 0.0},
  };
}

namespace {

/// Shared factory body for the four registered variants: typed base
/// options (if provided) + string overrides + the config seed.
StatusOr<std::unique_ptr<Reconstructor>> MakeVariant(
    core::MariohVariant variant, const std::string& name,
    const MethodConfig& config) {
  core::MariohOptions options =
      config.marioh_base != nullptr ? *config.marioh_base
                                    : core::MariohOptions{};
  OverrideReader reader(config);
  reader.Get("theta_init", &options.theta_init);
  reader.Get("r_percent", &options.r_percent);
  reader.Get("alpha", &options.alpha);
  reader.Get("max_iterations", &options.max_iterations);
  reader.Get("num_threads", &options.num_threads);
  reader.Get("snapshot_reuse", &options.snapshot_reuse);
  MARIOH_RETURN_IF_ERROR(reader.Finish(name));
  options.seed = config.seed;
  std::unique_ptr<Reconstructor> method =
      std::make_unique<MariohMethod>(variant, std::move(options));
  return method;
}

}  // namespace
}  // namespace marioh::api

MARIOH_REGISTER_METHOD(
    Marioh,
    (marioh::api::MethodInfo{
        .name = "MARIOH",
        .summary = "multiplicity-aware supervised reconstruction "
                   "(filtering + bidirectional search, the paper's full "
                   "method)",
        .supervised = true,
        .multiplicity_aware = true,
        .table2_order = 11,
        .table3_order = 5}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::api::MakeVariant(marioh::core::MariohVariant::kFull,
                                      "MARIOH", config);
    })

MARIOH_REGISTER_METHOD(
    MariohM,
    (marioh::api::MethodInfo{
        .name = "MARIOH-M",
        .summary = "MARIOH ablation: structural features only (no "
                   "multiplicity-aware features)",
        .supervised = true,
        .multiplicity_aware = true,
        .table2_order = 8,
        .table3_order = 2}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::api::MakeVariant(marioh::core::MariohVariant::kNoMulti,
                                      "MARIOH-M", config);
    })

MARIOH_REGISTER_METHOD(
    MariohF,
    (marioh::api::MethodInfo{
        .name = "MARIOH-F",
        .summary = "MARIOH ablation: no guaranteed-recovery filtering",
        .supervised = true,
        .multiplicity_aware = true,
        .table2_order = 9,
        .table3_order = 3}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::api::MakeVariant(marioh::core::MariohVariant::kNoFilter,
                                      "MARIOH-F", config);
    })

MARIOH_REGISTER_METHOD(
    MariohB,
    (marioh::api::MethodInfo{
        .name = "MARIOH-B",
        .summary = "MARIOH ablation: no bidirectional sub-clique search",
        .supervised = true,
        .multiplicity_aware = true,
        .table2_order = 10,
        .table3_order = 4}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::api::MakeVariant(marioh::core::MariohVariant::kNoBidir,
                                      "MARIOH-B", config);
    })
