#include "api/dataset_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/text_io.hpp"
#include "util/failpoint.hpp"
#include "util/parse.hpp"

namespace marioh::api {

std::string DatasetCache::NamesForErrorLocked() const {
  if (entries_.empty()) return "(cache is empty)";
  std::string names;
  for (const auto& [name, entry] : entries_) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

Status DatasetCache::ConflictLocked(const Entry& entry,
                                    const std::string& name) const {
  return Status::AlreadyExists(
      "dataset '" + name + "' is already loaded" +
      (entry.path.empty() ? std::string(" (in-memory)")
                          : " from '" + entry.path + "'"));
}

void DatasetCache::TouchLocked(const Entry& entry) const {
  entry.last_used = ++use_clock_;
}

void DatasetCache::EvictLocked(const std::string& keep) {
  if (max_bytes_ == 0) return;
  if (util::FailPoints::active()) {
    // Fault surface: a slow eviction pass ("cache.evict", delay action)
    // stretches the window in which the cache sits over budget — the
    // pin-aware invariants must hold regardless. Error/short make no
    // sense on a void path and are ignored.
    util::FailPoints::Eval("cache.evict");
  }
  while (total_bytes_ > max_bytes_) {
    // Oldest unpinned entry. "Unpinned" means the cache holds the only
    // reference to every non-null part of the handle, so erasing the
    // entry actually frees the memory. use_count is exact here: the
    // mutex serializes all handle hand-outs, so no reference can appear
    // concurrently.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      const DatasetHandle& d = it->second.dataset;
      bool pinned = (d.hypergraph != nullptr && d.hypergraph.use_count() > 1) ||
                    (d.graph != nullptr && d.graph.use_count() > 1);
      if (pinned) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything left is pinned
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

StatusOr<DatasetHandle> DatasetCache::InsertLocked(
    const std::string& name, DatasetHandle dataset,
    const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (!dataset.has_hypergraph() && !dataset.has_graph()) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' has neither a hypergraph nor a "
                                   "graph");
  }
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    // Load-once under concurrency: two racing loads of the same
    // name+path both succeed, the loser adopting the winner's handle —
    // provided the resident entry covers the kind the loser loaded
    // (a hypergraph load must not silently receive a graph-only entry).
    const DatasetHandle& resident = it->second.dataset;
    bool compatible =
        (!dataset.has_hypergraph() || resident.has_hypergraph()) &&
        (!dataset.has_graph() || resident.has_graph());
    if (!path.empty() && it->second.path == path && compatible) {
      TouchLocked(it->second);
      return resident;
    }
    return ConflictLocked(it->second, name);
  }
  dataset.name = name;
  Entry entry{dataset, path, /*bytes=*/0, /*last_used=*/0};
  if (dataset.hypergraph) entry.bytes += dataset.hypergraph->ApproxBytes();
  if (dataset.graph) entry.bytes += dataset.graph->ApproxBytes();
  total_bytes_ += entry.bytes;
  auto [inserted, ok] = entries_.emplace(name, std::move(entry));
  (void)ok;
  TouchLocked(inserted->second);
  // The entry just inserted is exempt from its own eviction pass — a
  // dataset larger than the whole budget still loads (and pushes
  // everything unpinned out); rejecting it would make the budget a
  // correctness knob instead of a memory one.
  EvictLocked(name);
  return dataset;
}

StatusOr<DatasetHandle> DatasetCache::LoadHypergraphFile(
    const std::string& name, const std::string& path) {
  {
    // Resolve the name before touching the file system: a same-path hit
    // is the load-once fast path, any other resident entry is a
    // conflict (reported even if the new path does not exist).
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      if (it->second.path == path && it->second.dataset.has_hypergraph()) {
        TouchLocked(it->second);
        RecordFileLocked("hypergraph", name, path);
        return it->second.dataset;
      }
      return ConflictLocked(it->second, name);
    }
  }
  if (util::FailPoints::active() &&
      util::FailPoints::Eval("cache.load") == util::FailAction::kError) {
    return Status::Unavailable(
        "failpoint 'cache.load': injected transient load failure for "
        "dataset '" + name + "'");
  }
  StatusOr<Hypergraph> h = io::TryReadHypergraphFile(path);
  if (!h.ok()) return h.status();
  auto hypergraph =
      std::make_shared<const Hypergraph>(std::move(h).value());
  auto graph = std::make_shared<const ProjectedGraph>(hypergraph->Project());
  std::lock_guard<std::mutex> lock(mutex_);
  StatusOr<DatasetHandle> inserted =
      InsertLocked(name,
                   DatasetHandle{name, std::move(hypergraph),
                                 std::move(graph)},
                   path);
  if (inserted.ok()) RecordFileLocked("hypergraph", name, path);
  return inserted;
}

StatusOr<DatasetHandle> DatasetCache::LoadProjectedGraphFile(
    const std::string& name, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      if (it->second.path == path && it->second.dataset.has_graph()) {
        TouchLocked(it->second);
        RecordFileLocked("graph", name, path);
        return it->second.dataset;
      }
      return ConflictLocked(it->second, name);
    }
  }
  if (util::FailPoints::active() &&
      util::FailPoints::Eval("cache.load") == util::FailAction::kError) {
    return Status::Unavailable(
        "failpoint 'cache.load': injected transient load failure for "
        "dataset '" + name + "'");
  }
  StatusOr<ProjectedGraph> g = io::TryReadProjectedGraphFile(path);
  if (!g.ok()) return g.status();
  auto graph = std::make_shared<const ProjectedGraph>(std::move(g).value());
  std::lock_guard<std::mutex> lock(mutex_);
  StatusOr<DatasetHandle> inserted = InsertLocked(
      name, DatasetHandle{name, nullptr, std::move(graph)}, path);
  if (inserted.ok()) RecordFileLocked("graph", name, path);
  return inserted;
}

StatusOr<DatasetHandle> DatasetCache::Insert(const std::string& name,
                                             HypergraphHandle hypergraph,
                                             GraphHandle graph) {
  std::lock_guard<std::mutex> lock(mutex_);
  return InsertLocked(
      name, DatasetHandle{name, std::move(hypergraph), std::move(graph)},
      /*path=*/"");
}

StatusOr<DatasetHandle> DatasetCache::InsertHypergraph(
    const std::string& name, Hypergraph hypergraph) {
  auto h = std::make_shared<const Hypergraph>(std::move(hypergraph));
  auto graph = std::make_shared<const ProjectedGraph>(h->Project());
  return Insert(name, std::move(h), std::move(graph));
}

StatusOr<DatasetHandle> DatasetCache::InsertProjectedGraph(
    const std::string& name, ProjectedGraph graph) {
  return Insert(name, nullptr,
                std::make_shared<const ProjectedGraph>(std::move(graph)));
}

StatusOr<DatasetHandle> DatasetCache::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset named '" + name +
                            "'; resident datasets: " +
                            NamesForErrorLocked());
  }
  TouchLocked(it->second);
  return it->second.dataset;
}

bool DatasetCache::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

Status DatasetCache::Erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset named '" + name +
                            "'; resident datasets: " +
                            NamesForErrorLocked());
  }
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
  // An explicit Erase also forgets how to restore the dataset (unlike
  // eviction, which only frees memory): the file record with this name,
  // or the gen recipe behind any member of its triple.
  bool changed = manifest_files_.erase(name) > 0;
  for (const char* suffix : {".train", ".target", ".truth"}) {
    std::string tail(suffix);
    if (name.size() > tail.size() &&
        name.compare(name.size() - tail.size(), tail.size(), tail) == 0) {
      changed |= gen_recipes_.erase(
                     name.substr(0, name.size() - tail.size())) > 0;
    }
  }
  if (changed) (void)WriteManifestLocked();
  return Status::Ok();
}

std::vector<std::string> DatasetCache::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

size_t DatasetCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t DatasetCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

uint64_t DatasetCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

size_t DatasetCache::max_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_bytes_;
}

void DatasetCache::set_max_bytes(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_bytes_ = max_bytes;
  EvictLocked(/*keep=*/"");
}

void DatasetCache::RecordFileLocked(const std::string& kind,
                                    const std::string& name,
                                    const std::string& path) {
  auto record = std::make_pair(kind, path);
  auto it = manifest_files_.find(name);
  if (it != manifest_files_.end() && it->second == record) return;
  manifest_files_[name] = std::move(record);
  // Best-effort: a manifest write failure must not fail the load that
  // triggered it — the dataset *is* resident; only its restorability
  // after a crash degrades.
  (void)WriteManifestLocked();
}

Status DatasetCache::WriteManifestLocked() {
  if (manifest_path_.empty()) return Status::Ok();
  // Temp file + rename(2): the manifest visible under its real name is
  // always a complete one — a crash mid-write leaves the previous
  // version, never a truncated file.
  std::string tmp = manifest_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot write manifest temp file '" +
                                 tmp + "'");
    }
    out << "# marioh dataset manifest: how to restore each dataset\n";
    for (const auto& [name, record] : manifest_files_) {
      out << record.first << ' ' << name << ' ' << record.second << '\n';
    }
    for (const auto& [basename, recipe] : gen_recipes_) {
      out << "gen " << basename << ' ' << recipe.first << ' '
          << recipe.second << '\n';
    }
    out.flush();
    if (!out) {
      return Status::Unavailable("write to manifest temp file '" + tmp +
                                 "' failed");
    }
  }
  if (std::rename(tmp.c_str(), manifest_path_.c_str()) != 0) {
    return Status::Unavailable("cannot rename manifest '" + tmp +
                               "' into place");
  }
  return Status::Ok();
}

Status DatasetCache::EnableManifest(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_path_ = path;
  return WriteManifestLocked();
}

void DatasetCache::RecordGenerated(const std::string& basename,
                                   const std::string& profile,
                                   uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto recipe = std::make_pair(profile, seed);
  auto it = gen_recipes_.find(basename);
  if (it != gen_recipes_.end() && it->second == recipe) return;
  gen_recipes_[basename] = std::move(recipe);
  (void)WriteManifestLocked();
}

StatusOr<std::vector<DatasetCache::ManifestEntry>>
DatasetCache::ReadManifest(const std::string& path) {
  std::vector<ManifestEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;  // no manifest yet: a fresh journal dir
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Grammar: `hypergraph <name> <path>` | `graph <name> <path>` |
    // `gen <basename> <profile> <seed>`; '#' starts a comment line.
    std::istringstream fields(line);
    std::string kind, name, a, b, trailing;
    fields >> kind >> name >> a >> b >> trailing;
    if (kind.empty() || kind[0] == '#') continue;
    if (kind == "gen") {
      std::optional<uint64_t> seed = util::ParseUint64(b);
      if (name.empty() || a.empty() || !seed.has_value() ||
          !trailing.empty()) {
        return Status::InvalidArgument(
            "manifest '" + path + "' line " +
            std::to_string(line_number) +
            ": expected 'gen <basename> <profile> <seed>', got '" + line +
            "'");
      }
      entries.push_back(ManifestEntry{kind, name, a, *seed});
    } else if (kind == "hypergraph" || kind == "graph") {
      if (name.empty() || a.empty() || !b.empty()) {
        return Status::InvalidArgument(
            "manifest '" + path + "' line " +
            std::to_string(line_number) + ": expected '" + kind +
            " <name> <path>', got '" + line + "'");
      }
      entries.push_back(ManifestEntry{kind, name, a, 0});
    } else {
      return Status::InvalidArgument(
          "manifest '" + path + "' line " + std::to_string(line_number) +
          ": unknown entry kind '" + kind + "'");
    }
  }
  return entries;
}

Status DatasetCache::RestoreFromManifest(const std::string& path,
                                         const GenResolver& gen) {
  StatusOr<std::vector<ManifestEntry>> manifest = ReadManifest(path);
  if (!manifest.ok()) return manifest.status();
  std::string errors;
  size_t failures = 0;
  for (const ManifestEntry& entry : *manifest) {
    Status restored;
    if (entry.kind == "hypergraph") {
      restored = LoadHypergraphFile(entry.name, entry.path).status();
    } else if (entry.kind == "graph") {
      restored = LoadProjectedGraphFile(entry.name, entry.path).status();
    } else if (gen != nullptr) {
      restored = gen(entry.name, entry.path, entry.seed);
    } else {
      restored = Status::FailedPrecondition(
          "no generator available to restore the triple");
    }
    if (!restored.ok()) {
      // Keep going: every restorable dataset should be back even if one
      // recipe broke — recovered jobs naming the broken one fail at
      // re-admission with a precise message, the rest proceed.
      ++failures;
      if (!errors.empty()) errors += "; ";
      errors += entry.kind + " " + entry.name + ": " + restored.message();
    }
  }
  if (failures > 0) {
    return Status::Unavailable(
        "manifest restore: " + std::to_string(failures) + " of " +
        std::to_string(manifest->size()) + " entries failed: " + errors);
  }
  return Status::Ok();
}

}  // namespace marioh::api
