/// \file session.hpp
/// \brief The `Session` façade: one reusable object that walks the
/// paper's whole protocol — configure a method, Train on the source pair,
/// Reconstruct the target, Evaluate against ground truth — with per-stage
/// timing, a wall-clock budget (the harness's OOT semantics), and a
/// progress/cancellation callback.
///
/// Every consumer of the library goes through this façade (or the
/// registry below it): the evaluation harness, `marioh_cli`, the bench
/// drivers, and examples. It is the surface a multi-request server front
/// end will sit on: all failure modes arrive as `Status` values, never
/// aborts.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/registry.hpp"
#include "api/status.hpp"
#include "core/marioh.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace marioh::api {

/// Invoked at the start of each stage ("train", "reconstruct",
/// "evaluate") with the wall-clock seconds elapsed since the first stage
/// began. Returning false cancels the run: the stage is not executed and
/// fails with kCancelled.
using ProgressCallback =
    std::function<bool(const std::string& stage, double elapsed_seconds)>;

/// Full configuration of a Session.
struct SessionOptions {
  /// Registry name of the method to run (see `MethodRegistry::Names()`).
  std::string method = "MARIOH";
  uint64_t seed = 1;
  /// Wall-clock budget over Train + Reconstruct, in seconds; negative
  /// means unlimited. The budget is evaluated each time a reconstruction
  /// completes (the paper's OOT accounting point, which still scores the
  /// overrunning run): once exceeded the session is marked
  /// `deadline_exceeded()`, the overshoot is recorded in the stage stats
  /// as `budget_overrun_seconds`, and any further stage fails with
  /// kDeadlineExceeded. For a *hard* mid-kernel abort, use `cancel`
  /// below with an armed deadline instead.
  double time_budget_seconds = -1.0;
  /// Cooperative stop signal, checked at stage entry and threaded into
  /// the MARIOH-family kernels so Cancel()/deadline trips land
  /// *mid-kernel* with bounded latency (baselines, which ignore the
  /// typed `marioh` options, still stop at stage boundaries). When the
  /// token trips during a stage, that stage's partial result is
  /// discarded and the stage returns kCancelled — or kDeadlineExceeded
  /// when the token's armed deadline (not the soft budget above)
  /// tripped it. Not owned; must outlive every stage call. Null = no
  /// cancellation (the default).
  const util::CancelToken* cancel = nullptr;
  /// Typed base options for the MARIOH-family methods; ignored by
  /// baselines.
  core::MariohOptions marioh;
  /// `key=value` overrides forwarded to the method factory (e.g.
  /// "theta_init=0.8"); unknown keys fail Configure.
  std::vector<std::pair<std::string, std::string>> overrides;
  ProgressCallback progress;
  /// Shared dataset cache consulted by the `*FromFile` entry points:
  /// when set, files are loaded once per path across every session (and
  /// service) sharing the cache, and the session trains/reconstructs on
  /// the shared immutable handle. Null keeps the classic
  /// one-read-per-call behavior.
  std::shared_ptr<DatasetCache> cache;
  /// Session-level keys already consumed by `ApplySessionOverride`, used
  /// to reject duplicate assignments (e.g. two `seed=` overrides) with a
  /// precise error. Managed by ApplySessionOverride; leave it alone.
  std::vector<std::string> applied_session_keys;
};

/// Applies one `key=value` assignment to `options`. Session-level keys
/// (`method`, `seed`, `time_budget_seconds`, `threads`) are set directly;
/// any other key is appended to `options.overrides` for the method
/// factory to validate at Configure time. `threads=N` (0 = all cores)
/// sets `marioh.num_threads` — the thread count of the reconstruction
/// hot kernels, with thread-count-invariant results; like the rest of
/// the typed `marioh` options it only affects the MARIOH-family methods
/// (baselines ignore it). Method-level keys ride the override list the
/// same way — e.g. `snapshot_reuse=0.3` tunes the MARIOH loop's
/// patch-vs-rebuild snapshot policy (a pure wall-clock knob; output is
/// identical for any value). kInvalidArgument on syntax errors (missing
/// '=', empty key, empty value), bad session-level values, and duplicate
/// session-level keys (each of `method`/`seed`/`time_budget_seconds`/
/// `threads` may be assigned at most once per SessionOptions).
Status ApplySessionOverride(SessionOptions* options,
                            const std::string& assignment);

/// Scores of the most recent reconstruction.
struct EvaluationResult {
  double jaccard = 0.0;        ///< Table II metric
  double multi_jaccard = 0.0;  ///< Table III metric
  size_t reconstructed_unique_edges = 0;
  size_t reconstructed_total_edges = 0;
};

/// A configured reconstruction run. Reusable across stages but
/// single-shot per reconstruction: Configure again for a fresh run.
class Session {
 public:
  Session() = default;

  /// Resolves the method in the registry and instantiates it. kNotFound
  /// for unknown methods (listing the candidates), kInvalidArgument for
  /// bad overrides. Resets all prior state.
  Status Configure(SessionOptions options);

  bool configured() const { return method_ != nullptr; }

  /// Metadata of the configured method. Configure first.
  const MethodInfo& method_info() const;

  /// Trains the configured method on the source pair. A no-op stage for
  /// unsupervised methods (still recorded in the stage timer).
  Status Train(const ProjectedGraph& g_source, const Hypergraph& h_source);

  /// Trains on a shared dataset handle (a hypergraph with its
  /// projection, as `DatasetCache` hypergraph loads provide). The session
  /// keeps the handle alive for its own lifetime, so N concurrent
  /// sessions can train on one in-memory copy — and cache eviction can
  /// never invalidate a running session. kInvalidArgument if the handle
  /// is not a source pair.
  Status Train(const DatasetHandle& source);

  /// Loads a source hypergraph from `path` (text format), projects it,
  /// and trains on the pair. With `SessionOptions::cache` set, the load
  /// is shared: one read per path process-wide, keyed by the path.
  Status TrainFromFile(const std::string& path);

  /// Reconstructs a hypergraph from the target projected graph; the
  /// result is available through `reconstruction()` (no copy is made).
  /// kFailedPrecondition if a supervised method was not trained.
  Status Reconstruct(const ProjectedGraph& g_target);

  /// Reconstructs from a shared dataset handle (any dataset holding a
  /// graph); the session keeps the handle alive. kInvalidArgument if the
  /// handle holds no graph.
  Status Reconstruct(const DatasetHandle& target);

  /// Loads a projected graph from `path` (text format) and reconstructs.
  /// With `SessionOptions::cache` set, the load is shared like
  /// TrainFromFile's.
  Status ReconstructFromFile(const std::string& path);

  /// Scores the most recent reconstruction against `ground_truth`.
  StatusOr<EvaluationResult> Evaluate(const Hypergraph& ground_truth);

  /// Writes the most recent reconstruction to `path` (text format).
  Status WriteReconstruction(const std::string& path) const;

  /// The most recent reconstruction, or null before Reconstruct.
  const Hypergraph* reconstruction() const {
    return reconstruction_ ? &*reconstruction_ : nullptr;
  }

  /// Moves the reconstruction out of the session (the session then holds
  /// none, as before Reconstruct). kFailedPrecondition if there is
  /// nothing to take. Lets callers like `api::Service` hand the result
  /// off without a copy.
  StatusOr<Hypergraph> TakeReconstruction();

  /// Per-stage wall-clock of this session ("train", "reconstruct",
  /// "evaluate").
  const util::StageTimer& stage_timer() const { return stage_timer_; }

  /// Seconds since the first stage began (0 before any stage).
  double elapsed_seconds() const;

  /// True once Train + Reconstruct wall-clock exceeded the budget.
  bool deadline_exceeded() const { return deadline_exceeded_; }

 private:
  /// Budget/cancellation gate at stage entry; starts the session clock.
  Status BeginStage(const std::string& stage);
  /// Records stage time and post-hoc budget overrun.
  void EndStage(const std::string& stage, double stage_seconds);

  SessionOptions options_;
  MethodInfo info_;
  std::unique_ptr<Reconstructor> method_;
  /// Shared-handle pins: keep handle-based inputs alive for the
  /// session's lifetime even if the cache evicts them mid-run.
  DatasetHandle source_handle_;
  DatasetHandle target_handle_;
  std::optional<Hypergraph> reconstruction_;
  util::StageTimer stage_timer_;
  std::optional<util::Timer> clock_;
  bool trained_ = false;
  bool deadline_exceeded_ = false;
};

}  // namespace marioh::api
