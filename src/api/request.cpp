#include "api/request.hpp"

#include <iomanip>
#include <sstream>
#include <vector>

#include "util/parse.hpp"

namespace marioh::api {

namespace {

/// The typed keys of the wire grammar, in serialization order. Anything
/// else is an override key.
constexpr const char* kTypedKeys[] = {
    "method",   "train",    "target",       "truth",       "seed",
    "budget",   "deadline", "priority",     "client",      "kthreads",
    "retries",  "backoff",  "backoff_mult", "backoff_cap", "jitter",
    "retryable"};

bool IsTypedKey(const std::string& key) {
  for (const char* typed : kTypedKeys) {
    if (key == typed) return true;
  }
  return false;
}

/// Enough significant digits that `ParseDouble` recovers the exact bits.
std::string FormatDouble(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

/// Lower-case wire names for the `retryable=` code list.
const char* RetryableCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

bool ParseRetryableCode(const std::string& name, StatusCode* out) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnavailable}) {
    if (name == RetryableCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

Status CheckNoWhitespace(const std::string& value, const std::string& what) {
  if (value.find_first_of(" \t\r\n\v\f") != std::string::npos) {
    return Status::InvalidArgument(what + " '" + value +
                                   "' contains whitespace and cannot be "
                                   "serialized");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeReconstructRequest(const ReconstructRequest& request) {
  const ReconstructRequest defaults;
  std::ostringstream out;
  bool first = true;
  auto emit = [&out, &first](const char* key, const std::string& value) {
    if (!first) out << ' ';
    first = false;
    out << key << '=' << value;
  };
  if (request.method != defaults.method) emit("method", request.method);
  if (!request.train_dataset.empty()) emit("train", request.train_dataset);
  if (!request.target_dataset.empty()) {
    emit("target", request.target_dataset);
  }
  if (!request.ground_truth_dataset.empty()) {
    emit("truth", request.ground_truth_dataset);
  }
  if (request.seed != defaults.seed) {
    emit("seed", std::to_string(request.seed));
  }
  if (request.time_budget_seconds != defaults.time_budget_seconds) {
    emit("budget", FormatDouble(request.time_budget_seconds));
  }
  if (request.deadline_seconds != defaults.deadline_seconds) {
    emit("deadline", FormatDouble(request.deadline_seconds));
  }
  if (request.priority != defaults.priority) {
    emit("priority", PriorityName(request.priority));
  }
  if (!request.client_id.empty()) emit("client", request.client_id);
  if (request.kernel_threads != defaults.kernel_threads) {
    emit("kthreads", std::to_string(request.kernel_threads));
  }
  if (request.retry.max_attempts > 1) {
    emit("retries", std::to_string(request.retry.max_attempts - 1));
  }
  if (request.retry.initial_backoff_seconds !=
      defaults.retry.initial_backoff_seconds) {
    emit("backoff", FormatDouble(request.retry.initial_backoff_seconds));
  }
  if (request.retry.backoff_multiplier !=
      defaults.retry.backoff_multiplier) {
    emit("backoff_mult", FormatDouble(request.retry.backoff_multiplier));
  }
  if (request.retry.max_backoff_seconds !=
      defaults.retry.max_backoff_seconds) {
    emit("backoff_cap", FormatDouble(request.retry.max_backoff_seconds));
  }
  if (request.retry.jitter_fraction != defaults.retry.jitter_fraction) {
    emit("jitter", FormatDouble(request.retry.jitter_fraction));
  }
  if (request.retry.retryable != defaults.retry.retryable) {
    std::string codes;
    for (StatusCode code : request.retry.retryable) {
      if (!codes.empty()) codes += ',';
      codes += RetryableCodeName(code);
    }
    emit("retryable", codes);
  }
  for (const auto& [key, value] : request.overrides) emit(key.c_str(), value);
  return out.str();
}

Status ParseReconstructRequest(const std::string& text,
                               ReconstructRequest* request) {
  std::istringstream args(text);
  std::string token;
  std::vector<std::string> keys_seen;
  while (args >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return Status::InvalidArgument("expected key=value, got '" + token +
                                     "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    // A repeated key — typed *or* override — is a typo, not a silent
    // overwrite; the journal replay path depends on this strictness to
    // reject drifted or corrupted accept records loudly.
    for (const std::string& seen : keys_seen) {
      if (seen == key) {
        return Status::InvalidArgument("duplicate option '" + key + "'");
      }
    }
    keys_seen.push_back(key);
    bool bad_value = false;
    if (key == "method") {
      request->method = value;
    } else if (key == "train") {
      request->train_dataset = value;
    } else if (key == "target") {
      request->target_dataset = value;
    } else if (key == "truth") {
      request->ground_truth_dataset = value;
    } else if (key == "seed") {
      std::optional<uint64_t> seed = util::ParseUint64(value);
      bad_value = !seed.has_value();
      if (!bad_value) request->seed = *seed;
    } else if (key == "budget") {
      std::optional<double> budget = util::ParseDouble(value);
      bad_value = !budget.has_value();
      if (!bad_value) request->time_budget_seconds = *budget;
    } else if (key == "deadline") {
      std::optional<double> deadline = util::ParseDouble(value);
      bad_value = !deadline.has_value();
      if (!bad_value) request->deadline_seconds = *deadline;
    } else if (key == "priority") {
      if (!ParsePriority(value, &request->priority)) {
        return Status::InvalidArgument(
            "bad priority '" + value +
            "' (expected batch, normal, or interactive)");
      }
    } else if (key == "client") {
      request->client_id = value;
    } else if (key == "kthreads") {
      std::optional<int> threads = util::ParseNonNegativeInt(value);
      bad_value = !threads.has_value();
      if (!bad_value) request->kernel_threads = *threads;
    } else if (key == "retries") {
      // retries=N grants N retries on top of the first attempt.
      std::optional<int> retries = util::ParseNonNegativeInt(value);
      bad_value = !retries.has_value();
      if (!bad_value) request->retry.max_attempts = 1 + *retries;
    } else if (key == "backoff") {
      std::optional<double> backoff = util::ParseDouble(value);
      bad_value = !backoff.has_value() || *backoff < 0.0;
      if (!bad_value) request->retry.initial_backoff_seconds = *backoff;
    } else if (key == "backoff_mult") {
      std::optional<double> mult = util::ParseDouble(value);
      bad_value = !mult.has_value() || *mult < 1.0;
      if (!bad_value) request->retry.backoff_multiplier = *mult;
    } else if (key == "backoff_cap") {
      std::optional<double> cap = util::ParseDouble(value);
      bad_value = !cap.has_value() || *cap < 0.0;
      if (!bad_value) request->retry.max_backoff_seconds = *cap;
    } else if (key == "jitter") {
      std::optional<double> jitter = util::ParseDouble(value);
      bad_value = !jitter.has_value() || *jitter < 0.0;
      if (!bad_value) request->retry.jitter_fraction = *jitter;
    } else if (key == "retryable") {
      std::vector<StatusCode> codes;
      std::istringstream list(value);
      std::string name;
      while (std::getline(list, name, ',')) {
        StatusCode code;
        if (!ParseRetryableCode(name, &code)) {
          return Status::InvalidArgument("bad retryable code '" + name +
                                         "' in '" + value + "'");
        }
        codes.push_back(code);
      }
      bad_value = codes.empty();
      if (!bad_value) request->retry.retryable = std::move(codes);
    } else {
      request->overrides.emplace_back(std::move(key), std::move(value));
      continue;
    }
    if (bad_value) {
      return Status::InvalidArgument("bad value '" + value +
                                     "' for option '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ValidateRequestSerializable(const ReconstructRequest& request) {
  if (request.method.empty()) {
    return Status::InvalidArgument(
        "request method is empty and cannot be serialized");
  }
  MARIOH_RETURN_IF_ERROR(CheckNoWhitespace(request.method, "method"));
  MARIOH_RETURN_IF_ERROR(
      CheckNoWhitespace(request.train_dataset, "train dataset"));
  MARIOH_RETURN_IF_ERROR(
      CheckNoWhitespace(request.target_dataset, "target dataset"));
  MARIOH_RETURN_IF_ERROR(CheckNoWhitespace(request.ground_truth_dataset,
                                           "ground truth dataset"));
  MARIOH_RETURN_IF_ERROR(CheckNoWhitespace(request.client_id, "client id"));
  for (const auto& [key, value] : request.overrides) {
    if (key.empty()) {
      return Status::InvalidArgument(
          "override with empty key cannot be serialized");
    }
    if (key.find('=') != std::string::npos) {
      return Status::InvalidArgument("override key '" + key +
                                     "' contains '=' and cannot be "
                                     "serialized");
    }
    if (IsTypedKey(key)) {
      return Status::InvalidArgument(
          "override key '" + key +
          "' shadows a typed request field and cannot be serialized");
    }
    MARIOH_RETURN_IF_ERROR(CheckNoWhitespace(key, "override key"));
    if (value.empty()) {
      return Status::InvalidArgument("override '" + key +
                                     "' has an empty value and cannot be "
                                     "serialized");
    }
    MARIOH_RETURN_IF_ERROR(CheckNoWhitespace(value, "override value"));
  }
  return Status::Ok();
}

}  // namespace marioh::api
