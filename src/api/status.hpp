/// \file status.hpp
/// \brief Error propagation for the public API: a lightweight `Status` /
/// `StatusOr<T>` pair (in the spirit of absl::Status, from scratch).
///
/// Library entry points that can fail on *user input* — unknown method
/// names, malformed files, bad option strings, exhausted time budgets —
/// return a `Status` (or `StatusOr<T>` when they produce a value) instead
/// of aborting, so callers such as `marioh_cli` or a future server front
/// end can report the problem and keep running. `MARIOH_CHECK` remains the
/// guard for programming errors only.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace marioh::api {

/// Canonical error categories (a deliberately small subset of the gRPC
/// code space — grow it only when a caller needs to dispatch on it).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed user input (option values, file syntax)
  kNotFound,            ///< unknown method / profile / missing file
  kAlreadyExists,       ///< duplicate registration
  kFailedPrecondition,  ///< API misuse (e.g. Reconstruct before Configure)
  kDeadlineExceeded,    ///< wall-clock budget exhausted (the paper's OOT)
  kCancelled,           ///< progress callback requested a stop
  kResourceExhausted,   ///< admission control: queue/quota/connection limit hit
  kInternal,            ///< invariant violation surfaced as an error
  /// Transient infrastructure failure (an injected or real load/read
  /// hiccup) — the one code the service retry policy treats as
  /// retryable by default: the operation may well succeed if repeated.
  kUnavailable,
};

/// Stable upper-case name of a code ("INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// An error code plus a human-readable message. Default-constructed
/// `Status` is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK `Status`. Accessing `value()` / `operator*`
/// on an error is a checked programming error.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a non-OK status (constructing from OK is an error:
  /// an OK StatusOr must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MARIOH_CHECK(!status_.ok());
  }
  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MARIOH_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MARIOH_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    MARIOH_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Unwraps a StatusOr or dies with a check failure at the caller's
/// location; for call sites that pass roster constants and treat failure
/// as a programming error. Use as
/// `return ValueOrDie(std::move(result), __FILE__, __LINE__);`.
template <typename T>
T ValueOrDie(StatusOr<T> result, const char* file, int line) {
  if (!result.ok()) {
    util::CheckFailed(file, line, result.status().ToString());
  }
  return std::move(result).value();
}

}  // namespace marioh::api

/// Evaluates `expr` (a `Status` expression) and returns it from the
/// enclosing function if it is an error.
#define MARIOH_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::marioh::api::Status mh_status = (expr);     \
    if (!mh_status.ok()) return mh_status;        \
  } while (0)
