/// \file method.hpp
/// \brief The `Reconstructor` interface every hypergraph-reconstruction
/// method implements — MARIOH, its ablation variants, and all baselines —
/// so one code path can run the paper's whole evaluation protocol.
///
/// This is the bottom of the public `api/` layer: it depends only on the
/// `hypergraph/` data model. `core/` and `baselines/` *implement* this
/// interface (dependency inversion); they do not own it. Instances are
/// normally created through the method registry (`api/registry.hpp`) or
/// the `Session` façade (`api/session.hpp`), not constructed directly.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::api {

/// A hypergraph reconstruction method. Supervised methods receive the
/// source pair through Train before Reconstruct is called; unsupervised
/// methods ignore Train.
class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Display name used in benchmark tables.
  virtual std::string Name() const = 0;

  /// True if the method consumes the source pair.
  virtual bool IsSupervised() const { return false; }

  /// Trains on the source projected graph and hypergraph. Default: no-op.
  virtual void Train(const ProjectedGraph& g_source,
                     const Hypergraph& h_source) {
    (void)g_source;
    (void)h_source;
  }

  /// Reconstructs a hypergraph from the target projected graph.
  virtual Hypergraph Reconstruct(const ProjectedGraph& g_target) = 0;

  /// Named counters describing the most recent Reconstruct call — e.g.
  /// {"cliques_truncated", 1} when an enumeration cap produced a partial
  /// candidate pool. `api::Session` *accumulates* each entry into its
  /// stage timer under "reconstruct.<name>" — session-lifetime totals,
  /// exactly like the stage times themselves — so callers see degraded
  /// runs instead of a silently partial result (a nonzero
  /// reconstruct.cliques_truncated means at least one reconstruction of
  /// the session was truncated). Default: none.
  virtual std::vector<std::pair<std::string, double>> ReconstructionStats()
      const {
    return {};
  }
};

}  // namespace marioh::api
