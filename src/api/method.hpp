/// \file method.hpp
/// \brief The `Reconstructor` interface every hypergraph-reconstruction
/// method implements — MARIOH, its ablation variants, and all baselines —
/// so one code path can run the paper's whole evaluation protocol.
///
/// This is the bottom of the public `api/` layer: it depends only on the
/// `hypergraph/` data model. `core/` and `baselines/` *implement* this
/// interface (dependency inversion); they do not own it. Instances are
/// normally created through the method registry (`api/registry.hpp`) or
/// the `Session` façade (`api/session.hpp`), not constructed directly.

#pragma once

#include <string>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::api {

/// A hypergraph reconstruction method. Supervised methods receive the
/// source pair through Train before Reconstruct is called; unsupervised
/// methods ignore Train.
class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Display name used in benchmark tables.
  virtual std::string Name() const = 0;

  /// True if the method consumes the source pair.
  virtual bool IsSupervised() const { return false; }

  /// Trains on the source projected graph and hypergraph. Default: no-op.
  virtual void Train(const ProjectedGraph& g_source,
                     const Hypergraph& h_source) {
    (void)g_source;
    (void)h_source;
  }

  /// Reconstructs a hypergraph from the target projected graph.
  virtual Hypergraph Reconstruct(const ProjectedGraph& g_target) = 0;
};

}  // namespace marioh::api
