/// \file mlp.hpp
/// \brief From-scratch multilayer perceptron with ReLU hidden layers,
/// sigmoid or softmax heads, Adam optimization, and minibatch training.
/// This is the "simple MLP" the paper uses as its multiplicity-aware
/// classifier M (Sect. III-D), and is reused for node classification.

#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace marioh::ml {

/// Output head of the network.
enum class Head {
  kSigmoid,  ///< binary classification; Predict returns P(y=1).
  kSoftmax,  ///< multiclass; PredictClasses returns argmax.
};

/// Training hyperparameters.
struct MlpOptions {
  std::vector<size_t> hidden = {64, 32};  ///< hidden layer widths
  Head head = Head::kSigmoid;
  double learning_rate = 1e-3;  ///< Adam step size
  double weight_decay = 1e-5;   ///< L2 penalty
  int epochs = 60;
  size_t batch_size = 64;
  uint64_t seed = 1;
};

/// Fully connected network trained with Adam on cross-entropy loss.
class Mlp {
 public:
  /// Builds a network mapping `input_dim` features to `output_dim` logits.
  /// For Head::kSigmoid, `output_dim` must be 1.
  Mlp(size_t input_dim, size_t output_dim, const MlpOptions& options);

  /// Trains on rows of `x` with labels `y`. For the sigmoid head, `y` holds
  /// 0/1 values; for softmax, class indices. Returns the final epoch's mean
  /// training loss.
  double Fit(const la::Matrix& x, const std::vector<double>& y);

  /// Sigmoid head: P(y=1 | x) for one example.
  double Predict(const la::Vector& x) const;

  /// Sigmoid head: probabilities for every row of `x`.
  la::Vector PredictBatch(const la::Matrix& x) const;

  /// Softmax head: class probabilities for one example.
  la::Vector PredictProba(const la::Vector& x) const;

  /// Softmax head: argmax class per row.
  std::vector<uint32_t> PredictClasses(const la::Matrix& x) const;

  size_t input_dim() const { return dims_.front(); }
  size_t output_dim() const { return dims_.back(); }

 private:
  // Forward pass; `activations` receives the post-activation output of each
  // layer (activations[0] is the input).
  la::Vector Forward(const la::Vector& x,
                     std::vector<la::Vector>* activations) const;
  void AdamStep(size_t layer, const la::Matrix& grad_w,
                const la::Vector& grad_b);

  MlpOptions options_;
  std::vector<size_t> dims_;          // layer widths incl. input & output
  std::vector<la::Matrix> weights_;   // weights_[l]: dims_[l+1] x dims_[l]
  std::vector<la::Vector> biases_;
  // Adam state.
  std::vector<la::Matrix> m_w_, v_w_;
  std::vector<la::Vector> m_b_, v_b_;
  int64_t adam_t_ = 0;
};

}  // namespace marioh::ml
