#include "ml/scaler.hpp"

#include <cmath>

#include "util/check.hpp"

namespace marioh::ml {

void StandardScaler::Fit(const la::Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  MARIOH_CHECK_GT(n, 0u);
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean_[j];
      std_[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    std_[j] = std::sqrt(std_[j] / static_cast<double>(n));
    if (std_[j] < 1e-12) std_[j] = 1.0;
  }
}

void StandardScaler::Transform(la::Vector* x) const {
  MARIOH_CHECK_EQ(x->size(), mean_.size());
  for (size_t j = 0; j < x->size(); ++j) {
    (*x)[j] = ((*x)[j] - mean_[j]) / std_[j];
  }
}

void StandardScaler::Transform(la::Matrix* x) const {
  MARIOH_CHECK_EQ(x->cols(), mean_.size());
  for (size_t i = 0; i < x->rows(); ++i) {
    double* row = x->Row(i);
    for (size_t j = 0; j < x->cols(); ++j) {
      row[j] = (row[j] - mean_[j]) / std_[j];
    }
  }
}

}  // namespace marioh::ml
