#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace marioh::ml {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

void SoftmaxInPlace(la::Vector* z) {
  double mx = *std::max_element(z->begin(), z->end());
  double sum = 0.0;
  for (double& v : *z) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : *z) v /= sum;
}

}  // namespace

Mlp::Mlp(size_t input_dim, size_t output_dim, const MlpOptions& options)
    : options_(options) {
  MARIOH_CHECK_GT(input_dim, 0u);
  MARIOH_CHECK_GT(output_dim, 0u);
  if (options_.head == Head::kSigmoid) MARIOH_CHECK_EQ(output_dim, 1u);
  dims_.push_back(input_dim);
  for (size_t h : options_.hidden) dims_.push_back(h);
  dims_.push_back(output_dim);

  util::Rng rng(options_.seed);
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    size_t fan_in = dims_[l];
    size_t fan_out = dims_[l + 1];
    // He initialization for ReLU layers.
    double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    la::Matrix w(fan_out, fan_in);
    for (size_t i = 0; i < fan_out; ++i) {
      for (size_t j = 0; j < fan_in; ++j) {
        w(i, j) = rng.Normal(0.0, scale);
      }
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(fan_out, 0.0);
    m_w_.emplace_back(fan_out, fan_in);
    v_w_.emplace_back(fan_out, fan_in);
    m_b_.emplace_back(fan_out, 0.0);
    v_b_.emplace_back(fan_out, 0.0);
  }
}

la::Vector Mlp::Forward(const la::Vector& x,
                        std::vector<la::Vector>* activations) const {
  MARIOH_CHECK_EQ(x.size(), dims_.front());
  la::Vector cur = x;
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(cur);
  }
  for (size_t l = 0; l < weights_.size(); ++l) {
    la::Vector next = weights_[l].Apply(cur);
    for (size_t i = 0; i < next.size(); ++i) next[i] += biases_[l][i];
    bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      for (double& v : next) v = std::max(0.0, v);  // ReLU
    }
    cur = std::move(next);
    if (activations != nullptr) activations->push_back(cur);
  }
  return cur;  // raw logits for the output layer
}

void Mlp::AdamStep(size_t layer, const la::Matrix& grad_w,
                   const la::Vector& grad_b) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  double lr = options_.learning_rate;
  double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));

  la::Matrix& w = weights_[layer];
  la::Matrix& mw = m_w_[layer];
  la::Matrix& vw = v_w_[layer];
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      double g = grad_w(i, j) + options_.weight_decay * w(i, j);
      mw(i, j) = kBeta1 * mw(i, j) + (1 - kBeta1) * g;
      vw(i, j) = kBeta2 * vw(i, j) + (1 - kBeta2) * g * g;
      double mhat = mw(i, j) / bc1;
      double vhat = vw(i, j) / bc2;
      w(i, j) -= lr * mhat / (std::sqrt(vhat) + kEps);
    }
  }
  la::Vector& b = biases_[layer];
  la::Vector& mb = m_b_[layer];
  la::Vector& vb = v_b_[layer];
  for (size_t i = 0; i < b.size(); ++i) {
    double g = grad_b[i];
    mb[i] = kBeta1 * mb[i] + (1 - kBeta1) * g;
    vb[i] = kBeta2 * vb[i] + (1 - kBeta2) * g * g;
    double mhat = mb[i] / bc1;
    double vhat = vb[i] / bc2;
    b[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
  }
}

double Mlp::Fit(const la::Matrix& x, const std::vector<double>& y) {
  const size_t n = x.rows();
  MARIOH_CHECK_EQ(n, y.size());
  MARIOH_CHECK_GT(n, 0u);
  util::Rng rng(options_.seed ^ 0x5bd1e995u);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const size_t num_layers = weights_.size();
  double last_epoch_loss = 0.0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t processed = 0;
    for (size_t start = 0; start < n; start += options_.batch_size) {
      size_t end = std::min(n, start + options_.batch_size);
      size_t bs = end - start;
      // Accumulated gradients for the batch.
      std::vector<la::Matrix> gw;
      std::vector<la::Vector> gb;
      for (size_t l = 0; l < num_layers; ++l) {
        gw.emplace_back(weights_[l].rows(), weights_[l].cols());
        gb.emplace_back(biases_[l].size(), 0.0);
      }
      for (size_t idx = start; idx < end; ++idx) {
        size_t row = order[idx];
        la::Vector input(x.Row(row), x.Row(row) + x.cols());
        std::vector<la::Vector> acts;
        la::Vector logits = Forward(input, &acts);

        // delta = dLoss/dlogits for cross-entropy heads.
        la::Vector delta(logits.size());
        if (options_.head == Head::kSigmoid) {
          double p = Sigmoid(logits[0]);
          double target = y[row];
          delta[0] = p - target;
          epoch_loss += -(target * std::log(std::max(p, 1e-12)) +
                          (1 - target) * std::log(std::max(1 - p, 1e-12)));
        } else {
          la::Vector probs = logits;
          SoftmaxInPlace(&probs);
          size_t target = static_cast<size_t>(y[row]);
          MARIOH_CHECK_LT(target, probs.size());
          for (size_t i = 0; i < probs.size(); ++i) {
            delta[i] = probs[i] - (i == target ? 1.0 : 0.0);
          }
          epoch_loss += -std::log(std::max(probs[target], 1e-12));
        }

        // Backpropagate.
        for (size_t l = num_layers; l-- > 0;) {
          const la::Vector& a_in = acts[l];
          for (size_t i = 0; i < delta.size(); ++i) {
            gb[l][i] += delta[i];
            double* grow = gw[l].Row(i);
            for (size_t j = 0; j < a_in.size(); ++j) {
              grow[j] += delta[i] * a_in[j];
            }
          }
          if (l == 0) break;
          la::Vector prev(dims_[l], 0.0);
          for (size_t j = 0; j < prev.size(); ++j) {
            double s = 0.0;
            for (size_t i = 0; i < delta.size(); ++i) {
              s += weights_[l](i, j) * delta[i];
            }
            // ReLU derivative at acts[l][j].
            prev[j] = acts[l][j] > 0.0 ? s : 0.0;
          }
          delta = std::move(prev);
        }
      }
      double inv = 1.0 / static_cast<double>(bs);
      for (size_t l = 0; l < num_layers; ++l) {
        gw[l].Scale(inv);
        for (double& v : gb[l]) v *= inv;
      }
      ++adam_t_;
      for (size_t l = 0; l < num_layers; ++l) AdamStep(l, gw[l], gb[l]);
      processed += bs;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(processed);
  }
  return last_epoch_loss;
}

double Mlp::Predict(const la::Vector& x) const {
  MARIOH_CHECK(options_.head == Head::kSigmoid);
  la::Vector logits = Forward(x, nullptr);
  return Sigmoid(logits[0]);
}

la::Vector Mlp::PredictBatch(const la::Matrix& x) const {
  la::Vector out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    la::Vector row(x.Row(i), x.Row(i) + x.cols());
    out[i] = Predict(row);
  }
  return out;
}

la::Vector Mlp::PredictProba(const la::Vector& x) const {
  MARIOH_CHECK(options_.head == Head::kSoftmax);
  la::Vector logits = Forward(x, nullptr);
  SoftmaxInPlace(&logits);
  return logits;
}

std::vector<uint32_t> Mlp::PredictClasses(const la::Matrix& x) const {
  std::vector<uint32_t> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    la::Vector row(x.Row(i), x.Row(i) + x.cols());
    la::Vector probs = PredictProba(row);
    out[i] = static_cast<uint32_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  return out;
}

}  // namespace marioh::ml
