/// \file scaler.hpp
/// \brief Feature standardization (zero mean, unit variance) fitted on the
/// training set and applied to inference inputs.

#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace marioh::ml {

/// Standard scaler: x' = (x - mean) / std per feature dimension.
/// Dimensions with zero variance are passed through centered only.
class StandardScaler {
 public:
  /// Fits mean and std on the rows of `x`.
  void Fit(const la::Matrix& x);

  /// Transforms one feature vector in place.
  void Transform(la::Vector* x) const;

  /// Transforms every row of `x` in place.
  void Transform(la::Matrix* x) const;

  /// True once Fit has been called.
  bool fitted() const { return !mean_.empty(); }

  const la::Vector& mean() const { return mean_; }
  const la::Vector& std_dev() const { return std_; }

 private:
  la::Vector mean_;
  la::Vector std_;
};

}  // namespace marioh::ml
