#include "ml/gcn.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace marioh::ml {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Gcn::Gcn(const ProjectedGraph& g, const GcnOptions& options)
    : options_(options), n_(g.num_nodes()) {
  // Symmetric normalization with self loops: coeff(u,v) = 1/sqrt(d_u d_v)
  // where d includes the self loop. Edge weights are used as multiplicities.
  std::vector<double> deg(n_, 1.0);  // self loop
  for (NodeId u = 0; u < n_; ++u) {
    for (const auto& [v, w] : g.Neighbors(u)) {
      (void)v;
      deg[u] += w;
    }
  }
  norm_adj_.resize(n_);
  for (NodeId u = 0; u < n_; ++u) {
    norm_adj_[u].push_back({u, 1.0 / deg[u]});
    for (const auto& [v, w] : g.Neighbors(u)) {
      norm_adj_[u].push_back({v, w / std::sqrt(deg[u] * deg[v])});
    }
  }
  util::Rng rng(options_.seed);
  w0_ = la::Matrix(n_, options_.hidden_dim);
  double s0 = std::sqrt(2.0 / static_cast<double>(n_ + options_.hidden_dim));
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < options_.hidden_dim; ++j) {
      w0_(i, j) = rng.Normal(0.0, s0);
    }
  }
  w1_ = la::Matrix(options_.hidden_dim, options_.output_dim);
  double s1 = std::sqrt(
      2.0 / static_cast<double>(options_.hidden_dim + options_.output_dim));
  for (size_t i = 0; i < options_.hidden_dim; ++i) {
    for (size_t j = 0; j < options_.output_dim; ++j) {
      w1_(i, j) = rng.Normal(0.0, s1);
    }
  }
  ComputeEmbeddings();
}

la::Matrix Gcn::Propagate(const la::Matrix& h) const {
  la::Matrix out(n_, h.cols());
  for (NodeId u = 0; u < n_; ++u) {
    double* orow = out.Row(u);
    for (const auto& [v, c] : norm_adj_[u]) {
      const double* hrow = h.Row(v);
      for (size_t j = 0; j < h.cols(); ++j) orow[j] += c * hrow[j];
    }
  }
  return out;
}

void Gcn::ComputeEmbeddings() {
  // H1 = ReLU(Â W0) (since X = I), Z = Â H1 W1.
  la::Matrix h1 = Propagate(w0_);
  for (size_t i = 0; i < h1.rows(); ++i) {
    double* row = h1.Row(i);
    for (size_t j = 0; j < h1.cols(); ++j) row[j] = std::max(0.0, row[j]);
  }
  z_ = Propagate(h1).Multiply(w1_);
}

double Gcn::Fit(const std::vector<std::pair<NodeId, NodeId>>& pos,
                const std::vector<std::pair<NodeId, NodeId>>& neg) {
  MARIOH_CHECK(!pos.empty());
  double loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // Forward with cached intermediates.
    la::Matrix a0 = Propagate(w0_);  // pre-activation of layer 1
    la::Matrix h1 = a0;
    for (size_t i = 0; i < h1.rows(); ++i) {
      double* row = h1.Row(i);
      for (size_t j = 0; j < h1.cols(); ++j) row[j] = std::max(0.0, row[j]);
    }
    la::Matrix p1 = Propagate(h1);    // Â H1
    la::Matrix z = p1.Multiply(w1_);  // embeddings

    // Dot-product decoder loss over pos (label 1) and neg (label 0).
    la::Matrix dz(n_, options_.output_dim);
    loss = 0.0;
    auto accumulate = [&](const std::vector<std::pair<NodeId, NodeId>>& set,
                          double label) {
      for (const auto& [u, v] : set) {
        double score = 0.0;
        const double* zu = z.Row(u);
        const double* zv = z.Row(v);
        for (size_t j = 0; j < options_.output_dim; ++j) {
          score += zu[j] * zv[j];
        }
        double p = Sigmoid(score);
        loss += -(label * std::log(std::max(p, 1e-12)) +
                  (1 - label) * std::log(std::max(1 - p, 1e-12)));
        double g = p - label;
        double* du = dz.Row(u);
        double* dv = dz.Row(v);
        for (size_t j = 0; j < options_.output_dim; ++j) {
          du[j] += g * zv[j];
          dv[j] += g * zu[j];
        }
      }
    };
    accumulate(pos, 1.0);
    accumulate(neg, 0.0);
    double inv = 1.0 / static_cast<double>(pos.size() + neg.size());
    loss *= inv;
    dz.Scale(inv);

    // Backprop: Z = P1 W1 with P1 = Â H1 fixed w.r.t. W1.
    la::Matrix gw1 = p1.Transposed().Multiply(dz);
    // dP1 = dZ W1^T; dH1 = Â^T dP1 = Â dP1 (Â symmetric).
    la::Matrix dp1 = dz.Multiply(w1_.Transposed());
    la::Matrix dh1 = Propagate(dp1);
    // ReLU mask.
    for (size_t i = 0; i < dh1.rows(); ++i) {
      double* drow = dh1.Row(i);
      const double* arow = a0.Row(i);
      for (size_t j = 0; j < dh1.cols(); ++j) {
        if (arow[j] <= 0.0) drow[j] = 0.0;
      }
    }
    // dW0 = Â^T dH1 = Â dH1 (since H0 = I, A0 = Â W0).
    la::Matrix gw0 = Propagate(dh1);

    double lr = options_.learning_rate;
    for (size_t i = 0; i < w1_.rows(); ++i) {
      for (size_t j = 0; j < w1_.cols(); ++j) {
        w1_(i, j) -= lr * gw1(i, j);
      }
    }
    for (size_t i = 0; i < w0_.rows(); ++i) {
      for (size_t j = 0; j < w0_.cols(); ++j) {
        w0_(i, j) -= lr * gw0(i, j);
      }
    }
  }
  ComputeEmbeddings();
  return loss;
}

}  // namespace marioh::ml
