/// \file gcn.hpp
/// \brief Dense two-layer graph convolutional network producing node
/// embeddings for the link-prediction experiment (Table IX). With one-hot
/// input features (as in the paper), the first layer reduces to selecting
/// rows of W0, so we implement X = I implicitly.

#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/projected_graph.hpp"
#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace marioh::ml {

/// GCN hyperparameters.
struct GcnOptions {
  size_t hidden_dim = 32;
  size_t output_dim = 16;
  double learning_rate = 5e-3;
  int epochs = 120;
  uint64_t seed = 7;
};

/// Two-layer GCN over the symmetric-normalized adjacency with self-loops:
/// `Z = Â ReLU(Â I W0) W1`, trained on a link-classification objective
/// (dot-product decoder + BCE on positive/negative node pairs).
class Gcn {
 public:
  /// Builds normalization structures for `g`.
  Gcn(const ProjectedGraph& g, const GcnOptions& options);

  /// Trains on positive pairs `pos` and negative pairs `neg`.
  /// Returns the final epoch loss.
  double Fit(const std::vector<std::pair<NodeId, NodeId>>& pos,
             const std::vector<std::pair<NodeId, NodeId>>& neg);

  /// Embedding of every node (row i = node i), valid after Fit.
  const la::Matrix& Embeddings() const { return z_; }

 private:
  la::Matrix Propagate(const la::Matrix& h) const;  // Â * h
  void ComputeEmbeddings();

  GcnOptions options_;
  size_t n_;
  // Â in CSR-ish triplet form: for each node, (neighbor, coeff) pairs
  // including the self loop.
  std::vector<std::vector<std::pair<NodeId, double>>> norm_adj_;
  la::Matrix w0_;  // n x hidden (since X = I)
  la::Matrix w1_;  // hidden x output
  la::Matrix z_;   // n x output embeddings
};

}  // namespace marioh::ml
