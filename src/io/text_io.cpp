#include "io/text_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace marioh::io {
namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

uint64_t ParseNumber(const std::string& token, size_t line_number) {
  try {
    size_t pos = 0;
    uint64_t value = std::stoull(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("line " + std::to_string(line_number) +
                                ": bad token '" + token + "'");
  }
}

}  // namespace

Hypergraph ReadHypergraph(std::istream& in) {
  Hypergraph h;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    uint32_t multiplicity = 1;
    // Optional trailing "x m".
    if (parts.size() >= 2 && parts[parts.size() - 2] == "x") {
      multiplicity = static_cast<uint32_t>(
          ParseNumber(parts.back(), line_number));
      parts.resize(parts.size() - 2);
    }
    NodeSet edge;
    edge.reserve(parts.size());
    for (const std::string& p : parts) {
      edge.push_back(static_cast<NodeId>(ParseNumber(p, line_number)));
    }
    h.AddEdge(std::move(edge), multiplicity);
  }
  return h;
}

Hypergraph ReadHypergraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open hypergraph file: " + path);
  }
  return ReadHypergraph(in);
}

void WriteHypergraph(const Hypergraph& h, std::ostream& out) {
  out << "# marioh hypergraph: " << h.num_nodes() << " nodes, "
      << h.num_unique_edges() << " unique hyperedges\n";
  for (const NodeSet& e : h.UniqueEdges()) {
    for (size_t i = 0; i < e.size(); ++i) {
      out << e[i] << (i + 1 < e.size() ? " " : "");
    }
    uint32_t m = h.Multiplicity(e);
    if (m > 1) out << " x " << m;
    out << "\n";
  }
}

void WriteHypergraphFile(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::invalid_argument("cannot open file for writing: " + path);
  }
  WriteHypergraph(h, out);
}

ProjectedGraph ReadProjectedGraph(std::istream& in) {
  std::string line;
  size_t line_number = 0;
  struct Row {
    NodeId u;
    NodeId v;
    uint32_t w;
  };
  std::vector<Row> rows;
  NodeId max_node = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    if (parts.size() < 2 || parts.size() > 3) {
      throw std::invalid_argument("line " + std::to_string(line_number) +
                                  ": expected 'u v [w]'");
    }
    Row row;
    row.u = static_cast<NodeId>(ParseNumber(parts[0], line_number));
    row.v = static_cast<NodeId>(ParseNumber(parts[1], line_number));
    row.w = parts.size() == 3 ? static_cast<uint32_t>(ParseNumber(
                                    parts[2], line_number))
                              : 1;
    if (row.u == row.v) {
      throw std::invalid_argument("line " + std::to_string(line_number) +
                                  ": self loop");
    }
    max_node = std::max({max_node, row.u, row.v});
    rows.push_back(row);
  }
  ProjectedGraph g(rows.empty() ? 0 : max_node + 1);
  for (const Row& row : rows) g.AddWeight(row.u, row.v, row.w);
  return g;
}

ProjectedGraph ReadProjectedGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open graph file: " + path);
  }
  return ReadProjectedGraph(in);
}

void WriteProjectedGraph(const ProjectedGraph& g, std::ostream& out) {
  out << "# marioh projected graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges\n";
  for (const ProjectedGraph::Edge& e : g.Edges()) {
    out << e.u << " " << e.v << " " << e.weight << "\n";
  }
}

void WriteProjectedGraphFile(const ProjectedGraph& g,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::invalid_argument("cannot open file for writing: " + path);
  }
  WriteProjectedGraph(g, out);
}

}  // namespace marioh::io
