#include "io/text_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/failpoint.hpp"

namespace marioh::io {
namespace {

using api::Status;
using api::StatusOr;

/// Fault surface: a transient file-system failure at the named
/// failpoint ("io.read_hypergraph" / "io.read_graph"). kUnavailable so
/// the service retry policy treats it as retryable, unlike the
/// permanent kNotFound / kInvalidArgument the real read paths return.
Status InjectedReadFailure(const std::string& point,
                           const std::string& path) {
  return Status::Unavailable("failpoint '" + point +
                             "': injected transient read failure for " +
                             path);
}

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

StatusOr<uint64_t> ParseNumber(const std::string& token,
                               size_t line_number) {
  try {
    size_t pos = 0;
    uint64_t value = std::stoull(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": bad token '" + token + "'");
  }
}

/// Unwraps a StatusOr for the throwing wrapper functions.
template <typename T>
T ValueOrThrow(StatusOr<T> result) {
  if (!result.ok()) {
    throw std::invalid_argument(result.status().message());
  }
  return std::move(result).value();
}

}  // namespace

StatusOr<Hypergraph> TryReadHypergraph(std::istream& in) {
  Hypergraph h;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    uint32_t multiplicity = 1;
    // Optional trailing "x m".
    if (parts.size() >= 2 && parts[parts.size() - 2] == "x") {
      StatusOr<uint64_t> m = ParseNumber(parts.back(), line_number);
      if (!m.ok()) return m.status();
      multiplicity = static_cast<uint32_t>(*m);
      parts.resize(parts.size() - 2);
    }
    NodeSet edge;
    edge.reserve(parts.size());
    for (const std::string& p : parts) {
      StatusOr<uint64_t> id = ParseNumber(p, line_number);
      if (!id.ok()) return id.status();
      edge.push_back(static_cast<NodeId>(*id));
    }
    h.AddEdge(std::move(edge), multiplicity);
  }
  return h;
}

StatusOr<Hypergraph> TryReadHypergraphFile(const std::string& path) {
  if (util::FailPoints::active() &&
      util::FailPoints::Eval("io.read_hypergraph") ==
          util::FailAction::kError) {
    return InjectedReadFailure("io.read_hypergraph", path);
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open hypergraph file: " + path);
  }
  return TryReadHypergraph(in);
}

void WriteHypergraph(const Hypergraph& h, std::ostream& out) {
  out << "# marioh hypergraph: " << h.num_nodes() << " nodes, "
      << h.num_unique_edges() << " unique hyperedges\n";
  for (const NodeSet& e : h.UniqueEdges()) {
    for (size_t i = 0; i < e.size(); ++i) {
      out << e[i] << (i + 1 < e.size() ? " " : "");
    }
    uint32_t m = h.Multiplicity(e);
    if (m > 1) out << " x " << m;
    out << "\n";
  }
}

api::Status TryWriteHypergraphFile(const Hypergraph& h,
                                   const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    // Not kNotFound: the path is caller-supplied output, so an unopenable
    // target (missing directory, no permission) is a bad argument.
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  WriteHypergraph(h, out);
  return Status::Ok();
}

StatusOr<ProjectedGraph> TryReadProjectedGraph(std::istream& in) {
  std::string line;
  size_t line_number = 0;
  struct Row {
    NodeId u;
    NodeId v;
    uint32_t w;
  };
  std::vector<Row> rows;
  NodeId max_node = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("line " +
                                     std::to_string(line_number) +
                                     ": expected 'u v [w]'");
    }
    StatusOr<uint64_t> u = ParseNumber(parts[0], line_number);
    if (!u.ok()) return u.status();
    StatusOr<uint64_t> v = ParseNumber(parts[1], line_number);
    if (!v.ok()) return v.status();
    Row row;
    row.u = static_cast<NodeId>(*u);
    row.v = static_cast<NodeId>(*v);
    row.w = 1;
    if (parts.size() == 3) {
      StatusOr<uint64_t> w = ParseNumber(parts[2], line_number);
      if (!w.ok()) return w.status();
      row.w = static_cast<uint32_t>(*w);
    }
    if (row.u == row.v) {
      return Status::InvalidArgument("line " +
                                     std::to_string(line_number) +
                                     ": self loop");
    }
    max_node = std::max({max_node, row.u, row.v});
    rows.push_back(row);
  }
  ProjectedGraph g(rows.empty() ? 0 : max_node + 1);
  for (const Row& row : rows) g.AddWeight(row.u, row.v, row.w);
  return g;
}

StatusOr<ProjectedGraph> TryReadProjectedGraphFile(const std::string& path) {
  if (util::FailPoints::active() &&
      util::FailPoints::Eval("io.read_graph") == util::FailAction::kError) {
    return InjectedReadFailure("io.read_graph", path);
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open graph file: " + path);
  }
  return TryReadProjectedGraph(in);
}

void WriteProjectedGraph(const ProjectedGraph& g, std::ostream& out) {
  out << "# marioh projected graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges\n";
  for (const ProjectedGraph::Edge& e : g.Edges()) {
    out << e.u << " " << e.v << " " << e.weight << "\n";
  }
}

api::Status TryWriteProjectedGraphFile(const ProjectedGraph& g,
                                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    // Not kNotFound: the path is caller-supplied output, so an unopenable
    // target (missing directory, no permission) is a bad argument.
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  WriteProjectedGraph(g, out);
  return Status::Ok();
}

Hypergraph ReadHypergraph(std::istream& in) {
  return ValueOrThrow(TryReadHypergraph(in));
}

Hypergraph ReadHypergraphFile(const std::string& path) {
  return ValueOrThrow(TryReadHypergraphFile(path));
}

ProjectedGraph ReadProjectedGraph(std::istream& in) {
  return ValueOrThrow(TryReadProjectedGraph(in));
}

ProjectedGraph ReadProjectedGraphFile(const std::string& path) {
  return ValueOrThrow(TryReadProjectedGraphFile(path));
}

void WriteHypergraphFile(const Hypergraph& h, const std::string& path) {
  api::Status status = TryWriteHypergraphFile(h, path);
  if (!status.ok()) throw std::invalid_argument(status.message());
}

void WriteProjectedGraphFile(const ProjectedGraph& g,
                             const std::string& path) {
  api::Status status = TryWriteProjectedGraphFile(g, path);
  if (!status.ok()) throw std::invalid_argument(status.message());
}

}  // namespace marioh::io
