/// \file text_io.hpp
/// \brief Plain-text serialization of hypergraphs and projected graphs.
///
/// Hypergraph format (one hyperedge per line):
///   `# comment` lines and blank lines are ignored;
///   `u1 u2 ... uk [x m]` — node ids separated by spaces, an optional
///   trailing `x m` token pair sets the multiplicity (default 1).
///
/// Projected-graph format (one edge per line):
///   `u v w` — endpoints and integer weight (weight defaults to 1 when
///   omitted).
///
/// These are the de-facto formats of the public hypergraph dataset
/// releases the paper evaluates on (Benson et al. [3]), so real datasets
/// drop in directly.

#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::io {

/// Parses a hypergraph from a stream. Throws std::invalid_argument on
/// malformed lines (non-numeric tokens, hyperedges with < 2 distinct
/// nodes are skipped silently to tolerate real-world dumps).
Hypergraph ReadHypergraph(std::istream& in);

/// Reads a hypergraph from a file. Throws std::invalid_argument if the
/// file cannot be opened or parsed.
Hypergraph ReadHypergraphFile(const std::string& path);

/// Writes `h` in the text format (deterministic order, multiplicities as
/// `x m` suffixes when > 1).
void WriteHypergraph(const Hypergraph& h, std::ostream& out);

/// Writes a hypergraph to a file. Throws std::invalid_argument on I/O
/// failure.
void WriteHypergraphFile(const Hypergraph& h, const std::string& path);

/// Parses a weighted edge list. Throws std::invalid_argument on malformed
/// lines.
ProjectedGraph ReadProjectedGraph(std::istream& in);

/// Reads a projected graph from a file.
ProjectedGraph ReadProjectedGraphFile(const std::string& path);

/// Writes `g` as a weighted edge list (u < v, sorted).
void WriteProjectedGraph(const ProjectedGraph& g, std::ostream& out);

/// Writes a projected graph to a file.
void WriteProjectedGraphFile(const ProjectedGraph& g,
                             const std::string& path);

}  // namespace marioh::io
