/// \file text_io.hpp
/// \brief Plain-text serialization of hypergraphs and projected graphs.
///
/// Hypergraph format (one hyperedge per line):
///   `# comment` lines and blank lines are ignored;
///   `u1 u2 ... uk [x m]` — node ids separated by spaces, an optional
///   trailing `x m` token pair sets the multiplicity (default 1).
///
/// Projected-graph format (one edge per line):
///   `u v w` — endpoints and integer weight (weight defaults to 1 when
///   omitted).
///
/// These are the de-facto formats of the public hypergraph dataset
/// releases the paper evaluates on (Benson et al. [3]), so real datasets
/// drop in directly.
///
/// The `Try*` functions are the primary API: they report unopenable files
/// and malformed lines as an `api::Status` (with the offending line
/// number) so callers like `marioh_cli` can diagnose bad input without
/// dying. The exception-throwing forms are thin wrappers kept for callers
/// that prefer throw-on-error.

#pragma once

#include <iosfwd>
#include <string>

#include "api/status.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::io {

/// Parses a hypergraph from a stream. kInvalidArgument on malformed lines
/// (non-numeric tokens; hyperedges with < 2 distinct nodes are skipped
/// silently to tolerate real-world dumps).
api::StatusOr<Hypergraph> TryReadHypergraph(std::istream& in);

/// Reads a hypergraph from a file. kNotFound if the file cannot be
/// opened, kInvalidArgument if it cannot be parsed.
api::StatusOr<Hypergraph> TryReadHypergraphFile(const std::string& path);

/// Writes a hypergraph to a file (deterministic order, multiplicities as
/// `x m` suffixes when > 1). kInvalidArgument if the caller-supplied
/// output path cannot be opened for writing.
api::Status TryWriteHypergraphFile(const Hypergraph& h,
                                   const std::string& path);

/// Parses a weighted edge list. kInvalidArgument on malformed lines.
api::StatusOr<ProjectedGraph> TryReadProjectedGraph(std::istream& in);

/// Reads a projected graph from a file. kNotFound if the file cannot be
/// opened, kInvalidArgument if it cannot be parsed.
api::StatusOr<ProjectedGraph> TryReadProjectedGraphFile(
    const std::string& path);

/// Writes a projected graph to a file (u < v, sorted). kInvalidArgument
/// if the caller-supplied output path cannot be opened for writing.
api::Status TryWriteProjectedGraphFile(const ProjectedGraph& g,
                                       const std::string& path);

/// Throwing wrappers over the `Try*` forms: std::invalid_argument
/// carrying the status message on any error.
Hypergraph ReadHypergraph(std::istream& in);
Hypergraph ReadHypergraphFile(const std::string& path);
ProjectedGraph ReadProjectedGraph(std::istream& in);
ProjectedGraph ReadProjectedGraphFile(const std::string& path);
void WriteHypergraphFile(const Hypergraph& h, const std::string& path);
void WriteProjectedGraphFile(const ProjectedGraph& g,
                             const std::string& path);

/// Stream writers (cannot fail short of stream errors, which the caller
/// owns).
void WriteHypergraph(const Hypergraph& h, std::ostream& out);
void WriteProjectedGraph(const ProjectedGraph& g, std::ostream& out);

}  // namespace marioh::io
