#include "gen/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace marioh::gen {
namespace {

/// Samples `size` distinct members of `group` with Zipf-like popularity.
NodeSet SampleFromGroup(const std::vector<NodeId>& group,
                        const std::vector<double>& weights, size_t size,
                        util::Rng* rng) {
  MARIOH_CHECK_LE(size, group.size());
  std::unordered_set<NodeId> members;
  size_t attempts = 0;
  const size_t max_attempts = 60 * size + 120;
  while (members.size() < size && attempts < max_attempts) {
    members.insert(group[rng->Discrete(weights)]);
    ++attempts;
  }
  size_t cursor = 0;
  while (members.size() < size) {
    members.insert(group[cursor++ % group.size()]);
  }
  NodeSet edge(members.begin(), members.end());
  Canonicalize(&edge);
  return edge;
}

}  // namespace

GeneratedDataset Generate(const DomainProfile& profile, uint64_t seed) {
  MARIOH_CHECK_GE(profile.num_nodes, 4u);
  MARIOH_CHECK_GE(profile.num_groups, 1u);
  MARIOH_CHECK(!profile.size_distribution.empty());
  util::Rng rng(seed);

  // Communities: group g owns the contiguous block
  // [g * B, g * B + B) and is padded with random outsiders up to
  // group_size, which creates inter-community overlap.
  const size_t n = profile.num_nodes;
  const size_t block =
      std::max<size_t>(1, n / profile.num_groups);
  std::vector<std::vector<NodeId>> groups(profile.num_groups);
  for (size_t g = 0; g < profile.num_groups; ++g) {
    size_t lo = std::min(g * block, n - 1);
    size_t hi = (g + 1 == profile.num_groups) ? n
                                              : std::min((g + 1) * block, n);
    for (size_t u = lo; u < hi; ++u) {
      groups[g].push_back(static_cast<NodeId>(u));
    }
    while (groups[g].size() < std::min(profile.group_size, n)) {
      NodeId extra = static_cast<NodeId>(rng.UniformIndex(n));
      if (std::find(groups[g].begin(), groups[g].end(), extra) ==
          groups[g].end()) {
        groups[g].push_back(extra);
      }
    }
    std::sort(groups[g].begin(), groups[g].end());
  }

  // Zipf-like popularity weights per group position.
  std::vector<std::vector<double>> group_weights(profile.num_groups);
  for (size_t g = 0; g < profile.num_groups; ++g) {
    group_weights[g].resize(groups[g].size());
    for (size_t i = 0; i < groups[g].size(); ++i) {
      group_weights[g][i] =
          1.0 / std::pow(static_cast<double>(i + 1), profile.degree_skew);
    }
  }

  // Hyperedge size sampler.
  std::vector<double> size_mass = profile.size_distribution;

  Hypergraph h(n);
  std::unordered_set<NodeSet, util::VectorHash> unique;
  const double dup_p = 1.0 / (1.0 + std::max(profile.duplication_mean, 0.0));
  size_t attempts = 0;
  const size_t max_attempts = 40 * profile.num_unique_edges + 400;
  while (unique.size() < profile.num_unique_edges &&
         attempts < max_attempts) {
    ++attempts;
    size_t size = 2 + rng.Discrete(size_mass);
    NodeSet edge;
    if (rng.Bernoulli(profile.background_fraction)) {
      // Background hyperedge over the whole node set.
      std::unordered_set<NodeId> members;
      while (members.size() < std::min(size, n)) {
        members.insert(static_cast<NodeId>(rng.UniformIndex(n)));
      }
      edge.assign(members.begin(), members.end());
      Canonicalize(&edge);
    } else {
      size_t g = rng.UniformIndex(profile.num_groups);
      size = std::min(size, groups[g].size());
      if (size < 2) continue;
      edge = SampleFromGroup(groups[g], group_weights[g], size, &rng);
    }
    if (!unique.insert(edge).second) continue;
    uint32_t multiplicity =
        1 + static_cast<uint32_t>(
                profile.duplication_mean > 0 ? rng.Geometric(dup_p) : 0);
    h.AddEdge(edge, multiplicity);
  }

  GeneratedDataset out;
  out.name = profile.name;
  out.hypergraph = std::move(h);
  out.num_classes = profile.num_classes;
  if (profile.num_classes > 0) {
    out.labels.resize(n);
    for (size_t u = 0; u < n; ++u) {
      size_t g = std::min(u / block, profile.num_groups - 1);
      out.labels[u] = static_cast<uint32_t>(
          g * profile.num_classes / profile.num_groups);
    }
  }
  return out;
}

api::StatusOr<DomainProfile> TryProfileByName(const std::string& name) {
  DomainProfile p;
  p.name = name;
  if (name == "enron") {
    // 141 nodes, 889 hyperedges, avg M_H 5.85: small, heavy duplication,
    // strongly overlapping mail circles -> hardest regime.
    p.num_nodes = 141;
    p.num_unique_edges = 160;
    p.size_distribution = {0.30, 0.25, 0.20, 0.12, 0.08, 0.05};
    p.duplication_mean = 4.8;
    p.num_groups = 12;
    p.group_size = 18;
    p.degree_skew = 0.8;
    p.background_fraction = 0.05;
  } else if (name == "pschool") {
    // 238 nodes, 7,975 hyperedges, avg M_H 6.90: contact network with
    // repeated small-group interactions inside cohorts.
    // Cross-class "playground" groups (background) are what makes the
    // projected graph noisy: clique expansion multiplies their pairwise
    // footprint while the hypergraph Laplacian's 1/|e| normalization keeps
    // them weak — the source of the downstream-task gap (Tables VII/VIII).
    p.num_nodes = 238;
    p.num_unique_edges = 1100;
    p.size_distribution = {0.50, 0.28, 0.12, 0.06, 0.03, 0.01};
    p.duplication_mean = 5.9;
    p.num_groups = 10;
    p.group_size = 26;
    p.degree_skew = 0.4;
    p.background_fraction = 0.10;
    p.num_classes = 10;
  } else if (name == "hschool") {
    // 318 nodes, 4,254 hyperedges, avg M_H 17.01: fewer unique contacts,
    // extreme repetition.
    p.num_nodes = 318;
    p.num_unique_edges = 250;
    p.size_distribution = {0.55, 0.27, 0.10, 0.05, 0.03};
    p.duplication_mean = 16.0;
    p.num_groups = 9;
    p.group_size = 38;
    p.degree_skew = 0.4;
    p.background_fraction = 0.08;
    p.num_classes = 9;
  } else if (name == "crime") {
    // 308 nodes, 105 hyperedges, avg M_H 1.01: tiny, disjoint incidents.
    // The real Crime hypergraph is nearly disjoint (106 projected edges for
    // 105 hyperedges), so use one small group per hyperedge.
    p.num_nodes = 308;
    p.num_unique_edges = 104;
    p.size_distribution = {0.55, 0.30, 0.15};
    p.duplication_mean = 0.01;
    p.num_groups = 70;
    p.group_size = 4;
    p.degree_skew = 0.3;
    p.background_fraction = 0.35;
  } else if (name == "hosts") {
    // 449 nodes, 159 hyperedges, avg M_H 1.06: sparse host-virus pairs
    // with a few larger assemblies.
    p.num_nodes = 449;
    p.num_unique_edges = 150;
    p.size_distribution = {0.45, 0.28, 0.17, 0.10};
    p.duplication_mean = 0.06;
    p.num_groups = 55;
    p.group_size = 9;
    p.degree_skew = 0.5;
    p.background_fraction = 0.10;
  } else if (name == "directors") {
    // 513 nodes, 101 hyperedges, avg M_H 1.01: essentially disjoint boards
    // (every competent method reaches ~100 in the paper).
    // Boards are essentially disjoint in the real data: more groups than
    // hyperedges, tiny groups, no background, so overlaps are rare.
    p.num_nodes = 513;
    p.num_unique_edges = 100;
    p.size_distribution = {0.60, 0.40};
    p.duplication_mean = 0.01;
    p.num_groups = 170;
    p.group_size = 3;
    p.degree_skew = 0.0;
    p.background_fraction = 0.0;
  } else if (name == "foursquare") {
    // 2,254 nodes, 873 hyperedges, avg M_H 1.00: sparse check-in groups.
    p.num_nodes = 2254;
    p.num_unique_edges = 873;
    p.size_distribution = {0.40, 0.28, 0.17, 0.10, 0.05};
    p.duplication_mean = 0.0;
    p.num_groups = 250;
    p.group_size = 9;
    p.degree_skew = 0.5;
    p.background_fraction = 0.05;
  } else if (name == "dblp") {
    // 389,330 nodes scaled ~100x down to laptop size; avg M_H 1.10, small
    // author lists, weak overlap -> near-perfect reconstruction regime.
    p.num_nodes = 4000;
    p.num_unique_edges = 2200;
    p.size_distribution = {0.35, 0.30, 0.20, 0.10, 0.05};
    p.duplication_mean = 0.10;
    p.num_groups = 600;
    p.group_size = 7;
    p.degree_skew = 0.6;
    p.background_fraction = 0.02;
  } else if (name == "eu") {
    // 891 nodes, 6,805 hyperedges, avg M_H 1.26 but avg edge weight 4.62:
    // many distinct overlapping recipient sets -> hard regime.
    p.num_nodes = 891;
    p.num_unique_edges = 3000;
    p.size_distribution = {0.30, 0.22, 0.16, 0.12, 0.08, 0.05,
                           0.03, 0.02, 0.02};
    p.duplication_mean = 0.26;
    p.num_groups = 30;
    p.group_size = 24;
    p.degree_skew = 0.9;
    p.background_fraction = 0.05;
  } else if (name == "mag_topcs") {
    // 48,742 nodes scaled down; co-authorship, no duplication.
    p.num_nodes = 3000;
    p.num_unique_edges = 1600;
    p.size_distribution = {0.40, 0.30, 0.18, 0.08, 0.04};
    p.duplication_mean = 0.0;
    p.num_groups = 450;
    p.group_size = 7;
    p.degree_skew = 0.6;
    p.background_fraction = 0.02;
  } else if (name == "mag_history") {
    // Transfer-learning target: smaller field, shorter author lists.
    p.num_nodes = 2000;
    p.num_unique_edges = 1100;
    p.size_distribution = {0.55, 0.30, 0.12, 0.03};
    p.duplication_mean = 0.0;
    p.num_groups = 320;
    p.group_size = 6;
    p.degree_skew = 0.5;
    p.background_fraction = 0.02;
  } else if (name == "mag_geology") {
    // Transfer-learning target: larger collaborations than history.
    p.num_nodes = 2500;
    p.num_unique_edges = 1400;
    p.size_distribution = {0.35, 0.30, 0.20, 0.10, 0.05};
    p.duplication_mean = 0.0;
    p.num_groups = 350;
    p.group_size = 8;
    p.degree_skew = 0.6;
    p.background_fraction = 0.05;
  } else {
    std::string known;
    for (const std::string& k : KnownProfiles()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    return api::Status::NotFound("unknown dataset profile '" + name +
                                 "'; known profiles: " + known);
  }
  return p;
}

DomainProfile ProfileByName(const std::string& name) {
  return api::ValueOrDie(TryProfileByName(name), __FILE__, __LINE__);
}

std::vector<std::string> KnownProfiles() {
  std::vector<std::string> names = TableDatasets();
  names.push_back("mag_history");
  names.push_back("mag_geology");
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> TableDatasets() {
  return {"enron",     "pschool", "hschool",    "crime", "hosts",
          "directors", "foursquare", "dblp",    "eu",    "mag_topcs"};
}

}  // namespace marioh::gen
