#include "gen/split.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace marioh::gen {

SourceTargetSplit SplitHypergraph(const Hypergraph& h, util::Rng* rng,
                                  double source_fraction) {
  MARIOH_CHECK_GT(source_fraction, 0.0);
  MARIOH_CHECK_LT(source_fraction, 1.0);
  std::vector<NodeSet> expanded = h.ExpandedEdges();
  rng->Shuffle(&expanded);
  size_t cut = static_cast<size_t>(source_fraction *
                                   static_cast<double>(expanded.size()));
  cut = std::min(std::max<size_t>(cut, 1), expanded.size() - 1);

  SourceTargetSplit split{Hypergraph(h.num_nodes()),
                          Hypergraph(h.num_nodes())};
  for (size_t i = 0; i < expanded.size(); ++i) {
    if (i < cut) {
      split.source.AddEdge(expanded[i], 1);
    } else {
      split.target.AddEdge(expanded[i], 1);
    }
  }
  return split;
}

SourceTargetSplit SplitByTime(const std::vector<TimedHyperedge>& events,
                              double source_fraction, size_t num_nodes) {
  MARIOH_CHECK_GT(source_fraction, 0.0);
  MARIOH_CHECK_LT(source_fraction, 1.0);
  MARIOH_CHECK_GE(events.size(), 2u);

  if (num_nodes == 0) {
    for (const TimedHyperedge& e : events) {
      for (NodeId u : e.nodes) {
        num_nodes = std::max<size_t>(num_nodes, u + 1);
      }
    }
  }
  // Find the cut time: the source_fraction-quantile of event times.
  std::vector<double> times;
  times.reserve(events.size());
  for (const TimedHyperedge& e : events) times.push_back(e.time);
  std::sort(times.begin(), times.end());
  size_t cut_index = static_cast<size_t>(
      source_fraction * static_cast<double>(times.size()));
  cut_index = std::min(std::max<size_t>(cut_index, 1), times.size() - 1);
  double cut_time = times[cut_index];

  SourceTargetSplit split{Hypergraph(num_nodes), Hypergraph(num_nodes)};
  for (const TimedHyperedge& e : events) {
    if (e.time < cut_time) {
      split.source.AddEdge(e.nodes, 1);
    } else {
      split.target.AddEdge(e.nodes, 1);
    }
  }
  // Degenerate guard: if everything landed on one side (all-equal times),
  // fall back to an index split.
  if (split.source.num_total_edges() == 0 ||
      split.target.num_total_edges() == 0) {
    split = SourceTargetSplit{Hypergraph(num_nodes), Hypergraph(num_nodes)};
    for (size_t i = 0; i < events.size(); ++i) {
      if (i < cut_index) {
        split.source.AddEdge(events[i].nodes, 1);
      } else {
        split.target.AddEdge(events[i].nodes, 1);
      }
    }
  }
  return split;
}

std::vector<TimedHyperedge> AttachTimestamps(const Hypergraph& h,
                                             util::Rng* rng) {
  std::vector<TimedHyperedge> events;
  events.reserve(h.num_total_edges());
  for (const NodeSet& e : h.ExpandedEdges()) {
    events.push_back({e, rng->Uniform(0.0, 1.0)});
  }
  return events;
}

}  // namespace marioh::gen
