/// \file profiles.hpp
/// \brief Synthetic stand-ins for the paper's 10 real-world datasets
/// (Table I). Each profile generates a community-structured hypergraph
/// whose scale, hyperedge-size mix, hyperedge multiplicity, and overlap
/// regime mirror the statistics of the named dataset, so the experiment
/// harness reproduces the paper's difficulty spectrum: trivial sparse
/// domains (Directors/Crime-like), mid-range contact networks
/// (P.School/H.School-like), and hard heavy-overlap email domains
/// (Enron/Eu-like). See DESIGN.md §3 for the substitution rationale.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace marioh::gen {

/// Parameters of the community-structured domain generator.
struct DomainProfile {
  std::string name;
  size_t num_nodes = 100;
  /// Number of unique hyperedges to draw.
  size_t num_unique_edges = 100;
  /// Probability mass over hyperedge sizes, starting at size 2.
  std::vector<double> size_distribution = {0.5, 0.3, 0.2};
  /// Expected extra copies per hyperedge (geometric); 0 = no duplication.
  /// Average hyperedge multiplicity is roughly 1 + this value.
  double duplication_mean = 0.0;
  /// Number of (possibly overlapping) communities hyperedges are drawn
  /// from. Smaller communities relative to hyperedge volume = heavier
  /// overlap = harder reconstruction.
  size_t num_groups = 10;
  /// Nodes per community.
  size_t group_size = 12;
  /// Power-law skew of within-group node popularity (0 = uniform).
  double degree_skew = 0.6;
  /// Fraction of hyperedges drawn from the whole node set instead of a
  /// single community (background noise).
  double background_fraction = 0.05;
  /// Number of ground-truth node classes exposed for the downstream tasks
  /// (0 = no labels). Classes are community-aligned.
  size_t num_classes = 0;
};

/// A generated dataset: the hypergraph plus optional node labels.
struct GeneratedDataset {
  std::string name;
  Hypergraph hypergraph;
  /// Per-node class label (empty when the profile has no classes).
  std::vector<uint32_t> labels;
  size_t num_classes = 0;
};

/// Generates a dataset from a profile. Deterministic given `seed`.
GeneratedDataset Generate(const DomainProfile& profile, uint64_t seed);

/// Profile mirroring one of the paper's datasets. Unknown names return a
/// kNotFound status listing the known profiles.
api::StatusOr<DomainProfile> TryProfileByName(const std::string& name);

/// Like TryProfileByName but dies on unknown names; for call sites that
/// pass roster constants.
DomainProfile ProfileByName(const std::string& name);

/// Every known profile name (TableDatasets plus the transfer targets
/// mag_history and mag_geology), sorted.
std::vector<std::string> KnownProfiles();

/// The 10 dataset names of Table I, in the paper's column order.
std::vector<std::string> TableDatasets();

}  // namespace marioh::gen
