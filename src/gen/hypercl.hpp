/// \file hypercl.hpp
/// \brief HyperCL hypergraph generator (Lee, Choe, Shin [38]): every
/// hyperedge draws its size from a target size sequence and fills it with
/// nodes sampled proportionally to a target degree-weight sequence. The
/// paper uses HyperCL with DBLP statistics for the Fig. 7 scalability
/// study.

#pragma once

#include <cstddef>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace marioh::gen {

/// Explicit HyperCL configuration: one hyperedge per entry of
/// `edge_sizes`; node i is chosen with probability proportional to
/// `degree_weights[i]`.
struct HyperClConfig {
  std::vector<double> degree_weights;
  std::vector<size_t> edge_sizes;
};

/// Generates a hypergraph from an explicit configuration.
Hypergraph HyperCl(const HyperClConfig& config, util::Rng* rng);

/// Convenience wrapper mirroring "HyperCL with DBLP dataset statistics":
/// power-law degree weights with exponent `degree_skew` (larger = more
/// skewed), `num_edges` hyperedges whose sizes are 2 plus a Poisson draw
/// with mean `size_mean - 2`.
Hypergraph HyperClLike(size_t num_nodes, size_t num_edges, double size_mean,
                       double degree_skew, util::Rng* rng);

}  // namespace marioh::gen
