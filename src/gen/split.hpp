/// \file split.hpp
/// \brief Source/target split of a hypergraph's hyperedges, mirroring the
/// paper's experimental setup: hyperedges are split into halves (random
/// split, standing in for the timestamp split where available), the source
/// half trains the supervised methods, the target half is reconstructed.

#pragma once

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace marioh::gen {

/// The two halves of a split.
struct SourceTargetSplit {
  Hypergraph source;
  Hypergraph target;
};

/// Splits the expanded hyperedge multiset of `h` into source
/// (`source_fraction`) and target (rest) halves uniformly at random. Both
/// halves keep the full node set.
SourceTargetSplit SplitHypergraph(const Hypergraph& h, util::Rng* rng,
                                  double source_fraction = 0.5);

/// One hyperedge occurrence with a timestamp (e.g., a paper's year, a
/// contact event's time). Repeated occurrences of the same node set model
/// hyperedge multiplicity.
struct TimedHyperedge {
  NodeSet nodes;
  double time = 0.0;
};

/// Splits timed hyperedge occurrences at the time threshold that puts
/// (approximately) `source_fraction` of them into the source half — the
/// paper's "split into halves based on their timestamps" protocol. Ties
/// at the cut time go to the source. `num_nodes` of 0 infers the node
/// count.
SourceTargetSplit SplitByTime(const std::vector<TimedHyperedge>& events,
                              double source_fraction = 0.5,
                              size_t num_nodes = 0);

/// Attaches synthetic timestamps to a hypergraph's expanded multiset:
/// each occurrence gets a uniform draw in [0, 1), so repeated hyperedges
/// spread across time like recurring contacts. Deterministic given `rng`.
std::vector<TimedHyperedge> AttachTimestamps(const Hypergraph& h,
                                             util::Rng* rng);

}  // namespace marioh::gen
