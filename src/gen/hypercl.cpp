#include "gen/hypercl.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace marioh::gen {

Hypergraph HyperCl(const HyperClConfig& config, util::Rng* rng) {
  const size_t n = config.degree_weights.size();
  MARIOH_CHECK_GE(n, 2u);
  Hypergraph h(n);
  std::discrete_distribution<size_t> pick(config.degree_weights.begin(),
                                          config.degree_weights.end());
  for (size_t raw_size : config.edge_sizes) {
    size_t size = std::min(std::max<size_t>(raw_size, 2), n);
    std::unordered_set<NodeId> members;
    // Rejection-sample distinct members; falls back to sequential fill if
    // the weight distribution is too concentrated to make progress.
    size_t attempts = 0;
    const size_t max_attempts = 50 * size + 100;
    while (members.size() < size && attempts < max_attempts) {
      members.insert(static_cast<NodeId>(pick(rng->engine())));
      ++attempts;
    }
    NodeId next = 0;
    while (members.size() < size) {
      members.insert(next++);
    }
    NodeSet edge(members.begin(), members.end());
    Canonicalize(&edge);
    h.AddEdge(edge, 1);
  }
  return h;
}

Hypergraph HyperClLike(size_t num_nodes, size_t num_edges, double size_mean,
                       double degree_skew, util::Rng* rng) {
  MARIOH_CHECK_GE(num_nodes, 2u);
  MARIOH_CHECK_GE(size_mean, 2.0);
  HyperClConfig config;
  config.degree_weights.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    // Zipf-like weight for rank i+1.
    config.degree_weights[i] =
        1.0 / std::pow(static_cast<double>(i + 1), degree_skew);
  }
  config.edge_sizes.resize(num_edges);
  for (size_t j = 0; j < num_edges; ++j) {
    double extra_mean = size_mean - 2.0;
    size_t extra =
        extra_mean > 1e-9
            ? static_cast<size_t>(rng->Poisson(extra_mean))
            : 0;
    config.edge_sizes[j] = 2 + extra;
  }
  return HyperCl(config, rng);
}

}  // namespace marioh::gen
