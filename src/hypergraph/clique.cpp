#include "hypergraph/clique.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace marioh {
namespace {

/// Recursive Bron–Kerbosch with pivoting. `r` is the growing clique, `p`
/// the candidate set, `x` the excluded set; both `p` and `x` are sorted.
class BronKerbosch {
 public:
  BronKerbosch(const ProjectedGraph& g, const CliqueOptions& options,
               std::vector<NodeSet>* out)
      : g_(g), options_(options), out_(out) {}

  void Expand(NodeSet* r, std::vector<NodeId> p, std::vector<NodeId> x) {
    if (out_->size() >= options_.max_cliques) return;
    if (p.empty() && x.empty()) {
      if (r->size() >= options_.min_size) out_->push_back(*r);
      return;
    }
    // Pivot: the vertex of p ∪ x with the most neighbors in p.
    NodeId pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](NodeId cand) {
      size_t cnt = 0;
      for (NodeId w : p) {
        if (g_.HasEdge(cand, w)) ++cnt;
      }
      if (!have_pivot || cnt > best) {
        pivot = cand;
        best = cnt;
        have_pivot = true;
      }
    };
    for (NodeId cand : p) consider(cand);
    for (NodeId cand : x) consider(cand);

    std::vector<NodeId> candidates;
    for (NodeId v : p) {
      if (!g_.HasEdge(pivot, v)) candidates.push_back(v);
    }
    for (NodeId v : candidates) {
      std::vector<NodeId> p2, x2;
      for (NodeId w : p) {
        if (g_.HasEdge(v, w)) p2.push_back(w);
      }
      for (NodeId w : x) {
        if (g_.HasEdge(v, w)) x2.push_back(w);
      }
      r->push_back(v);
      std::sort(r->begin(), r->end());
      NodeSet saved = *r;
      Expand(r, std::move(p2), std::move(x2));
      *r = saved;
      r->erase(std::find(r->begin(), r->end(), v));
      // Move v from p to x.
      p.erase(std::find(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
      if (out_->size() >= options_.max_cliques) return;
    }
  }

 private:
  const ProjectedGraph& g_;
  const CliqueOptions& options_;
  std::vector<NodeSet>* out_;
};

}  // namespace

std::vector<NodeId> DegeneracyOrdering(const ProjectedGraph& g,
                                       size_t* degeneracy) {
  const size_t n = g.num_nodes();
  std::vector<size_t> deg(n);
  size_t max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    max_deg = std::max(max_deg, deg[u]);
  }
  // Bucket queue keyed by current degree.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId u = 0; u < n; ++u) buckets[deg[u]].push_back(u);
  std::vector<bool> removed(n, false);
  std::vector<NodeId> order;
  order.reserve(n);
  size_t degen = 0;
  size_t cursor = 0;
  while (order.size() < n) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    MARIOH_CHECK_LT(cursor, buckets.size());
    NodeId u = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[u] || deg[u] != cursor) {
      // Stale entry; u was re-bucketed at a lower degree.
      continue;
    }
    removed[u] = true;
    order.push_back(u);
    degen = std::max(degen, cursor);
    for (const auto& [v, w] : g.Neighbors(u)) {
      (void)w;
      if (!removed[v] && deg[v] > 0) {
        --deg[v];
        buckets[deg[v]].push_back(v);
        if (deg[v] < cursor) cursor = deg[v];
      }
    }
  }
  if (degeneracy != nullptr) *degeneracy = degen;
  return order;
}

std::vector<NodeSet> MaximalCliques(const ProjectedGraph& g,
                                    const CliqueOptions& options) {
  std::vector<NodeSet> out;
  const size_t n = g.num_nodes();
  if (n == 0) return out;
  std::vector<NodeId> order = DegeneracyOrdering(g, nullptr);
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[order[i]] = i;

  BronKerbosch bk(g, options, &out);
  for (size_t i = 0; i < n; ++i) {
    NodeId v = order[i];
    if (g.Degree(v) == 0) continue;
    std::vector<NodeId> p, x;
    for (const auto& [w, wt] : g.Neighbors(v)) {
      (void)wt;
      if (pos[w] > i) {
        p.push_back(w);
      } else {
        x.push_back(w);
      }
    }
    std::sort(p.begin(), p.end());
    std::sort(x.begin(), x.end());
    NodeSet r = {v};
    bk.Expand(&r, std::move(p), std::move(x));
    if (out.size() >= options.max_cliques) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeSet GreedyCliqueAround(const ProjectedGraph& g, NodeId seed) {
  NodeSet clique = {seed};
  // Candidates sorted by descending degree for a large greedy clique.
  std::vector<NodeId> cands;
  for (const auto& [v, w] : g.Neighbors(seed)) {
    (void)w;
    cands.push_back(v);
  }
  std::sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
    size_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  for (NodeId v : cands) {
    bool ok = true;
    for (NodeId u : clique) {
      if (!g.HasEdge(u, v)) {
        ok = false;
        break;
      }
    }
    if (ok) clique.push_back(v);
  }
  Canonicalize(&clique);
  return clique;
}

}  // namespace marioh
