#include "hypergraph/clique.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace marioh {

void CliqueStore::Reserve(size_t cliques, size_t nodes) {
  offsets_.reserve(cliques + 1);
  nodes_.reserve(nodes);
}

void CliqueStore::PushClique(CliqueView clique) {
  if (offsets_.empty()) offsets_.push_back(0);
  nodes_.insert(nodes_.end(), clique.begin(), clique.end());
  offsets_.push_back(nodes_.size());
}

void CliqueStore::Append(const CliqueStore& other) {
  if (other.empty()) return;
  if (offsets_.empty()) offsets_.push_back(0);
  const size_t base = nodes_.size();
  nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
  offsets_.reserve(offsets_.size() + other.size());
  for (size_t i = 1; i < other.offsets_.size(); ++i) {
    offsets_.push_back(base + other.offsets_[i]);
  }
}

void CliqueStore::Clear() {
  nodes_.clear();
  offsets_.clear();
}

void CliqueStore::Sort() {
  const size_t n = size();
  if (n < 2) return;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  auto view_less = [this](uint32_t a, uint32_t b) {
    CliqueView va = (*this)[a];
    CliqueView vb = (*this)[b];
    return std::lexicographical_compare(va.begin(), va.end(), vb.begin(),
                                        vb.end());
  };
  if (std::is_sorted(perm.begin(), perm.end(), view_less)) return;
  std::sort(perm.begin(), perm.end(), view_less);
  // Rebuild the arena in sorted order with one copy pass.
  std::vector<NodeId> sorted_nodes;
  sorted_nodes.reserve(nodes_.size());
  std::vector<size_t> sorted_offsets;
  sorted_offsets.reserve(offsets_.size());
  sorted_offsets.push_back(0);
  for (uint32_t i : perm) {
    CliqueView v = (*this)[i];
    sorted_nodes.insert(sorted_nodes.end(), v.begin(), v.end());
    sorted_offsets.push_back(sorted_nodes.size());
  }
  nodes_ = std::move(sorted_nodes);
  offsets_ = std::move(sorted_offsets);
}

std::vector<NodeSet> CliqueStore::ToNodeSets() const {
  std::vector<NodeSet> out;
  out.reserve(size());
  for (CliqueView v : *this) out.emplace_back(v.begin(), v.end());
  return out;
}

bool CliqueStore::operator==(const CliqueStore& other) const {
  if (size() != other.size()) return false;
  if (nodes_ != other.nodes_) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (offsets_[i + 1] - offsets_[i] !=
        other.offsets_[i + 1] - other.offsets_[i]) {
      return false;
    }
  }
  return true;
}

namespace {

/// The recursion's P and X sets shrink quickly (bounded by the
/// degeneracy), while CSR neighbor ranges can be long; when the vector
/// side is much smaller than the span, per-element binary search beats a
/// full merge scan. This ratio picks between the two.
constexpr size_t kBinarySearchRatio = 8;

/// |a ∩ b| for a sorted span and a sorted vector.
size_t IntersectionSize(std::span<const NodeId> a,
                        const std::vector<NodeId>& b) {
  size_t count = 0;
  if (b.size() * kBinarySearchRatio <= a.size()) {
    for (NodeId v : b) {
      if (std::binary_search(a.begin(), a.end(), v)) ++count;
    }
    return count;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

/// out = a ∩ b (both sorted); out stays sorted.
void IntersectInto(const std::vector<NodeId>& a, std::span<const NodeId> b,
                   std::vector<NodeId>* out) {
  out->clear();
  if (a.size() * kBinarySearchRatio <= b.size()) {
    for (NodeId v : a) {
      if (std::binary_search(b.begin(), b.end(), v)) out->push_back(v);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out->push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
}

/// out = a \ b (both sorted); out stays sorted.
void DifferenceInto(const std::vector<NodeId>& a, std::span<const NodeId> b,
                    std::vector<NodeId>* out) {
  out->clear();
  if (a.size() * kBinarySearchRatio <= b.size()) {
    for (NodeId v : a) {
      if (!std::binary_search(b.begin(), b.end(), v)) out->push_back(v);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size()) {
    while (j < b.size() && b[j] < a[i]) ++j;
    if (j < b.size() && b[j] == a[i]) {
      ++i;
    } else {
      out->push_back(a[i]);
      ++i;
    }
  }
}

/// Per-root subproblem of the degeneracy-ordered enumeration: the
/// subgraph induced by S = N(v), relabeled to local ids 0..|S|-1 in
/// ascending global-id order. All recursion set operations then run over
/// short contiguous local adjacency rows instead of the full CSR —
/// the cache-locality trick of the fast Bron–Kerbosch implementations.
struct LocalSubgraph {
  std::vector<NodeId> globals;    ///< S, sorted; local id -> global id
  std::vector<size_t> offsets;    ///< per-local-id row offsets, size |S|+1
  std::vector<NodeId> neighbors;  ///< concatenated sorted local rows

  std::span<const NodeId> Neighbors(NodeId local) const {
    return {neighbors.data() + offsets[local],
            neighbors.data() + offsets[local + 1]};
  }

  /// Builds the induced subgraph on S = N(v) from the snapshot into the
  /// per-local-id `rows` (caller-owned scratch reused across roots),
  /// leaving `offsets`/`neighbors` untouched — call Flatten afterwards
  /// for the span-based adjacency the general recursion needs, or feed
  /// the rows straight into a bitset kernel. Each induced edge is
  /// discovered once from its smaller endpoint and mirrored into both
  /// rows (appended in ascending order on both sides, so rows stay
  /// sorted without a sort pass).
  void BuildRows(const CsrGraph& g, NodeId v,
                 std::vector<std::vector<NodeId>>* rows) {
    auto s_nodes = g.Neighbors(v);
    globals.assign(s_nodes.begin(), s_nodes.end());
    const size_t s = globals.size();
    if (rows->size() < s) rows->resize(s);
    for (size_t w = 0; w < s; ++w) (*rows)[w].clear();
    for (size_t w = 0; w < s; ++w) {
      const NodeId gw = globals[w];
      auto gn = g.Neighbors(gw);
      // Intersect globals[w+1..) with the > gw suffix of N(gw), emitting
      // local pairs (w, z). Both sides ascend.
      size_t b = static_cast<size_t>(
          std::upper_bound(gn.begin(), gn.end(), gw) - gn.begin());
      size_t a = w + 1;
      auto add = [&](size_t z) {
        (*rows)[w].push_back(static_cast<NodeId>(z));
        (*rows)[z].push_back(static_cast<NodeId>(w));
      };
      const size_t rem_a = s - a;
      const size_t rem_b = gn.size() - b;
      if (rem_a * kBinarySearchRatio <= rem_b) {
        for (; a < s; ++a) {
          if (std::binary_search(gn.begin() + b, gn.end(), globals[a])) {
            add(a);
          }
        }
      } else if (rem_b * kBinarySearchRatio <= rem_a) {
        for (size_t j = b; j < gn.size(); ++j) {
          auto it = std::lower_bound(globals.begin() + a, globals.end(),
                                     gn[j]);
          if (it != globals.end() && *it == gn[j]) {
            add(static_cast<size_t>(it - globals.begin()));
          }
        }
      } else {
        size_t j = b;
        while (a < s && j < gn.size()) {
          if (globals[a] == gn[j]) {
            add(a);
            ++a;
            ++j;
          } else if (globals[a] < gn[j]) {
            ++a;
          } else {
            ++j;
          }
        }
      }
    }
  }

  /// Concatenates the rows into the contiguous offsets/neighbors layout.
  void Flatten(const std::vector<std::vector<NodeId>>& rows) {
    const size_t s = globals.size();
    offsets.assign(s + 1, 0);
    neighbors.clear();
    for (size_t w = 0; w < s; ++w) {
      neighbors.insert(neighbors.end(), rows[w].begin(), rows[w].end());
      offsets[w + 1] = neighbors.size();
    }
  }
};

/// Depth-indexed scratch vectors for the recursion (3 per level:
/// candidates, p2, x2), reused across roots within a thread so the inner
/// loop performs no allocations after warm-up.
using BkScratch = std::vector<std::vector<NodeId>>;

/// Recursive Bron–Kerbosch with pivoting over any adjacency exposing
/// `Neighbors(id) -> sorted span`. `r` is the growing clique (unsorted;
/// the emit callback canonicalizes), `p` the candidate set and `x` the
/// excluded set, both sorted. `emit` returns false to stop enumeration
/// (emission cap reached). The caller must size `scratch` to at least
/// 3 * (max recursion depth + 1) — depth is bounded by |P ∪ X| + 1.
template <typename Adjacency, typename EmitFn>
class PivotBronKerbosch {
 public:
  PivotBronKerbosch(const Adjacency& adj, EmitFn& emit, BkScratch* scratch)
      : adj_(adj), emit_(emit), scratch_(scratch) {}

  /// Returns false once the emit callback stops enumeration.
  bool Expand(size_t depth, std::vector<NodeId>* r, std::vector<NodeId>& p,
              std::vector<NodeId>& x) {
    if (p.empty() && x.empty()) return emit_(*r);
    // Pivot: the vertex of p ∪ x with the most neighbors in p.
    NodeId pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](NodeId cand) {
      size_t cnt = IntersectionSize(adj_.Neighbors(cand), p);
      if (!have_pivot || cnt > best) {
        pivot = cand;
        best = cnt;
        have_pivot = true;
      }
    };
    for (NodeId cand : p) consider(cand);
    for (NodeId cand : x) consider(cand);

    std::vector<NodeId>& candidates = (*scratch_)[3 * depth];
    std::vector<NodeId>& p2 = (*scratch_)[3 * depth + 1];
    std::vector<NodeId>& x2 = (*scratch_)[3 * depth + 2];
    DifferenceInto(p, adj_.Neighbors(pivot), &candidates);
    for (NodeId v : candidates) {
      auto nv = adj_.Neighbors(v);
      IntersectInto(p, nv, &p2);
      IntersectInto(x, nv, &x2);
      r->push_back(v);
      bool keep = Expand(depth + 1, r, p2, x2);
      r->pop_back();
      if (!keep) return false;
      // Move v from p to x (both stay sorted).
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
    return true;
  }

 private:
  const Adjacency& adj_;
  EmitFn& emit_;
  BkScratch* scratch_;
};

/// Bit-parallel Bron–Kerbosch over a local subgraph of at most W * 64
/// nodes: P, X and the adjacency rows are W-word bitmasks, so the pivot
/// scan, the candidate set and the per-branch P/X restriction collapse
/// into AND/ANDNOT + popcount word operations. Pivot selection iterates
/// set bits in ascending id over P then X with first-max-wins ties, and
/// candidates are visited in ascending id — exactly the order of the
/// span-based `PivotBronKerbosch` — so both kernels emit the same cliques
/// in the same sequence (the truncation-prefix determinism contract).
template <size_t W, typename EmitFn>
class BitsetBronKerbosch {
 public:
  /// `words` is caller-owned scratch reused across roots; it holds the
  /// adjacency matrix (s rows of W words) followed by the per-depth
  /// {candidates, p2, x2} mask triples.
  BitsetBronKerbosch(const std::vector<NodeId>& globals,
                     const std::vector<std::vector<NodeId>>& rows,
                     EmitFn& emit, std::vector<uint64_t>* words)
      : emit_(emit), s_(globals.size()), words_(words) {
    const size_t need = (s_ + (s_ + 2) * 3) * W;
    if (words_->size() < need) words_->resize(need);
    std::fill(words_->begin(), words_->begin() + s_ * W, 0);
    uint64_t* adj = words_->data();
    for (size_t u = 0; u < s_; ++u) {
      for (NodeId v : rows[u]) {
        adj[u * W + v / 64] |= uint64_t{1} << (v % 64);
      }
    }
  }

  /// Runs the recursion from the root state: `p`/`x` are W-word masks,
  /// `r` collects local ids. Returns false once `emit_` stopped the
  /// enumeration.
  bool Expand(size_t depth, std::vector<NodeId>* r, uint64_t* p,
              uint64_t* x) {
    const uint64_t* adj = words_->data();
    bool any = false;
    for (size_t wi = 0; wi < W; ++wi) any |= (p[wi] | x[wi]) != 0;
    if (!any) return emit_(*r);

    // Pivot: the vertex of p ∪ x with the most neighbors in p.
    size_t pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    auto consider_set = [&](const uint64_t* set) {
      for (size_t wi = 0; wi < W; ++wi) {
        uint64_t word = set[wi];
        while (word != 0) {
          size_t cand = wi * 64 + static_cast<size_t>(
                                      std::countr_zero(word));
          word &= word - 1;
          size_t cnt = 0;
          for (size_t wj = 0; wj < W; ++wj) {
            cnt += static_cast<size_t>(
                std::popcount(adj[cand * W + wj] & p[wj]));
          }
          if (!have_pivot || cnt > best) {
            pivot = cand;
            best = cnt;
            have_pivot = true;
          }
        }
      }
    };
    consider_set(p);
    consider_set(x);

    uint64_t* level = words_->data() + (s_ + depth * 3) * W;
    uint64_t* candidates = level;
    uint64_t* p2 = level + W;
    uint64_t* x2 = level + 2 * W;
    for (size_t wi = 0; wi < W; ++wi) {
      candidates[wi] = p[wi] & ~adj[pivot * W + wi];
    }
    for (size_t wi = 0; wi < W; ++wi) {
      uint64_t word = candidates[wi];
      while (word != 0) {
        size_t v = wi * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        for (size_t wj = 0; wj < W; ++wj) {
          p2[wj] = p[wj] & adj[v * W + wj];
          x2[wj] = x[wj] & adj[v * W + wj];
        }
        r->push_back(static_cast<NodeId>(v));
        bool keep = Expand(depth + 1, r, p2, x2);
        r->pop_back();
        if (!keep) return false;
        // Move v from p to x.
        p[wi] &= ~(uint64_t{1} << (v % 64));
        x[wi] |= uint64_t{1} << (v % 64);
      }
    }
    return true;
  }

 private:
  EmitFn& emit_;
  size_t s_;
  std::vector<uint64_t>* words_;
};

/// Reference Bron–Kerbosch over the hash-map adjacency (sequential). The
/// growing clique is pushed/popped at the tail and sorted only on
/// emission.
class HashMapBronKerbosch {
 public:
  HashMapBronKerbosch(const ProjectedGraph& g, const CliqueOptions& options,
                      std::vector<NodeSet>* out)
      : g_(g), options_(options), out_(out) {}

  void Expand(NodeSet* r, std::vector<NodeId> p, std::vector<NodeId> x) {
    if (out_->size() >= options_.max_cliques) return;
    if (p.empty() && x.empty()) {
      if (r->size() >= options_.min_size) {
        out_->push_back(*r);
        std::sort(out_->back().begin(), out_->back().end());
      }
      return;
    }
    // Pivot: the vertex of p ∪ x with the most neighbors in p.
    NodeId pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](NodeId cand) {
      size_t cnt = 0;
      for (NodeId w : p) {
        if (g_.HasEdge(cand, w)) ++cnt;
      }
      if (!have_pivot || cnt > best) {
        pivot = cand;
        best = cnt;
        have_pivot = true;
      }
    };
    for (NodeId cand : p) consider(cand);
    for (NodeId cand : x) consider(cand);

    std::vector<NodeId> candidates;
    for (NodeId v : p) {
      if (!g_.HasEdge(pivot, v)) candidates.push_back(v);
    }
    for (NodeId v : candidates) {
      std::vector<NodeId> p2, x2;
      for (NodeId w : p) {
        if (g_.HasEdge(v, w)) p2.push_back(w);
      }
      for (NodeId w : x) {
        if (g_.HasEdge(v, w)) x2.push_back(w);
      }
      r->push_back(v);
      Expand(r, std::move(p2), std::move(x2));
      r->pop_back();
      // Move v from p to x.
      p.erase(std::find(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
      if (out_->size() >= options_.max_cliques) return;
    }
  }

 private:
  const ProjectedGraph& g_;
  const CliqueOptions& options_;
  std::vector<NodeSet>* out_;
};

/// Shared degeneracy-ordering body; `for_each` adapts the two adjacency
/// representations (hash map vs CSR) to a common neighbor iteration.
template <typename Graph, typename ForEachNeighbor>
std::vector<NodeId> DegeneracyOrderingImpl(const Graph& g,
                                           size_t* degeneracy,
                                           ForEachNeighbor&& for_each) {
  const size_t n = g.num_nodes();
  std::vector<size_t> deg(n);
  size_t max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    max_deg = std::max(max_deg, deg[u]);
  }
  // Bucket queue keyed by current degree.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId u = 0; u < n; ++u) buckets[deg[u]].push_back(u);
  std::vector<bool> removed(n, false);
  std::vector<NodeId> order;
  order.reserve(n);
  size_t degen = 0;
  size_t cursor = 0;
  while (order.size() < n) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    MARIOH_CHECK_LT(cursor, buckets.size());
    NodeId u = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[u] || deg[u] != cursor) {
      // Stale entry; u was re-bucketed at a lower degree.
      continue;
    }
    removed[u] = true;
    order.push_back(u);
    degen = std::max(degen, cursor);
    for_each(u, [&](NodeId v) {
      if (!removed[v] && deg[v] > 0) {
        --deg[v];
        buckets[deg[v]].push_back(v);
        if (deg[v] < cursor) cursor = deg[v];
      }
    });
  }
  if (degeneracy != nullptr) *degeneracy = degen;
  return order;
}

}  // namespace

std::vector<NodeId> DegeneracyOrdering(const ProjectedGraph& g,
                                       size_t* degeneracy) {
  return DegeneracyOrderingImpl(g, degeneracy, [&g](NodeId u, auto&& fn) {
    for (const auto& [v, w] : g.Neighbors(u)) {
      (void)w;
      fn(v);
    }
  });
}

std::vector<NodeId> DegeneracyOrdering(const CsrGraph& g,
                                       size_t* degeneracy) {
  return DegeneracyOrderingImpl(g, degeneracy, [&g](NodeId u, auto&& fn) {
    for (NodeId v : g.Neighbors(u)) fn(v);
  });
}

MaximalCliqueResult EnumerateMaximalCliques(const CsrGraph& g,
                                            const CliqueOptions& options) {
  MaximalCliqueResult result;
  const size_t n = g.num_nodes();
  if (n == 0) return result;
  std::vector<NodeId> order = DegeneracyOrdering(g, nullptr);
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[order[i]] = i;

  // Each root is individually capped at max_cliques + 1: a root hitting
  // its cap proves the concatenated total exceeds max_cliques, without
  // cross-thread communication that would make the surviving subset
  // depend on thread timing.
  const size_t per_root_cap =
      options.max_cliques == std::numeric_limits<size_t>::max()
          ? options.max_cliques
          : options.max_cliques + 1;

  // One sub-arena per worker range instead of one slot per root: roots
  // within a range are processed sequentially in ascending root order, so
  // concatenating the range arenas in range order reproduces the exact
  // root-order clique sequence for any thread count, while emission costs
  // zero allocations per clique (only amortized arena growth). The range
  // partition mirrors util::ParallelForRanges' static block partition.
  const size_t used_ranges = std::min(
      static_cast<size_t>(util::ResolveThreads(options.num_threads)), n);
  const size_t chunk = (n + used_ranges - 1) / used_ranges;
  std::vector<std::pair<size_t, size_t>> ranges;  // root index [begin, end)
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.emplace_back(begin, std::min(n, begin + chunk));
  }
  std::vector<CliqueStore> sub_arenas(ranges.size());
  // Per-range cancellation flags (one slot per range, no sharing): the
  // range that observes the trip records it; any set slot flags the
  // whole result `cancelled`.
  std::vector<char> range_cancelled(ranges.size(), 0);
  util::ParallelFor(ranges.size(), options.num_threads, [&](size_t ri) {
    const auto [begin, end] = ranges[ri];
    CliqueStore& out = sub_arenas[ri];
    util::CancelChecker cancel_check(options.cancel);
    // Working state reused across this range's roots, so the hot loop
    // stops allocating after warm-up. Every buffer is rebuilt or cleared
    // per root; the retained capacity is bounded by the largest
    // neighborhood enumerated on this thread.
    LocalSubgraph local;
    std::vector<std::vector<NodeId>> row_scratch;
    BkScratch scratch;
    std::vector<uint64_t> bit_scratch;
    std::vector<NodeId> p, x, r_local;
    NodeSet clique_buf;
    // Running count of cliques this range has emitted. Once it alone
    // exceeds max_cliques, every later root of the range lies past the
    // global truncation point (earlier roots only add to the prefix), so
    // the remaining roots contribute nothing to the final output and can
    // be skipped. The exit depends only on this range's own contents, so
    // the surviving output stays identical for any thread count, while
    // materialized work per range is bounded by ~2 * max_cliques (the
    // last root admitted at exactly max_cliques can itself emit up to
    // per_root_cap more) instead of roots * max_cliques.
    for (size_t i = begin; i < end && out.size() <= options.max_cliques;
         ++i) {
      // Cooperative preemption point #1: between roots.
      if (cancel_check.ShouldStop()) {
        range_cancelled[ri] = 1;
        break;
      }
      NodeId v = order[i];
      if (g.Degree(v) == 0) continue;
      // The whole subproblem lives inside N(v): relabel it to a compact
      // local subgraph so the recursion works on short rows — W-word
      // bitmasks when the neighborhood fits (almost always; degrees are
      // small in the peeling regime), contiguous spans otherwise.
      local.BuildRows(g, v, &row_scratch);
      const size_t s = local.globals.size();
      const size_t root_start = out.size();
      auto emit = [&](const std::vector<NodeId>& r) {
        // Cooperative preemption point #2: between emissions, bounding a
        // trip's latency inside one root by a single emission-free
        // Bron–Kerbosch stretch.
        if (cancel_check.ShouldStop()) {
          range_cancelled[ri] = 1;
          return false;
        }
        if (r.size() + 1 >= options.min_size) {
          clique_buf.clear();
          clique_buf.push_back(v);
          for (NodeId local_id : r) clique_buf.push_back(local.globals[local_id]);
          std::sort(clique_buf.begin(), clique_buf.end());
          out.PushClique(clique_buf);
          if (out.size() - root_start >= per_root_cap) return false;
        }
        return true;
      };
      r_local.clear();
      // P: neighbors later in the ordering; X: earlier. Local ids
      // ascend with global ids, so both stay sorted (as spans) and the
      // bit iteration visits them in the same order.
      auto run_bitset = [&]<size_t kWords>() {
        uint64_t p_mask[kWords] = {};
        uint64_t x_mask[kWords] = {};
        for (size_t w = 0; w < s; ++w) {
          uint64_t bit = uint64_t{1} << (w % 64);
          if (pos[local.globals[w]] > i) {
            p_mask[w / 64] |= bit;
          } else {
            x_mask[w / 64] |= bit;
          }
        }
        BitsetBronKerbosch<kWords, decltype(emit)> bk(
            local.globals, row_scratch, emit, &bit_scratch);
        bk.Expand(0, &r_local, p_mask, x_mask);
      };
      if (s <= 64) {
        run_bitset.template operator()<1>();
      } else if (s <= 128) {
        run_bitset.template operator()<2>();
      } else if (s <= 256) {
        run_bitset.template operator()<4>();
      } else if (s <= 512) {
        run_bitset.template operator()<8>();
      } else {
        local.Flatten(row_scratch);
        if (scratch.size() < 3 * (s + 2)) scratch.resize(3 * (s + 2));
        p.clear();
        x.clear();
        for (size_t w = 0; w < s; ++w) {
          if (pos[local.globals[w]] > i) {
            p.push_back(static_cast<NodeId>(w));
          } else {
            x.push_back(static_cast<NodeId>(w));
          }
        }
        PivotBronKerbosch bk(local, emit, &scratch);
        bk.Expand(0, &r_local, p, x);
      }
    }
  });

  for (char flag : range_cancelled) result.cancelled |= flag != 0;

  // Concatenate sub-arenas in range (= root) order; the global cap is
  // applied to this deterministic sequence, then the survivors are sorted.
  size_t total = 0;
  size_t total_nodes = 0;
  for (const CliqueStore& sub : sub_arenas) {
    total += sub.size();
    total_nodes += sub.total_nodes();
  }
  result.truncated = total > options.max_cliques;
  if (sub_arenas.size() == 1 && !result.truncated) {
    // Single range (the 1-thread default) under the cap: the sub-arena
    // already is the concatenation, so adopt it without a copy pass.
    result.cliques = std::move(sub_arenas.front());
  } else {
    result.cliques.Reserve(std::min(total, options.max_cliques),
                           total_nodes);
    for (const CliqueStore& sub : sub_arenas) {
      if (result.cliques.size() + sub.size() <= options.max_cliques) {
        result.cliques.Append(sub);
        continue;
      }
      for (CliqueView q : sub) {
        if (result.cliques.size() >= options.max_cliques) break;
        result.cliques.PushClique(q);
      }
      break;
    }
  }
  result.cliques.Sort();
  return result;
}

MaximalCliqueResult EnumerateMaximalCliques(const ProjectedGraph& g,
                                            const CliqueOptions& options) {
  CsrGraph csr(g, options.num_threads);
  return EnumerateMaximalCliques(csr, options);
}

std::vector<NodeSet> MaximalCliquesHashMapReference(
    const ProjectedGraph& g, const CliqueOptions& options) {
  std::vector<NodeSet> out;
  const size_t n = g.num_nodes();
  if (n == 0) return out;
  std::vector<NodeId> order = DegeneracyOrdering(g, nullptr);
  std::vector<size_t> pos(n);
  for (size_t i = 0; i < n; ++i) pos[order[i]] = i;

  HashMapBronKerbosch bk(g, options, &out);
  for (size_t i = 0; i < n; ++i) {
    NodeId v = order[i];
    if (g.Degree(v) == 0) continue;
    std::vector<NodeId> p, x;
    for (const auto& [w, wt] : g.Neighbors(v)) {
      (void)wt;
      if (pos[w] > i) {
        p.push_back(w);
      } else {
        x.push_back(w);
      }
    }
    std::sort(p.begin(), p.end());
    std::sort(x.begin(), x.end());
    NodeSet r = {v};
    bk.Expand(&r, std::move(p), std::move(x));
    if (out.size() >= options.max_cliques) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeSet GreedyCliqueAround(const ProjectedGraph& g, NodeId seed) {
  NodeSet clique = {seed};
  // Candidates sorted by descending degree for a large greedy clique.
  std::vector<NodeId> cands;
  for (const auto& [v, w] : g.Neighbors(seed)) {
    (void)w;
    cands.push_back(v);
  }
  std::sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
    size_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  for (NodeId v : cands) {
    bool ok = true;
    for (NodeId u : clique) {
      if (!g.HasEdge(u, v)) {
        ok = false;
        break;
      }
    }
    if (ok) clique.push_back(v);
  }
  Canonicalize(&clique);
  return clique;
}

}  // namespace marioh
