#include "hypergraph/projected_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace marioh {

uint32_t ProjectedGraph::Weight(NodeId u, NodeId v) const {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return 0;
  const AdjMap& nu = adj_[u];
  auto it = nu.find(v);
  return it == nu.end() ? 0 : it->second;
}

void ProjectedGraph::AddWeight(NodeId u, NodeId v, uint32_t delta) {
  MARIOH_CHECK_NE(u, v);
  MARIOH_CHECK_LT(u, adj_.size());
  MARIOH_CHECK_LT(v, adj_.size());
  if (delta == 0) return;
  uint32_t& wu = adj_[u][v];
  if (wu == 0) ++num_edges_;
  wu += delta;
  adj_[v][u] = wu;
}

uint32_t ProjectedGraph::SubtractWeight(NodeId u, NodeId v, uint32_t delta) {
  if (u == v) return 0;
  auto it = adj_[u].find(v);
  if (it == adj_[u].end()) return 0;
  uint32_t removed = std::min(delta, it->second);
  it->second -= removed;
  if (it->second == 0) {
    adj_[u].erase(it);
    adj_[v].erase(u);
    --num_edges_;
  } else {
    adj_[v][u] = it->second;
  }
  return removed;
}

uint32_t ProjectedGraph::RemoveEdge(NodeId u, NodeId v) {
  uint32_t w = Weight(u, v);
  if (w > 0) SubtractWeight(u, v, w);
  return w;
}

uint64_t ProjectedGraph::WeightedDegree(NodeId u) const {
  uint64_t s = 0;
  for (const auto& [v, w] : adj_[u]) s += w;
  return s;
}

size_t ProjectedGraph::MaxDegree() const {
  size_t d = 0;
  for (const AdjMap& m : adj_) d = std::max(d, m.size());
  return d;
}

double ProjectedGraph::AverageWeight() const {
  if (num_edges_ == 0) return 0.0;
  return static_cast<double>(TotalWeight()) /
         static_cast<double>(num_edges_);
}

std::vector<ProjectedGraph::Edge> ProjectedGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (const auto& [v, w] : adj_[u]) {
      if (u < v) out.push_back({u, v, w});
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

bool ProjectedGraph::IsClique(std::span<const NodeId> nodes) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (!HasEdge(nodes[i], nodes[j])) return false;
    }
  }
  return true;
}

uint64_t ProjectedGraph::Mhh(NodeId u, NodeId v) const {
  const AdjMap* small = &adj_[u];
  const AdjMap* large = &adj_[v];
  NodeId other_small = v;  // endpoint to skip while iterating *small
  NodeId other_large = u;
  if (small->size() > large->size()) {
    std::swap(small, large);
    std::swap(other_small, other_large);
  }
  uint64_t total = 0;
  for (const auto& [z, wz] : *small) {
    if (z == other_small) continue;
    auto it = large->find(z);
    if (it == large->end()) continue;
    total += std::min(wz, it->second);
  }
  return total;
}

std::vector<NodeId> ProjectedGraph::CommonNeighbors(NodeId u, NodeId v) const {
  const AdjMap* small = &adj_[u];
  const AdjMap* large = &adj_[v];
  NodeId skip = v;
  if (small->size() > large->size()) {
    std::swap(small, large);
    skip = u;
  }
  std::vector<NodeId> out;
  for (const auto& [z, wz] : *small) {
    (void)wz;
    if (z == skip) continue;
    if (large->count(z) > 0) out.push_back(z);
  }
  return out;
}

size_t ProjectedGraph::CommonNeighborCount(NodeId u, NodeId v) const {
  const AdjMap* small = &adj_[u];
  const AdjMap* large = &adj_[v];
  NodeId skip = v;
  if (small->size() > large->size()) {
    std::swap(small, large);
    skip = u;
  }
  size_t count = 0;
  for (const auto& [z, wz] : *small) {
    (void)wz;
    if (z == skip) continue;
    if (large->count(z) > 0) ++count;
  }
  return count;
}

void ProjectedGraph::PeelClique(std::span<const NodeId> nodes) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      SubtractWeight(nodes[i], nodes[j], 1);
    }
  }
}

uint64_t ProjectedGraph::TotalWeight() const {
  uint64_t s = 0;
  for (const AdjMap& m : adj_) {
    for (const auto& [v, w] : m) {
      (void)v;
      s += w;
    }
  }
  return s / 2;
}

size_t ProjectedGraph::ApproxBytes() const {
  // Per hash-map node: key + value + chain pointer + a conservative
  // allocator-overhead constant.
  constexpr size_t kNodeOverhead = 24;
  size_t bytes = sizeof(*this) + adj_.capacity() * sizeof(AdjMap);
  for (const AdjMap& m : adj_) {
    bytes += m.bucket_count() * sizeof(void*);
    bytes += m.size() * (sizeof(NodeId) + sizeof(uint32_t) + kNodeOverhead);
  }
  return bytes;
}

}  // namespace marioh
