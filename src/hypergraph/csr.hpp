/// \file csr.hpp
/// \brief Immutable CSR (compressed sparse row) snapshot of a projected
/// graph: cache-friendly sorted neighbor ranges, O(log d) adjacency tests,
/// and fast sorted-merge common-neighbor iteration. This is the read path
/// of the reconstruction loop's snapshot-then-peel pattern (see
/// docs/ARCHITECTURE.md "The hot path"): every iteration freezes the
/// mutable hash-map `ProjectedGraph` into a `CsrGraph`, runs the read-heavy
/// kernels (maximal-clique enumeration, MHH, feature extraction) on the
/// snapshot — in parallel, since it never changes — and then applies the
/// accepted peels back to the mutable graph.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh {

/// Immutable weighted-graph snapshot in CSR layout.
class CsrGraph {
 public:
  /// An empty snapshot (0 nodes); a placeholder to patch or assign into.
  CsrGraph() = default;

  /// Builds a snapshot of `g`. Neighbors of every node are sorted by id.
  /// `num_threads` parallelizes the per-row sort (0 = all cores); the
  /// result is identical for any thread count.
  explicit CsrGraph(const ProjectedGraph& g, int num_threads = 1);

  /// Incremental snapshot reuse: builds a snapshot of `g` by patching
  /// `prev`, a snapshot of an earlier state of the same graph from which
  /// `g` differs only in the adjacency rows of `touched_nodes` (e.g. the
  /// members of cliques peeled since `prev` was taken — peeling only
  /// mutates edges whose two endpoints are both in the peeled clique, so
  /// every other row is bit-identical and is copied straight from `prev`
  /// instead of being re-gathered and re-sorted from the hash map).
  /// `touched_nodes` may be in any order and contain duplicates; nodes
  /// whose rows did not actually change are harmless (their rebuilt rows
  /// come out identical). The result is bit-identical to `CsrGraph(g)`
  /// for any thread count.
  CsrGraph(const CsrGraph& prev, const ProjectedGraph& g,
           std::span<const NodeId> touched_nodes, int num_threads = 1);

  /// Number of nodes.
  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges.
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree of node u.
  size_t Degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Weighted degree: sum of w(u,v) over neighbors v. O(1), precomputed.
  uint64_t WeightedDegree(NodeId u) const { return weighted_degrees_[u]; }

  /// Sorted neighbor ids of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// Weights aligned with Neighbors(u).
  std::span<const uint32_t> Weights(NodeId u) const {
    return {weights_.data() + offsets_[u],
            weights_.data() + offsets_[u + 1]};
  }

  /// Weight of edge (u, v); 0 if absent. O(log deg(u)).
  uint32_t Weight(NodeId u, NodeId v) const;

  /// True if {u, v} is an edge.
  bool HasEdge(NodeId u, NodeId v) const { return Weight(u, v) > 0; }

  /// Common neighbors of u and v by sorted merge; ascending order.
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// |N(u) ∩ N(v)| (excluding u and v themselves) by sorted merge,
  /// without materializing the intersection.
  size_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// MHH (Eq. (1)) computed on the snapshot; matches
  /// ProjectedGraph::Mhh on the same graph.
  uint64_t Mhh(NodeId u, NodeId v) const;

  /// True if every pair of distinct nodes in `nodes` (a canonical
  /// NodeSet or CliqueView) is an edge — i.e. `nodes` is a clique of
  /// this snapshot.
  bool IsClique(std::span<const NodeId> nodes) const;

  /// Sum of all edge weights.
  uint64_t TotalWeight() const { return total_weight_; }

 private:
  std::vector<size_t> offsets_;     // size num_nodes + 1
  std::vector<NodeId> neighbors_;   // concatenated sorted adjacency
  std::vector<uint32_t> weights_;   // aligned with neighbors_
  std::vector<uint64_t> weighted_degrees_;  // size num_nodes
  uint64_t total_weight_ = 0;
};

}  // namespace marioh
