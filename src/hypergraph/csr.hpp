/// \file csr.hpp
/// \brief Immutable CSR (compressed sparse row) snapshot of a projected
/// graph for read-heavy analytics: cache-friendly sorted neighbor ranges,
/// O(log d) adjacency tests, and fast sorted-merge common-neighbor
/// iteration. The mutable hash-map `ProjectedGraph` remains the right
/// structure for the reconstruction loop; this is the right one for
/// whole-graph scans (structural metrics, generators, embeddings).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh {

/// Immutable weighted-graph snapshot in CSR layout.
class CsrGraph {
 public:
  /// Builds a snapshot of `g`. Neighbors of every node are sorted by id.
  explicit CsrGraph(const ProjectedGraph& g);

  /// Number of nodes.
  size_t num_nodes() const { return offsets_.size() - 1; }

  /// Number of undirected edges.
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree of node u.
  size_t Degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Sorted neighbor ids of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// Weights aligned with Neighbors(u).
  std::span<const uint32_t> Weights(NodeId u) const {
    return {weights_.data() + offsets_[u],
            weights_.data() + offsets_[u + 1]};
  }

  /// Weight of edge (u, v); 0 if absent. O(log deg(u)).
  uint32_t Weight(NodeId u, NodeId v) const;

  /// True if {u, v} is an edge.
  bool HasEdge(NodeId u, NodeId v) const { return Weight(u, v) > 0; }

  /// Common neighbors of u and v by sorted merge; ascending order.
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// MHH (Eq. (1)) computed on the snapshot; matches
  /// ProjectedGraph::Mhh on the same graph.
  uint64_t Mhh(NodeId u, NodeId v) const;

  /// Sum of all edge weights.
  uint64_t TotalWeight() const { return total_weight_; }

 private:
  std::vector<size_t> offsets_;     // size num_nodes + 1
  std::vector<NodeId> neighbors_;   // concatenated sorted adjacency
  std::vector<uint32_t> weights_;   // aligned with neighbors_
  uint64_t total_weight_ = 0;
};

}  // namespace marioh
