/// \file clique.hpp
/// \brief Maximal-clique enumeration (Bron–Kerbosch with pivoting over a
/// degeneracy ordering) — the candidate generator shared by MARIOH and all
/// clique-based baselines, so comparisons are apples-to-apples as in the
/// paper ("the same maximal clique detection algorithm was used across all
/// methods").
///
/// The fast path runs on an immutable `CsrGraph` snapshot: the outer
/// degeneracy-ordered roots are independent subproblems fanned out with
/// `util::ParallelFor`, each writing its cliques to a per-root slot. Slots
/// are concatenated in root order and the result sorted, so the output is
/// identical for any thread count (the determinism contract of
/// docs/ARCHITECTURE.md).

#pragma once

#include <cstddef>
#include <vector>

#include "hypergraph/csr.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh {

/// Options for maximal-clique enumeration.
struct CliqueOptions {
  /// Hard cap on the number of cliques emitted (guards pathological
  /// inputs); enumeration stops once reached and the result is flagged
  /// truncated.
  size_t max_cliques = 5'000'000;
  /// Only emit cliques with at least this many nodes.
  size_t min_size = 2;
  /// Threads for the per-root fan-out (0 = all cores). Output is
  /// identical for any value.
  int num_threads = 1;
};

/// Result of a maximal-clique enumeration.
struct MaximalCliqueResult {
  /// All maximal cliques (canonical node sets), sorted.
  std::vector<NodeSet> cliques;
  /// True if `max_cliques` capped the output — `cliques` is then a
  /// partial set and callers relying on completeness must not proceed
  /// silently (api::Session surfaces this in its stage stats).
  bool truncated = false;
};

/// Enumerates all maximal cliques of the snapshot `g` using Bron–Kerbosch
/// with pivoting; the outer recursion level follows a degeneracy ordering,
/// giving O(d * n * 3^(d/3)) time for a graph of degeneracy d. Per-root
/// subproblems run in parallel (options.num_threads) with deterministic
/// output. When truncation hits, each root is individually capped at
/// max_cliques + 1 emissions and each worker stops its root range once
/// that range alone exceeds the cap, so worst-case materialized work is
/// bounded by ~2 * max_cliques per worker without cross-thread
/// coordination that would break determinism.
MaximalCliqueResult EnumerateMaximalCliques(const CsrGraph& g,
                                            const CliqueOptions& options = {});

/// Convenience: snapshots `g` and enumerates on the CSR fast path.
MaximalCliqueResult EnumerateMaximalCliques(const ProjectedGraph& g,
                                            const CliqueOptions& options = {});

/// Back-compat convenience returning just the (possibly truncated) clique
/// list; prefer EnumerateMaximalCliques where the truncation flag matters.
std::vector<NodeSet> MaximalCliques(const ProjectedGraph& g,
                                    const CliqueOptions& options = {});

/// Reference enumeration over the mutable hash-map adjacency, sequential.
/// Kept as the equivalence-test oracle and the hashmap side of the
/// CSR-vs-hashmap microbenchmarks; produces the same sorted clique set as
/// the CSR fast path (up to which subset survives truncation).
std::vector<NodeSet> MaximalCliquesHashMapReference(
    const ProjectedGraph& g, const CliqueOptions& options = {});

/// Degeneracy ordering of `g`: repeatedly removes a minimum-degree node.
/// Returns the removal order; `degeneracy` (optional) receives the graph
/// degeneracy.
std::vector<NodeId> DegeneracyOrdering(const ProjectedGraph& g,
                                       size_t* degeneracy = nullptr);

/// Degeneracy ordering computed on a CSR snapshot.
std::vector<NodeId> DegeneracyOrdering(const CsrGraph& g,
                                       size_t* degeneracy = nullptr);

/// Finds one maximum-cardinality clique containing `seed` greedily (used by
/// baselines); returns just `{seed}` if the node is isolated.
NodeSet GreedyCliqueAround(const ProjectedGraph& g, NodeId seed);

}  // namespace marioh
