/// \file clique.hpp
/// \brief Maximal-clique enumeration (Bron–Kerbosch with pivoting over a
/// degeneracy ordering) — the candidate generator shared by MARIOH and all
/// clique-based baselines, so comparisons are apples-to-apples as in the
/// paper ("the same maximal clique detection algorithm was used across all
/// methods").

#pragma once

#include <cstddef>
#include <vector>

#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh {

/// Options for maximal-clique enumeration.
struct CliqueOptions {
  /// Hard cap on the number of cliques emitted (guards pathological
  /// inputs); enumeration stops once reached.
  size_t max_cliques = 5'000'000;
  /// Only emit cliques with at least this many nodes.
  size_t min_size = 2;
};

/// Enumerates all maximal cliques of `g` (node sets in canonical order,
/// deterministic output order) using Bron–Kerbosch with pivoting; the outer
/// recursion level follows a degeneracy ordering, giving
/// O(d * n * 3^(d/3)) time for a graph of degeneracy d.
std::vector<NodeSet> MaximalCliques(const ProjectedGraph& g,
                                    const CliqueOptions& options = {});

/// Degeneracy ordering of `g`: repeatedly removes a minimum-degree node.
/// Returns the removal order; `degeneracy` (optional) receives the graph
/// degeneracy.
std::vector<NodeId> DegeneracyOrdering(const ProjectedGraph& g,
                                       size_t* degeneracy = nullptr);

/// Finds one maximum-cardinality clique containing `seed` greedily (used by
/// baselines); returns just `{seed}` if the node is isolated.
NodeSet GreedyCliqueAround(const ProjectedGraph& g, NodeId seed);

}  // namespace marioh
