/// \file clique.hpp
/// \brief Maximal-clique enumeration (Bron–Kerbosch with pivoting over a
/// degeneracy ordering) — the candidate generator shared by MARIOH and all
/// clique-based baselines, so comparisons are apples-to-apples as in the
/// paper ("the same maximal clique detection algorithm was used across all
/// methods").
///
/// The fast path runs on an immutable `CsrGraph` snapshot: the outer
/// degeneracy-ordered roots are independent subproblems fanned out with
/// `util::ParallelFor`, each worker appending its cliques to a per-range
/// `CliqueStore` sub-arena. Sub-arenas are concatenated in root order and
/// the result sorted, so the output is identical for any thread count (the
/// determinism contract of docs/ARCHITECTURE.md). Cliques live in one flat
/// arena — enumeration performs no per-clique allocation, and consumers
/// read them as `CliqueView` spans.

#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <vector>

#include "hypergraph/csr.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"
#include "util/cancel.hpp"

namespace marioh {

/// A read-only view of one clique stored in a `CliqueStore`: a canonically
/// sorted span of node ids, valid as long as the owning store is alive and
/// unmodified.
using CliqueView = std::span<const NodeId>;

/// Flat arena of cliques: one contiguous `NodeId` buffer plus an offsets
/// array. Appending never allocates per clique (only amortized buffer
/// growth), and cliques are handed out as `CliqueView` spans — the storage
/// layout the hot path (enumeration → feature extraction → scoring →
/// selection) runs on end-to-end. Only cliques that are *accepted* as
/// hyperedges ever materialize an owning `NodeSet`.
class CliqueStore {
 public:
  CliqueStore() = default;

  /// Number of cliques stored.
  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  bool empty() const { return size() == 0; }

  /// Total node ids across all cliques (the arena length).
  size_t total_nodes() const { return nodes_.size(); }

  /// View of clique `i` (canonical order, as appended).
  CliqueView operator[](size_t i) const {
    return {nodes_.data() + offsets_[i], nodes_.data() + offsets_[i + 1]};
  }

  /// Pre-allocates room for `cliques` cliques totalling `nodes` node ids.
  void Reserve(size_t cliques, size_t nodes);

  /// Appends one clique (must already be canonically sorted).
  void PushClique(CliqueView clique);

  /// Appends every clique of `other` in order (bulk copy).
  void Append(const CliqueStore& other);

  /// Removes all cliques; keeps the arena capacity for reuse.
  void Clear();

  /// Sorts the cliques lexicographically (the canonical order of
  /// `std::vector<NodeSet>` sorting), rebuilding the arena in sorted
  /// order.
  void Sort();

  /// Owning copy of clique `i`.
  NodeSet Materialize(size_t i) const {
    CliqueView v = (*this)[i];
    return NodeSet(v.begin(), v.end());
  }

  /// Copy-out to the legacy representation (one heap allocation per
  /// clique); for consumers that need owning sets, e.g. hash-set
  /// membership oracles. Hot-path code should iterate views instead.
  std::vector<NodeSet> ToNodeSets() const;

  /// Forward iterator over `CliqueView`s, enabling range-for.
  class ConstIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = CliqueView;
    using difference_type = std::ptrdiff_t;
    using pointer = const CliqueView*;
    using reference = CliqueView;

    ConstIterator(const CliqueStore* store, size_t index)
        : store_(store), index_(index) {}
    CliqueView operator*() const { return (*store_)[index_]; }
    ConstIterator& operator++() {
      ++index_;
      return *this;
    }
    ConstIterator operator++(int) {
      ConstIterator tmp = *this;
      ++index_;
      return tmp;
    }
    bool operator==(const ConstIterator& other) const = default;

   private:
    const CliqueStore* store_;
    size_t index_;
  };

  ConstIterator begin() const { return {this, 0}; }
  ConstIterator end() const { return {this, size()}; }

  /// Two stores are equal iff they hold the same cliques in the same
  /// order.
  bool operator==(const CliqueStore& other) const;

 private:
  std::vector<NodeId> nodes_;    ///< concatenated clique members
  std::vector<size_t> offsets_;  ///< clique i spans [offsets_[i], offsets_[i+1])
};

/// Options for maximal-clique enumeration.
struct CliqueOptions {
  /// Hard cap on the number of cliques emitted (guards pathological
  /// inputs); enumeration stops once reached and the result is flagged
  /// truncated.
  size_t max_cliques = 5'000'000;
  /// Only emit cliques with at least this many nodes.
  size_t min_size = 2;
  /// Threads for the per-root fan-out (0 = all cores). Output is
  /// identical for any value.
  int num_threads = 1;
  /// Cooperative stop signal, polled at every root and at every emission
  /// (so a trip lands within one inter-emission Bron–Kerbosch stretch).
  /// Null = non-cancellable. An untriggered token changes nothing; a
  /// tripped one stops each worker range early and flags the result
  /// `cancelled` — the output is then partial and must be discarded.
  const util::CancelToken* cancel = nullptr;
};

/// Result of a maximal-clique enumeration.
struct MaximalCliqueResult {
  /// All maximal cliques, lexicographically sorted, in one flat arena.
  CliqueStore cliques;
  /// True if `max_cliques` capped the output — `cliques` is then a
  /// partial set and callers relying on completeness must not proceed
  /// silently (api::Session surfaces this in its stage stats).
  bool truncated = false;
  /// True if `CliqueOptions::cancel` tripped mid-enumeration — `cliques`
  /// is then partial in a *non-deterministic* way (which roots finished
  /// depends on when the trip landed) and must be discarded, never
  /// scored or applied.
  bool cancelled = false;
};

/// Enumerates all maximal cliques of the snapshot `g` using Bron–Kerbosch
/// with pivoting; the outer recursion level follows a degeneracy ordering,
/// giving O(d * n * 3^(d/3)) time for a graph of degeneracy d. Per-root
/// subproblems run in parallel (options.num_threads) with deterministic
/// output. When truncation hits, each root is individually capped at
/// max_cliques + 1 emissions and each worker stops its root range once
/// that range alone exceeds the cap, so worst-case materialized work is
/// bounded by ~2 * max_cliques per worker without cross-thread
/// coordination that would break determinism.
MaximalCliqueResult EnumerateMaximalCliques(const CsrGraph& g,
                                            const CliqueOptions& options = {});

/// Convenience: snapshots `g` and enumerates on the CSR fast path.
MaximalCliqueResult EnumerateMaximalCliques(const ProjectedGraph& g,
                                            const CliqueOptions& options = {});

/// Reference enumeration over the mutable hash-map adjacency, sequential.
/// Kept as the equivalence-test oracle and the hashmap side of the
/// CSR-vs-hashmap microbenchmarks; produces the same sorted clique set as
/// the CSR fast path (up to which subset survives truncation).
std::vector<NodeSet> MaximalCliquesHashMapReference(
    const ProjectedGraph& g, const CliqueOptions& options = {});

/// Degeneracy ordering of `g`: repeatedly removes a minimum-degree node.
/// Returns the removal order; `degeneracy` (optional) receives the graph
/// degeneracy.
std::vector<NodeId> DegeneracyOrdering(const ProjectedGraph& g,
                                       size_t* degeneracy = nullptr);

/// Degeneracy ordering computed on a CSR snapshot.
std::vector<NodeId> DegeneracyOrdering(const CsrGraph& g,
                                       size_t* degeneracy = nullptr);

/// Finds one maximum-cardinality clique containing `seed` greedily (used by
/// baselines); returns just `{seed}` if the node is isolated.
NodeSet GreedyCliqueAround(const ProjectedGraph& g, NodeId seed);

}  // namespace marioh
