#include "hypergraph/csr.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace marioh {

CsrGraph::CsrGraph(const ProjectedGraph& g, int num_threads) {
  const size_t n = g.num_nodes();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.Degree(u);
  }
  neighbors_.resize(offsets_.back());
  weights_.resize(offsets_.back());
  weighted_degrees_.assign(n, 0);
  // Rows are independent slots, so sorting them is deterministic for any
  // thread count.
  util::ParallelFor(n, num_threads, [&](size_t u) {
    std::vector<std::pair<NodeId, uint32_t>> row(g.Neighbors(u).begin(),
                                                 g.Neighbors(u).end());
    std::sort(row.begin(), row.end());
    size_t base = offsets_[u];
    uint64_t weighted = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      neighbors_[base + i] = row[i].first;
      weights_[base + i] = row[i].second;
      weighted += row[i].second;
    }
    weighted_degrees_[u] = weighted;
  });
  for (uint64_t wd : weighted_degrees_) total_weight_ += wd;
  total_weight_ /= 2;
}

CsrGraph::CsrGraph(const CsrGraph& prev, const ProjectedGraph& g,
                   std::span<const NodeId> touched_nodes, int num_threads) {
  const size_t n = g.num_nodes();
  MARIOH_CHECK_EQ(prev.num_nodes(), n);
  std::vector<uint8_t> is_touched(n, 0);
  for (NodeId u : touched_nodes) {
    MARIOH_CHECK_LT(u, n);
    is_touched[u] = 1;
  }
  // New row lengths: touched rows from the mutable graph, the rest from
  // the previous snapshot (their degrees cannot have changed).
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] =
        offsets_[u] + (is_touched[u] ? g.Degree(u) : prev.Degree(u));
  }
  neighbors_.resize(offsets_.back());
  weights_.resize(offsets_.back());
  weighted_degrees_.assign(n, 0);
  // Rows are independent slots, so the fill is deterministic for any
  // thread count: untouched rows are straight copies of `prev`'s sorted
  // rows, touched rows are re-gathered and re-sorted from `g` exactly as
  // in the from-scratch build.
  util::ParallelFor(n, num_threads, [&](size_t u) {
    const size_t base = offsets_[u];
    if (!is_touched[u]) {
      auto src_n = prev.Neighbors(u);
      auto src_w = prev.Weights(u);
      std::copy(src_n.begin(), src_n.end(), neighbors_.begin() + base);
      std::copy(src_w.begin(), src_w.end(), weights_.begin() + base);
      weighted_degrees_[u] = prev.weighted_degrees_[u];
      return;
    }
    std::vector<std::pair<NodeId, uint32_t>> row(g.Neighbors(u).begin(),
                                                 g.Neighbors(u).end());
    std::sort(row.begin(), row.end());
    uint64_t weighted = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      neighbors_[base + i] = row[i].first;
      weights_[base + i] = row[i].second;
      weighted += row[i].second;
    }
    weighted_degrees_[u] = weighted;
  });
  for (uint64_t wd : weighted_degrees_) total_weight_ += wd;
  total_weight_ /= 2;
}

uint32_t CsrGraph::Weight(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return 0;
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0;
  return weights_[offsets_[u] + static_cast<size_t>(it - nbrs.begin())];
}

std::vector<NodeId> CsrGraph::CommonNeighbors(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      if (nu[i] != u && nu[i] != v) out.push_back(nu[i]);
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

size_t CsrGraph::CommonNeighborCount(NodeId u, NodeId v) const {
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  // Members of N(u) ∩ N(v) can equal neither u nor v (no self-loops), so
  // no endpoint skip is needed. The linear merge is branch-predictable
  // and beats binary-search skipping at realistic degree skews.
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      ++count;
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

uint64_t CsrGraph::Mhh(NodeId u, NodeId v) const {
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  auto wu = Weights(u);
  auto wv = Weights(v);
  uint64_t total = 0;
  // As in CommonNeighborCount: z ∈ N(u) ∩ N(v) implies z != u, z != v.
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      total += std::min(wu[i], wv[j]);
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

bool CsrGraph::IsClique(std::span<const NodeId> nodes) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (!HasEdge(nodes[i], nodes[j])) return false;
    }
  }
  return true;
}

}  // namespace marioh
