#include "hypergraph/csr.hpp"

#include <algorithm>

namespace marioh {

CsrGraph::CsrGraph(const ProjectedGraph& g) {
  const size_t n = g.num_nodes();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.Degree(u);
  }
  neighbors_.resize(offsets_.back());
  weights_.resize(offsets_.back());
  for (NodeId u = 0; u < n; ++u) {
    // Collect and sort this node's adjacency by neighbor id.
    std::vector<std::pair<NodeId, uint32_t>> row;
    row.reserve(g.Degree(u));
    for (const auto& [v, w] : g.Neighbors(u)) {
      row.emplace_back(v, w);
      total_weight_ += w;
    }
    std::sort(row.begin(), row.end());
    size_t base = offsets_[u];
    for (size_t i = 0; i < row.size(); ++i) {
      neighbors_[base + i] = row[i].first;
      weights_[base + i] = row[i].second;
    }
  }
  total_weight_ /= 2;
}

uint32_t CsrGraph::Weight(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return 0;
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0;
  return weights_[offsets_[u] + static_cast<size_t>(it - nbrs.begin())];
}

std::vector<NodeId> CsrGraph::CommonNeighbors(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      if (nu[i] != u && nu[i] != v) out.push_back(nu[i]);
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

uint64_t CsrGraph::Mhh(NodeId u, NodeId v) const {
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  auto wu = Weights(u);
  auto wv = Weights(v);
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      if (nu[i] != u && nu[i] != v) {
        total += std::min(wu[i], wv[j]);
      }
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace marioh
