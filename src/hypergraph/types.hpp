/// \file types.hpp
/// \brief Fundamental identifiers and the canonical hyperedge
/// representation shared by every subsystem.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace marioh {

/// Dense node identifier. Nodes of an n-node (hyper)graph are 0..n-1.
using NodeId = uint32_t;

/// A hyperedge or clique: a canonically sorted, duplicate-free set of node
/// ids. All library functions that accept a `NodeSet` require canonical
/// form; use `Canonicalize` when constructing from arbitrary input.
using NodeSet = std::vector<NodeId>;

/// Sorts and deduplicates `nodes` in place, producing canonical form.
inline void Canonicalize(NodeSet* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

/// Returns the canonical form of `nodes`.
inline NodeSet Canonicalized(NodeSet nodes) {
  Canonicalize(&nodes);
  return nodes;
}

/// Unordered node pair stored canonically as (min, max).
using NodePair = std::pair<NodeId, NodeId>;

/// Builds the canonical (min, max) pair.
inline NodePair MakePair(NodeId u, NodeId v) {
  return u < v ? NodePair{u, v} : NodePair{v, u};
}

}  // namespace marioh
