/// \file hypergraph.hpp
/// \brief Multiset hypergraph `H = (V, E*_H)` with hyperedge multiplicities
/// and clique expansion into the weighted projected graph.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hypergraph/types.hpp"
#include "util/hash.hpp"

namespace marioh {

class ProjectedGraph;

/// A hypergraph over nodes 0..num_nodes-1 whose hyperedges form a multiset:
/// each unique hyperedge (a canonical `NodeSet` of size >= 2) carries a
/// positive multiplicity `M_H(e)`. This mirrors the paper's
/// `H = (V, E_H, M_H)` formulation (Sect. II-A).
class Hypergraph {
 public:
  /// Map from unique hyperedge to its multiplicity.
  using EdgeMap = std::unordered_map<NodeSet, uint32_t, util::VectorHash>;

  /// Creates an empty hypergraph over `num_nodes` nodes.
  explicit Hypergraph(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Builds a hypergraph from a list of (possibly repeated) hyperedges.
  /// Each edge is canonicalized; edges with fewer than two distinct nodes
  /// are dropped. `num_nodes` of 0 means "infer as max node id + 1".
  static Hypergraph FromEdges(const std::vector<NodeSet>& edges,
                              size_t num_nodes = 0);

  /// Adds `count` copies of hyperedge `e` (canonicalized internally);
  /// silently ignores edges with fewer than two distinct nodes. Grows the
  /// node count if `e` mentions an unseen node.
  void AddEdge(NodeSet e, uint32_t count = 1);

  /// Removes up to `count` copies of hyperedge `e`; returns the number of
  /// copies actually removed.
  uint32_t RemoveEdge(const NodeSet& e, uint32_t count = 1);

  /// Multiplicity of hyperedge `e` (0 if absent).
  uint32_t Multiplicity(const NodeSet& e) const;

  /// True if at least one copy of `e` is present.
  bool Contains(const NodeSet& e) const { return Multiplicity(e) > 0; }

  /// Number of nodes |V|.
  size_t num_nodes() const { return num_nodes_; }

  /// Number of unique hyperedges |E_H|.
  size_t num_unique_edges() const { return edges_.size(); }

  /// Total hyperedge count |E*_H| = sum of multiplicities.
  size_t num_total_edges() const { return total_edges_; }

  /// Unique-edge → multiplicity map.
  const EdgeMap& edges() const { return edges_; }

  /// Unique hyperedges as a vector (deterministic order: sorted).
  std::vector<NodeSet> UniqueEdges() const;

  /// All hyperedges with repetitions expanded (deterministic order).
  std::vector<NodeSet> ExpandedEdges() const;

  /// Returns a copy with all hyperedge multiplicities reduced to 1 — the
  /// "multiplicity-reduced" evaluation setting of the paper. Note this does
  /// NOT make the projected graph unweighted.
  Hypergraph MultiplicityReduced() const;

  /// Clique expansion: the weighted projected graph `G = (V, E_G, w)` with
  /// `w(u,v) = sum_e M_H(e) * 1({u,v} ⊆ e)`.
  ProjectedGraph Project() const;

  /// Average hyperedge multiplicity (the `Avg. M_H` column of Table I);
  /// 0 for an empty hypergraph.
  double AverageMultiplicity() const;

  /// Average hyperedge size over the multiset; 0 for an empty hypergraph.
  double AverageEdgeSize() const;

  /// Per-node degree: the number of hyperedges (counting multiplicity)
  /// containing each node.
  std::vector<uint32_t> NodeDegrees() const;

  /// For each node, the list of unique hyperedges containing it (indices
  /// into `UniqueEdges()`' order is not guaranteed; pointers into the map
  /// are). Used by the downstream-task feature code.
  std::vector<std::vector<const NodeSet*>> IncidenceLists() const;

  /// Approximate resident heap footprint in bytes (edge map buckets,
  /// node vectors, per-node allocation overhead). O(|E_H|); the
  /// `DatasetCache` byte-budget accounting uses this at insert time.
  size_t ApproxBytes() const;

 private:
  size_t num_nodes_ = 0;
  size_t total_edges_ = 0;
  EdgeMap edges_;
};

}  // namespace marioh
