/// \file projected_graph.hpp
/// \brief Mutable weighted graph `G = (V, E_G, w)`: the clique expansion of
/// a hypergraph, and the object MARIOH's reconstruction loop peels.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hypergraph/types.hpp"

namespace marioh {

/// Weighted undirected graph with integer edge weights (edge
/// multiplicities). Adjacency is a per-node hash map so the reconstruction
/// loop can decrement and delete edges in O(1) expected time.
class ProjectedGraph {
 public:
  /// Neighbor → weight map for a single node.
  using AdjMap = std::unordered_map<NodeId, uint32_t>;

  /// Creates an edgeless graph over `num_nodes` nodes.
  explicit ProjectedGraph(size_t num_nodes = 0) : adj_(num_nodes) {}

  /// Number of nodes |V|.
  size_t num_nodes() const { return adj_.size(); }

  /// Number of (undirected) edges |E_G| currently present.
  size_t num_edges() const { return num_edges_; }

  /// True if no edges remain (the reconstruction loop's stop condition).
  bool Empty() const { return num_edges_ == 0; }

  /// Weight w(u,v); 0 if the edge is absent or u == v.
  uint32_t Weight(NodeId u, NodeId v) const;

  /// True if {u,v} is an edge.
  bool HasEdge(NodeId u, NodeId v) const { return Weight(u, v) > 0; }

  /// Adds `delta` to w(u,v), inserting the edge if absent. `u != v`.
  void AddWeight(NodeId u, NodeId v, uint32_t delta);

  /// Subtracts `delta` from w(u,v); removes the edge if the weight reaches
  /// zero. Subtracting more than the current weight clamps to removal.
  /// Returns the amount actually subtracted.
  uint32_t SubtractWeight(NodeId u, NodeId v, uint32_t delta);

  /// Removes the edge {u,v} entirely; returns its former weight.
  uint32_t RemoveEdge(NodeId u, NodeId v);

  /// Neighbor map of `u` (weights included).
  const AdjMap& Neighbors(NodeId u) const { return adj_[u]; }

  /// Degree |N(u)|.
  size_t Degree(NodeId u) const { return adj_[u].size(); }

  /// Weighted degree: sum of w(u,v) over neighbors v.
  uint64_t WeightedDegree(NodeId u) const;

  /// Maximum degree over all nodes.
  size_t MaxDegree() const;

  /// Average edge weight (the `Avg. w` column of Table I); 0 if edgeless.
  double AverageWeight() const;

  /// All edges as (u, v, w) with u < v, sorted for determinism.
  struct Edge {
    NodeId u;
    NodeId v;
    uint32_t weight;
  };
  std::vector<Edge> Edges() const;

  /// True if every pair of distinct nodes in `nodes` (a canonical NodeSet
  /// or CliqueView) is an edge — i.e. `nodes` is a clique of this graph.
  bool IsClique(std::span<const NodeId> nodes) const;

  /// Maximum number of higher-order hyperedges through edge {u,v}
  /// (Eq. (1)): `MHH(u,v) = sum_{z in N(u) ∩ N(v)} min(w(u,z), w(v,z))`.
  /// Iterates the smaller of the two neighbor maps.
  uint64_t Mhh(NodeId u, NodeId v) const;

  /// Common neighbors N(u) ∩ N(v), unsorted.
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// |N(u) ∩ N(v)| without materializing the intersection.
  size_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// Subtracts 1 from every edge of the clique `nodes`, removing edges that
  /// hit zero. Callers must ensure `nodes` is currently a clique.
  void PeelClique(std::span<const NodeId> nodes);

  /// Sum of all edge weights.
  uint64_t TotalWeight() const;

  /// Approximate resident heap footprint in bytes (per-node adjacency
  /// maps, buckets, allocation overhead). O(|V|); the `DatasetCache`
  /// byte-budget accounting uses this at insert time.
  size_t ApproxBytes() const;

 private:
  std::vector<AdjMap> adj_;
  size_t num_edges_ = 0;
};

}  // namespace marioh
