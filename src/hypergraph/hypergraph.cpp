#include "hypergraph/hypergraph.hpp"

#include <algorithm>

#include "hypergraph/projected_graph.hpp"
#include "util/check.hpp"

namespace marioh {

Hypergraph Hypergraph::FromEdges(const std::vector<NodeSet>& edges,
                                 size_t num_nodes) {
  Hypergraph h(num_nodes);
  for (const NodeSet& e : edges) h.AddEdge(e);
  return h;
}

void Hypergraph::AddEdge(NodeSet e, uint32_t count) {
  if (count == 0) return;
  Canonicalize(&e);
  if (e.size() < 2) return;
  num_nodes_ = std::max<size_t>(num_nodes_, e.back() + 1);
  edges_[std::move(e)] += count;
  total_edges_ += count;
}

uint32_t Hypergraph::RemoveEdge(const NodeSet& e, uint32_t count) {
  auto it = edges_.find(e);
  if (it == edges_.end()) return 0;
  uint32_t removed = std::min(count, it->second);
  it->second -= removed;
  total_edges_ -= removed;
  if (it->second == 0) edges_.erase(it);
  return removed;
}

uint32_t Hypergraph::Multiplicity(const NodeSet& e) const {
  auto it = edges_.find(e);
  return it == edges_.end() ? 0 : it->second;
}

std::vector<NodeSet> Hypergraph::UniqueEdges() const {
  std::vector<NodeSet> out;
  out.reserve(edges_.size());
  for (const auto& [e, m] : edges_) out.push_back(e);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeSet> Hypergraph::ExpandedEdges() const {
  std::vector<NodeSet> out;
  out.reserve(total_edges_);
  for (const NodeSet& e : UniqueEdges()) {
    uint32_t m = Multiplicity(e);
    for (uint32_t i = 0; i < m; ++i) out.push_back(e);
  }
  return out;
}

Hypergraph Hypergraph::MultiplicityReduced() const {
  Hypergraph h(num_nodes_);
  for (const auto& [e, m] : edges_) h.AddEdge(e, 1);
  return h;
}

ProjectedGraph Hypergraph::Project() const {
  ProjectedGraph g(num_nodes_);
  for (const auto& [e, m] : edges_) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        g.AddWeight(e[i], e[j], m);
      }
    }
  }
  return g;
}

double Hypergraph::AverageMultiplicity() const {
  if (edges_.empty()) return 0.0;
  return static_cast<double>(total_edges_) /
         static_cast<double>(edges_.size());
}

double Hypergraph::AverageEdgeSize() const {
  if (total_edges_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [e, m] : edges_) {
    s += static_cast<double>(e.size()) * m;
  }
  return s / static_cast<double>(total_edges_);
}

std::vector<uint32_t> Hypergraph::NodeDegrees() const {
  std::vector<uint32_t> deg(num_nodes_, 0);
  for (const auto& [e, m] : edges_) {
    for (NodeId u : e) deg[u] += m;
  }
  return deg;
}

std::vector<std::vector<const NodeSet*>> Hypergraph::IncidenceLists() const {
  std::vector<std::vector<const NodeSet*>> inc(num_nodes_);
  for (const auto& [e, m] : edges_) {
    for (NodeId u : e) inc[u].push_back(&e);
  }
  return inc;
}

size_t Hypergraph::ApproxBytes() const {
  // Hash-map node: the key vector header + its heap buffer, the value,
  // the chain pointer, and a conservative allocator-overhead constant.
  constexpr size_t kNodeOverhead = 32;
  size_t bytes = sizeof(*this);
  bytes += edges_.bucket_count() * sizeof(void*);
  for (const auto& [e, m] : edges_) {
    (void)m;
    bytes += sizeof(NodeSet) + sizeof(uint32_t) + kNodeOverhead;
    bytes += e.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace marioh
