#include "util/timer.hpp"

namespace marioh::util {}
