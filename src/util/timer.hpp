/// \file timer.hpp
/// \brief Wall-clock timer and a named stage stopwatch used by the runtime
/// breakdown experiments (Fig. 6).

#pragma once

#include <chrono>
#include <map>
#include <string>

namespace marioh::util {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() { Reset(); }
  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall-clock time per named stage. MARIOH uses this to report
/// the load/train/filter/bidirectional-search breakdown of Fig. 6.
class StageTimer {
 public:
  /// Adds `seconds` to the stage named `stage`.
  void Add(const std::string& stage, double seconds) {
    totals_[stage] += seconds;
  }
  /// Overwrites the stage's value — for point-in-time samples (e.g. the
  /// memory gauges in Session stage stats) where summing would be wrong.
  void Set(const std::string& stage, double value) {
    totals_[stage] = value;
  }
  /// Total seconds recorded for `stage` (0 if never recorded).
  double Get(const std::string& stage) const {
    auto it = totals_.find(stage);
    return it == totals_.end() ? 0.0 : it->second;
  }
  /// Sum over all stages.
  double Total() const {
    double t = 0.0;
    for (const auto& [k, v] : totals_) t += v;
    return t;
  }
  /// All recorded stages in name order.
  const std::map<std::string, double>& stages() const { return totals_; }
  /// Clears all recorded stages.
  void Clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// RAII helper that adds the scope's elapsed time to a StageTimer entry.
class ScopedStage {
 public:
  ScopedStage(StageTimer* timer, std::string stage)
      : timer_(timer), stage_(std::move(stage)) {}
  ~ScopedStage() {
    if (timer_ != nullptr) timer_->Add(stage_, watch_.Seconds());
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimer* timer_;
  std::string stage_;
  Timer watch_;
};

}  // namespace marioh::util
