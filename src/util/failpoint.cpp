#include "util/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/cancel.hpp"

namespace marioh::util {

namespace detail {
std::atomic<int> g_active_failpoints{0};
}  // namespace detail

namespace {

/// splitmix64: tiny, seedable, and good enough for coin flips.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4ecb9f5a57d35ULL;
  return z ^ (z >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a, so each failpoint's draw stream is independent of the
  // others regardless of configuration order.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Point {
  FailAction action = FailAction::kNone;
  int delay_ms = 0;
  double probability = 1.0;
  uint64_t max_count = 0;  ///< 0 = unlimited
  uint64_t skip = 0;       ///< `after=`: evaluations to pass first
  std::string spec;        ///< original text, for Describe

  uint64_t evals = 0;  ///< times Eval reached this point
  uint64_t hits = 0;   ///< times it fired
  uint64_t rng = 0;    ///< per-point draw state (seed ^ name hash)
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Point> points;
  uint64_t seed = 0;
  /// Monotone across Clear(): the chaos accounting counter.
  uint64_t total_hits = 0;
};

Registry& R() {
  static Registry registry;
  return registry;
}

/// Parses "error", "delay:250|p=0.5|count=3|after=1", "short", ...
/// into `*point`. Returns false with *error set on malformed input.
bool ParseSpec(const std::string& spec, Point* point, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Point parsed;
  parsed.spec = spec;
  std::istringstream in(spec);
  std::string field;
  bool have_action = false;
  while (std::getline(in, field, '|')) {
    if (field.empty()) return fail("empty field in failpoint spec '" + spec + "'");
    if (field == "error" || field == "short") {
      if (have_action) return fail("duplicate action in '" + spec + "'");
      parsed.action = field == "error" ? FailAction::kError : FailAction::kShort;
      have_action = true;
      continue;
    }
    if (field.rfind("delay:", 0) == 0) {
      if (have_action) return fail("duplicate action in '" + spec + "'");
      try {
        size_t pos = 0;
        int ms = std::stoi(field.substr(6), &pos);
        if (pos != field.size() - 6 || ms < 0) throw std::invalid_argument(field);
        parsed.delay_ms = ms;
      } catch (const std::exception&) {
        return fail("bad delay '" + field + "' (expected delay:<ms>)");
      }
      parsed.action = FailAction::kDelay;
      have_action = true;
      continue;
    }
    if (field.rfind("p=", 0) == 0) {
      try {
        size_t pos = 0;
        double p = std::stod(field.substr(2), &pos);
        if (pos != field.size() - 2 || p < 0.0 || p > 1.0) {
          throw std::invalid_argument(field);
        }
        parsed.probability = p;
      } catch (const std::exception&) {
        return fail("bad probability '" + field + "' (expected p=<0..1>)");
      }
      continue;
    }
    if (field.rfind("count=", 0) == 0 || field.rfind("after=", 0) == 0) {
      bool is_count = field[0] == 'c';
      try {
        size_t pos = 0;
        unsigned long long n = std::stoull(field.substr(6), &pos);
        if (pos != field.size() - 6) throw std::invalid_argument(field);
        (is_count ? parsed.max_count : parsed.skip) = n;
      } catch (const std::exception&) {
        return fail("bad modifier '" + field + "' (expected " +
                    (is_count ? "count=<n>" : "after=<n>") + ")");
      }
      continue;
    }
    return fail("unknown failpoint field '" + field + "' in '" + spec + "'");
  }
  if (!have_action) {
    return fail("failpoint spec '" + spec +
                "' names no action (error, delay:<ms>, short)");
  }
  *point = parsed;
  return true;
}

/// Loads MARIOH_FAILPOINTS / MARIOH_FAILPOINTS_SEED once at static init,
/// so a daemon launched with the env var set injects from its first
/// request without any code having to opt in.
const bool g_env_loaded = [] {
  const char* seed_env = std::getenv("MARIOH_FAILPOINTS_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    FailPoints::SetSeed(std::strtoull(seed_env, nullptr, 10));
  }
  const char* env = std::getenv("MARIOH_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    std::string error;
    if (!FailPoints::ConfigureList(env, &error)) {
      // Mis-typed env vars must be loud, not silently inert — but this
      // is static init, so stderr is the only channel available.
      std::fprintf(stderr, "MARIOH_FAILPOINTS: %s\n", error.c_str());
    }
  }
  return true;
}();

}  // namespace

FailAction FailPoints::Eval(const std::string& name,
                            const CancelToken* cancel) {
  FailAction action = FailAction::kNone;
  int delay_ms = 0;
  {
    Registry& r = R();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.points.find(name);
    if (it == r.points.end()) return FailAction::kNone;
    Point& point = it->second;
    ++point.evals;
    if (point.evals <= point.skip) return FailAction::kNone;
    if (point.max_count > 0 && point.hits >= point.max_count) {
      return FailAction::kNone;
    }
    if (point.probability < 1.0) {
      double draw = static_cast<double>(SplitMix64(point.rng) >> 11) *
                    (1.0 / 9007199254740992.0);  // uniform [0, 1)
      if (draw >= point.probability) return FailAction::kNone;
    }
    ++point.hits;
    ++r.total_hits;
    action = point.action;
    delay_ms = point.delay_ms;
  }
  if (action == FailAction::kDelay && delay_ms > 0) {
    // Chunked so a watchdog cancel can cut a simulated wedge short when
    // the site threads its token through (Session stage gates do).
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(delay_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (cancel != nullptr && cancel->ShouldStop()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return action;
}

bool FailPoints::Configure(const std::string& name, const std::string& spec,
                           std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "empty failpoint name";
    return false;
  }
  Registry& r = R();
  if (spec.empty() || spec == "off") {
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.points.erase(name) > 0) {
      detail::g_active_failpoints.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
  }
  Point point;
  if (!ParseSpec(spec, &point, error)) return false;
  std::lock_guard<std::mutex> lock(r.mutex);
  point.rng = r.seed ^ HashName(name);
  auto [it, inserted] = r.points.insert_or_assign(name, point);
  (void)it;
  if (inserted) {
    detail::g_active_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool FailPoints::ConfigureList(const std::string& list, std::string* error) {
  if (list == "off") {
    Clear();
    return true;
  }
  std::istringstream in(list);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "expected name=spec, got '" + entry + "'";
      }
      return false;
    }
    if (!Configure(entry.substr(0, eq), entry.substr(eq + 1), error)) {
      return false;
    }
  }
  return true;
}

void FailPoints::Clear() {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  detail::g_active_failpoints.fetch_sub(static_cast<int>(r.points.size()),
                                        std::memory_order_relaxed);
  r.points.clear();
}

void FailPoints::SetSeed(uint64_t seed) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.seed = seed;
  for (auto& [name, point] : r.points) {
    point.rng = seed ^ HashName(name);
  }
}

uint64_t FailPoints::Hits(const std::string& name) {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::TotalHits() {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.total_hits;
}

std::vector<std::string> FailPoints::Describe() {
  Registry& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> lines;
  lines.reserve(r.points.size());
  for (const auto& [name, point] : r.points) {
    lines.push_back(name + "=" + point.spec + " hits=" +
                    std::to_string(point.hits));
  }
  return lines;
}

}  // namespace marioh::util
