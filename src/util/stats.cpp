#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace marioh::util {

std::vector<double> Aggregate5(const std::vector<double>& values) {
  if (values.empty()) return {0.0, 0.0, 0.0, 0.0, 0.0};
  double sum = 0.0;
  double lo = values.front();
  double hi = values.front();
  for (double v : values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return {sum, mean, lo, hi, std::sqrt(var)};
}

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Std() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  size_t i = 0, j = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    // Advance past ties on both sides together so tied values contribute a
    // single CDF step per sample.
    double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

double NormalizedDifference(double x, double y) {
  double hi = std::max(std::fabs(x), std::fabs(y));
  if (hi == 0.0) return 0.0;
  return std::fabs(x - y) / hi;
}

}  // namespace marioh::util
