/// \file parse.hpp
/// \brief Strict, exception-free numeric parsing for untrusted text —
/// protocol tokens, CLI flags. The std::sto* family accepts trailing
/// garbage, leading whitespace, and negative values for unsigned types
/// unless every call site re-implements the same guards; these helpers
/// centralize them. A parse succeeds only if the *entire* token is one
/// well-formed number in range.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace marioh::util {

/// Parses a non-negative integer; rejects signs, whitespace, trailing
/// characters, and overflow.
inline std::optional<uint64_t> ParseUint64(const std::string& token) {
  if (token.empty() || token.find_first_not_of("0123456789") !=
                           std::string::npos) {
    return std::nullopt;
  }
  try {
    size_t pos = 0;
    uint64_t value = std::stoull(token, &pos);
    if (pos != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Parses a non-negative int (a narrow ParseUint64).
inline std::optional<int> ParseNonNegativeInt(const std::string& token) {
  std::optional<uint64_t> value = ParseUint64(token);
  if (!value.has_value() || *value > static_cast<uint64_t>(INT32_MAX)) {
    return std::nullopt;
  }
  return static_cast<int>(*value);
}

/// Parses a finite double (sign allowed); rejects whitespace and
/// trailing characters.
inline std::optional<double> ParseDouble(const std::string& token) {
  if (token.empty() || token.front() == ' ') return std::nullopt;
  try {
    size_t pos = 0;
    double value = std::stod(token, &pos);
    if (pos != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace marioh::util
