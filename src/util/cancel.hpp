/// \file cancel.hpp
/// \brief Cooperative cancellation: an atomic stop flag plus an optional
/// hard deadline on the steady clock, polled by the long-running kernels
/// at bounded intervals so Cancel and deadline overruns land *mid-kernel*
/// instead of at the next stage boundary.
///
/// Contract (the preemption counterpart of the determinism contract in
/// docs/ARCHITECTURE.md): a token that never trips must not change any
/// output bit — kernels may only consult it to *stop early*, never to
/// alter what they compute. A tripped token leaves partial state behind;
/// the owner (api::Session / api::Service) discards the partial result
/// and reports kCancelled / kDeadlineExceeded instead.
///
/// Tokens are plumbed as `const CancelToken*` (null = non-cancellable,
/// the default everywhere) because every kernel is a *reader*: only the
/// controlling side — a Service job's owner thread — calls Cancel().
/// Both operations are lock-free atomics, safe to call concurrently with
/// any number of polling kernels.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace marioh::util {

/// Why a token asked work to stop.
enum class CancelReason {
  kNone,       ///< not tripped
  kCancelled,  ///< Cancel() was called
  kDeadline,   ///< the armed deadline passed on the steady clock
};

/// Shared stop signal. Immovable: kernels hold raw pointers to it, so the
/// owner must keep it at a stable address for the duration of the run
/// (api::Service stores one per Job; tests keep it on the stack).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trips the flag. Idempotent; wins over a deadline in reason().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) a hard deadline `seconds` from now on the steady
  /// clock; negative disarms. Unlike the soft Session time budget — which
  /// lets the overrunning run finish and score (the paper's OOT
  /// semantics) — an armed deadline aborts mid-kernel.
  void SetDeadline(double seconds_from_now) {
    if (seconds_from_now < 0.0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    int64_t now = NowNanos();
    int64_t delta = static_cast<int64_t>(seconds_from_now * 1e9);
    deadline_ns_.store(now + delta, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Tripped for either reason. Reads the clock only when a deadline is
  /// armed; hot loops should poll through a CancelChecker to stride even
  /// that out.
  bool ShouldStop() const { return reason() != CancelReason::kNone; }

  CancelReason reason() const {
    if (cancelled()) return CancelReason::kCancelled;
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && NowNanos() >= deadline) {
      return CancelReason::kDeadline;
    }
    return CancelReason::kNone;
  }

  /// Publishes liveness: bumps the heartbeat counter the service
  /// watchdog samples to tell a slow-but-working job from a wedged one.
  /// Rides the existing poll sites (CancelChecker calls it on every
  /// check, Session stage gates once per stage), so the hot-path cost is
  /// one relaxed atomic add on a line only this job's kernels touch.
  /// Const because kernels hold `const CancelToken*` — beating is
  /// observability, not control, so the reader-side plumbing stays
  /// untouched.
  void Beat() const { heartbeat_.fetch_add(1, std::memory_order_relaxed); }

  /// The watchdog's sample: monotone while the job makes progress,
  /// frozen when it is wedged (e.g. stuck in a blocking call that never
  /// reaches a poll site).
  uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in ns since the clock's epoch; 0 = disarmed.
  std::atomic<int64_t> deadline_ns_{0};
  /// Liveness counter for the watchdog; mutable so the polling kernels'
  /// `const CancelToken*` view can still beat (see Beat()).
  mutable std::atomic<uint64_t> heartbeat_{0};
};

/// Null-safe check for the common `const CancelToken* cancel` parameter.
inline bool ShouldStop(const CancelToken* token) {
  return token != nullptr && token->ShouldStop();
}

/// Strided poller for per-item hot loops: every call reads the atomic
/// flag (cheap — a relaxed load), but the deadline's clock read happens
/// only once per `stride` calls. Latches once tripped, so a loop can keep
/// calling it after breaking out of an inner scope.
class CancelChecker {
 public:
  explicit CancelChecker(const CancelToken* token, uint32_t stride = 64)
      : token_(token), stride_(stride == 0 ? 1 : stride) {}

  /// True once the token tripped (checked with the striding above).
  /// Every call also publishes a heartbeat, so the poll sites double as
  /// the liveness signal the service watchdog samples.
  bool ShouldStop() {
    if (stopped_ || token_ == nullptr) return stopped_;
    token_->Beat();
    if (token_->cancelled()) {
      stopped_ = true;
    } else if (++calls_ >= stride_) {
      calls_ = 0;
      stopped_ = token_->ShouldStop();
    }
    return stopped_;
  }

 private:
  const CancelToken* token_;
  uint32_t stride_;
  uint32_t calls_ = 0;
  bool stopped_ = false;
};

}  // namespace marioh::util
