#include "util/rng.hpp"

// Header-only; this translation unit exists so the target has a stable
// object for the module and to catch ODR issues early.

namespace marioh::util {}
