/// \file check.hpp
/// \brief Assertion macros used across the MARIOH library.
///
/// `MARIOH_CHECK` guards programming errors (always on, including release
/// builds); failures print the condition and location then abort. Use
/// `MARIOH_CHECK_*` comparison forms to get both operand values in the
/// message.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace marioh::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "[MARIOH_CHECK failed] %s:%d: %s\n", file, line,
               message.c_str());
  std::abort();
}

}  // namespace marioh::util

#define MARIOH_CHECK(cond)                                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::marioh::util::CheckFailed(__FILE__, __LINE__, #cond);         \
    }                                                                 \
  } while (0)

#define MARIOH_CHECK_OP(op, a, b)                                     \
  do {                                                                \
    auto mh_a = (a);                                                  \
    auto mh_b = (b);                                                  \
    if (!(mh_a op mh_b)) {                                            \
      std::ostringstream mh_oss;                                      \
      mh_oss << #a " " #op " " #b " (" << mh_a << " vs " << mh_b      \
             << ")";                                                  \
      ::marioh::util::CheckFailed(__FILE__, __LINE__, mh_oss.str());  \
    }                                                                 \
  } while (0)

#define MARIOH_CHECK_EQ(a, b) MARIOH_CHECK_OP(==, a, b)
#define MARIOH_CHECK_NE(a, b) MARIOH_CHECK_OP(!=, a, b)
#define MARIOH_CHECK_LT(a, b) MARIOH_CHECK_OP(<, a, b)
#define MARIOH_CHECK_LE(a, b) MARIOH_CHECK_OP(<=, a, b)
#define MARIOH_CHECK_GT(a, b) MARIOH_CHECK_OP(>, a, b)
#define MARIOH_CHECK_GE(a, b) MARIOH_CHECK_OP(>=, a, b)
