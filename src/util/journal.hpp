/// \file journal.hpp
/// \brief A write-ahead journal: an append-only, segmented, checksummed
/// record log that survives process death. `api::Service` journals the
/// request lifecycle through it (accept → attempts → terminal) so a
/// daemon killed mid-load can re-admit every accepted-but-unfinished job
/// on restart; the class itself is payload-agnostic and reusable.
///
/// **Record framing.** Each record is length-prefixed and checksummed:
///
///   [payload_len u32][crc32 u32][key u64][flags u8][payload bytes]
///
/// (little-endian, 17-byte header; the CRC covers key + flags + payload).
/// Records are written with one `write(2)` on an `O_APPEND` descriptor
/// and — under the default `JournalFsync::kAlways` policy — fsync'd
/// before `Append` returns, so a record the caller saw succeed is on
/// stable storage.
///
/// **Torn-tail detection.** A crash can leave a partially written record
/// at the tail of a segment. Replay verifies length bounds and the CRC of
/// every record; at the first bad one it *truncates the segment file* at
/// the last good record boundary and moves on — a torn tail costs exactly
/// the record that was mid-write, never the journal.
///
/// **Segments, rotation, compaction.** The journal is a directory of
/// `wal-<seq>.log` segment files. The active segment rotates once it
/// exceeds `rotate_bytes`. Every record carries a caller key (the job
/// id); a record appended with `terminal = true` closes its key. A
/// non-active segment whose keys are all closed holds no information a
/// replay needs, so it is unlinked (compaction) — the journal's footprint
/// is proportional to the open backlog, not to history.
///
/// **Failpoints.** `journal.append` (error: reject the append;
/// short: leave a genuinely torn half-record behind and rotate),
/// `journal.fsync` (error: the synced-to-disk promise fails — the record
/// is rolled back), and `journal.replay` (error: Open fails) make every
/// durability surface chaos-testable with the PR 8 machinery.
///
/// Layering note: this lives in util/ (it is generic infrastructure) but
/// reports errors through `api::Status` like every fallible surface of
/// the repo; api/status.hpp depends only on util/check.hpp, so the
/// include is acyclic.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "api/status.hpp"

namespace marioh::util {

/// When appended records reach stable storage.
enum class JournalFsync {
  /// fsync(2) after every append: a record whose Append returned OK is
  /// durable even through power loss. The default — durability is the
  /// whole point of a write-ahead journal.
  kAlways,
  /// Leave flushing to the OS page cache: much cheaper, but a crash can
  /// lose the most recent appends (replay still truncates the torn tail
  /// cleanly). For workloads where re-running a lost tail is acceptable.
  kNever,
};

/// Parses "always" / "never" as printed above. Returns false (and leaves
/// `*out` alone) for anything else.
bool ParseJournalFsync(const std::string& name, JournalFsync* out);

struct JournalOptions {
  /// Rotate the active segment once it holds at least this many bytes.
  size_t rotate_bytes = 4u << 20;
  JournalFsync fsync = JournalFsync::kAlways;
};

/// Monotone counters since Open (replay counters describe the Open
/// itself).
struct JournalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t records_replayed = 0;  ///< good records seen during Open
  /// Segments whose tail failed the length/CRC checks during Open and
  /// were truncated at the last good record boundary.
  uint64_t torn_tails_truncated = 0;
  uint64_t torn_bytes_dropped = 0;
  uint64_t segments_created = 0;
  uint64_t segments_compacted = 0;  ///< fully-terminal segments unlinked
};

/// One replayed record, exactly as appended.
struct JournalRecord {
  uint64_t key = 0;
  bool terminal = false;
  std::string payload;
};

/// Append-only segmented record log. All methods are thread-safe; Append
/// serializes internally (records never interleave).
class Journal {
 public:
  using ReplayCallback = std::function<void(const JournalRecord&)>;

  /// Opens (creating the directory and first segment if needed) and
  /// replays every surviving record, in append order, into `replay`
  /// (which may be null to discard them). Torn tails are truncated on
  /// the way; fully-terminal non-active segments left over from a
  /// previous life are compacted. Errors (unreachable directory,
  /// unreadable segment, the `journal.replay` failpoint) return a
  /// non-OK status and leave the directory untouched beyond tail
  /// truncation.
  static api::StatusOr<std::unique_ptr<Journal>> Open(
      const std::string& dir, const ReplayCallback& replay,
      JournalOptions options = {});

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record and (policy permitting) syncs it to stable
  /// storage. `terminal = true` closes `key`, making segments that only
  /// hold closed keys eligible for compaction. On any failure —
  /// injected or real — no durable record remains (a partially written
  /// record is truncated or abandoned behind a rotation, where replay
  /// drops it), so a failed Append can never resurrect as a replayed
  /// record. kInvalidArgument for oversized payloads, kUnavailable for
  /// IO failures (retryable by the caller's policy).
  api::Status Append(uint64_t key, std::string_view payload, bool terminal);

  JournalStats stats() const;

  /// Segment files currently on disk (including the active one).
  size_t segment_count() const;

  const std::string& dir() const { return dir_; }

  /// Hard cap on one record's payload (sanity bound for replay: a
  /// length prefix beyond it is treated as corruption).
  static constexpr size_t kMaxPayloadBytes = 16u << 20;

 private:
  Journal(std::string dir, JournalOptions options);

  /// Closes the active segment and opens `wal-<seq>.log` fresh for
  /// append. Requires `mutex_` held.
  api::Status OpenSegmentLocked(uint64_t seq);
  /// Unlinks every non-active segment whose keys are all closed.
  /// Requires `mutex_` held.
  void CompactLocked();
  /// fsync the directory itself so created/unlinked segment names are
  /// durable. Requires `mutex_` held; best-effort under kNever.
  void SyncDirLocked();
  /// Replays one segment file into `replay`, truncating a torn tail.
  /// Requires `mutex_` held (only called from Open).
  api::Status ReplaySegmentLocked(const std::string& path, uint64_t seq,
                                  const ReplayCallback& replay);

  mutable std::mutex mutex_;
  const std::string dir_;
  const JournalOptions options_;
  int fd_ = -1;           ///< active segment, O_WRONLY | O_APPEND
  uint64_t active_seq_ = 0;
  size_t active_bytes_ = 0;
  /// Keys with at least one record in each live segment, and the keys
  /// not yet closed by a terminal record — together they decide which
  /// segments compaction may drop.
  std::map<uint64_t, std::set<uint64_t>> segment_keys_;
  std::set<uint64_t> open_keys_;
  JournalStats stats_;
};

}  // namespace marioh::util
