/// \file failpoint.hpp
/// \brief Deterministic fault injection: named failpoints planted at the
/// real fault surfaces of the stack (io file loads, DatasetCache
/// load/evict, WorkerPool task start, Session stage boundaries, the net
/// read/write/accept wrappers) so tests and the chaos soak can make the
/// error paths *happen* on demand instead of hoping for them.
///
/// A failpoint is a name plus an action:
///
///   error      simulate a failure — the site maps it to its own idiom
///              (a Status::Unavailable return, an injected EAGAIN, ...)
///   delay:MS   sleep MS milliseconds at the site, then continue — the
///              "wedged job" / slow-dependency simulator (chunked, and
///              interruptible when the site passes a CancelToken)
///   short      truncate the operation (the net write wrapper maps this
///              to a 1-byte short write; elsewhere it acts like error)
///
/// with optional `|`-separated modifiers:
///
///   p=F        fire with probability F (seeded, deterministic per name)
///   count=N    fire at most N times, then go dormant
///   after=N    skip the first N evaluations before firing
///
/// Configuration comes from the `MARIOH_FAILPOINTS` environment variable
/// (comma-separated `name=action|mod|mod` entries, parsed once at static
/// init) or the programmatic API below; `MARIOH_FAILPOINTS_SEED` (or
/// SetSeed) fixes the p= coin flips so a chaos schedule replays exactly.
///
/// **Zero-cost when inactive.** Sites gate on `FailPoints::active()` — a
/// single relaxed atomic load that is false unless at least one failpoint
/// is configured anywhere in the process — so with `MARIOH_FAILPOINTS`
/// unset the planted checks compile to one branch on a cold flag and the
/// binary is behavior-identical to an un-instrumented one (asserted by
/// test_faults).
///
/// This is the estimate-then-verify doctrine of test_robustness.cpp
/// extended from bad data to bad infrastructure: violate the environment
/// deliberately, and prove the service layer degrades and recovers
/// instead of falling over.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace marioh::util {

class CancelToken;

/// What a fired failpoint asks the site to simulate. kNone means the
/// point did not fire (unconfigured, probability missed, count spent);
/// kDelay is reported after the sleep already happened inside Eval.
enum class FailAction {
  kNone = 0,
  kError,
  kDelay,
  kShort,
};

namespace detail {
/// Count of configured failpoints; the one word the hot gate reads.
extern std::atomic<int> g_active_failpoints;
}  // namespace detail

/// Global, process-wide failpoint registry. All methods are thread-safe;
/// `active()` is lock-free and the only call allowed on a hot path.
class FailPoints {
 public:
  /// True when any failpoint is configured — one relaxed atomic load.
  /// Sites must check this before calling Eval.
  static bool active() {
    return detail::g_active_failpoints.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the named failpoint: applies after/count/p bookkeeping and
  /// returns the action the site should simulate. A `delay` action sleeps
  /// here (in 10 ms chunks, aborting early if `cancel` trips) and then
  /// returns kDelay so the site can also account the hit if it wants.
  /// Unconfigured names return kNone.
  static FailAction Eval(const std::string& name,
                         const CancelToken* cancel = nullptr);

  /// Configures (or reconfigures) one failpoint from an action spec like
  /// "error", "delay:250|p=0.5", "short|after=2|count=3". An empty spec
  /// or "off" removes the point. Returns false and fills *error on a
  /// malformed spec (the registry is left unchanged).
  static bool Configure(const std::string& name, const std::string& spec,
                        std::string* error = nullptr);

  /// Configures a comma-separated `name=spec,...` list, the
  /// MARIOH_FAILPOINTS syntax; "off" alone clears everything.
  static bool ConfigureList(const std::string& list,
                            std::string* error = nullptr);

  /// Removes every failpoint and resets hit accounting to zero.
  static void Clear();

  /// Reseeds the p= coin flips (also resets each point's draw sequence).
  /// Equivalent to MARIOH_FAILPOINTS_SEED.
  static void SetSeed(uint64_t seed);

  /// Times the named failpoint fired (0 for unknown names).
  static uint64_t Hits(const std::string& name);

  /// Total fires across all failpoints since process start — survives
  /// Clear so chaos harnesses can account every injected fault.
  static uint64_t TotalHits();

  /// "name=spec hits=N" lines for every configured point, sorted by
  /// name; empty when none are configured.
  static std::vector<std::string> Describe();
};

}  // namespace marioh::util
