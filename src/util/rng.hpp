/// \file rng.hpp
/// \brief Deterministic random number generation.
///
/// Every stochastic component in the library takes an explicit seed so that
/// experiments are reproducible. `Rng` wraps a 64-bit Mersenne twister with
/// the handful of draw helpers the reconstruction and generation code needs.

#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace marioh::util {

/// Deterministic pseudo-random generator used throughout the library.
class Rng {
 public:
  /// Creates a generator from an explicit 64-bit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the closed range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MARIOH_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). `n` must be positive.
  size_t UniformIndex(size_t n) {
    MARIOH_CHECK_GT(n, 0u);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in the half-open range [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to (mean, stddev).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric draw (number of failures before first success), success
  /// probability `p` in (0, 1].
  int64_t Geometric(double p) {
    MARIOH_CHECK_GT(p, 0.0);
    if (p >= 1.0) return 0;
    return std::geometric_distribution<int64_t>(p)(engine_);
  }

  /// Poisson draw with rate `lambda`.
  int64_t Poisson(double lambda) {
    MARIOH_CHECK_GT(lambda, 0.0);
    return std::poisson_distribution<int64_t>(lambda)(engine_);
  }

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  size_t Discrete(const std::vector<double>& weights) {
    MARIOH_CHECK(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(),
                                              weights.end())(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[UniformIndex(i)]);
    }
  }

  /// Samples `k` distinct elements from `items` (reservoir sampling).
  template <typename T>
  std::vector<T> SampleWithoutReplacement(std::span<const T> items,
                                          size_t k) {
    MARIOH_CHECK_LE(k, items.size());
    std::vector<T> out(items.begin(), items.begin() + k);
    for (size_t i = k; i < items.size(); ++i) {
      size_t j = UniformIndex(i + 1);
      if (j < k) out[j] = items[i];
    }
    return out;
  }

  /// Vector convenience for the span overload above.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(const std::vector<T>& items,
                                          size_t k) {
    return SampleWithoutReplacement(std::span<const T>(items), k);
  }

  /// Derives an independent child generator; used to give each worker or
  /// repetition its own stream.
  Rng Fork() { return Rng(engine_()); }

  /// Access to the raw engine for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace marioh::util
