#include "util/worker_pool.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

namespace marioh::util {

WorkerPool::WorkerPool(int num_threads) {
  int threads = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> task) {
  Submit(std::move(task), TaskOptions{});
}

void WorkerPool::Submit(std::function<void()> task, TaskOptions options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    PriorityBucket& bucket = buckets_[options.priority];
    bucket.lanes[options.client].push_back(std::move(task));
    ++bucket.size;
    ++queued_;
  }
  wake_.notify_one();
}

std::function<void()> WorkerPool::PopLocked() {
  MARIOH_CHECK(queued_ > 0);
  // Highest non-empty priority class wins unconditionally.
  auto bit = buckets_.begin();
  while (bit->second.size == 0) ++bit;
  PriorityBucket& bucket = bit->second;
  // Round-robin across the class's client lanes: the first lane with id
  // strictly after the one served last, wrapping to the lowest id. A
  // fresh bucket starts from the lowest id.
  auto lane = bucket.served_any
                  ? bucket.lanes.upper_bound(bucket.last_client)
                  : bucket.lanes.begin();
  if (lane == bucket.lanes.end()) lane = bucket.lanes.begin();
  std::function<void()> task = std::move(lane->second.front());
  lane->second.pop_front();
  bucket.last_client = lane->first;
  bucket.served_any = true;
  if (lane->second.empty()) bucket.lanes.erase(lane);
  --bucket.size;
  --queued_;
  return task;
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // A previous Shutdown already joined the workers.
      if (workers_.empty()) return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

size_t WorkerPool::pending(int priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(priority);
  return it == buckets_.end() ? 0 : it->second.size;
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
      if (queued_ == 0) return;  // shutdown with a drained queue
      task = PopLocked();
      ++active_;
    }
    if (FailPoints::active()) {
      // Fault surface: a worker stalls between dequeue and execution
      // ("worker.task_start", delay action) — the job is Running but
      // silent, which is exactly what the service watchdog must detect.
      // Error/short are meaningless on this void path and ignored.
      FailPoints::Eval("worker.task_start");
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queued_ == 0 && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace marioh::util
