#include "util/worker_pool.hpp"

#include <utility>

#include "util/parallel.hpp"

namespace marioh::util {

WorkerPool::WorkerPool(int num_threads) {
  int threads = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // A previous Shutdown already joined the workers.
      if (workers_.empty()) return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace marioh::util
