/// \file hash.hpp
/// \brief Hash helpers for node sets and node pairs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace marioh::util {

/// Combines a value into a running 64-bit hash (boost::hash_combine-style
/// with a 64-bit golden-ratio constant).
inline void HashCombine(size_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash functor for sorted node-id vectors (hyperedges, cliques).
struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t seed = v.size();
    for (uint32_t x : v) HashCombine(&seed, x);
    return seed;
  }
};

/// Hash functor for unordered node pairs stored as (min, max).
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    size_t seed = 2;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

}  // namespace marioh::util
