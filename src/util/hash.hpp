/// \file hash.hpp
/// \brief Hash helpers for node sets and node pairs, plus the CRC32
/// checksum used by the write-ahead journal's record framing.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace marioh::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size`
/// bytes, table-driven. `seed` chains incremental computations: pass a
/// previous return value to continue a checksum across buffers. Used for
/// journal record integrity, where a mismatch means a torn or corrupted
/// write that replay must truncate.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

/// Combines a value into a running 64-bit hash (boost::hash_combine-style
/// with a 64-bit golden-ratio constant).
inline void HashCombine(size_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash functor for sorted node-id vectors (hyperedges, cliques).
struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t seed = v.size();
    for (uint32_t x : v) HashCombine(&seed, x);
    return seed;
  }
};

/// Hash functor for unordered node pairs stored as (min, max).
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    size_t seed = 2;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

}  // namespace marioh::util
