/// \file parallel.hpp
/// \brief Minimal deterministic data-parallel helper. Work items are pure
/// functions of their index writing to disjoint slots, so results are
/// identical for any thread count — reconstruction stays reproducible
/// while the clique-scoring hot loop uses all cores.

#pragma once

#include <cstddef>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace marioh::util {

/// Resolves a thread-count option: 0 means "hardware concurrency",
/// anything else is used as-is (minimum 1).
inline int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Range-level primitive: `fn(begin, end)` receives each worker's
/// contiguous index range [begin, end) under a static block partition.
/// This lets callers keep per-range running state — in particular a
/// within-range early exit whose outcome depends only on the range's own
/// contents, the trick the clique enumerator uses to bound truncated
/// enumerations without cross-thread coordination. ParallelFor delegates
/// here, so the two share one partition by construction.
template <typename Fn>
void ParallelForRanges(size_t n, int num_threads, Fn&& fn) {
  int threads = ResolveThreads(num_threads);
  if (threads == 1 || n < 2) {
    if (n > 0) fn(size_t{0}, n);
    return;
  }
  size_t used = std::min<size_t>(static_cast<size_t>(threads), n);
  std::vector<std::thread> pool;
  pool.reserve(used);
  size_t chunk = (n + used - 1) / used;
  for (size_t t = 0; t < used; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([begin, end, &fn] { fn(begin, end); });
  }
  for (std::thread& worker : pool) worker.join();
}

/// Applies `fn(i)` for every i in [0, n) using `num_threads` threads
/// (0 = auto). `fn` must be safe to call concurrently for distinct
/// indices; iteration order within a thread is ascending, and the static
/// block partition makes the schedule deterministic.
template <typename Fn>
void ParallelFor(size_t n, int num_threads, Fn&& fn) {
  ParallelForRanges(n, num_threads, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Cancellable variant: each range polls `cancel` (null = never stops)
/// through a per-range CancelChecker before every index and abandons its
/// remaining indices once the token trips, so a mid-kernel Cancel lands
/// within one index's work plus the checker stride. An untriggered token
/// executes exactly the same index set as the overload above — the
/// determinism contract is untouched — while a tripped token leaves some
/// slots unwritten; callers must discard the partial output (the Session
/// layer does).
template <typename Fn>
void ParallelFor(size_t n, int num_threads, const CancelToken* cancel,
                 Fn&& fn) {
  ParallelForRanges(n, num_threads,
                    [&fn, cancel](size_t begin, size_t end) {
    CancelChecker checker(cancel);
    for (size_t i = begin; i < end; ++i) {
      if (checker.ShouldStop()) return;
      fn(i);
    }
  });
}

}  // namespace marioh::util
