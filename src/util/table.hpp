/// \file table.hpp
/// \brief Plain-text table printer used by the benchmark harnesses to emit
/// rows in the same layout as the paper's tables.

#pragma once

#include <string>
#include <vector>

namespace marioh::util {

/// Accumulates rows of string cells and renders them as an aligned
/// plain-text table with a title and a header row.
class TextTable {
 public:
  /// Creates a table. `title` is printed above the header.
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header cells.
  void SetHeader(std::vector<std::string> header);
  /// Appends a data row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);
  /// Renders the full table (title, rule, header, rule, rows).
  std::string Render() const;

  /// Formats `mean ± std` with two decimals, matching the paper's cells.
  static std::string MeanStd(double mean, double std_dev);
  /// Formats a double with `digits` decimals.
  static std::string Num(double value, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace marioh::util
