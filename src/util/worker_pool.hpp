/// \file worker_pool.hpp
/// \brief A persistent FIFO worker pool for *task*-level concurrency —
/// many independent jobs in flight at once — complementing `ParallelFor`,
/// which stays the sanctioned primitive for *data*-level parallelism
/// inside one kernel. `api::Service` runs its reconstruction jobs on a
/// WorkerPool; each job's kernels may in turn fan out with `ParallelFor`.
///
/// Tasks are opaque `std::function<void()>`s executed in submission order
/// (FIFO) by a fixed set of threads sized with the same `ResolveThreads`
/// rule as `ParallelFor` (0 = hardware concurrency). The pool never drops
/// a task: destruction and `Shutdown` drain the queue before joining.
/// Determinism note: the pool schedules *when* tasks run, never what they
/// compute — a task must be a pure function of its own captured state, so
/// results are identical to running the same tasks sequentially.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace marioh::util {

class WorkerPool {
 public:
  /// Starts `num_threads` workers (0 = hardware concurrency, min 1).
  explicit WorkerPool(int num_threads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Tasks start in FIFO order as workers free up.
  /// Submitting after Shutdown is a no-op (the task is discarded) — the
  /// pool is then committed to terminating; callers that need the
  /// distinction should not race Submit against Shutdown.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing
  /// (queue empty and all workers idle). Other threads may keep
  /// submitting; their tasks are not waited for.
  void Drain();

  /// Stops accepting new tasks, finishes everything already queued, and
  /// joins the workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet started (snapshot).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait here for tasks
  std::condition_variable idle_;   ///< Drain waits here for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;              ///< tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace marioh::util
