/// \file worker_pool.hpp
/// \brief A persistent scheduling worker pool for *task*-level
/// concurrency — many independent jobs in flight at once — complementing
/// `ParallelFor`, which stays the sanctioned primitive for *data*-level
/// parallelism inside one kernel. `api::Service` runs its reconstruction
/// jobs on a WorkerPool; each job's kernels may in turn fan out with
/// `ParallelFor`.
///
/// Tasks are opaque `std::function<void()>`s executed by a fixed set of
/// threads sized with the same `ResolveThreads` rule as `ParallelFor`
/// (0 = hardware concurrency). Dispatch order is governed by
/// `TaskOptions`:
///
///  1. **Priority classes first**: a higher `priority` task always
///     dispatches before any lower-priority one, regardless of
///     submission order.
///  2. **Fair share within a class**: tasks carry a `client` id; among
///     clients with pending work of the same priority, the pool
///     round-robins in ascending client-id order, resuming after the
///     client served last. A client that floods the queue therefore
///     delays only its own later tasks, not other clients'.
///  3. **FIFO within a client**: one client's same-priority tasks run in
///     submission order, so the legacy single-client behavior (every
///     `Submit` without options) remains exactly the old FIFO queue.
///
/// The schedule is a deterministic function of the submission history —
/// no timestamps, no randomness — which is what lets the scheduling
/// tests assert exact dispatch orders. The pool never drops a task:
/// destruction and `Shutdown` drain the queue before joining.
/// Determinism note: the pool schedules *when* tasks run, never what
/// they compute — a task must be a pure function of its own captured
/// state, so results are identical to running the same tasks
/// sequentially.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace marioh::util {

/// Scheduling attributes of one submitted task.
struct TaskOptions {
  /// Dispatch class: higher runs first. Any int works; api::Service maps
  /// its Priority enum onto this.
  int priority = 0;
  /// Fair-share key. Tasks with the same client id form one FIFO lane;
  /// distinct clients of equal priority are served round-robin. The
  /// empty string is a valid (shared, anonymous) client.
  std::string client;
};

class WorkerPool {
 public:
  /// Starts `num_threads` workers (0 = hardware concurrency, min 1).
  explicit WorkerPool(int num_threads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task with default options (priority 0, anonymous
  /// client) — byte-for-byte the old FIFO behavior. Submitting after
  /// Shutdown is a no-op (the task is discarded) — the pool is then
  /// committed to terminating; callers that need the distinction should
  /// not race Submit against Shutdown.
  void Submit(std::function<void()> task);

  /// Enqueues a task under the scheduling policy described above.
  void Submit(std::function<void()> task, TaskOptions options);

  /// Blocks until every task submitted so far has finished executing
  /// (queue empty and all workers idle). Other threads may keep
  /// submitting; their tasks are not waited for.
  void Drain();

  /// Stops accepting new tasks, finishes everything already queued, and
  /// joins the workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet started (snapshot).
  size_t pending() const;

  /// Tasks queued at exactly `priority` (snapshot) — the per-class queue
  /// depth gauge api::Service surfaces.
  size_t pending(int priority) const;

 private:
  /// One priority class: per-client FIFO lanes plus the round-robin
  /// cursor (the client id served last; dispatch resumes strictly after
  /// it in ascending order, wrapping).
  struct PriorityBucket {
    std::map<std::string, std::deque<std::function<void()>>> lanes;
    std::string last_client;
    bool served_any = false;
    size_t size = 0;  ///< total tasks across lanes
  };

  /// Pops the next task under the policy; requires `mutex_` held and a
  /// non-empty queue.
  std::function<void()> PopLocked();

  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait here for tasks
  std::condition_variable idle_;   ///< Drain waits here for quiescence
  /// Highest priority first (greater<int>): dispatch scans from begin().
  std::map<int, PriorityBucket, std::greater<int>> buckets_;
  size_t queued_ = 0;              ///< total tasks across buckets
  size_t active_ = 0;              ///< tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace marioh::util
