#include "util/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace marioh::util {

namespace {

using api::Status;
using api::StatusOr;

/// [payload_len u32][crc32 u32][key u64][flags u8]
constexpr size_t kHeaderBytes = 17;
constexpr uint8_t kFlagTerminal = 0x1;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void PutU32(char* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

void PutU64(char* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

/// Parses "wal-<seq>.log"; nullopt for anything else in the directory.
std::optional<uint64_t> ParseSegmentName(const std::string& name) {
  constexpr const char* kPrefix = "wal-";
  constexpr const char* kSuffix = ".log";
  if (name.size() <= 8 || name.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (name.substr(name.size() - 4) != kSuffix) return std::nullopt;
  std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

/// write(2) until every byte is down, retrying EINTR and short writes.
Status WriteFully(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("journal write failed"));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

bool ParseJournalFsync(const std::string& name, JournalFsync* out) {
  if (name == "always") {
    *out = JournalFsync::kAlways;
  } else if (name == "never") {
    *out = JournalFsync::kNever;
  } else {
    return false;
  }
  return true;
}

Journal::Journal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (options_.fsync == JournalFsync::kAlways) (void)::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::SyncDirLocked() {
  if (options_.fsync != JournalFsync::kAlways) return;
  int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best-effort: the data fsync is the load-bearing one
  (void)::fsync(fd);
  ::close(fd);
}

api::Status Journal::OpenSegmentLocked(uint64_t seq) {
  std::string path = SegmentPath(dir_, seq);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Unavailable(
        ErrnoMessage("cannot open journal segment '" + path + "'"));
  }
  if (fd_ >= 0) {
    if (options_.fsync == JournalFsync::kAlways) (void)::fsync(fd_);
    ::close(fd_);
  }
  fd_ = fd;
  active_seq_ = seq;
  active_bytes_ = 0;
  segment_keys_[seq];  // the segment exists even before its first record
  ++stats_.segments_created;
  // The new name must survive a crash too, or replay would miss records
  // appended to it.
  SyncDirLocked();
  return Status::Ok();
}

void Journal::CompactLocked() {
  bool removed = false;
  for (auto it = segment_keys_.begin(); it != segment_keys_.end();) {
    if (it->first == active_seq_) {
      ++it;
      continue;
    }
    bool all_closed = true;
    for (uint64_t key : it->second) {
      if (open_keys_.count(key) > 0) {
        all_closed = false;
        break;
      }
    }
    if (!all_closed) {
      ++it;
      continue;
    }
    // Every key journaled in this segment already reached a terminal
    // record somewhere, so replay learns nothing from it: drop it.
    if (::unlink(SegmentPath(dir_, it->first).c_str()) != 0 &&
        errno != ENOENT) {
      ++it;  // keep the bookkeeping consistent with the disk; retry later
      continue;
    }
    it = segment_keys_.erase(it);
    ++stats_.segments_compacted;
    removed = true;
  }
  if (removed) SyncDirLocked();
}

api::Status Journal::ReplaySegmentLocked(const std::string& path,
                                         uint64_t seq,
                                         const ReplayCallback& replay) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot read journal segment '" + path +
                               "'");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  segment_keys_[seq];  // an empty segment still exists for compaction
  size_t offset = 0;
  bool torn = false;
  while (offset < data.size()) {
    if (data.size() - offset < kHeaderBytes) {
      torn = true;
      break;
    }
    const char* header = data.data() + offset;
    uint32_t payload_len = GetU32(header);
    uint32_t stored_crc = GetU32(header + 4);
    if (payload_len > kMaxPayloadBytes ||
        data.size() - offset - kHeaderBytes < payload_len) {
      torn = true;
      break;
    }
    // The CRC covers key + flags + payload, exactly as stored.
    uint32_t crc = Crc32(header + 8, 9 + payload_len);
    if (crc != stored_crc) {
      torn = true;
      break;
    }
    JournalRecord record;
    record.key = GetU64(header + 8);
    record.terminal = (static_cast<uint8_t>(header[16]) & kFlagTerminal) != 0;
    record.payload.assign(header + kHeaderBytes, payload_len);
    segment_keys_[seq].insert(record.key);
    if (record.terminal) {
      open_keys_.erase(record.key);
    } else {
      open_keys_.insert(record.key);
    }
    ++stats_.records_replayed;
    if (replay) replay(record);
    offset += kHeaderBytes + payload_len;
  }
  if (torn) {
    // A partially written record (crash mid-append) or corruption: cut
    // the segment back to the last record that checks out. Everything
    // before the cut is intact; everything after was never trustworthy.
    (void)::truncate(path.c_str(), static_cast<off_t>(offset));
    ++stats_.torn_tails_truncated;
    stats_.torn_bytes_dropped += data.size() - offset;
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(
    const std::string& dir, const ReplayCallback& replay,
    JournalOptions options) {
  if (FailPoints::active() &&
      FailPoints::Eval("journal.replay") == FailAction::kError) {
    return Status::Unavailable(
        "failpoint 'journal.replay': injected replay failure for journal "
        "directory '" + dir + "'");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable(
        ErrnoMessage("cannot create journal directory '" + dir + "'"));
  }
  std::vector<uint64_t> seqs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Unavailable(
        ErrnoMessage("cannot scan journal directory '" + dir + "'"));
  }
  while (struct dirent* entry = ::readdir(d)) {
    std::optional<uint64_t> seq = ParseSegmentName(entry->d_name);
    if (seq.has_value()) seqs.push_back(*seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());

  std::unique_ptr<Journal> journal(new Journal(dir, options));
  std::lock_guard<std::mutex> lock(journal->mutex_);
  for (uint64_t seq : seqs) {
    MARIOH_RETURN_IF_ERROR(
        journal->ReplaySegmentLocked(SegmentPath(dir, seq), seq, replay));
  }
  if (seqs.empty()) {
    MARIOH_RETURN_IF_ERROR(journal->OpenSegmentLocked(1));
  } else {
    // Resume appending to the newest segment (its torn tail, if any,
    // was truncated just above, so new records land on a good record
    // boundary).
    std::string path = SegmentPath(dir, seqs.back());
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status::Unavailable(
          ErrnoMessage("cannot reopen journal segment '" + path + "'"));
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Unavailable(
          ErrnoMessage("cannot stat journal segment '" + path + "'"));
    }
    journal->fd_ = fd;
    journal->active_seq_ = seqs.back();
    journal->active_bytes_ = static_cast<size_t>(st.st_size);
  }
  journal->CompactLocked();
  return StatusOr<std::unique_ptr<Journal>>(std::move(journal));
}

api::Status Journal::Append(uint64_t key, std::string_view payload,
                            bool terminal) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "journal payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte record cap");
  }
  if (fd_ < 0) {
    return Status::Unavailable("journal has no active segment");
  }
  bool torn_write = false;
  if (FailPoints::active()) {
    FailAction action = FailPoints::Eval("journal.append");
    if (action == FailAction::kError) {
      return Status::Unavailable(
          "failpoint 'journal.append': injected append failure");
    }
    if (action == FailAction::kShort) torn_write = true;
  }
  if (!torn_write && active_bytes_ >= options_.rotate_bytes) {
    MARIOH_RETURN_IF_ERROR(OpenSegmentLocked(active_seq_ + 1));
    CompactLocked();
  }

  std::string buffer(kHeaderBytes + payload.size(), '\0');
  PutU32(buffer.data(), static_cast<uint32_t>(payload.size()));
  PutU64(buffer.data() + 8, key);
  buffer[16] = static_cast<char>(terminal ? kFlagTerminal : 0);
  std::copy(payload.begin(), payload.end(),
            buffer.begin() + static_cast<ptrdiff_t>(kHeaderBytes));
  PutU32(buffer.data() + 4, Crc32(buffer.data() + 8, 9 + payload.size()));

  if (torn_write) {
    // Simulate a crash mid-write(2): leave a genuinely torn half-record
    // on disk and abandon the segment behind a rotation, so later
    // appends land cleanly in a fresh segment while replay gets a real
    // torn tail to truncate.
    size_t half = std::max<size_t>(1, buffer.size() / 2);
    (void)WriteFully(fd_, buffer.data(), half);
    api::Status rotated = OpenSegmentLocked(active_seq_ + 1);
    return Status::Unavailable(
        "failpoint 'journal.append': injected torn write (half-record "
        "left for replay to truncate)" +
        (rotated.ok() ? std::string()
                      : "; rotation also failed: " + rotated.message()));
  }

  size_t before = active_bytes_;
  api::Status written = WriteFully(fd_, buffer.data(), buffer.size());
  if (!written.ok()) {
    // Never leave a half-record in the *active* segment: later appends
    // would be unreadable past it.
    (void)::ftruncate(fd_, static_cast<off_t>(before));
    return written;
  }
  active_bytes_ += buffer.size();

  if (options_.fsync == JournalFsync::kAlways) {
    std::string fsync_error;
    if (FailPoints::active() &&
        FailPoints::Eval("journal.fsync") == FailAction::kError) {
      fsync_error = "failpoint 'journal.fsync': injected fsync failure";
    } else {
      // The fsync dominates the submit path under kAlways, so its
      // duration distribution is first-class telemetry.
      const auto fsync_start = std::chrono::steady_clock::now();
      if (::fsync(fd_) != 0) {
        fsync_error = ErrnoMessage("journal fsync failed");
      } else {
        static obs::Histogram* const fsync_seconds =
            obs::MetricRegistry::Global().GetHistogram(
                "marioh_journal_fsync_seconds");
        fsync_seconds->Observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   fsync_start)
                                   .count());
        ++stats_.fsyncs;
      }
    }
    if (!fsync_error.empty()) {
      // The caller was promised stable storage; roll the record back so
      // a failed Append can never replay as an accepted one.
      (void)::ftruncate(fd_, static_cast<off_t>(before));
      active_bytes_ = before;
      return Status::Unavailable(fsync_error + "; record rolled back");
    }
  }

  ++stats_.records_appended;
  stats_.bytes_appended += buffer.size();
  segment_keys_[active_seq_].insert(key);
  if (terminal) {
    open_keys_.erase(key);
    CompactLocked();
  } else {
    open_keys_.insert(key);
  }
  return Status::Ok();
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t Journal::segment_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_keys_.size();
}

}  // namespace marioh::util
