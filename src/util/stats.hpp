/// \file stats.hpp
/// \brief Small statistics helpers: aggregation vectors, mean/std
/// accumulators, and the Kolmogorov-Smirnov D-statistic used by the
/// structural-preservation experiments.

#pragma once

#include <cstddef>
#include <vector>

namespace marioh::util {

/// Five-number aggregation {sum, mean, min, max, population std} of a value
/// list; this is the aggregation the MARIOH paper applies to node-level and
/// edge-level clique features (Sect. III-D). Returns all zeros for an empty
/// input.
std::vector<double> Aggregate5(const std::vector<double>& values);

/// Online mean / standard-deviation accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);
  /// Number of observations so far.
  size_t count() const { return count_; }
  /// Mean of the observations (0 when empty).
  double Mean() const;
  /// Sample standard deviation (0 with fewer than two observations).
  double Std() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sample Kolmogorov-Smirnov D-statistic: the maximum distance between
/// the empirical CDFs of `a` and `b`. Inputs need not be sorted. Returns 0
/// if either sample is empty and the other is too, 1 if exactly one is
/// empty.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Normalized difference |x - y| / max(x, y) used for scalar structural
/// properties (0 when both are 0).
double NormalizedDifference(double x, double y);

}  // namespace marioh::util
