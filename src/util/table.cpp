#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace marioh::util {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(std::max<size_t>(total, title_.size()), '-');

  std::ostringstream out;
  out << title_ << "\n" << rule << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit(header_);
  out << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::MeanStd(double mean, double std_dev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f±%.2f", mean, std_dev);
  return buf;
}

std::string TextTable::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace marioh::util
