/// \file event_loop.hpp
/// \brief Single-threaded fd-readiness dispatch: epoll on Linux, poll(2)
/// everywhere else. The loop that lets one thread serve many sockets —
/// `net::TcpServer` registers its listener and every connection here and
/// never blocks on any of them.
///
/// Threading model: Add/Modify/Remove/Run and all callbacks happen on the
/// loop thread; the only cross-thread (and async-signal-safe) entry point
/// is `Stop()`, which wakes the loop through a self-pipe. This keeps every
/// connection data structure single-threaded by construction — the
/// concurrency boundary is the `api::Service` the callbacks talk to, which
/// is internally synchronized.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>

#include "api/status.hpp"

namespace marioh::net {

struct EventLoopOptions {
  /// Use the portable poll(2) backend even where epoll is available.
  /// The same switch is forced by setting the MARIOH_NET_FORCE_POLL
  /// environment variable to anything but "" or "0" — so a deployed
  /// binary can be flipped without a rebuild, and the test suite runs a
  /// slice over both backends. Everything observable except syscall
  /// choice is identical: both are level-triggered and feed the same
  /// dispatch path.
  bool force_poll = false;
};

class EventLoop {
 public:
  /// Readiness bits, both for interest masks and callback events.
  static constexpr uint32_t kRead = 1;
  static constexpr uint32_t kWrite = 2;
  /// Error/hangup conditions; always reported, never requested.
  static constexpr uint32_t kError = 4;

  /// Invoked with the ready-event mask of the fd.
  using Callback = std::function<void(uint32_t events)>;

  explicit EventLoop(EventLoopOptions options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask. The callback may call
  /// Modify/Remove freely, including on its own fd.
  api::Status Add(int fd, uint32_t interest, Callback callback);

  /// Changes the interest mask of a registered fd.
  api::Status Modify(int fd, uint32_t interest);

  /// Unregisters a fd (does not close it). Safe mid-dispatch: pending
  /// events for the removed fd are dropped.
  api::Status Remove(int fd);

  /// Installs a periodic callback invoked on the loop thread roughly
  /// every `period` even when no fd is ready — the driver for deferred
  /// waits, TTL retirement, and shutdown-flag checks.
  void set_tick(std::chrono::milliseconds period, std::function<void()> tick);

  /// Dispatches events until Stop(). Runs the tick at least once before
  /// returning.
  void Run();

  /// Requests the loop to exit; callable from any thread and from signal
  /// handlers (atomic store + pipe write only). Idempotent.
  void Stop();

  bool stopped() const;

  /// The backend this loop actually uses: "epoll" or "poll".
  const char* backend() const { return backend_fd_ >= 0 ? "epoll" : "poll"; }

 private:
  struct Registration {
    uint32_t interest = 0;
    Callback callback;
    /// Bumped by Remove so a stale ready-event from the same dispatch
    /// batch is recognized and dropped.
    uint64_t generation = 0;
  };

  void WakeupDrain();

  int backend_fd_ = -1;  ///< epoll instance on Linux; unused under poll
  int wake_read_ = -1;   ///< self-pipe: Stop() writes, the loop drains
  int wake_write_ = -1;
  std::map<int, Registration> fds_;
  uint64_t generation_ = 0;
  std::chrono::milliseconds tick_period_{50};
  std::function<void()> tick_;
  /// Lock-free so Stop() stays async-signal-safe.
  std::atomic<bool> stop_{false};
};

}  // namespace marioh::net
