#include "net/tcp_server.hpp"

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace marioh::net {

namespace {

api::Status Errno(const std::string& what) {
  return api::Status::Internal(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One-shot best-effort write for sockets about to be closed (the
/// connection-reject path): retries EINTR and short writes, gives up on
/// anything else — the peer is being turned away, so losing the error
/// line is acceptable. MSG_NOSIGNAL so a peer that already closed can
/// never SIGPIPE the embedding process.
void BestEffortSend(int fd, std::string_view bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + offset, bytes.size() - offset,
                       MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN on a non-blocking reject or a dead peer: drop it
  }
}

}  // namespace

TcpServer::TcpServer(EventLoop* loop, api::DatasetCache* cache,
                     api::Service* service, TcpServerOptions options)
    : loop_(loop), cache_(cache), service_(service), options_(options) {}

TcpServer::~TcpServer() {
  // Blocks out any in-flight Collect() before the counters the hook
  // reads are torn down.
  if (metrics_hook_ != 0) {
    obs::MetricRegistry::Global().RemoveCollectionHook(metrics_hook_);
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    ::close(listen_fd_);
  }
}

api::Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  SetNonBlocking(listen_fd_);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ::ntohs(addr.sin_port);
  }

  MARIOH_RETURN_IF_ERROR(loop_->Add(
      listen_fd_, EventLoop::kRead, [this](uint32_t) { OnAcceptable(); }));
  loop_->set_tick(options_.tick_period, [this] { Tick(); });
  // Publish connection counters through the registry: the stats verb,
  // the metrics endpoint, and --stats-json all read the same series.
  metrics_hook_ = obs::MetricRegistry::Global().AddCollectionHook([this] {
    obs::MetricRegistry& r = obs::MetricRegistry::Global();
    NetStatsSnapshot s = stats();
    r.GetGauge("marioh_connections_active")
        ->Set(static_cast<double>(s.connections_active));
    r.GetCounter("marioh_connections_total")->Set(s.connections_total);
    r.GetCounter("marioh_connections_rejected_total")
        ->Set(s.connections_rejected);
    r.GetCounter("marioh_lines_served_total")->Set(s.lines_served);
  });
  return api::Status::Ok();
}

NetStatsSnapshot TcpServer::stats() const {
  NetStatsSnapshot snapshot;
  snapshot.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  snapshot.connections_total =
      connections_total_.load(std::memory_order_relaxed);
  snapshot.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  snapshot.lines_served = lines_served_.load(std::memory_order_relaxed);
  return snapshot;
}

std::string TcpServer::StatsFields() const {
  NetStatsSnapshot s = stats();
  return "connections_active=" + std::to_string(s.connections_active) +
         " connections_total=" + std::to_string(s.connections_total) +
         " connections_rejected=" + std::to_string(s.connections_rejected) +
         " lines_served=" + std::to_string(s.lines_served);
}

void TcpServer::OnAcceptable() {
  // Drain the accept queue completely — with level-triggered backends one
  // accept per wakeup would also work, but this keeps accept latency flat
  // under bursts.
  for (;;) {
    if (util::FailPoints::active() &&
        util::FailPoints::Eval("net.accept") == util::FailAction::kError) {
      // Simulated transient accept failure: behave exactly like EAGAIN.
      // The level-triggered loop re-delivers readability while the
      // backlog is non-empty, so pending peers are only delayed.
      return;
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient error: wait for next event
    SetNonBlocking(fd);
    if (options_.max_connections > 0 &&
        connections_.size() >= options_.max_connections) {
      // Over the cap: one error line (best effort) and out.
      std::string reject = LineProtocol::FormatError(
          api::Status::ResourceExhausted(
              "server at connection limit (" +
              std::to_string(options_.max_connections) + ")"));
      BestEffortSend(fd, reject);
      ::close(fd);
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    uint64_t id = ++next_connection_id_;
    auto conn = std::make_unique<Connection>(cache_, service_);
    conn->fd = fd;
    conn->id = id;
    conn->protocol.set_default_client("conn-" + std::to_string(id));
    conn->protocol.set_allow_failpoint_admin(options_.allow_failpoint_admin);
    api::Status added = loop_->Add(
        fd, EventLoop::kRead,
        [this, fd](uint32_t events) { OnConnectionEvent(fd, events); });
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    Connection& ref = *conn;
    connections_[fd] = std::move(conn);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    QueueOutput(ref, "ok marioh_served client=conn-" + std::to_string(id) +
                         "\n");
  }
}

void TcpServer::OnConnectionEvent(int fd, uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (events & EventLoop::kError) {
    CloseConnection(fd);
    return;
  }
  if (events & EventLoop::kWrite) {
    if (!FlushOutput(conn)) return;
  }
  if (events & EventLoop::kRead) HandleReadable(conn);
}

void TcpServer::HandleReadable(Connection& conn) {
  const int fd = conn.fd;
  for (;;) {
    if (util::FailPoints::active() &&
        util::FailPoints::Eval("net.read") == util::FailAction::kError) {
      // Simulated EAGAIN: stop draining now; buffered kernel bytes keep
      // the level-triggered read event pending, so progress resumes on
      // the next loop iteration.
      break;
    }
    char buffer[4096];
    ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n > 0) {
      if (conn.discarding) {
        // Still inside an oversized line: drop bytes up to and including
        // its newline, then resume normal framing.
        const char* newline =
            static_cast<const char*>(std::memchr(buffer, '\n', n));
        if (newline == nullptr) continue;
        size_t keep_from = (newline - buffer) + 1;
        conn.discarding = false;
        conn.input.append(buffer + keep_from, n - keep_from);
      } else {
        conn.input.append(buffer, n);
      }
      continue;
    }
    if (n == 0) {  // peer closed; anything unframed is dropped
      CloseConnection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(fd);
    return;
  }
  ConsumeLines(conn);
}

bool TcpServer::ConsumeLines(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.pending_wait.has_value() && !conn.closing) {
    size_t newline = conn.input.find('\n');
    if (newline != std::string::npos && options_.max_line_bytes > 0 &&
        newline > options_.max_line_bytes) {
      // The whole oversized line is already buffered: drop it in one go
      // and answer, same as the streaming-discard path below.
      conn.input.erase(0, newline + 1);
      if (!QueueOutput(
              conn, LineProtocol::FormatError(api::Status::InvalidArgument(
                        "request line exceeds " +
                        std::to_string(options_.max_line_bytes) +
                        " bytes")))) {
        return false;
      }
      continue;
    }
    if (newline == std::string::npos) {
      if (options_.max_line_bytes > 0 &&
          conn.input.size() > options_.max_line_bytes) {
        // The frame can't ever complete within bounds: flush the partial
        // bytes, answer once, and skip the rest of the line as it
        // arrives. The connection stays usable.
        conn.input.clear();
        conn.discarding = true;
        if (!QueueOutput(
                conn, LineProtocol::FormatError(api::Status::InvalidArgument(
                          "request line exceeds " +
                          std::to_string(options_.max_line_bytes) +
                          " bytes")))) {
          return false;
        }
      }
      break;
    }
    std::string line = conn.input.substr(0, newline);
    conn.input.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    LineProtocol::Result result = conn.protocol.Handle(line);
    lines_served_.fetch_add(1, std::memory_order_relaxed);
    if (result.wait_for.has_value()) {
      conn.pending_wait = result.wait_for;
      break;
    }
    if (!result.response.empty()) {
      if (!QueueOutput(conn, result.response)) return false;
    }
    if (result.quit) {
      conn.closing = true;
      if (conn.output.empty()) {
        CloseConnection(fd);
        return false;
      }
      break;
    }
  }
  UpdateInterest(conn);
  return true;
}

bool TcpServer::QueueOutput(Connection& conn, std::string_view bytes) {
  conn.output.append(bytes);
  if (!FlushOutput(conn)) return false;
  if (options_.max_output_bytes > 0 &&
      conn.output.size() > options_.max_output_bytes) {
    // Slow reader: it is not draining responses as fast as it sends
    // requests. Buffering further would let one client hold arbitrary
    // server memory, so the connection is dropped instead.
    CloseConnection(conn.fd);
    return false;
  }
  return true;
}

bool TcpServer::FlushOutput(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.output.empty()) {
    size_t len = conn.output.size();
    if (util::FailPoints::active()) {
      // Fault surface "net.write": error = simulated EAGAIN (stop
      // flushing; EPOLLOUT interest drains the rest later), short =
      // 1-byte write (forces the partial-write resume path every call).
      util::FailAction action = util::FailPoints::Eval("net.write");
      if (action == util::FailAction::kError) break;
      if (action == util::FailAction::kShort) len = 1;
    }
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as an
    // EPIPE error (handled below), never as a process-killing SIGPIPE —
    // embedders that haven't installed SIG_IGN are protected too.
    ssize_t n = ::send(fd, conn.output.data(), len, MSG_NOSIGNAL);
    if (n > 0) {
      conn.output.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(fd);
    return false;
  }
  if (conn.output.empty() && conn.closing) {
    CloseConnection(fd);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void TcpServer::UpdateInterest(Connection& conn) {
  uint32_t interest = 0;
  // A parked wait (or a draining quit) pauses reads; TCP flow control
  // then pushes back on a sender that keeps pipelining.
  if (!conn.pending_wait.has_value() && !conn.closing) {
    interest |= EventLoop::kRead;
  }
  if (!conn.output.empty()) interest |= EventLoop::kWrite;
  loop_->Modify(conn.fd, interest);
}

void TcpServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_->Remove(fd);
  ::close(fd);
  connections_.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::Tick() {
  service_->RetireExpired();
  // Resolve parked waits. Collect fds first: queueing a response can
  // close a connection (slow reader), which mutates the map.
  std::vector<int> waiting;
  for (const auto& [fd, conn] : connections_) {
    if (conn->pending_wait.has_value()) waiting.push_back(fd);
  }
  for (int fd : waiting) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    api::StatusOr<api::JobSnapshot> job =
        service_->Poll(*conn.pending_wait);
    if (job.ok() && !job->terminal()) continue;  // still running
    conn.pending_wait.reset();
    std::string response = job.ok()
                               ? conn.protocol.FormatJob(*job)
                               : LineProtocol::FormatError(job.status());
    if (!QueueOutput(conn, response)) continue;
    // The client may have pipelined requests behind the wait; serve them
    // now that the connection is live again.
    ConsumeLines(conn);
  }
}

}  // namespace marioh::net
