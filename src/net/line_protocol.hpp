/// \file line_protocol.hpp
/// \brief The serving wire format, shared by every front end: one request
/// line in, one `ok ...` / `error ...` response line out. Extracted from
/// `examples/marioh_serve.cpp` so the stdin loop and the TCP server
/// cannot drift — both speak exactly this codec (`src/api/README.md`
/// holds the protocol reference).
///
/// `Handle` is synchronous and never blocks on job execution: the one
/// blocking verb, `wait`, is returned to the caller as a *deferred* result
/// (`Result::wait_for`) so each front end can implement it with its own
/// idiom — the stdin loop blocks in `Service::Wait`, the event-loop TCP
/// server parks the connection and polls from its tick, keeping every
/// other client live.

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/service.hpp"
#include "api/status.hpp"

namespace marioh::net {

/// The legacy `stats` fields (`accepted=`, `queued=`, ...,
/// `lines_served=`) rendered from one `obs::MetricRegistry::Global()`
/// collection, in the order the `stats` verb has always printed them.
/// Optional groups keep their old conditionality: cancel-latency fields
/// appear once a cancel was sampled, `journal_*` once a journal
/// published, `connections_*`/`lines_served` once a TCP server did.
/// Shared by the `stats` verb and `marioh_served --stats-json`, so the
/// two surfaces (and the `metrics` endpoint they are derived from)
/// cannot drift.
std::vector<std::pair<std::string, std::string>> LegacyStatsFields();

/// Prepares the dataset triple `<basename>.train/.target/.truth` from
/// evaluation-harness generator `profile` under `seed` and inserts it
/// into `cache`, recording the recipe so a dataset manifest can restore
/// it after a crash. Shared by the `gen` verb and the manifest-restore
/// path the daemons run at startup (which is why it is a free function,
/// usable before any protocol object exists). All three names must be
/// free; kAlreadyExists otherwise.
api::Status GenerateDataset(api::DatasetCache* cache,
                            const std::string& basename,
                            const std::string& profile, uint64_t seed);

class LineProtocol {
 public:
  /// Both pointers must outlive the protocol object.
  LineProtocol(api::DatasetCache* cache, api::Service* service);

  /// The fair-share lane used when a `submit` names no `client=` key.
  /// Empty (the default) keeps the anonymous shared lane; the TCP server
  /// sets one per connection so each socket schedules as its own client.
  void set_default_client(std::string client_id);
  const std::string& default_client() const { return default_client_; }

  /// Enables the `failpoints` admin verb (process-wide fault injection —
  /// see util/failpoint.hpp). Off by default: a fault-injection surface
  /// must be an explicit operator opt-in (`--allow-failpoint-admin`),
  /// never something a network peer can reach on a stock server.
  void set_allow_failpoint_admin(bool allow) {
    allow_failpoint_admin_ = allow;
  }

  /// Outcome of one request line.
  struct Result {
    /// Complete response, '\n'-terminated — empty only for blank/comment
    /// input and deferred waits.
    std::string response;
    /// The client asked to end the conversation (`quit`).
    bool quit = false;
    /// Set for a `wait <id>` whose job is not terminal yet: the caller
    /// owes the client one `FormatJob` line once it is (or an error line
    /// if the job record disappears first).
    std::optional<api::JobId> wait_for;
  };

  /// Serves one request line. Never throws and never fails: every
  /// problem becomes an `error CODE: message` response, so a malformed
  /// request can't kill a serving loop.
  Result Handle(const std::string& line);

  /// "ok job N state=..." — also the deferred-wait completion line.
  std::string FormatJob(const api::JobSnapshot& job) const;

  /// "error CODE: message".
  static std::string FormatError(const api::Status& status);

  /// The `stats` response: the legacy key=value line, rendered from the
  /// metric registry (see LegacyStatsFields).
  std::string FormatStats() const;

  /// The `metrics` response: `ok metrics lines=N\n` followed by exactly
  /// N lines of Prometheus text exposition from the global registry —
  /// the framing that lets a one-line-per-request client read a
  /// multi-line payload. `metrics json` instead answers one
  /// `ok metrics-json {...}` line with the full JSON snapshot.
  static std::string FormatMetrics();

 private:
  std::string HandleLoad(std::istream& args) const;
  std::string HandleGen(std::istream& args) const;
  Result HandleSubmit(std::istream& args) const;

  api::DatasetCache* cache_;
  api::Service* service_;
  std::string default_client_;
  bool allow_failpoint_admin_ = false;
};

}  // namespace marioh::net
