/// \file tcp_server.hpp
/// \brief Multiplexed TCP front end for the serving stack: one
/// `net::EventLoop` thread accepts connections and speaks
/// `net::LineProtocol` to each, submitting work into the shared
/// `api::Service` worker pool. Every connection is its own fair-share
/// client lane (`conn-<id>`), so N sockets schedule like N users.
///
/// Resource governance, all enforced here or one layer down:
///  - connection cap: accepts past `max_connections` get one
///    `error RESOURCE_EXHAUSTED` line and an immediate close;
///  - framing bound: a request line longer than `max_line_bytes` is
///    discarded (to the next newline) and answered with an error — it
///    never buffers unboundedly and never kills the loop;
///  - write backpressure: responses buffer up to `max_output_bytes`
///    per connection and drain on EPOLLOUT; a reader too slow to keep
///    its buffer under the cap is disconnected;
///  - deferred waits: `wait <id>` parks the connection (read interest
///    paused, so TCP flow control pushes back on the sender) and the
///    loop tick resolves it via `Service::Poll` — no loop thread ever
///    blocks on a job;
///  - the tick also calls `Service::RetireExpired`, so TTL retirement
///    runs even when no request arrives.
///
/// Threading: everything except `stats()` runs on the loop thread.
/// `Start()` must be called before the loop runs; the destructor must
/// run after `EventLoop::Run` has returned (or on the loop thread).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/dataset_cache.hpp"
#include "api/service.hpp"
#include "api/status.hpp"
#include "net/event_loop.hpp"
#include "net/line_protocol.hpp"

namespace marioh::net {

struct TcpServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back from `port()` after Start).
  uint16_t port = 0;
  /// Hard cap on concurrently served connections; extra accepts are
  /// rejected with RESOURCE_EXHAUSTED. 0 means unlimited.
  size_t max_connections = 64;
  /// Longest accepted request line (bytes, excluding the newline).
  size_t max_line_bytes = 64 * 1024;
  /// Per-connection output-buffer cap; exceeding it means the reader is
  /// too slow and the connection is dropped.
  size_t max_output_bytes = 1 << 20;
  /// Loop tick period: deferred-wait resolution + TTL retirement cadence.
  std::chrono::milliseconds tick_period{20};
  /// Expose the `failpoints` admin verb to connected clients (see
  /// LineProtocol::set_allow_failpoint_admin). Off by default — fault
  /// injection over the wire is a chaos-testing opt-in, not a stock
  /// serving feature.
  bool allow_failpoint_admin = false;
};

/// Connection counters, readable from any thread (the loop publishes,
/// tests and the stats verb read).
struct NetStatsSnapshot {
  uint64_t connections_active = 0;
  uint64_t connections_total = 0;
  uint64_t connections_rejected = 0;
  uint64_t lines_served = 0;
};

class TcpServer {
 public:
  /// All pointers must outlive the server. The server owns the loop's
  /// tick slot (see class comment).
  TcpServer(EventLoop* loop, api::DatasetCache* cache,
            api::Service* service, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:<port>, listens, and registers with the loop.
  /// After an OK return, `port()` is the bound port — set before any
  /// loop thread starts, so reading it later is race-free.
  api::Status Start();

  uint16_t port() const { return port_; }

  NetStatsSnapshot stats() const;

  /// The `key=value ...` fields this server appends to every `stats`
  /// response (also handy for the shutdown report).
  std::string StatsFields() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    LineProtocol protocol;
    std::string input;   ///< bytes read, not yet consumed as lines
    std::string output;  ///< bytes queued, not yet written
    /// Set while a `wait` is parked; read interest is off until the job
    /// turns terminal (or disappears).
    std::optional<api::JobId> pending_wait;
    /// A too-long line is being skipped until its newline arrives.
    bool discarding = false;
    /// `quit` answered: close as soon as the output drains.
    bool closing = false;

    Connection(api::DatasetCache* cache, api::Service* service)
        : protocol(cache, service) {}
  };

  void OnAcceptable();
  void OnConnectionEvent(int fd, uint32_t events);
  void HandleReadable(Connection& conn);
  /// Consumes buffered complete lines until empty, a deferred wait, or
  /// close. Returns false if the connection was closed.
  bool ConsumeLines(Connection& conn);
  /// Queues a response and flushes; enforces the output cap. Returns
  /// false if the connection was closed (slow reader / write error).
  bool QueueOutput(Connection& conn, std::string_view bytes);
  bool FlushOutput(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  void Tick();

  EventLoop* loop_;
  api::DatasetCache* cache_;
  api::Service* service_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_connection_id_ = 0;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> lines_served_{0};
  /// Registry collection hook publishing the counters above as
  /// `marioh_connections_*` / `marioh_lines_served_total`; registered in
  /// Start(), removed first thing in the destructor.
  uint64_t metrics_hook_ = 0;
};

}  // namespace marioh::net
