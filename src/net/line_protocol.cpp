#include "net/line_protocol.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/request.hpp"
#include "eval/harness.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/parse.hpp"

namespace marioh::net {

namespace {

using api::DatasetHandle;
using api::JobId;
using api::JobSnapshot;
using api::ReconstructRequest;
using api::Status;
using api::StatusOr;

std::string FormatDataset(const DatasetHandle& dataset) {
  std::ostringstream out;
  out << "ok dataset " << dataset.name;
  if (dataset.has_hypergraph()) {
    out << " hypergraph_nodes=" << dataset.hypergraph->num_nodes()
        << " hyperedges=" << dataset.hypergraph->num_unique_edges();
  }
  if (dataset.has_graph()) {
    out << " graph_nodes=" << dataset.graph->num_nodes()
        << " graph_edges=" << dataset.graph->num_edges();
  }
  out << "\n";
  return out.str();
}

}  // namespace

api::Status GenerateDataset(api::DatasetCache* cache,
                            const std::string& basename,
                            const std::string& profile, uint64_t seed) {
  // All three names must be free up front so a conflict cannot leave a
  // partially inserted triple behind.
  for (const char* suffix : {".train", ".target", ".truth"}) {
    if (cache->Contains(basename + suffix)) {
      return Status::AlreadyExists("dataset '" + basename + suffix +
                                   "' is already loaded");
    }
  }
  StatusOr<eval::PreparedDataset> data =
      eval::TryPrepareDataset(profile, /*multiplicity_reduced=*/true, seed);
  if (!data.ok()) return data.status();
  // The names were pre-checked and each front end serves its protocol
  // from one thread, so the inserts cannot conflict.
  StatusOr<DatasetHandle> train =
      cache->Insert(basename + ".train", data->source, data->g_source);
  StatusOr<DatasetHandle> target =
      cache->Insert(basename + ".target", nullptr, data->g_target);
  StatusOr<DatasetHandle> truth =
      cache->Insert(basename + ".truth", data->target, nullptr);
  for (const auto* inserted : {&train, &target, &truth}) {
    if (!inserted->ok()) return inserted->status();
  }
  // The triple is restorable from (profile, seed) alone — record the
  // recipe so a manifest-enabled cache can re-create it after a crash.
  cache->RecordGenerated(basename, profile, seed);
  return Status::Ok();
}

std::vector<std::pair<std::string, std::string>> LegacyStatsFields() {
  using obs::MetricSnapshot;
  // One Collect() = one coherent set of values: the hooks publish under
  // their subsystems' locks, so the counter partition holds across the
  // whole line.
  std::vector<MetricSnapshot> metrics =
      obs::MetricRegistry::Global().Collect();
  std::map<std::string, const MetricSnapshot*> index;
  for (const MetricSnapshot& m : metrics) {
    index[m.labels.empty() ? m.name : m.name + "{" + m.labels + "}"] = &m;
  }
  auto find = [&index](const std::string& key) -> const MetricSnapshot* {
    auto it = index.find(key);
    return it == index.end() ? nullptr : it->second;
  };
  auto integer = [&find](const std::string& key) {
    const MetricSnapshot* m = find(key);
    if (m == nullptr) return std::string("0");
    return std::to_string(m->kind == MetricSnapshot::Kind::kCounter
                              ? m->counter_value
                              : static_cast<uint64_t>(m->gauge_value));
  };
  std::vector<std::pair<std::string, std::string>> fields;
  auto add = [&fields, &integer](const char* legacy,
                                 const std::string& name) {
    fields.emplace_back(legacy, integer(name));
  };
  add("accepted", "marioh_jobs_accepted_total");
  add("queued", "marioh_jobs_queued");
  add("running", "marioh_jobs_running");
  add("done", "marioh_jobs_done_total");
  add("failed", "marioh_jobs_failed_total");
  add("cancelled", "marioh_jobs_cancelled_total");
  add("deadline_exceeded", "marioh_jobs_deadline_exceeded_total");
  add("budget_overruns", "marioh_budget_overruns_total");
  add("preempted", "marioh_jobs_preempted_total");
  add("queued_interactive",
      "marioh_queue_depth{priority=\"interactive\"}");
  add("queued_normal", "marioh_queue_depth{priority=\"normal\"}");
  add("queued_batch", "marioh_queue_depth{priority=\"batch\"}");
  if (const MetricSnapshot* cancel =
          find("marioh_cancel_latency_seconds");
      cancel != nullptr && cancel->count > 0) {
    fields.emplace_back(
        "cancel_latency_mean",
        obs::FormatMetricValue(cancel->sum /
                               static_cast<double>(cancel->count)));
    fields.emplace_back("cancel_latency_max",
                        obs::FormatMetricValue(cancel->max));
  }
  add("submits_rejected", "marioh_submits_rejected_total");
  add("jobs_retired", "marioh_jobs_retired_total");
  add("jobs_retried", "marioh_jobs_retried_total");
  add("retries_exhausted", "marioh_retries_exhausted_total");
  add("jobs_stalled", "marioh_jobs_stalled_total");
  add("loadshed_rejects", "marioh_loadshed_rejects_total");
  add("jobs_recovered", "marioh_jobs_recovered_total");
  add("faults_injected", "marioh_faults_injected_total");
  add("cache_bytes", "marioh_cache_bytes");
  add("cache_evictions", "marioh_cache_evictions_total");
  if (find("marioh_journal_records_total") != nullptr) {
    add("journal_records", "marioh_journal_records_total");
    add("journal_fsyncs", "marioh_journal_fsyncs_total");
    add("journal_segments", "marioh_journal_segments");
    add("journal_replayed", "marioh_journal_replayed_total");
    add("journal_torn_tails", "marioh_journal_torn_tails_total");
    add("journal_compacted", "marioh_journal_compacted_total");
  }
  if (find("marioh_connections_total") != nullptr) {
    add("connections_active", "marioh_connections_active");
    add("connections_total", "marioh_connections_total");
    add("connections_rejected", "marioh_connections_rejected_total");
    add("lines_served", "marioh_lines_served_total");
  }
  return fields;
}

LineProtocol::LineProtocol(api::DatasetCache* cache, api::Service* service)
    : cache_(cache), service_(service) {}

void LineProtocol::set_default_client(std::string client_id) {
  default_client_ = std::move(client_id);
}

std::string LineProtocol::FormatError(const Status& status) {
  return "error " + std::string(api::StatusCodeName(status.code())) + ": " +
         status.message() + "\n";
}

std::string LineProtocol::FormatJob(const JobSnapshot& job) const {
  std::ostringstream out;
  out << "ok job " << job.id << " state=" << api::JobStateName(job.state)
      << " method=" << job.method << " target=" << job.target_dataset;
  if (job.terminal()) {
    if (!job.status.ok()) {
      out << " status=" << api::StatusCodeName(job.status.code());
    }
    if (job.budget_overrun) out << " budget_overrun=1";
    // Only jobs that actually retried report the field, so responses on
    // a no-retry server stay byte-identical to the pre-retry protocol.
    if (job.attempts > 1) out << " attempts=" << job.attempts;
    if (job.cancel_latency_seconds >= 0.0) {
      out << " cancel_latency=" << job.cancel_latency_seconds;
    }
    if (job.reconstruction != nullptr) {
      out << " unique_edges=" << job.reconstruction->num_unique_edges()
          << " total_edges=" << job.reconstruction->num_total_edges();
    }
    if (job.evaluation.has_value()) {
      out << " jaccard=" << job.evaluation->jaccard
          << " multi_jaccard=" << job.evaluation->multi_jaccard;
    }
    auto train = job.stage_stats.find("train");
    auto reconstruct = job.stage_stats.find("reconstruct");
    double seconds =
        (train != job.stage_stats.end() ? train->second : 0.0) +
        (reconstruct != job.stage_stats.end() ? reconstruct->second : 0.0);
    out << " seconds=" << seconds;
    if (!job.status.ok()) {
      out << " message=\"" << job.status.message() << "\"";
    }
  }
  out << "\n";
  return out.str();
}

std::string LineProtocol::FormatStats() const {
  std::string out = "ok stats";
  for (const auto& [key, value] : LegacyStatsFields()) {
    out += " " + key + "=" + value;
  }
  out += "\n";
  return out;
}

std::string LineProtocol::FormatMetrics() {
  std::string text = obs::MetricRegistry::Global().PrometheusText();
  size_t lines =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  return "ok metrics lines=" + std::to_string(lines) + "\n" + text;
}

/// `load <hypergraph|graph> <name> <path>`
std::string LineProtocol::HandleLoad(std::istream& args) const {
  std::string kind, name, path;
  args >> kind >> name >> path;
  if (kind.empty() || name.empty() || path.empty()) {
    return FormatError(Status::InvalidArgument(
        "usage: load <hypergraph|graph> <name> <path>"));
  }
  StatusOr<DatasetHandle> dataset =
      kind == "hypergraph" ? cache_->LoadHypergraphFile(name, path)
      : kind == "graph"    ? cache_->LoadProjectedGraphFile(name, path)
                           : Status::InvalidArgument(
                                 "unknown dataset kind '" + kind +
                                 "' (expected hypergraph or graph)");
  if (!dataset.ok()) return FormatError(dataset.status());
  return FormatDataset(*dataset);
}

/// `gen <name> <profile> <seed>`: the multi-user benchmark workflow
/// without files — prepares a dataset exactly as the evaluation harness
/// does (generate, multiplicity-reduce, split, project) and shares the
/// halves through the cache as <name>.train / <name>.target /
/// <name>.truth.
std::string LineProtocol::HandleGen(std::istream& args) const {
  std::string name, profile_name, seed_token;
  uint64_t seed = 1;
  args >> name >> profile_name >> seed_token;
  if (name.empty() || profile_name.empty()) {
    return FormatError(
        Status::InvalidArgument("usage: gen <name> <profile> [seed]"));
  }
  if (!seed_token.empty()) {
    std::optional<uint64_t> parsed = util::ParseUint64(seed_token);
    if (!parsed.has_value()) {
      return FormatError(
          Status::InvalidArgument("bad seed '" + seed_token + "'"));
    }
    seed = *parsed;
  }
  Status generated = GenerateDataset(cache_, name, profile_name, seed);
  if (!generated.ok()) return FormatError(generated);
  return "ok generated " + name + ".train " + name + ".target " + name +
         ".truth\n";
}

/// `submit key=value ...` — the grammar lives in
/// api::ParseReconstructRequest, shared with the write-ahead journal's
/// accept records so the two formats cannot drift.
LineProtocol::Result LineProtocol::HandleSubmit(std::istream& args) const {
  ReconstructRequest request;
  request.client_id = default_client_;
  std::string rest;
  std::getline(args, rest);
  Status parsed = api::ParseReconstructRequest(rest, &request);
  if (!parsed.ok()) return {FormatError(parsed), false, std::nullopt};
  StatusOr<JobId> id = service_->Submit(request);
  if (!id.ok()) return {FormatError(id.status()), false, std::nullopt};
  return {"ok job " + std::to_string(*id) + "\n", false, std::nullopt};
}

LineProtocol::Result LineProtocol::Handle(const std::string& line) {
  std::istringstream args(line);
  std::string verb;
  args >> verb;
  if (verb.empty() || verb[0] == '#') return {};  // blank / comment
  if (verb == "quit") return {"ok bye\n", /*quit=*/true, std::nullopt};
  if (verb == "load") return {HandleLoad(args), false, std::nullopt};
  if (verb == "gen") return {HandleGen(args), false, std::nullopt};
  if (verb == "datasets") {
    std::string response = "ok datasets";
    for (const std::string& name : cache_->Names()) response += " " + name;
    return {response + "\n", false, std::nullopt};
  }
  if (verb == "methods") {
    std::string response = "ok methods";
    for (const std::string& name :
         api::MethodRegistry::Global().Names()) {
      response += " " + name;
    }
    return {response + "\n", false, std::nullopt};
  }
  if (verb == "submit") return HandleSubmit(args);
  if (verb == "poll" || verb == "wait" || verb == "cancel" ||
      verb == "forget") {
    std::string token;
    args >> token;
    std::optional<uint64_t> id = util::ParseUint64(token);
    if (!id.has_value()) {
      return {FormatError(Status::InvalidArgument("usage: " + verb +
                                                  " <job-id>")),
              false, std::nullopt};
    }
    if (verb == "poll") {
      StatusOr<JobSnapshot> job = service_->Poll(*id);
      if (!job.ok()) return {FormatError(job.status()), false, std::nullopt};
      return {FormatJob(*job), false, std::nullopt};
    }
    if (verb == "wait") {
      // Deferred: never block a serving loop here. A terminal job
      // resolves immediately; anything else is the caller's IOU.
      StatusOr<JobSnapshot> job = service_->Poll(*id);
      if (!job.ok()) return {FormatError(job.status()), false, std::nullopt};
      if (job->terminal()) return {FormatJob(*job), false, std::nullopt};
      return {"", false, *id};
    }
    Status status =
        verb == "cancel" ? service_->Cancel(*id) : service_->Forget(*id);
    if (!status.ok()) return {FormatError(status), false, std::nullopt};
    return {"ok " + verb + " " + std::to_string(*id) + "\n", false,
            std::nullopt};
  }
  if (verb == "stats") return {FormatStats(), false, std::nullopt};
  if (verb == "metrics") {
    std::string format;
    args >> format;
    if (format == "json") {
      return {"ok metrics-json " +
                  obs::MetricRegistry::Global().SnapshotJson() + "\n",
              false, std::nullopt};
    }
    if (!format.empty()) {
      return {FormatError(
                  Status::InvalidArgument("usage: metrics [json]")),
              false, std::nullopt};
    }
    return {FormatMetrics(), false, std::nullopt};
  }
  if (verb == "failpoints") {
    // Chaos administration: reconfigure the process-wide failpoint
    // registry mid-run so a soak can rotate fault schedules over one
    // long-lived daemon. Gated — see set_allow_failpoint_admin.
    if (!allow_failpoint_admin_) {
      return {FormatError(Status::FailedPrecondition(
                  "failpoint administration is disabled; start the "
                  "server with --allow-failpoint-admin")),
              false, std::nullopt};
    }
    std::string spec;
    std::getline(args, spec);
    size_t start = spec.find_first_not_of(" \t");
    spec = start == std::string::npos ? "" : spec.substr(start);
    if (spec.empty()) {
      // No argument: report the active configuration and hit counts.
      std::string response =
          "ok failpoints total_hits=" +
          std::to_string(util::FailPoints::TotalHits());
      for (const std::string& line : util::FailPoints::Describe()) {
        response += " " + line;
      }
      return {response + "\n", false, std::nullopt};
    }
    std::string error;
    if (!util::FailPoints::ConfigureList(spec, &error)) {
      return {FormatError(Status::InvalidArgument(error)), false,
              std::nullopt};
    }
    return {"ok failpoints " + spec + "\n", false, std::nullopt};
  }
  return {FormatError(Status::InvalidArgument(
              "unknown request '" + verb +
              "' (load gen datasets methods submit poll wait cancel forget "
              "stats metrics failpoints quit)")),
          false, std::nullopt};
}

}  // namespace marioh::net
