#include "net/event_loop.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

// The poll(2) backend is always compiled — it is the portable fallback
// *and* the runtime alternative behind EventLoopOptions::force_poll /
// MARIOH_NET_FORCE_POLL. epoll is compiled in on Linux and selected at
// runtime iff the epoll instance was actually created (backend_fd_ >= 0).
#if defined(__linux__)
#define MARIOH_NET_EPOLL 1
#include <sys/epoll.h>
#else
#define MARIOH_NET_EPOLL 0
#endif

namespace marioh::net {

namespace {

api::Status Errno(const std::string& what) {
  return api::Status::Internal(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

#if MARIOH_NET_EPOLL
uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & EventLoop::kRead) events |= EPOLLIN;
  if (interest & EventLoop::kWrite) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t mask = 0;
  if (events & (EPOLLIN | EPOLLPRI)) mask |= EventLoop::kRead;
  if (events & EPOLLOUT) mask |= EventLoop::kWrite;
  if (events & (EPOLLERR | EPOLLHUP)) mask |= EventLoop::kError;
  return mask;
}
#endif

}  // namespace

EventLoop::EventLoop(EventLoopOptions options) {
  bool force_poll = options.force_poll;
  const char* env = std::getenv("MARIOH_NET_FORCE_POLL");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    force_poll = true;
  }
#if MARIOH_NET_EPOLL
  if (!force_poll) backend_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
#else
  (void)force_poll;
#endif
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) == 0) {
    wake_read_ = pipe_fds[0];
    wake_write_ = pipe_fds[1];
    SetNonBlocking(wake_read_);
    SetNonBlocking(wake_write_);
#if MARIOH_NET_EPOLL
    if (backend_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_;
      ::epoll_ctl(backend_fd_, EPOLL_CTL_ADD, wake_read_, &ev);
    }
#endif
  }
}

EventLoop::~EventLoop() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (backend_fd_ >= 0) ::close(backend_fd_);
}

api::Status EventLoop::Add(int fd, uint32_t interest, Callback callback) {
  if (fd < 0) return api::Status::InvalidArgument("negative fd");
  if (fds_.count(fd) > 0) {
    return api::Status::AlreadyExists("fd " + std::to_string(fd) +
                                      " is already registered");
  }
#if MARIOH_NET_EPOLL
  if (backend_fd_ >= 0) {
    epoll_event ev{};
    ev.events = ToEpoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(backend_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  fds_[fd] = Registration{interest, std::move(callback), ++generation_};
  return api::Status::Ok();
}

api::Status EventLoop::Modify(int fd, uint32_t interest) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return api::Status::NotFound("fd " + std::to_string(fd) +
                                 " is not registered");
  }
#if MARIOH_NET_EPOLL
  if (backend_fd_ >= 0) {
    epoll_event ev{};
    ev.events = ToEpoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(backend_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  it->second.interest = interest;
  return api::Status::Ok();
}

api::Status EventLoop::Remove(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return api::Status::NotFound("fd " + std::to_string(fd) +
                                 " is not registered");
  }
#if MARIOH_NET_EPOLL
  if (backend_fd_ >= 0) {
    ::epoll_ctl(backend_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  fds_.erase(it);
  return api::Status::Ok();
}

void EventLoop::set_tick(std::chrono::milliseconds period,
                         std::function<void()> tick) {
  if (period.count() > 0) tick_period_ = period;
  tick_ = std::move(tick);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    // Async-signal-safe wakeup; a full pipe already wakes the loop.
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

bool EventLoop::stopped() const {
  return stop_.load(std::memory_order_acquire);
}

void EventLoop::WakeupDrain() {
  char buffer[64];
  while (::read(wake_read_, buffer, sizeof buffer) > 0) {
  }
}

void EventLoop::Run() {
  using clock = std::chrono::steady_clock;
  auto next_tick = clock::now() + tick_period_;
  while (!stopped()) {
    auto now = clock::now();
    if (now >= next_tick) {
      if (tick_) tick_();
      next_tick = now + tick_period_;
      continue;  // re-check stop_ before blocking again
    }
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(next_tick -
                                                              now)
            .count() +
        1);

    // Collect (fd, events) ready pairs, then dispatch. Each pair also
    // snapshots the registration generation: if a callback removes a fd
    // later in the batch — and an accept() inside the same batch reuses
    // the fd number for a new registration — the stale event must not
    // reach the new owner.
    struct Ready {
      int fd;
      uint32_t mask;
      uint64_t generation;
    };
    std::vector<Ready> ready;
#if MARIOH_NET_EPOLL
    if (backend_fd_ >= 0) {
      epoll_event events[64];
      int n = ::epoll_wait(backend_fd_, events, 64, timeout_ms);
      if (n < 0) {
        // A signal (profiler tick, SIGCHLD, test harness) interrupting
        // the wait is routine: re-enter. Anything else is a broken
        // backend — exit the loop rather than spin on it.
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == wake_read_) {
          WakeupDrain();
          continue;
        }
        auto it = fds_.find(fd);
        if (it == fds_.end()) continue;
        ready.push_back({fd, FromEpoll(events[i].events),
                         it->second.generation});
      }
    } else
#endif
    {
      std::vector<pollfd> pfds;
      pfds.reserve(fds_.size() + 1);
      if (wake_read_ >= 0) pfds.push_back({wake_read_, POLLIN, 0});
      for (const auto& [fd, reg] : fds_) {
        short mask = 0;
        if (reg.interest & kRead) mask |= POLLIN;
        if (reg.interest & kWrite) mask |= POLLOUT;
        pfds.push_back({fd, mask, 0});
      }
      int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (n < 0) {
        // Same contract as the epoll branch: EINTR re-enters, real
        // errors end the loop.
        if (errno == EINTR) continue;
        break;
      }
      for (const pollfd& p : pfds) {
        if (p.revents == 0) continue;
        if (p.fd == wake_read_) {
          WakeupDrain();
          continue;
        }
        uint32_t mask = 0;
        if (p.revents & (POLLIN | POLLPRI)) mask |= kRead;
        if (p.revents & POLLOUT) mask |= kWrite;
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError;
        auto it = fds_.find(p.fd);
        if (it == fds_.end()) continue;
        ready.push_back({p.fd, mask, it->second.generation});
      }
    }
    for (const Ready& r : ready) {
      auto it = fds_.find(r.fd);
      // Skip if removed by an earlier callback, or if the fd number was
      // re-registered since the batch was built (different generation).
      if (it == fds_.end() || it->second.generation != r.generation) {
        continue;
      }
      // Copying the callback keeps it alive if it removes itself.
      Callback callback = it->second.callback;
      callback(r.mask);
    }
  }
  if (tick_) tick_();  // final tick so shutdown work runs on the loop
}

}  // namespace marioh::net
