/// \file cfinder.hpp
/// \brief CFinder baseline [34]: k-clique percolation. Two k-cliques are
/// adjacent when they share k-1 nodes; connected unions of adjacent
/// k-cliques form communities, which are output as hyperedges.

#pragma once

#include <cstddef>

#include "api/method.hpp"

namespace marioh::baselines {

/// k-clique percolation communities as hyperedges. When trained, `k` is
/// chosen from the source hypergraph's hyperedge-size quantiles (the paper
/// selects the optimal k within the [0.1, 0.5] quantile range); untrained
/// runs use the constructor default.
class CFinder : public api::Reconstructor {
 public:
  explicit CFinder(size_t k = 3) : k_(k) {}

  std::string Name() const override { return "CFinder"; }
  bool IsSupervised() const override { return true; }
  void Train(const ProjectedGraph& g_source,
             const Hypergraph& h_source) override;
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

  size_t k() const { return k_; }

 private:
  size_t k_;
};

}  // namespace marioh::baselines
