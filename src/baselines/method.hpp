/// \file method.hpp
/// \brief DEPRECATED forwarding header. The `Reconstructor` interface
/// moved to `api/method.hpp` (the public API layer); `baselines/` now
/// implements it rather than owning it. This shim keeps out-of-tree
/// includes of `baselines/method.hpp` compiling for one PR cycle — switch
/// to `api/method.hpp` (and `marioh::api::Reconstructor`); this header
/// will be removed.

#pragma once

#include "api/method.hpp"

namespace marioh::baselines {

/// Deprecated alias; use marioh::api::Reconstructor.
using Reconstructor = ::marioh::api::Reconstructor;

}  // namespace marioh::baselines
