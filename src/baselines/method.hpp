/// \file method.hpp
/// \brief Common interface for all hypergraph-reconstruction methods, so
/// the experiment harness can evaluate MARIOH and every baseline through
/// one code path (as the paper's evaluation does).

#pragma once

#include <memory>
#include <string>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::baselines {

/// A hypergraph reconstruction method. Supervised methods receive the
/// source pair through Train before Reconstruct is called; unsupervised
/// methods ignore Train.
class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Display name used in benchmark tables.
  virtual std::string Name() const = 0;

  /// True if the method consumes the source pair.
  virtual bool IsSupervised() const { return false; }

  /// Trains on the source projected graph and hypergraph. Default: no-op.
  virtual void Train(const ProjectedGraph& g_source,
                     const Hypergraph& h_source) {
    (void)g_source;
    (void)h_source;
  }

  /// Reconstructs a hypergraph from the target projected graph.
  virtual Hypergraph Reconstruct(const ProjectedGraph& g_target) = 0;
};

}  // namespace marioh::baselines
