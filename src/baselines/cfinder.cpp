#include "baselines/cfinder.hpp"

#include "api/registry.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "hypergraph/clique.hpp"
#include "util/hash.hpp"

namespace marioh::baselines {
namespace {

/// All k-cliques of g, derived by expanding each maximal clique's
/// k-subsets (bounded: maximal cliques much larger than k are truncated to
/// their first combinations to keep the enumeration polynomial).
std::vector<NodeSet> KCliques(const ProjectedGraph& g, size_t k,
                              size_t max_per_maximal = 2000) {
  std::unordered_set<NodeSet, util::VectorHash> found;
  // Maximal cliques stay in the enumeration arena; only the k-subsets
  // materialize owning sets.
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(g);
  for (CliqueView q : enumerated.cliques) {
    if (q.size() < k) continue;
    // Enumerate k-subsets of q with a bounded combination walk.
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    size_t emitted = 0;
    while (emitted < max_per_maximal) {
      NodeSet sub(k);
      for (size_t i = 0; i < k; ++i) sub[i] = q[idx[i]];
      found.insert(sub);
      ++emitted;
      // Next combination.
      size_t i = k;
      while (i > 0) {
        --i;
        if (idx[i] != i + q.size() - k) break;
        if (i == 0) {
          i = k;  // done flag
          break;
        }
      }
      if (i == k) break;
      ++idx[i];
      for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
    }
  }
  std::vector<NodeSet> out(found.begin(), found.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void CFinder::Train(const ProjectedGraph& g_source,
                    const Hypergraph& h_source) {
  (void)g_source;
  // Pick k from the source hyperedge sizes: the paper selects the best k in
  // the [0.1, 0.5] size-quantile range; we use the 0.3 quantile as the
  // representative choice (>= 3 so percolation is meaningful).
  std::vector<size_t> sizes;
  for (const auto& [e, m] : h_source.edges()) {
    for (uint32_t i = 0; i < m; ++i) sizes.push_back(e.size());
  }
  if (sizes.empty()) return;
  std::sort(sizes.begin(), sizes.end());
  size_t q = sizes[static_cast<size_t>(0.3 * static_cast<double>(
                                                 sizes.size() - 1))];
  k_ = std::max<size_t>(3, q);
}

Hypergraph CFinder::Reconstruct(const ProjectedGraph& g_target) {
  Hypergraph h(g_target.num_nodes());
  std::vector<NodeSet> cliques = KCliques(g_target, k_);
  if (cliques.empty()) return h;

  // Union-find over k-cliques; two cliques join when sharing k-1 nodes.
  // Index cliques by their (k-1)-subsets: cliques sharing a subset are
  // adjacent.
  std::vector<size_t> parent(cliques.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b] = a;
  };

  std::unordered_map<NodeSet, size_t, util::VectorHash> subset_owner;
  for (size_t i = 0; i < cliques.size(); ++i) {
    const NodeSet& q = cliques[i];
    for (size_t drop = 0; drop < q.size(); ++drop) {
      NodeSet sub;
      sub.reserve(q.size() - 1);
      for (size_t j = 0; j < q.size(); ++j) {
        if (j != drop) sub.push_back(q[j]);
      }
      auto [it, inserted] = subset_owner.try_emplace(sub, i);
      if (!inserted) unite(i, it->second);
    }
  }

  std::unordered_map<size_t, NodeSet> communities;
  for (size_t i = 0; i < cliques.size(); ++i) {
    NodeSet& c = communities[find(i)];
    c.insert(c.end(), cliques[i].begin(), cliques[i].end());
  }
  for (auto& [root, nodes] : communities) {
    (void)root;
    Canonicalize(&nodes);
    h.AddEdge(nodes, 1);
  }
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    CFinder,
    (marioh::api::MethodInfo{
        .name = "CFinder",
        .summary = "k-clique percolation communities as hyperedges",
        .supervised = true,
        .multiplicity_aware = false,
        .table2_order = 0,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      size_t k = 3;
      marioh::api::OverrideReader reader(config);
      reader.Get("k", &k);
      MARIOH_RETURN_IF_ERROR(reader.Finish("CFinder"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::CFinder>(k);
      return method;
    })
