/// \file shyre.hpp
/// \brief SHyRe-Count and SHyRe-Motif baselines (Wang & Kleinberg [6]):
/// supervised hypergraph reconstruction that samples candidate cliques
/// from the maximal cliques of the projected graph according to a learned
/// distribution rho(n, k) and classifies them once — no iteration, no edge
/// multiplicity. SHyRe-Count uses basic structural count features;
/// SHyRe-Motif adds motif (triangle / wedge / 4-path) statistics.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/method.hpp"
#include "core/classifier.hpp"

namespace marioh::baselines {

/// Feature family used by a SHyRe instance.
enum class ShyreFeatures {
  kCount,  ///< SHyRe-Count: structural count features
  kMotif,  ///< SHyRe-Motif: count features + motif statistics
};

/// Supervised SHyRe reconstructor.
class Shyre : public api::Reconstructor {
 public:
  /// Training / inference knobs.
  struct Options {
    ShyreFeatures features = ShyreFeatures::kCount;
    /// Classifier acceptance threshold at reconstruction.
    double threshold = 0.5;
    /// Cap on sampled sub-clique candidates per maximal clique.
    size_t max_candidates_per_clique = 64;
    uint64_t seed = 1;
    core::ClassifierOptions classifier;
  };

  /// Constructs SHyRe-Count with default options.
  Shyre();
  explicit Shyre(Options options);

  std::string Name() const override {
    return options_.features == ShyreFeatures::kCount ? "SHyRe-Count"
                                                      : "SHyRe-Motif";
  }
  bool IsSupervised() const override { return true; }

  /// Learns rho(n, k) — the expected number of size-k hyperedges inside a
  /// size-n maximal clique — and trains the clique classifier.
  void Train(const ProjectedGraph& g_source,
             const Hypergraph& h_source) override;

  /// Samples candidates per maximal clique according to rho and keeps the
  /// ones the classifier accepts. One pass; no peeling.
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

 private:
  /// Expected count of size-k hyperedges within a maximal clique of size n
  /// (0 when unseen in training).
  double Rho(size_t n, size_t k) const;

  Options options_;
  core::CliqueClassifier classifier_;
  // rho_[n][k] = average count; ragged, indexed by clique size.
  std::vector<std::vector<double>> rho_;
};

}  // namespace marioh::baselines
