#include "baselines/shyre.hpp"

#include "api/registry.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hypergraph/clique.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {
namespace {

core::FeatureMode ToFeatureMode(ShyreFeatures f) {
  // Both SHyRe variants are multiplicity-blind; the motif variant adds
  // clustering-coefficient and square-count motif statistics.
  return f == ShyreFeatures::kCount ? core::FeatureMode::kStructural
                                    : core::FeatureMode::kMotif;
}

}  // namespace

Shyre::Shyre() : Shyre(Options()) {}

Shyre::Shyre(Options options)
    : options_(std::move(options)),
      classifier_(ToFeatureMode(options_.features), options_.classifier) {}

void Shyre::Train(const ProjectedGraph& g_source,
                  const Hypergraph& h_source) {
  util::Rng rng(options_.seed);
  classifier_.Train(g_source, h_source, &rng);

  // Estimate rho(n, k): for each maximal clique of size n in G_S, count
  // source hyperedges of size k fully inside it; average per clique size.
  // The cliques stay in the enumeration arena — containment tests run on
  // views, so no per-clique NodeSet is ever materialized here.
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(g_source);
  const CliqueStore& maximal = enumerated.cliques;
  size_t max_n = 2;
  for (CliqueView q : maximal) max_n = std::max(max_n, q.size());

  std::vector<std::vector<double>> counts(max_n + 1);
  std::vector<size_t> cliques_of_size(max_n + 1, 0);
  for (auto& row : counts) row.assign(max_n + 1, 0.0);

  for (CliqueView q : maximal) {
    ++cliques_of_size[q.size()];
    // Count hyperedges contained in q, bucketed by size. Hyperedges are
    // few; test containment directly.
    for (const auto& [e, m] : h_source.edges()) {
      (void)m;
      if (e.size() > q.size()) continue;
      if (std::includes(q.begin(), q.end(), e.begin(), e.end())) {
        counts[q.size()][e.size()] += 1.0;
      }
    }
  }
  rho_.assign(max_n + 1, {});
  for (size_t n = 2; n <= max_n; ++n) {
    rho_[n].assign(max_n + 1, 0.0);
    if (cliques_of_size[n] == 0) continue;
    for (size_t k = 2; k <= n; ++k) {
      rho_[n][k] = counts[n][k] / static_cast<double>(cliques_of_size[n]);
    }
  }
}

double Shyre::Rho(size_t n, size_t k) const {
  if (n < rho_.size() && k < rho_[n].size()) return rho_[n][k];
  // Unseen clique size: fall back to the largest learned size.
  if (rho_.size() > 2) {
    size_t last = rho_.size() - 1;
    if (k < rho_[last].size()) return rho_[last][k];
  }
  return 0.0;
}

Hypergraph Shyre::Reconstruct(const ProjectedGraph& g_target) {
  Hypergraph h(g_target.num_nodes());
  util::Rng rng(options_.seed ^ 0xabcdef12345ULL);
  // Maximal cliques stay in the enumeration arena; candidates are scored
  // as views, and the dedup lookup reuses one scratch key. Only accepted
  // candidates own their nodes (inside the `accepted` set).
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(g_target);

  std::unordered_set<NodeSet, util::VectorHash> accepted;
  NodeSet lookup_key;  // reused buffer: no allocation per candidate
  auto consider = [&](CliqueView q, bool is_maximal) {
    if (q.size() < 2) return;
    lookup_key.assign(q.begin(), q.end());
    if (accepted.count(lookup_key) > 0) return;
    double score = classifier_.Score(g_target, q, is_maximal);
    if (score > options_.threshold) accepted.insert(lookup_key);
  };

  for (CliqueView q : enumerated.cliques) {
    consider(q, true);
    size_t budget = options_.max_candidates_per_clique;
    for (size_t k = 2; k < q.size() && budget > 0; ++k) {
      // Number of size-k candidates to sample from this clique, following
      // the learned rho (at least one sample when rho > 0).
      double expect = Rho(q.size(), k);
      size_t samples = static_cast<size_t>(std::ceil(expect));
      samples = std::min(samples, budget);
      for (size_t s = 0; s < samples; ++s) {
        NodeSet sub = rng.SampleWithoutReplacement(q, k);
        Canonicalize(&sub);
        consider(sub, false);
        --budget;
        if (budget == 0) break;
      }
    }
  }
  for (const NodeSet& q : accepted) h.AddEdge(q, 1);
  return h;
}

}  // namespace marioh::baselines

namespace marioh::baselines {
namespace {

/// Shared factory body for the two registered SHyRe feature families.
marioh::api::StatusOr<std::unique_ptr<marioh::api::Reconstructor>>
MakeShyre(ShyreFeatures features, const std::string& name,
          const marioh::api::MethodConfig& config) {
  Shyre::Options options;
  options.features = features;
  options.seed = config.seed;
  marioh::api::OverrideReader reader(config);
  reader.Get("threshold", &options.threshold);
  reader.Get("max_candidates_per_clique",
             &options.max_candidates_per_clique);
  MARIOH_RETURN_IF_ERROR(reader.Finish(name));
  std::unique_ptr<marioh::api::Reconstructor> method =
      std::make_unique<Shyre>(options);
  return method;
}

}  // namespace
}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    ShyreCount,
    (marioh::api::MethodInfo{
        .name = "SHyRe-Count",
        .summary = "supervised clique sampling + classification with "
                   "structural count features",
        .supervised = true,
        .multiplicity_aware = false,
        .table2_order = 7,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::baselines::MakeShyre(
          marioh::baselines::ShyreFeatures::kCount, "SHyRe-Count", config);
    })

MARIOH_REGISTER_METHOD(
    ShyreMotif,
    (marioh::api::MethodInfo{
        .name = "SHyRe-Motif",
        .summary = "supervised clique sampling + classification with "
                   "count + motif features",
        .supervised = true,
        .multiplicity_aware = false,
        .table2_order = 6,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config) {
      return marioh::baselines::MakeShyre(
          marioh::baselines::ShyreFeatures::kMotif, "SHyRe-Motif", config);
    })
