#include "baselines/maxclique.hpp"

#include "hypergraph/clique.hpp"

namespace marioh::baselines {

Hypergraph MaxCliqueDecomposition::Reconstruct(
    const ProjectedGraph& g_target) {
  Hypergraph h(g_target.num_nodes());
  for (const NodeSet& q : MaximalCliques(g_target)) {
    h.AddEdge(q, 1);
  }
  return h;
}

}  // namespace marioh::baselines
