#include "baselines/maxclique.hpp"

#include "api/registry.hpp"

#include "hypergraph/clique.hpp"

namespace marioh::baselines {

Hypergraph MaxCliqueDecomposition::Reconstruct(
    const ProjectedGraph& g_target) {
  Hypergraph h(g_target.num_nodes());
  // Read the cliques straight out of the enumeration arena; the only
  // per-clique copy is the NodeSet the hypergraph itself stores.
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(g_target);
  for (CliqueView q : enumerated.cliques) {
    h.AddEdge(NodeSet(q.begin(), q.end()), 1);
  }
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    MaxClique,
    (marioh::api::MethodInfo{
        .name = "MaxClique",
        .summary = "every maximal clique of the projected graph becomes a "
                   "hyperedge",
        .supervised = false,
        .multiplicity_aware = false,
        .table2_order = 2,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      marioh::api::OverrideReader reader(config);
      MARIOH_RETURN_IF_ERROR(reader.Finish("MaxClique"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::MaxCliqueDecomposition>();
      return method;
    })
