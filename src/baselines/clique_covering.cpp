#include "baselines/clique_covering.hpp"

#include "api/registry.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {

Hypergraph CliqueCovering::Reconstruct(const ProjectedGraph& g_target) {
  Hypergraph h(g_target.num_nodes());
  std::vector<ProjectedGraph::Edge> edges = g_target.Edges();
  std::unordered_set<NodePair, util::PairHash> covered;
  util::Rng rng(seed_);

  for (const ProjectedGraph::Edge& e : edges) {
    if (covered.count(MakePair(e.u, e.v)) > 0) continue;
    // Grow a maximal clique starting from {u, v}, preferring candidates
    // adjacent to all current members that touch many uncovered edges.
    NodeSet clique = {e.u, e.v};
    std::vector<NodeId> candidates = g_target.CommonNeighbors(e.u, e.v);
    std::sort(candidates.begin(), candidates.end(),
              [&](NodeId a, NodeId b) {
                size_t da = g_target.Degree(a);
                size_t db = g_target.Degree(b);
                return da != db ? da > db : a < b;
              });
    for (NodeId c : candidates) {
      bool adjacent_to_all = true;
      for (NodeId m : clique) {
        if (!g_target.HasEdge(c, m)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) clique.push_back(c);
    }
    Canonicalize(&clique);
    h.AddEdge(clique, 1);
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        covered.insert(MakePair(clique[i], clique[j]));
      }
    }
  }
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    CliqueCovering,
    (marioh::api::MethodInfo{
        .name = "CliqueCovering",
        .summary = "greedy edge clique cover emitted as hyperedges",
        .supervised = false,
        .multiplicity_aware = false,
        .table2_order = 3,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      marioh::api::OverrideReader reader(config);
      MARIOH_RETURN_IF_ERROR(reader.Finish("CliqueCovering"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::CliqueCovering>(config.seed);
      return method;
    })
