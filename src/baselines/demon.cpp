#include "baselines/demon.hpp"

#include "api/registry.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {
namespace {

/// Label propagation on the subgraph of `g` induced by `nodes`; returns the
/// communities (node sets) found.
std::vector<NodeSet> LabelPropagation(const ProjectedGraph& g,
                                      const std::vector<NodeId>& nodes,
                                      util::Rng* rng, int max_rounds = 20) {
  std::unordered_map<NodeId, NodeId> label;
  std::unordered_set<NodeId> members(nodes.begin(), nodes.end());
  for (NodeId u : nodes) label[u] = u;

  std::vector<NodeId> order = nodes;
  for (int round = 0; round < max_rounds; ++round) {
    rng->Shuffle(&order);
    bool changed = false;
    for (NodeId u : order) {
      // Most frequent label among in-subgraph neighbors, weight-weighted.
      std::unordered_map<NodeId, uint64_t> freq;
      for (const auto& [v, w] : g.Neighbors(u)) {
        if (members.count(v) > 0) freq[label[v]] += w;
      }
      if (freq.empty()) continue;
      NodeId best_label = label[u];
      uint64_t best_count = 0;
      for (const auto& [l, c] : freq) {
        if (c > best_count || (c == best_count && l < best_label)) {
          best_label = l;
          best_count = c;
        }
      }
      if (best_label != label[u]) {
        label[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::unordered_map<NodeId, NodeSet> groups;
  for (NodeId u : nodes) groups[label[u]].push_back(u);
  std::vector<NodeSet> out;
  out.reserve(groups.size());
  for (auto& [l, group] : groups) {
    (void)l;
    Canonicalize(&group);
    out.push_back(std::move(group));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Fraction of `a`'s nodes contained in `b` (both canonical).
double Containment(const NodeSet& a, const NodeSet& b) {
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return a.empty() ? 0.0
                   : static_cast<double>(inter) /
                         static_cast<double>(a.size());
}

}  // namespace

Hypergraph Demon::Reconstruct(const ProjectedGraph& g_target) {
  util::Rng rng(seed_);
  std::vector<NodeSet> communities;
  std::unordered_set<NodeSet, util::VectorHash> seen;

  for (NodeId ego = 0; ego < g_target.num_nodes(); ++ego) {
    if (g_target.Degree(ego) == 0) continue;
    std::vector<NodeId> ego_net;
    ego_net.reserve(g_target.Degree(ego));
    for (const auto& [v, w] : g_target.Neighbors(ego)) {
      (void)w;
      ego_net.push_back(v);
    }
    std::sort(ego_net.begin(), ego_net.end());
    for (NodeSet community : LabelPropagation(g_target, ego_net, &rng)) {
      community.push_back(ego);
      Canonicalize(&community);
      if (community.size() < min_size_) continue;
      if (seen.insert(community).second) {
        communities.push_back(std::move(community));
      }
    }
  }

  // Merge pass: drop a community fully (>= epsilon) contained in another.
  std::sort(communities.begin(), communities.end(),
            [](const NodeSet& a, const NodeSet& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  std::vector<bool> absorbed(communities.size(), false);
  for (size_t i = 0; i < communities.size(); ++i) {
    for (size_t j = i + 1; j < communities.size(); ++j) {
      if (absorbed[i]) break;
      if (absorbed[j]) continue;
      if (Containment(communities[i], communities[j]) >= epsilon_) {
        absorbed[i] = true;
      }
    }
  }

  Hypergraph h(g_target.num_nodes());
  for (size_t i = 0; i < communities.size(); ++i) {
    if (!absorbed[i]) h.AddEdge(communities[i], 1);
  }
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    Demon,
    (marioh::api::MethodInfo{
        .name = "Demon",
        .summary = "local-first overlapping community detection (ego-net "
                   "label propagation)",
        .supervised = false,
        .multiplicity_aware = false,
        .table2_order = 1,
        .table3_order = -1}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      double epsilon = 1.0;
      size_t min_size = 2;
      marioh::api::OverrideReader reader(config);
      reader.Get("epsilon", &epsilon);
      reader.Get("min_size", &min_size);
      MARIOH_RETURN_IF_ERROR(reader.Finish("Demon"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::Demon>(epsilon, min_size,
                                                     config.seed);
      return method;
    })
