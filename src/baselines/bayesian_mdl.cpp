#include "baselines/bayesian_mdl.hpp"

#include "api/registry.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hypergraph/clique.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {
namespace {

/// Description length of a candidate cover: hyperedge count weighted
/// against total node incidences (parsimony: fewer, larger-but-tight
/// hyperedges are cheaper than many overlapping ones).
double DescriptionLength(const std::vector<NodeSet>& cover) {
  double bits = 0.0;
  for (const NodeSet& e : cover) {
    bits += 1.0 + static_cast<double>(e.size());
  }
  return bits;
}

/// True if every projected edge is covered by some clique of `cover`.
bool CoversAllEdges(const std::vector<NodeSet>& cover,
                    const std::vector<ProjectedGraph::Edge>& edges) {
  std::unordered_set<NodePair, util::PairHash> covered;
  for (const NodeSet& e : cover) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        covered.insert(MakePair(e[i], e[j]));
      }
    }
  }
  for (const ProjectedGraph::Edge& e : edges) {
    if (covered.count(MakePair(e.u, e.v)) == 0) return false;
  }
  return true;
}

}  // namespace

Hypergraph BayesianMdl::Reconstruct(const ProjectedGraph& g_target) {
  util::Rng rng(seed_);
  std::vector<ProjectedGraph::Edge> edges = g_target.Edges();
  Hypergraph h(g_target.num_nodes());
  if (edges.empty()) return h;

  // Greedy weighted set cover over maximal cliques: repeatedly take the
  // clique covering the most uncovered edges per unit description length.
  // Candidates are read as views into the enumeration arena; only cliques
  // accepted into the cover materialize an owning NodeSet.
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(g_target);
  const CliqueStore& maximal = enumerated.cliques;
  std::unordered_set<NodePair, util::PairHash> uncovered;
  for (const ProjectedGraph::Edge& e : edges) {
    uncovered.insert(MakePair(e.u, e.v));
  }
  std::vector<NodeSet> cover;
  while (!uncovered.empty()) {
    double best_gain = -1.0;
    size_t best = maximal.size();  // sentinel: none
    for (size_t c = 0; c < maximal.size(); ++c) {
      CliqueView q = maximal[c];
      size_t newly = 0;
      for (size_t i = 0; i < q.size(); ++i) {
        for (size_t j = i + 1; j < q.size(); ++j) {
          if (uncovered.count(MakePair(q[i], q[j])) > 0) ++newly;
        }
      }
      if (newly == 0) continue;
      double gain = static_cast<double>(newly) /
                    (1.0 + static_cast<double>(q.size()));
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    // No clique covers anything further — possible when a truncated
    // enumeration left some edge pairs uncoverable.
    if (best == maximal.size()) break;
    CliqueView chosen = maximal[best];
    cover.push_back(maximal.Materialize(best));
    for (size_t i = 0; i < chosen.size(); ++i) {
      for (size_t j = i + 1; j < chosen.size(); ++j) {
        uncovered.erase(MakePair(chosen[i], chosen[j]));
      }
    }
  }

  // Simulated annealing: try replacing one cover element by a random
  // sub-clique or dropping it, accepting moves that keep the cover valid
  // and improve (or, early on, mildly worsen) the description length.
  double current_dl = DescriptionLength(cover);
  double temperature = 1.0;
  for (size_t step = 0; step < anneal_steps_ && cover.size() > 1; ++step) {
    temperature = 1.0 - static_cast<double>(step) /
                            static_cast<double>(anneal_steps_);
    size_t pick = rng.UniformIndex(cover.size());
    std::vector<NodeSet> proposal = cover;
    if (rng.Bernoulli(0.5)) {
      proposal.erase(proposal.begin() + static_cast<long>(pick));
    } else if (cover[pick].size() > 2) {
      size_t k = static_cast<size_t>(
          rng.UniformInt(2, static_cast<int64_t>(cover[pick].size()) - 1));
      NodeSet sub = rng.SampleWithoutReplacement(cover[pick], k);
      Canonicalize(&sub);
      proposal[pick] = sub;
    } else {
      continue;
    }
    if (!CoversAllEdges(proposal, edges)) continue;
    double dl = DescriptionLength(proposal);
    double delta = dl - current_dl;
    if (delta < 0 || rng.Bernoulli(std::exp(-delta / std::max(
                                       temperature, 1e-3)))) {
      cover = std::move(proposal);
      current_dl = dl;
    }
  }

  for (const NodeSet& e : cover) h.AddEdge(e, 1);
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    BayesianMdl,
    (marioh::api::MethodInfo{
        .name = "Bayesian-MDL",
        .summary = "minimum-description-length clique cover with "
                   "simulated-annealing refinement",
        .supervised = false,
        .multiplicity_aware = true,
        .table2_order = 4,
        .table3_order = 0}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      size_t anneal_steps = 2000;
      marioh::api::OverrideReader reader(config);
      reader.Get("anneal_steps", &anneal_steps);
      MARIOH_RETURN_IF_ERROR(reader.Finish("Bayesian-MDL"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::BayesianMdl>(config.seed,
                                                           anneal_steps);
      return method;
    })
