/// \file maxclique.hpp
/// \brief MaxClique baseline [36]: clique decomposition that outputs every
/// maximal clique of the projected graph as a hyperedge.

#pragma once

#include "api/method.hpp"

namespace marioh::baselines {

/// Outputs the set of maximal cliques (via Bron–Kerbosch) as hyperedges,
/// each with multiplicity 1. Fast but blind to overlaps and multiplicity.
class MaxCliqueDecomposition : public api::Reconstructor {
 public:
  std::string Name() const override { return "MaxClique"; }
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;
};

}  // namespace marioh::baselines
