/// \file bayesian_mdl.hpp
/// \brief Bayesian-MDL baseline (Young, Petri, Peixoto [13]): reconstructs
/// the hypergraph that explains the projected graph most parsimoniously.
///
/// The original uses MCMC over a Bayesian generative model in graph-tool;
/// we optimize the same minimum-description-length objective — the number
/// of hyperedges plus their total size — with a greedy set-cover pass
/// followed by simulated-annealing local moves (split a hyperedge /
/// replace two by their union when it stays a clique). DESIGN.md documents
/// this substitution.

#pragma once

#include <cstdint>

#include "api/method.hpp"

namespace marioh::baselines {

/// MDL clique-cover reconstructor.
class BayesianMdl : public api::Reconstructor {
 public:
  /// `anneal_steps` local-search moves refine the greedy cover;
  /// deterministic given `seed`.
  explicit BayesianMdl(uint64_t seed = 1, size_t anneal_steps = 2000)
      : seed_(seed), anneal_steps_(anneal_steps) {}

  std::string Name() const override { return "Bayesian-MDL"; }
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

 private:
  uint64_t seed_;
  size_t anneal_steps_;
};

}  // namespace marioh::baselines
