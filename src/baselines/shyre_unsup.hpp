/// \file shyre_unsup.hpp
/// \brief SHyRe-Unsup baseline ([6], appendix): the only prior method that
/// uses edge multiplicity. Iteratively selects the top-ranked maximal
/// clique — preferring larger cliques with lower average edge multiplicity
/// — converts it to a hyperedge, decrements its edge multiplicities, and
/// repeats until no edges remain.

#pragma once

#include <cstddef>

#include "api/method.hpp"

namespace marioh::baselines {

/// Unsupervised multiplicity-aware maximal-clique peeling.
class ShyreUnsup : public api::Reconstructor {
 public:
  /// `max_iterations` caps the peel loop (each iteration may re-enumerate
  /// maximal cliques, which is what makes the original slow).
  explicit ShyreUnsup(size_t max_iterations = 1'000'000)
      : max_iterations_(max_iterations) {}

  std::string Name() const override { return "SHyRe-Unsup"; }
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

 private:
  size_t max_iterations_;
};

}  // namespace marioh::baselines
