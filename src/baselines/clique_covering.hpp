/// \file clique_covering.hpp
/// \brief CliqueCovering baseline [35]: greedy edge clique cover — every
/// edge of the projected graph must be covered by at least one output
/// clique, while keeping the cover small.

#pragma once

#include <cstdint>

#include "api/method.hpp"

namespace marioh::baselines {

/// Greedy edge clique cover: repeatedly takes an uncovered edge, grows it
/// into a maximal clique preferring neighbors that cover many uncovered
/// edges, and emits the clique as a hyperedge. Terminates when every edge
/// is covered.
class CliqueCovering : public api::Reconstructor {
 public:
  explicit CliqueCovering(uint64_t seed = 1) : seed_(seed) {}
  std::string Name() const override { return "CliqueCovering"; }
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

 private:
  uint64_t seed_;
};

}  // namespace marioh::baselines
