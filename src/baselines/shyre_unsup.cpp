#include "baselines/shyre_unsup.hpp"

#include "api/registry.hpp"

#include <algorithm>

#include "hypergraph/clique.hpp"

namespace marioh::baselines {
namespace {

/// Ranking key: larger cliques first, then lower average edge multiplicity,
/// then lexicographic for determinism.
struct RankedClique {
  NodeSet nodes;
  double avg_multiplicity;

  bool operator<(const RankedClique& other) const {
    if (nodes.size() != other.nodes.size()) {
      return nodes.size() > other.nodes.size();
    }
    if (avg_multiplicity != other.avg_multiplicity) {
      return avg_multiplicity < other.avg_multiplicity;
    }
    return nodes < other.nodes;
  }
};

double AverageMultiplicity(const ProjectedGraph& g, CliqueView q) {
  double sum = 0.0;
  size_t cnt = 0;
  for (size_t i = 0; i < q.size(); ++i) {
    for (size_t j = i + 1; j < q.size(); ++j) {
      sum += static_cast<double>(g.Weight(q[i], q[j]));
      ++cnt;
    }
  }
  return cnt == 0 ? 0.0 : sum / static_cast<double>(cnt);
}

}  // namespace

Hypergraph ShyreUnsup::Reconstruct(const ProjectedGraph& g_target) {
  ProjectedGraph g = g_target;
  Hypergraph h(g.num_nodes());

  size_t iterations = 0;
  std::vector<RankedClique> queue;
  while (!g.Empty() && iterations < max_iterations_) {
    if (queue.empty()) {
      // (Re-)enumerate and rank the maximal cliques of the current graph —
      // the repeated expensive search the paper criticizes. The queue
      // outlives the enumeration arena, so entries materialize here.
      MaximalCliqueResult enumerated = EnumerateMaximalCliques(g);
      queue.reserve(enumerated.cliques.size());
      for (size_t c = 0; c < enumerated.cliques.size(); ++c) {
        double avg = AverageMultiplicity(g, enumerated.cliques[c]);
        queue.push_back({enumerated.cliques.Materialize(c), avg});
      }
      std::sort(queue.begin(), queue.end());
      std::reverse(queue.begin(), queue.end());  // pop_back = best
      if (queue.empty()) break;
    }
    RankedClique top = std::move(queue.back());
    queue.pop_back();
    // The queue may be stale after earlier peels; re-validate.
    if (!g.IsClique(top.nodes)) continue;
    h.AddEdge(top.nodes, 1);
    g.PeelClique(top.nodes);
    ++iterations;
  }
  return h;
}

}  // namespace marioh::baselines

MARIOH_REGISTER_METHOD(
    ShyreUnsup,
    (marioh::api::MethodInfo{
        .name = "SHyRe-Unsup",
        .summary = "unsupervised multiplicity-aware maximal-clique peeling",
        .supervised = false,
        .multiplicity_aware = true,
        .table2_order = 5,
        .table3_order = 1}),
    [](const marioh::api::MethodConfig& config)
        -> marioh::api::StatusOr<
            std::unique_ptr<marioh::api::Reconstructor>> {
      size_t max_iterations = 1'000'000;
      marioh::api::OverrideReader reader(config);
      reader.Get("max_iterations", &max_iterations);
      MARIOH_RETURN_IF_ERROR(reader.Finish("SHyRe-Unsup"));
      std::unique_ptr<marioh::api::Reconstructor> method =
          std::make_unique<marioh::baselines::ShyreUnsup>(max_iterations);
      return method;
    })
