/// \file demon.hpp
/// \brief Demon baseline [33]: local-first overlapping community detection.
/// Each node's ego network is clustered with label propagation; the ego is
/// added to each local community, and communities are merged when one is
/// (almost) contained in another. Communities are output as hyperedges.

#pragma once

#include <cstdint>

#include "api/method.hpp"

namespace marioh::baselines {

/// Demon overlapping community detector used as a reconstruction baseline.
class Demon : public api::Reconstructor {
 public:
  /// `epsilon` is the merge containment threshold (the paper uses
  /// epsilon = 1, i.e. merge only full containment); `min_size` the
  /// minimum community size (paper: 2).
  explicit Demon(double epsilon = 1.0, size_t min_size = 2,
                 uint64_t seed = 1)
      : epsilon_(epsilon), min_size_(min_size), seed_(seed) {}

  std::string Name() const override { return "Demon"; }
  Hypergraph Reconstruct(const ProjectedGraph& g_target) override;

 private:
  double epsilon_;
  size_t min_size_;
  uint64_t seed_;
};

}  // namespace marioh::baselines
