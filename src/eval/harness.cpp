#include "eval/harness.hpp"

#include <cmath>

#include "baselines/bayesian_mdl.hpp"
#include "baselines/cfinder.hpp"
#include "baselines/clique_covering.hpp"
#include "baselines/demon.hpp"
#include "baselines/maxclique.hpp"
#include "baselines/shyre.hpp"
#include "baselines/shyre_unsup.hpp"
#include "eval/metrics.hpp"
#include "gen/split.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace marioh::eval {

MariohMethod::MariohMethod(core::MariohVariant variant,
                           core::MariohOptions options)
    : variant_(variant),
      marioh_(core::OptionsForVariant(variant, std::move(options))) {}

std::string MariohMethod::Name() const {
  switch (variant_) {
    case core::MariohVariant::kFull:
      return "MARIOH";
    case core::MariohVariant::kNoMulti:
      return "MARIOH-M";
    case core::MariohVariant::kNoFilter:
      return "MARIOH-F";
    case core::MariohVariant::kNoBidir:
      return "MARIOH-B";
  }
  return "MARIOH";
}

void MariohMethod::Train(const ProjectedGraph& g_source,
                         const Hypergraph& h_source) {
  marioh_.Train(g_source, h_source);
}

Hypergraph MariohMethod::Reconstruct(const ProjectedGraph& g_target) {
  return marioh_.Reconstruct(g_target);
}

std::unique_ptr<baselines::Reconstructor> MakeMethod(
    const std::string& name, uint64_t seed,
    const core::MariohOptions& marioh_base) {
  core::MariohOptions opts = marioh_base;
  opts.seed = seed;
  if (name == "MARIOH") {
    return std::make_unique<MariohMethod>(core::MariohVariant::kFull, opts);
  }
  if (name == "MARIOH-M") {
    return std::make_unique<MariohMethod>(core::MariohVariant::kNoMulti,
                                          opts);
  }
  if (name == "MARIOH-F") {
    return std::make_unique<MariohMethod>(core::MariohVariant::kNoFilter,
                                          opts);
  }
  if (name == "MARIOH-B") {
    return std::make_unique<MariohMethod>(core::MariohVariant::kNoBidir,
                                          opts);
  }
  if (name == "CFinder") return std::make_unique<baselines::CFinder>();
  if (name == "Demon") {
    return std::make_unique<baselines::Demon>(1.0, 2, seed);
  }
  if (name == "MaxClique") {
    return std::make_unique<baselines::MaxCliqueDecomposition>();
  }
  if (name == "CliqueCovering") {
    return std::make_unique<baselines::CliqueCovering>(seed);
  }
  if (name == "Bayesian-MDL") {
    return std::make_unique<baselines::BayesianMdl>(seed);
  }
  if (name == "SHyRe-Unsup") {
    return std::make_unique<baselines::ShyreUnsup>();
  }
  if (name == "SHyRe-Count" || name == "SHyRe-Motif") {
    baselines::Shyre::Options shyre;
    shyre.features = name == "SHyRe-Count"
                         ? baselines::ShyreFeatures::kCount
                         : baselines::ShyreFeatures::kMotif;
    shyre.seed = seed;
    return std::make_unique<baselines::Shyre>(shyre);
  }
  MARIOH_CHECK(false);
  return nullptr;
}

std::vector<std::string> Table2Methods() {
  return {"CFinder",      "Demon",        "MaxClique",   "CliqueCovering",
          "Bayesian-MDL", "SHyRe-Unsup",  "SHyRe-Motif", "SHyRe-Count",
          "MARIOH-M",     "MARIOH-F",     "MARIOH-B",    "MARIOH"};
}

std::vector<std::string> Table3Methods() {
  return {"Bayesian-MDL", "SHyRe-Unsup", "MARIOH-M",
          "MARIOH-F",     "MARIOH-B",    "MARIOH"};
}

PreparedDataset PrepareDataset(const std::string& profile_name,
                               bool multiplicity_reduced, uint64_t seed,
                               SplitMode split_mode) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName(profile_name), seed);
  Hypergraph h = multiplicity_reduced
                     ? data.hypergraph.MultiplicityReduced()
                     : data.hypergraph;
  util::Rng rng(seed ^ 0x5555aaaaULL);
  gen::SourceTargetSplit split;
  if (split_mode == SplitMode::kTemporal) {
    std::vector<gen::TimedHyperedge> events =
        gen::AttachTimestamps(h, &rng);
    split = gen::SplitByTime(events, 0.5, h.num_nodes());
  } else {
    split = gen::SplitHypergraph(h, &rng, 0.5);
  }
  PreparedDataset out;
  out.name = profile_name;
  out.g_source = split.source.Project();
  out.g_target = split.target.Project();
  out.source = std::move(split.source);
  out.target = std::move(split.target);
  out.labels = std::move(data.labels);
  out.num_classes = data.num_classes;
  return out;
}

namespace {

AccuracyResult RunPair(const std::string& method_name,
                       const std::string& dataset_label,
                       const std::function<PreparedDataset(uint64_t)>& prep,
                       const AccuracyOptions& options) {
  AccuracyResult result;
  result.method = method_name;
  result.dataset = dataset_label;
  util::RunningStats acc_stats;
  util::RunningStats time_stats;

  for (int s = 0; s < options.num_seeds; ++s) {
    uint64_t seed = options.base_seed + static_cast<uint64_t>(s) * 7919;
    PreparedDataset data = prep(seed);
    std::unique_ptr<baselines::Reconstructor> method =
        MakeMethod(method_name, seed, options.marioh_base);

    util::Timer timer;
    if (method->IsSupervised()) {
      method->Train(data.g_source, data.source);
    }
    Hypergraph reconstructed = method->Reconstruct(data.g_target);
    double elapsed = timer.Seconds();
    time_stats.Add(elapsed);

    double score = options.multiplicity_reduced
                       ? Jaccard(data.target, reconstructed)
                       : MultiJaccard(data.target, reconstructed);
    acc_stats.Add(100.0 * score);

    if (elapsed > options.time_budget_seconds) {
      result.out_of_time = true;
      break;  // OOT: stop burning time on remaining seeds
    }
  }
  result.mean = acc_stats.Mean();
  result.std_dev = acc_stats.Std();
  result.mean_seconds = time_stats.Mean();
  result.seeds = static_cast<int>(acc_stats.count());
  return result;
}

}  // namespace

AccuracyResult RunAccuracy(const std::string& method_name,
                           const std::string& profile_name,
                           const AccuracyOptions& options) {
  return RunPair(
      method_name, profile_name,
      [&](uint64_t seed) {
        return PrepareDataset(profile_name, options.multiplicity_reduced,
                              seed);
      },
      options);
}

AccuracyResult RunTransfer(const std::string& method_name,
                           const std::string& source_profile,
                           const std::string& target_profile,
                           const AccuracyOptions& options) {
  return RunPair(
      method_name, source_profile + "->" + target_profile,
      [&](uint64_t seed) {
        PreparedDataset src = PrepareDataset(
            source_profile, options.multiplicity_reduced, seed);
        PreparedDataset dst = PrepareDataset(
            target_profile, options.multiplicity_reduced, seed ^ 0xbeefULL);
        PreparedDataset out;
        out.name = source_profile + "->" + target_profile;
        out.source = std::move(src.source);
        out.g_source = std::move(src.g_source);
        out.target = std::move(dst.target);
        out.g_target = std::move(dst.g_target);
        return out;
      },
      options);
}

}  // namespace marioh::eval
