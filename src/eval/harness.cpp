#include "eval/harness.hpp"

#include <cmath>
#include <utility>

#include "gen/split.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace marioh::eval {

std::vector<std::string> Table2Methods() { return api::Table2Roster(); }

std::vector<std::string> Table3Methods() { return api::Table3Roster(); }

api::StatusOr<PreparedDataset> TryPrepareDataset(
    const std::string& profile_name, bool multiplicity_reduced,
    uint64_t seed, SplitMode split_mode) {
  api::StatusOr<gen::DomainProfile> profile =
      gen::TryProfileByName(profile_name);
  if (!profile.ok()) return profile.status();
  gen::GeneratedDataset data = gen::Generate(*profile, seed);
  Hypergraph h = multiplicity_reduced
                     ? data.hypergraph.MultiplicityReduced()
                     : data.hypergraph;
  util::Rng rng(seed ^ 0x5555aaaaULL);
  gen::SourceTargetSplit split;
  if (split_mode == SplitMode::kTemporal) {
    std::vector<gen::TimedHyperedge> events =
        gen::AttachTimestamps(h, &rng);
    split = gen::SplitByTime(events, 0.5, h.num_nodes());
  } else {
    split = gen::SplitHypergraph(h, &rng, 0.5);
  }
  PreparedDataset out;
  out.name = profile_name;
  out.g_source =
      std::make_shared<const ProjectedGraph>(split.source.Project());
  out.g_target =
      std::make_shared<const ProjectedGraph>(split.target.Project());
  out.source = std::make_shared<const Hypergraph>(std::move(split.source));
  out.target = std::make_shared<const Hypergraph>(std::move(split.target));
  out.labels = std::move(data.labels);
  out.num_classes = data.num_classes;
  return out;
}

PreparedDataset PrepareDataset(const std::string& profile_name,
                               bool multiplicity_reduced, uint64_t seed,
                               SplitMode split_mode) {
  return api::ValueOrDie(
      TryPrepareDataset(profile_name, multiplicity_reduced, seed,
                        split_mode),
      __FILE__, __LINE__);
}

namespace {

using PrepFn = std::function<api::StatusOr<PreparedDataset>(uint64_t)>;

api::StatusOr<AccuracyResult> RunPair(const std::string& method_name,
                                      const std::string& dataset_label,
                                      const PrepFn& prep,
                                      const AccuracyOptions& options) {
  // Validate the method name before paying for dataset generation.
  api::StatusOr<api::MethodInfo> info =
      api::MethodRegistry::Global().Info(method_name);
  if (!info.ok()) return info.status();

  AccuracyResult result;
  result.method = method_name;
  result.dataset = dataset_label;
  util::RunningStats acc_stats;
  util::RunningStats time_stats;

  for (int s = 0; s < options.num_seeds; ++s) {
    uint64_t seed = options.base_seed + static_cast<uint64_t>(s) * 7919;
    api::StatusOr<PreparedDataset> data = prep(seed);
    if (!data.ok()) return data.status();

    api::SessionOptions session_options;
    session_options.method = method_name;
    session_options.seed = seed;
    session_options.time_budget_seconds = options.time_budget_seconds;
    session_options.marioh = options.marioh_base;
    api::Session session;
    MARIOH_RETURN_IF_ERROR(session.Configure(std::move(session_options)));

    MARIOH_RETURN_IF_ERROR(session.Train(data->train()));
    MARIOH_RETURN_IF_ERROR(session.Reconstruct(data->target_input()));
    time_stats.Add(session.stage_timer().Get("train") +
                   session.stage_timer().Get("reconstruct"));

    api::StatusOr<api::EvaluationResult> scores =
        session.Evaluate(*data->target);
    if (!scores.ok()) return scores.status();
    double score = options.multiplicity_reduced ? scores->jaccard
                                                : scores->multi_jaccard;
    acc_stats.Add(100.0 * score);

    if (session.deadline_exceeded()) {
      result.out_of_time = true;
      break;  // OOT: the overrunning seed still scored, later seeds don't
    }
  }
  result.mean = acc_stats.Mean();
  result.std_dev = acc_stats.Std();
  result.mean_seconds = time_stats.Mean();
  result.seeds = static_cast<int>(acc_stats.count());
  return result;
}

}  // namespace

api::StatusOr<AccuracyResult> TryRunAccuracy(
    const std::string& method_name, const std::string& profile_name,
    const AccuracyOptions& options) {
  return RunPair(
      method_name, profile_name,
      [&](uint64_t seed) {
        return TryPrepareDataset(profile_name,
                                 options.multiplicity_reduced, seed);
      },
      options);
}

AccuracyResult RunAccuracy(const std::string& method_name,
                           const std::string& profile_name,
                           const AccuracyOptions& options) {
  return api::ValueOrDie(
      TryRunAccuracy(method_name, profile_name, options), __FILE__,
      __LINE__);
}

AccuracyResult RunTransfer(const std::string& method_name,
                           const std::string& source_profile,
                           const std::string& target_profile,
                           const AccuracyOptions& options) {
  api::StatusOr<AccuracyResult> result = RunPair(
      method_name, source_profile + "->" + target_profile,
      [&](uint64_t seed) -> api::StatusOr<PreparedDataset> {
        api::StatusOr<PreparedDataset> src = TryPrepareDataset(
            source_profile, options.multiplicity_reduced, seed);
        if (!src.ok()) return src.status();
        api::StatusOr<PreparedDataset> dst = TryPrepareDataset(
            target_profile, options.multiplicity_reduced,
            seed ^ 0xbeefULL);
        if (!dst.ok()) return dst.status();
        PreparedDataset out;
        out.name = source_profile + "->" + target_profile;
        out.source = std::move(src->source);
        out.g_source = std::move(src->g_source);
        out.target = std::move(dst->target);
        out.g_target = std::move(dst->g_target);
        return out;
      },
      options);
  return api::ValueOrDie(std::move(result), __FILE__, __LINE__);
}

}  // namespace marioh::eval
