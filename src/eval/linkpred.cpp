#include "eval/linkpred.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "ml/gcn.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::eval {
namespace {

/// Handcrafted projected-graph pair features.
void GraphPairFeatures(const ProjectedGraph& g, NodeId u, NodeId v,
                       la::Vector* out) {
  double jaccard = 0.0, adamic = 0.0, resource = 0.0;
  std::vector<NodeId> common = g.CommonNeighbors(u, v);
  size_t du = g.Degree(u);
  size_t dv = g.Degree(v);
  size_t uni = du + dv - common.size();
  if (uni > 0) {
    jaccard = static_cast<double>(common.size()) / static_cast<double>(uni);
  }
  for (NodeId z : common) {
    double dz = static_cast<double>(g.Degree(z));
    if (dz > 1) adamic += 1.0 / std::log(dz);
    if (dz > 0) resource += 1.0 / dz;
  }
  double pref = static_cast<double>(du) * static_cast<double>(dv);
  double mean_deg = 0.5 * static_cast<double>(du + dv);
  double min_deg = static_cast<double>(std::min(du, dv));
  double max_deg = static_cast<double>(std::max(du, dv));
  double weight = static_cast<double>(g.Weight(u, v));
  for (double f : {jaccard, adamic, pref, resource, mean_deg, min_deg,
                   max_deg, weight}) {
    out->push_back(f);
  }
}

/// Hypergraph-specific pair features: hyperedge Jaccard and the
/// (min, max) of the two nodes' average hyperedge sizes.
void HypergraphPairFeatures(
    const std::vector<std::vector<const NodeSet*>>& incidence, NodeId u,
    NodeId v, la::Vector* out) {
  const auto& eu = incidence[u];
  const auto& ev = incidence[v];
  std::unordered_set<const NodeSet*> set_u(eu.begin(), eu.end());
  size_t inter = 0;
  for (const NodeSet* e : ev) {
    if (set_u.count(e) > 0) ++inter;
  }
  size_t uni = eu.size() + ev.size() - inter;
  double hyper_jaccard =
      uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
  auto avg_size = [](const std::vector<const NodeSet*>& list) {
    if (list.empty()) return 0.0;
    double s = 0.0;
    for (const NodeSet* e : list) s += static_cast<double>(e->size());
    return s / static_cast<double>(list.size());
  };
  double su = avg_size(eu);
  double sv = avg_size(ev);
  out->push_back(hyper_jaccard);
  out->push_back(std::min(su, sv));
  out->push_back(std::max(su, sv));
}

/// Pooled GCN link embedding: concat(elementwise min, elementwise max).
void GcnPairFeatures(const la::Matrix& z, NodeId u, NodeId v,
                     la::Vector* out) {
  const double* zu = z.Row(u);
  const double* zv = z.Row(v);
  for (size_t j = 0; j < z.cols(); ++j) {
    out->push_back(std::min(zu[j], zv[j]));
  }
  for (size_t j = 0; j < z.cols(); ++j) {
    out->push_back(std::max(zu[j], zv[j]));
  }
}

}  // namespace

double Auc(const std::vector<double>& positive_scores,
           const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Midrank-based AUC.
  struct Item {
    double score;
    bool positive;
  };
  std::vector<Item> items;
  items.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) items.push_back({s, true});
  for (double s : negative_scores) items.push_back({s, false});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.score < b.score; });
  double rank_sum = 0.0;
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].score == items[i].score) ++j;
    double midrank = 0.5 * static_cast<double>(i + j - 1) + 1.0;
    for (size_t k = i; k < j; ++k) {
      if (items[k].positive) rank_sum += midrank;
    }
    i = j;
  }
  double np = static_cast<double>(positive_scores.size());
  double nn = static_cast<double>(negative_scores.size());
  return (rank_sum - np * (np + 1) / 2.0) / (np * nn);
}

double LinkPredictionAuc(const ProjectedGraph& g,
                         const Hypergraph* hypergraph,
                         const LinkPredOptions& options) {
  util::Rng rng(options.seed);
  std::vector<ProjectedGraph::Edge> edges = g.Edges();
  MARIOH_CHECK_GT(edges.size(), 10u);
  rng.Shuffle(&edges);
  size_t test_n = std::max<size_t>(
      1, static_cast<size_t>(options.test_fraction *
                             static_cast<double>(edges.size())));

  // Split edges; the training graph drops the test edges.
  ProjectedGraph train = g;
  std::vector<NodePair> test_pos;
  std::unordered_set<NodePair, util::PairHash> test_pos_set;
  for (size_t i = 0; i < test_n; ++i) {
    NodePair p = MakePair(edges[i].u, edges[i].v);
    test_pos.push_back(p);
    test_pos_set.insert(p);
    train.RemoveEdge(p.first, p.second);
  }
  std::vector<NodePair> train_pos;
  for (size_t i = test_n; i < edges.size(); ++i) {
    train_pos.push_back(MakePair(edges[i].u, edges[i].v));
  }

  // Balanced non-edges for train and test.
  auto sample_non_edges = [&](size_t count) {
    std::vector<NodePair> out;
    std::unordered_set<NodePair, util::PairHash> used;
    size_t guard = 0;
    while (out.size() < count && guard < count * 200 + 1000) {
      ++guard;
      NodeId u = static_cast<NodeId>(rng.UniformIndex(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.UniformIndex(g.num_nodes()));
      if (u == v) continue;
      NodePair p = MakePair(u, v);
      if (g.HasEdge(u, v) || test_pos_set.count(p) > 0 ||
          used.count(p) > 0) {
        continue;
      }
      used.insert(p);
      out.push_back(p);
    }
    return out;
  };
  std::vector<NodePair> train_neg = sample_non_edges(train_pos.size());
  std::vector<NodePair> test_neg = sample_non_edges(test_pos.size());

  // Optional hypergraph view with leaking hyperedges removed: any
  // hyperedge containing a test edge is excluded.
  Hypergraph filtered(hypergraph != nullptr ? hypergraph->num_nodes() : 0);
  std::vector<std::vector<const NodeSet*>> incidence;
  if (hypergraph != nullptr) {
    for (const auto& [e, m] : hypergraph->edges()) {
      bool leaks = false;
      for (size_t i = 0; i < e.size() && !leaks; ++i) {
        for (size_t j = i + 1; j < e.size() && !leaks; ++j) {
          if (test_pos_set.count(MakePair(e[i], e[j])) > 0) leaks = true;
        }
      }
      if (!leaks) filtered.AddEdge(e, m);
    }
    incidence = filtered.IncidenceLists();
    incidence.resize(g.num_nodes());
  }

  // Optional GCN embeddings trained on the training graph.
  std::unique_ptr<ml::Gcn> gcn;
  if (options.use_gcn) {
    ml::GcnOptions gcn_options;
    gcn_options.seed = options.seed ^ 0x1234567ULL;
    gcn = std::make_unique<ml::Gcn>(train, gcn_options);
    std::vector<std::pair<NodeId, NodeId>> pos, neg;
    for (const NodePair& p : train_pos) pos.push_back(p);
    for (const NodePair& p : train_neg) neg.push_back(p);
    gcn->Fit(pos, neg);
  }

  auto features = [&](const NodePair& p) {
    la::Vector f;
    GraphPairFeatures(train, p.first, p.second, &f);
    if (hypergraph != nullptr) {
      HypergraphPairFeatures(incidence, p.first, p.second, &f);
    }
    if (gcn != nullptr) {
      GcnPairFeatures(gcn->Embeddings(), p.first, p.second, &f);
    }
    return f;
  };

  // Assemble training matrix.
  la::Vector probe = features(train_pos.front());
  const size_t dim = probe.size();
  la::Matrix x(train_pos.size() + train_neg.size(), dim);
  std::vector<double> y(x.rows(), 0.0);
  size_t row = 0;
  for (const NodePair& p : train_pos) {
    la::Vector f = features(p);
    std::copy(f.begin(), f.end(), x.Row(row));
    y[row++] = 1.0;
  }
  for (const NodePair& p : train_neg) {
    la::Vector f = features(p);
    std::copy(f.begin(), f.end(), x.Row(row));
    y[row++] = 0.0;
  }

  ml::StandardScaler scaler;
  scaler.Fit(x);
  scaler.Transform(&x);

  ml::MlpOptions mlp_options;
  mlp_options.hidden = {32};
  mlp_options.epochs = 40;
  mlp_options.seed = options.seed ^ 0xdeadbeefULL;
  ml::Mlp mlp(dim, 1, mlp_options);
  mlp.Fit(x, y);

  auto score_set = [&](const std::vector<NodePair>& pairs) {
    std::vector<double> scores;
    scores.reserve(pairs.size());
    for (const NodePair& p : pairs) {
      la::Vector f = features(p);
      scaler.Transform(&f);
      scores.push_back(mlp.Predict(f));
    }
    return scores;
  };
  return Auc(score_set(test_pos), score_set(test_neg));
}

}  // namespace marioh::eval
