/// \file harness.hpp
/// \brief Shared experiment driver used by the benchmark binaries:
/// dataset preparation (generate, optionally multiplicity-reduce, split,
/// project) and mean ± std accuracy evaluation with per-method time
/// budgets (the paper's OOT semantics at laptop scale).
///
/// Methods are resolved through the `api/` layer: the self-registering
/// registry (`api/registry.hpp`) supplies the rosters and factories, and
/// each seed runs inside an `api::Session` (train → reconstruct →
/// evaluate under a wall-clock budget).

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "core/marioh.hpp"
#include "gen/profiles.hpp"

namespace marioh::eval {

/// The Table II method roster, in row order. Thin wrapper over
/// `api::Table2Roster()`.
std::vector<std::string> Table2Methods();

/// The Table III roster (methods applicable to multiplicity-preserved
/// reconstruction), in row order. Thin wrapper over
/// `api::Table3Roster()`.
std::vector<std::string> Table3Methods();

/// A prepared experiment instance: the split halves and their
/// projections, held through shared immutable handles so any number of
/// concurrent sessions (or `api::Service` jobs) can run on one in-memory
/// copy — insert them into a `DatasetCache` or pass them to the
/// handle-based `Session` entry points directly.
struct PreparedDataset {
  std::string name;
  api::HypergraphHandle source;   ///< H_S (training supervision)
  api::HypergraphHandle target;   ///< H_T (hidden ground truth)
  api::GraphHandle g_source;      ///< G_S
  api::GraphHandle g_target;      ///< G_T (reconstruction input)
  std::vector<uint32_t> labels;
  size_t num_classes = 0;

  /// The source pair as a trainable dataset handle.
  api::DatasetHandle train() const { return {name, source, g_source}; }
  /// The reconstruction input as a dataset handle.
  api::DatasetHandle target_input() const {
    return {name, nullptr, g_target};
  }
  /// The hidden ground truth as a dataset handle (for evaluation).
  api::DatasetHandle ground_truth() const { return {name, target, nullptr}; }
};

/// How the source/target halves are produced.
enum class SplitMode {
  /// Uniform random split of the hyperedge multiset (the paper's fallback
  /// when no timestamps exist).
  kRandom,
  /// Timestamp split: synthetic per-occurrence timestamps are attached
  /// and the earliest half becomes the source (the paper's protocol for
  /// timestamped datasets).
  kTemporal,
};

/// Generates a dataset by profile name, optionally reduces hyperedge
/// multiplicities to 1 (the Table II setting), splits it into halves, and
/// projects both. kNotFound (listing known profiles) on unknown names.
api::StatusOr<PreparedDataset> TryPrepareDataset(
    const std::string& profile_name, bool multiplicity_reduced,
    uint64_t seed, SplitMode split_mode = SplitMode::kRandom);

/// Like TryPrepareDataset but dies on unknown profile names; for call
/// sites that pass roster constants.
PreparedDataset PrepareDataset(const std::string& profile_name,
                               bool multiplicity_reduced, uint64_t seed,
                               SplitMode split_mode = SplitMode::kRandom);

/// One accuracy evaluation outcome.
struct AccuracyResult {
  std::string method;
  std::string dataset;
  double mean = 0.0;     ///< Jaccard (x100) or multi-Jaccard (x100)
  double std_dev = 0.0;
  double mean_seconds = 0.0;
  bool out_of_time = false;  ///< exceeded the time budget
  int seeds = 0;
};

/// Options for RunAccuracy.
struct AccuracyOptions {
  int num_seeds = 3;
  /// Per-seed wall-clock budget; a run exceeding it marks the method OOT
  /// and skips remaining seeds (laptop-scale analogue of the 24 h limit).
  double time_budget_seconds = 120.0;
  bool multiplicity_reduced = true;  ///< Table II vs Table III setting
  uint64_t base_seed = 42;
  core::MariohOptions marioh_base = {};
};

/// Runs `method_name` on `profile_name` over several seeds; reports the
/// mean ± std of Jaccard (multiplicity-reduced) or multi-Jaccard
/// (multiplicity-preserved), scaled by 100 as in the paper's tables.
/// kNotFound for unknown methods or profiles.
api::StatusOr<AccuracyResult> TryRunAccuracy(
    const std::string& method_name, const std::string& profile_name,
    const AccuracyOptions& options);

/// Like TryRunAccuracy but dies on unknown names; for roster-driven
/// benches.
AccuracyResult RunAccuracy(const std::string& method_name,
                           const std::string& profile_name,
                           const AccuracyOptions& options);

/// Cross-dataset variant for the transfer experiment (Table V): train on
/// `source_profile`'s source half, reconstruct `target_profile`'s target
/// half.
AccuracyResult RunTransfer(const std::string& method_name,
                           const std::string& source_profile,
                           const std::string& target_profile,
                           const AccuracyOptions& options);

}  // namespace marioh::eval
