/// \file metrics.hpp
/// \brief Reconstruction accuracy metrics: Jaccard similarity over unique
/// hyperedges and multi-Jaccard similarity over hyperedge multiplicities
/// (Sect. II-B).

#pragma once

#include "hypergraph/hypergraph.hpp"

namespace marioh::eval {

/// Jaccard similarity |E ∩ Ê| / |E ∪ Ê| over unique hyperedge sets.
/// Returns 1 when both hypergraphs are empty.
double Jaccard(const Hypergraph& truth, const Hypergraph& reconstructed);

/// Multi-Jaccard similarity: sum of min multiplicities over sum of max
/// multiplicities across the union of unique hyperedges [31]. Returns 1
/// when both hypergraphs are empty.
double MultiJaccard(const Hypergraph& truth, const Hypergraph& reconstructed);

/// Precision of the reconstruction over unique hyperedges.
double Precision(const Hypergraph& truth, const Hypergraph& reconstructed);

/// Recall of the reconstruction over unique hyperedges.
double Recall(const Hypergraph& truth, const Hypergraph& reconstructed);

}  // namespace marioh::eval
