/// \file clustering.hpp
/// \brief Spectral clustering on graphs and hypergraphs plus NMI — the
/// node-clustering downstream task of Table VII.

#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "la/matrix.hpp"

namespace marioh::eval {

/// Normalized mutual information between two labelings of the same nodes
/// (arithmetic-mean normalization). Returns 1 for identical partitions.
double Nmi(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);

/// Spectral embedding of a weighted graph: the `k` smallest eigenvectors
/// of the symmetric-normalized Laplacian I - D^{-1/2} W D^{-1/2}.
la::Matrix GraphSpectralEmbedding(const ProjectedGraph& g, size_t k);

/// Spectral embedding of a hypergraph via Zhou's normalized hypergraph
/// Laplacian I - D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2}, where H is the
/// incidence matrix and W the hyperedge multiplicities [19].
la::Matrix HypergraphSpectralEmbedding(const Hypergraph& h, size_t k);

/// Runs k-means on (row-normalized) embedding rows and scores the result
/// against ground-truth labels with NMI.
double SpectralClusteringNmi(const la::Matrix& embedding,
                             const std::vector<uint32_t>& labels,
                             size_t num_clusters, uint64_t seed);

}  // namespace marioh::eval
