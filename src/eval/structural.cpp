#include "eval/structural.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "hypergraph/projected_graph.hpp"
#include "la/matrix.hpp"
#include "la/svd.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace marioh::eval {
namespace {

constexpr size_t kMaxTriangleSamples = 4000;
constexpr size_t kMaxTripleSamples = 4000;
constexpr size_t kMaxSvdDim = 256;

/// Nodes covered by at least one hyperedge.
size_t CoveredNodes(const std::vector<uint32_t>& degrees) {
  size_t covered = 0;
  for (uint32_t d : degrees) {
    if (d > 0) ++covered;
  }
  return covered;
}

}  // namespace

ScalarProperties ComputeScalars(const Hypergraph& h, uint64_t seed) {
  ScalarProperties p;
  std::vector<uint32_t> degrees = h.NodeDegrees();
  size_t covered = CoveredNodes(degrees);
  p.num_nodes = static_cast<double>(covered);
  p.num_hyperedges = static_cast<double>(h.num_unique_edges());

  uint64_t degree_sum = 0;
  for (uint32_t d : degrees) degree_sum += d;
  p.avg_node_degree =
      covered > 0 ? static_cast<double>(degree_sum) /
                        static_cast<double>(covered)
                  : 0.0;
  double size_sum = 0.0;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    size_sum += static_cast<double>(e.size());
  }
  p.avg_edge_size = h.num_unique_edges() > 0
                        ? size_sum / static_cast<double>(h.num_unique_edges())
                        : 0.0;
  p.density = covered > 0 ? p.num_hyperedges / static_cast<double>(covered)
                          : 0.0;
  // Overlapness [38]: total size of hyperedges over covered nodes; equals
  // the average node degree when degrees count multiplicity.
  double total_size = 0.0;
  for (const auto& [e, m] : h.edges()) {
    total_size += static_cast<double>(e.size()) * m;
  }
  p.overlapness =
      covered > 0 ? total_size / static_cast<double>(covered) : 0.0;

  // Simplicial closure ratio [3]: fraction of triangles of the projected
  // graph whose three nodes co-appear in one hyperedge. Triangles are
  // sampled when abundant.
  ProjectedGraph g = h.Project();
  std::unordered_set<NodeSet, util::VectorHash> edge_set;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    edge_set.insert(e);
  }
  auto covered_by_hyperedge = [&](NodeId a, NodeId b, NodeId c) {
    for (const auto& [e, m] : h.edges()) {
      (void)m;
      if (std::binary_search(e.begin(), e.end(), a) &&
          std::binary_search(e.begin(), e.end(), b) &&
          std::binary_search(e.begin(), e.end(), c)) {
        return true;
      }
    }
    return false;
  };
  util::Rng rng(seed);
  std::vector<ProjectedGraph::Edge> edges = g.Edges();
  size_t triangles = 0;
  size_t closed = 0;
  if (!edges.empty()) {
    for (size_t s = 0; s < kMaxTriangleSamples; ++s) {
      const auto& e = edges[rng.UniformIndex(edges.size())];
      std::vector<NodeId> common = g.CommonNeighbors(e.u, e.v);
      if (common.empty()) continue;
      NodeId z = common[rng.UniformIndex(common.size())];
      ++triangles;
      if (covered_by_hyperedge(e.u, e.v, z)) ++closed;
    }
  }
  p.simplicial_closure =
      triangles > 0
          ? static_cast<double>(closed) / static_cast<double>(triangles)
          : 0.0;
  return p;
}

DistributionalProperties ComputeDistributions(const Hypergraph& h,
                                              uint64_t seed) {
  DistributionalProperties d;
  util::Rng rng(seed);

  for (uint32_t deg : h.NodeDegrees()) {
    if (deg > 0) d.node_degrees.push_back(static_cast<double>(deg));
  }

  ProjectedGraph g = h.Project();
  for (const ProjectedGraph::Edge& e : g.Edges()) {
    d.pair_degrees.push_back(static_cast<double>(e.weight));
  }

  // Node-triple degree: hyperedges (with multiplicity) per node triple,
  // sampled from triples that occur inside hyperedges.
  std::vector<NodeSet> uniques = h.UniqueEdges();
  std::vector<const NodeSet*> big;
  for (const NodeSet& e : uniques) {
    if (e.size() >= 3) big.push_back(&e);
  }
  if (!big.empty()) {
    std::unordered_set<NodeSet, util::VectorHash> seen;
    for (size_t s = 0; s < kMaxTripleSamples; ++s) {
      const NodeSet& e = *big[rng.UniformIndex(big.size())];
      NodeSet triple = rng.SampleWithoutReplacement(e, 3);
      Canonicalize(&triple);
      if (!seen.insert(triple).second) continue;
      uint64_t count = 0;
      for (const auto& [other, m] : h.edges()) {
        if (other.size() < 3) continue;
        if (std::includes(other.begin(), other.end(), triple.begin(),
                          triple.end())) {
          count += m;
        }
      }
      d.triple_degrees.push_back(static_cast<double>(count));
    }
  }

  // Hyperedge homogeneity [38]: per hyperedge, the mean pairwise
  // co-membership Jaccard of its nodes' incident hyperedge sets.
  std::vector<std::vector<const NodeSet*>> incidence = h.IncidenceLists();
  auto jaccard_nodes = [&](NodeId u, NodeId v) {
    std::unordered_set<const NodeSet*> set_u(incidence[u].begin(),
                                             incidence[u].end());
    size_t inter = 0;
    for (const NodeSet* e : incidence[v]) {
      if (set_u.count(e) > 0) ++inter;
    }
    size_t uni = incidence[u].size() + incidence[v].size() - inter;
    return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                   : 0.0;
  };
  for (const NodeSet& e : uniques) {
    double total = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        total += jaccard_nodes(e[i], e[j]);
        ++pairs;
      }
    }
    if (pairs > 0) d.homogeneity.push_back(total / static_cast<double>(pairs));
  }

  // Singular values of the incidence matrix (nodes x unique hyperedges),
  // capped: large hypergraphs use a random subsample of hyperedges and the
  // nodes they touch.
  {
    std::vector<const NodeSet*> sample;
    for (const NodeSet& e : uniques) sample.push_back(&e);
    if (sample.size() > kMaxSvdDim) {
      std::vector<const NodeSet*> picked =
          rng.SampleWithoutReplacement(sample, kMaxSvdDim);
      sample = std::move(picked);
    }
    std::unordered_map<NodeId, size_t> node_index;
    for (const NodeSet* e : sample) {
      for (NodeId u : *e) {
        node_index.try_emplace(u, node_index.size());
      }
    }
    if (!sample.empty() && !node_index.empty()) {
      la::Matrix inc(node_index.size(), sample.size());
      for (size_t j = 0; j < sample.size(); ++j) {
        for (NodeId u : *sample[j]) {
          inc(node_index[u], j) = 1.0;
        }
      }
      la::Vector sv = la::TopSingularValues(inc, 32);
      double top = sv.empty() || sv[0] <= 0 ? 1.0 : sv[0];
      for (double v : sv) d.singular_values.push_back(v / top);
    }
  }
  return d;
}

double StructuralReport::AverageError() const {
  double total = 0.0;
  size_t count = 0;
  for (const auto& [name, v] : scalar_errors) {
    (void)name;
    total += v;
    ++count;
  }
  for (const auto& [name, v] : distributional_errors) {
    (void)name;
    total += v;
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

StructuralReport CompareStructure(const Hypergraph& truth,
                                  const Hypergraph& reconstructed,
                                  uint64_t seed) {
  StructuralReport report;
  ScalarProperties st = ComputeScalars(truth, seed);
  ScalarProperties sr = ComputeScalars(reconstructed, seed + 1);
  auto nd = util::NormalizedDifference;
  report.scalar_errors = {
      {"Number of Nodes", nd(st.num_nodes, sr.num_nodes)},
      {"Number of Hyperedges", nd(st.num_hyperedges, sr.num_hyperedges)},
      {"Average Node Degree", nd(st.avg_node_degree, sr.avg_node_degree)},
      {"Average Hyperedge Size", nd(st.avg_edge_size, sr.avg_edge_size)},
      {"Simplicial Closure Ratio",
       nd(st.simplicial_closure, sr.simplicial_closure)},
      {"Hypergraph Density", nd(st.density, sr.density)},
      {"Hypergraph Overlapness", nd(st.overlapness, sr.overlapness)},
  };
  DistributionalProperties dt = ComputeDistributions(truth, seed + 2);
  DistributionalProperties dr = ComputeDistributions(reconstructed, seed + 3);
  report.distributional_errors = {
      {"Node Degree", util::KsStatistic(dt.node_degrees, dr.node_degrees)},
      {"Node-Pair Degree",
       util::KsStatistic(dt.pair_degrees, dr.pair_degrees)},
      {"Node-Triple Degree",
       util::KsStatistic(dt.triple_degrees, dr.triple_degrees)},
      {"Hyperedge Homogeneity",
       util::KsStatistic(dt.homogeneity, dr.homogeneity)},
      {"Singular Values",
       util::KsStatistic(dt.singular_values, dr.singular_values)},
  };
  return report;
}

}  // namespace marioh::eval
