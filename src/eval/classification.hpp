/// \file classification.hpp
/// \brief Node classification downstream task (Table VIII): spectral
/// embeddings fed to an MLP classifier, scored with micro / macro F1.

#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace marioh::eval {

/// Micro- and macro-averaged F1 scores.
struct F1Scores {
  double micro = 0.0;
  double macro = 0.0;
};

/// Computes micro/macro F1 of `predicted` against `truth` over
/// `num_classes` classes.
F1Scores ComputeF1(const std::vector<uint32_t>& truth,
                   const std::vector<uint32_t>& predicted,
                   size_t num_classes);

/// Trains an MLP on a random `train_fraction` of the embedding rows and
/// evaluates F1 on the held-out rows. Deterministic given `seed`.
F1Scores NodeClassification(const la::Matrix& embedding,
                            const std::vector<uint32_t>& labels,
                            size_t num_classes, double train_fraction,
                            uint64_t seed);

}  // namespace marioh::eval
