#include "eval/clustering.hpp"

#include <cmath>
#include <unordered_map>

#include "la/eigen.hpp"
#include "la/kmeans.hpp"
#include "util/check.hpp"

namespace marioh::eval {

double Nmi(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  MARIOH_CHECK_EQ(a.size(), b.size());
  MARIOH_CHECK(!a.empty());
  const double n = static_cast<double>(a.size());

  std::unordered_map<uint32_t, double> pa, pb;
  std::unordered_map<uint64_t, double> pab;
  for (size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    pab[(static_cast<uint64_t>(a[i]) << 32) | b[i]] += 1.0;
  }
  double mi = 0.0;
  for (const auto& [key, cnt] : pab) {
    uint32_t ka = static_cast<uint32_t>(key >> 32);
    uint32_t kb = static_cast<uint32_t>(key & 0xffffffffu);
    double pxy = cnt / n;
    double px = pa[ka] / n;
    double py = pb[kb] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  auto entropy = [&](const std::unordered_map<uint32_t, double>& p) {
    double h = 0.0;
    for (const auto& [k, cnt] : p) {
      (void)k;
      double q = cnt / n;
      h -= q * std::log(q);
    }
    return h;
  };
  double ha = entropy(pa);
  double hb = entropy(pb);
  double denom = 0.5 * (ha + hb);
  if (denom <= 0.0) return 1.0;  // both partitions trivial
  return mi / denom;
}

la::Matrix GraphSpectralEmbedding(const ProjectedGraph& g, size_t k) {
  const size_t n = g.num_nodes();
  la::Matrix lap = la::Matrix::Identity(n);
  std::vector<double> dsqrt(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    double d = static_cast<double>(g.WeightedDegree(u));
    dsqrt[u] = d > 0 ? 1.0 / std::sqrt(d) : 0.0;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& [v, w] : g.Neighbors(u)) {
      lap(u, v) -= w * dsqrt[u] * dsqrt[v];
    }
  }
  return la::SmallestEigenvectors(lap, k);
}

la::Matrix HypergraphSpectralEmbedding(const Hypergraph& h, size_t k) {
  const size_t n = h.num_nodes();
  // Theta = D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2}; Laplacian = I - Theta.
  std::vector<double> dv(n, 0.0);
  for (const auto& [e, m] : h.edges()) {
    for (NodeId u : e) dv[u] += m;
  }
  la::Matrix theta(n, n);
  for (const auto& [e, m] : h.edges()) {
    double coeff = static_cast<double>(m) / static_cast<double>(e.size());
    for (NodeId u : e) {
      for (NodeId v : e) {
        theta(u, v) += coeff;
      }
    }
  }
  la::Matrix lap = la::Matrix::Identity(n);
  for (size_t u = 0; u < n; ++u) {
    double su = dv[u] > 0 ? 1.0 / std::sqrt(dv[u]) : 0.0;
    for (size_t v = 0; v < n; ++v) {
      double sv = dv[v] > 0 ? 1.0 / std::sqrt(dv[v]) : 0.0;
      lap(u, v) -= theta(u, v) * su * sv;
    }
  }
  return la::SmallestEigenvectors(lap, k);
}

double SpectralClusteringNmi(const la::Matrix& embedding,
                             const std::vector<uint32_t>& labels,
                             size_t num_clusters, uint64_t seed) {
  MARIOH_CHECK_EQ(embedding.rows(), labels.size());
  // Row-normalize the embedding (standard for normalized spectral
  // clustering).
  la::Matrix points = embedding;
  for (size_t i = 0; i < points.rows(); ++i) {
    double norm = 0.0;
    for (size_t j = 0; j < points.cols(); ++j) {
      norm += points(i, j) * points(i, j);
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (size_t j = 0; j < points.cols(); ++j) points(i, j) /= norm;
    }
  }
  util::Rng rng(seed);
  la::KMeansResult km = la::KMeans(points, num_clusters, &rng);
  return Nmi(labels, km.assignments);
}

}  // namespace marioh::eval
