/// \file structural.hpp
/// \brief The 12 structural-property preservation measures of Table IV:
/// seven scalar properties compared by normalized difference and five
/// distributional properties compared by the Kolmogorov-Smirnov
/// D-statistic. Lower is better for every entry.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace marioh::eval {

/// Scalar structural properties of a hypergraph.
struct ScalarProperties {
  double num_nodes = 0;        ///< nodes covered by at least one hyperedge
  double num_hyperedges = 0;   ///< unique hyperedges
  double avg_node_degree = 0;  ///< mean hyperedges per covered node
  double avg_edge_size = 0;    ///< mean unique-hyperedge size
  double simplicial_closure = 0;  ///< fraction of projected triangles
                                  ///< covered by a single hyperedge [3]
  double density = 0;          ///< unique hyperedges / covered nodes [37]
  double overlapness = 0;      ///< sum of sizes / covered nodes [38]
};

/// Computes the scalar properties. `seed` drives triangle sampling for the
/// simplicial closure ratio (bounded work on dense graphs).
ScalarProperties ComputeScalars(const Hypergraph& h, uint64_t seed);

/// Distributional structural properties as raw samples.
struct DistributionalProperties {
  std::vector<double> node_degrees;
  std::vector<double> pair_degrees;    ///< projected edge weights
  std::vector<double> triple_degrees;  ///< hyperedges per sampled triple
  std::vector<double> homogeneity;     ///< per-hyperedge homogeneity [38]
  std::vector<double> singular_values; ///< top singular values of the
                                       ///< incidence matrix (normalized)
};

/// Computes the distributional properties; heavy ones are sampled.
DistributionalProperties ComputeDistributions(const Hypergraph& h,
                                              uint64_t seed);

/// Full Table IV-style comparison of one reconstruction against the truth.
struct StructuralReport {
  /// (property name, normalized difference) for the seven scalars.
  std::vector<std::pair<std::string, double>> scalar_errors;
  /// (property name, KS D-statistic) for the five distributions.
  std::vector<std::pair<std::string, double>> distributional_errors;

  /// Mean over all 12 entries (the paper's "Average (Overall)" row).
  double AverageError() const;
};

/// Compares `reconstructed` to `truth` across all 12 properties.
StructuralReport CompareStructure(const Hypergraph& truth,
                                  const Hypergraph& reconstructed,
                                  uint64_t seed);

}  // namespace marioh::eval
