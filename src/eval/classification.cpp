#include "eval/classification.hpp"

#include <algorithm>
#include <numeric>

#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace marioh::eval {

F1Scores ComputeF1(const std::vector<uint32_t>& truth,
                   const std::vector<uint32_t>& predicted,
                   size_t num_classes) {
  MARIOH_CHECK_EQ(truth.size(), predicted.size());
  MARIOH_CHECK_GT(num_classes, 0u);
  std::vector<double> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) {
      tp[truth[i]] += 1;
    } else {
      fp[predicted[i]] += 1;
      fn[truth[i]] += 1;
    }
  }
  double tp_sum = 0, fp_sum = 0, fn_sum = 0, macro = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    tp_sum += tp[c];
    fp_sum += fp[c];
    fn_sum += fn[c];
    double denom = 2 * tp[c] + fp[c] + fn[c];
    macro += denom > 0 ? 2 * tp[c] / denom : 0.0;
  }
  F1Scores f1;
  double micro_denom = 2 * tp_sum + fp_sum + fn_sum;
  f1.micro = micro_denom > 0 ? 2 * tp_sum / micro_denom : 0.0;
  f1.macro = macro / static_cast<double>(num_classes);
  return f1;
}

F1Scores NodeClassification(const la::Matrix& embedding,
                            const std::vector<uint32_t>& labels,
                            size_t num_classes, double train_fraction,
                            uint64_t seed) {
  const size_t n = embedding.rows();
  MARIOH_CHECK_EQ(n, labels.size());
  MARIOH_CHECK_GT(n, 4u);
  util::Rng rng(seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  size_t train_n = std::max<size_t>(
      2, static_cast<size_t>(train_fraction * static_cast<double>(n)));
  train_n = std::min(train_n, n - 2);

  la::Matrix x_train(train_n, embedding.cols());
  std::vector<double> y_train(train_n);
  la::Matrix x_test(n - train_n, embedding.cols());
  std::vector<uint32_t> y_test(n - train_n);
  for (size_t i = 0; i < n; ++i) {
    size_t row = order[i];
    if (i < train_n) {
      std::copy(embedding.Row(row), embedding.Row(row) + embedding.cols(),
                x_train.Row(i));
      y_train[i] = static_cast<double>(labels[row]);
    } else {
      std::copy(embedding.Row(row), embedding.Row(row) + embedding.cols(),
                x_test.Row(i - train_n));
      y_test[i - train_n] = labels[row];
    }
  }

  ml::StandardScaler scaler;
  scaler.Fit(x_train);
  scaler.Transform(&x_train);
  scaler.Transform(&x_test);

  ml::MlpOptions options;
  options.hidden = {32};
  options.head = ml::Head::kSoftmax;
  options.epochs = 150;
  options.learning_rate = 5e-3;
  options.seed = seed ^ 0x77aa55ccULL;
  ml::Mlp mlp(embedding.cols(), num_classes, options);
  mlp.Fit(x_train, y_train);
  std::vector<uint32_t> predicted = mlp.PredictClasses(x_test);
  return ComputeF1(y_test, predicted, num_classes);
}

}  // namespace marioh::eval
