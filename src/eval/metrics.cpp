#include "eval/metrics.hpp"

#include <algorithm>

namespace marioh::eval {
namespace {

size_t IntersectionSize(const Hypergraph& a, const Hypergraph& b) {
  size_t inter = 0;
  for (const auto& [e, m] : a.edges()) {
    (void)m;
    if (b.Contains(e)) ++inter;
  }
  return inter;
}

}  // namespace

double Jaccard(const Hypergraph& truth, const Hypergraph& reconstructed) {
  size_t inter = IntersectionSize(truth, reconstructed);
  size_t uni = truth.num_unique_edges() + reconstructed.num_unique_edges() -
               inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double MultiJaccard(const Hypergraph& truth,
                    const Hypergraph& reconstructed) {
  uint64_t min_sum = 0;
  uint64_t max_sum = 0;
  for (const auto& [e, m] : truth.edges()) {
    uint32_t other = reconstructed.Multiplicity(e);
    min_sum += std::min(m, other);
    max_sum += std::max(m, other);
  }
  for (const auto& [e, m] : reconstructed.edges()) {
    if (!truth.Contains(e)) max_sum += m;
  }
  if (max_sum == 0) return 1.0;
  return static_cast<double>(min_sum) / static_cast<double>(max_sum);
}

double Precision(const Hypergraph& truth, const Hypergraph& reconstructed) {
  if (reconstructed.num_unique_edges() == 0) return 0.0;
  return static_cast<double>(IntersectionSize(reconstructed, truth)) /
         static_cast<double>(reconstructed.num_unique_edges());
}

double Recall(const Hypergraph& truth, const Hypergraph& reconstructed) {
  if (truth.num_unique_edges() == 0) return 0.0;
  return static_cast<double>(IntersectionSize(truth, reconstructed)) /
         static_cast<double>(truth.num_unique_edges());
}

}  // namespace marioh::eval
