/// \file linkpred.hpp
/// \brief Link prediction downstream task (Table IX): handcrafted pair
/// features (Jaccard, Adamic-Adar, preferential attachment, resource
/// allocation, degree statistics, edge weight) optionally augmented with
/// hypergraph-specific features (hyperedge Jaccard, hyperedge sizes) and
/// pooled GCN link embeddings; a logistic head scores pairs and AUC is
/// reported.

#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::eval {

/// Options for a link-prediction evaluation run.
struct LinkPredOptions {
  double test_fraction = 0.1;  ///< fraction of edges held out (paper: 10%)
  bool use_gcn = true;         ///< pool GCN embeddings as extra features
  uint64_t seed = 1;
};

/// Area under the ROC curve from scores of positive and negative examples
/// (rank-based, ties handled by midranks).
double Auc(const std::vector<double>& positive_scores,
           const std::vector<double>& negative_scores);

/// Runs the Table IX protocol: hold out test edges of `g`, sample an equal
/// number of non-edges, train a classifier on the remaining graph, report
/// AUC on the held-out set. When `hypergraph` is non-null, its
/// hyperedge-derived features are added (hyperedges containing a test edge
/// are excluded to prevent leakage, as in the paper).
double LinkPredictionAuc(const ProjectedGraph& g,
                         const Hypergraph* hypergraph,
                         const LinkPredOptions& options);

}  // namespace marioh::eval
