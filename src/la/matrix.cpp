#include "la/matrix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace marioh::la {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  MARIOH_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Vector Matrix::Apply(const Vector& x) const {
  MARIOH_CHECK_EQ(cols_, x.size());
  Vector y(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Dot(const Vector& a, const Vector& b) {
  MARIOH_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

Vector Axpy(const Vector& a, double s, const Vector& b) {
  MARIOH_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  MARIOH_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace marioh::la
