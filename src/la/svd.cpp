#include "la/svd.hpp"

#include <algorithm>
#include <cmath>

#include "la/eigen.hpp"

namespace marioh::la {

Vector SingularValues(const Matrix& a) {
  // Work with the smaller Gram matrix: A^T A (cols x cols) or A A^T.
  Matrix gram(0, 0);
  if (a.cols() <= a.rows()) {
    gram = a.Transposed().Multiply(a);
  } else {
    gram = a.Multiply(a.Transposed());
  }
  EigenResult eig = SymmetricEigen(gram);
  Vector sv(eig.values.size());
  for (size_t i = 0; i < sv.size(); ++i) {
    sv[i] = eig.values[i] > 0 ? std::sqrt(eig.values[i]) : 0.0;
  }
  std::sort(sv.begin(), sv.end(), std::greater<double>());
  return sv;
}

Vector TopSingularValues(const Matrix& a, size_t k) {
  Vector sv = SingularValues(a);
  sv.resize(k, 0.0);
  return sv;
}

}  // namespace marioh::la
