#include "la/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace marioh::la {
namespace {

KMeansResult RunOnce(const Matrix& points, size_t k, util::Rng* rng,
                     int max_iters) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  MARIOH_CHECK_GE(n, k);

  // k-means++ seeding.
  std::vector<Vector> centers;
  centers.reserve(k);
  {
    size_t first = rng->UniformIndex(n);
    centers.emplace_back(points.Row(first), points.Row(first) + dim);
    std::vector<double> d2(n, std::numeric_limits<double>::max());
    while (centers.size() < k) {
      const Vector& c = centers.back();
      for (size_t i = 0; i < n; ++i) {
        Vector row(points.Row(i), points.Row(i) + dim);
        d2[i] = std::min(d2[i], SquaredDistance(row, c));
      }
      double total = 0.0;
      for (double d : d2) total += d;
      size_t next;
      if (total <= 0.0) {
        next = rng->UniformIndex(n);
      } else {
        next = rng->Discrete(d2);
      }
      centers.emplace_back(points.Row(next), points.Row(next) + dim);
    }
  }

  std::vector<uint32_t> assign(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      Vector row(points.Row(i), points.Row(i) + dim);
      double best = std::numeric_limits<double>::max();
      uint32_t arg = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistance(row, centers[c]);
        if (d < best) {
          best = d;
          arg = static_cast<uint32_t>(c);
        }
      }
      if (assign[i] != arg) {
        assign[i] = arg;
        changed = true;
      }
    }
    std::vector<Vector> sums(k, Vector(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = points.Row(i);
      Vector& s = sums[assign[i]];
      for (size_t j = 0; j < dim; ++j) s[j] += row[j];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t pick = rng->UniformIndex(n);
        centers[c].assign(points.Row(pick), points.Row(pick) + dim);
        continue;
      }
      for (size_t j = 0; j < dim; ++j) {
        centers[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  KMeansResult result;
  result.assignments = std::move(assign);
  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Vector row(points.Row(i), points.Row(i) + dim);
    result.inertia += SquaredDistance(row, centers[result.assignments[i]]);
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, size_t k, util::Rng* rng,
                    int max_iters, int restarts) {
  MARIOH_CHECK_GT(k, 0u);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int r = 0; r < restarts; ++r) {
    KMeansResult candidate = RunOnce(points, k, rng, max_iters);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

}  // namespace marioh::la
