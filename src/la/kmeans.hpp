/// \file kmeans.hpp
/// \brief k-means++ clustering on row vectors; the final stage of spectral
/// clustering in the downstream-task experiments (Table VII).

#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace marioh::la {

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster id per row of the input.
  std::vector<uint32_t> assignments;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
};

/// Runs k-means with k-means++ seeding on the rows of `points`.
/// `restarts` independent runs are performed and the lowest-inertia result
/// is returned. Deterministic given `seed`.
KMeansResult KMeans(const Matrix& points, size_t k, util::Rng* rng,
                    int max_iters = 100, int restarts = 8);

}  // namespace marioh::la
