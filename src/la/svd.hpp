/// \file svd.hpp
/// \brief Singular values of arbitrary dense matrices, via the symmetric
/// eigendecomposition of the smaller Gram matrix. Used by the
/// "singular values of the incidence matrix" structural property
/// (Table IV).

#pragma once

#include "la/matrix.hpp"

namespace marioh::la {

/// All singular values of `a` in descending order (non-negative; values
/// numerically below zero are clamped).
Vector SingularValues(const Matrix& a);

/// The `k` largest singular values of `a` (descending), zero-padded when
/// rank is smaller than `k`.
Vector TopSingularValues(const Matrix& a, size_t k);

}  // namespace marioh::la
