#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace marioh::la {

EigenResult SymmetricEigen(const Matrix& a, int max_sweeps, double tol) {
  MARIOH_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < tol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        double app = d(p, p);
        double aqq = d(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double dkp = d(k, p);
          double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double dpk = d(p, k);
          double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t i, size_t j) { return d(i, i) > d(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = d(idx[j], idx[j]);
    for (size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, idx[j]);
  }
  return result;
}

Matrix SmallestEigenvectors(const Matrix& a, size_t k) {
  EigenResult eig = SymmetricEigen(a);
  const size_t n = a.rows();
  k = std::min(k, n);
  Matrix out(n, k);
  // eig is in descending order; the smallest are the last k columns.
  for (size_t j = 0; j < k; ++j) {
    size_t src = n - 1 - j;
    for (size_t i = 0; i < n; ++i) out(i, j) = eig.vectors(i, src);
  }
  return out;
}

}  // namespace marioh::la
