/// \file eigen.hpp
/// \brief Symmetric eigendecomposition via cyclic Jacobi rotations; used by
/// spectral clustering, the spectral node embeddings, and the singular
/// value structural property.

#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace marioh::la {

/// Result of a symmetric eigendecomposition: `values[i]` in descending
/// order, `vectors` column i is the corresponding unit eigenvector.
struct EigenResult {
  Vector values;
  Matrix vectors;
};

/// Full eigendecomposition of the symmetric matrix `a` (upper triangle
/// authoritative) via cyclic Jacobi. Deterministic; suitable for the
/// matrix sizes used in this repo's experiments (n up to a few thousand).
EigenResult SymmetricEigen(const Matrix& a, int max_sweeps = 64,
                           double tol = 1e-12);

/// The `k` smallest-eigenvalue eigenvectors of `a` as an n x k matrix
/// (columns ordered by ascending eigenvalue) — what spectral clustering
/// needs from a Laplacian.
Matrix SmallestEigenvectors(const Matrix& a, size_t k);

}  // namespace marioh::la
