/// \file matrix.hpp
/// \brief Dense row-major matrix and vector helpers — the numerical
/// substrate for the MLP classifier, GCN, spectral clustering, and singular
/// value analysis.

#pragma once

#include <cstddef>
#include <vector>

namespace marioh::la {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows = 0, size_t cols = 0, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Element access.
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Raw contiguous storage (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row i.
  double* Row(size_t i) { return data_.data() + i * cols_; }
  const double* Row(size_t i) const { return data_.data() + i * cols_; }

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Matrix-vector product.
  Vector Apply(const Vector& x) const;

  /// In-place scalar multiply.
  void Scale(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product of equal-length vectors.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& v);

/// a + s * b, elementwise.
Vector Axpy(const Vector& a, double s, const Vector& b);

/// Squared Euclidean distance between equal-length vectors.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace marioh::la
