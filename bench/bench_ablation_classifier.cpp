// Ablation bench for MARIOH's classifier design choices (DESIGN.md §6):
// negative-sampling ratio, MLP capacity, and the initial threshold's
// interaction with search quality, measured as reconstruction Jaccard on a
// hard (enron-like) and an easy (hosts-like) profile.
//
// Usage: bench_ablation_classifier [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/harness.hpp"
#include "util/table.hpp"

namespace {

void SweepNegativeRatio(const std::vector<std::string>& datasets,
                        int seeds) {
  marioh::util::TextTable table(
      "Ablation: negatives per positive (classifier training)");
  std::vector<std::string> header = {"neg:pos"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);
  for (double ratio : {0.5, 1.0, 3.0, 6.0}) {
    marioh::eval::AccuracyOptions options;
    options.num_seeds = seeds;
    options.marioh_base.classifier.negatives_per_positive = ratio;
    std::vector<std::string> row = {marioh::util::TextTable::Num(ratio, 1)};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy("MARIOH", dataset, options);
      row.push_back(marioh::util::TextTable::MeanStd(r.mean, r.std_dev));
      std::cerr << "[ablation] neg=" << ratio << " " << dataset << " -> "
                << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
}

void SweepMlpCapacity(const std::vector<std::string>& datasets, int seeds) {
  marioh::util::TextTable table("Ablation: MLP hidden-layer widths");
  std::vector<std::string> header = {"hidden"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);
  const std::vector<std::pair<std::string, std::vector<size_t>>> configs = {
      {"(linear)", {}},
      {"16", {16}},
      {"64-32", {64, 32}},
      {"128-64-32", {128, 64, 32}},
  };
  for (const auto& [label, hidden] : configs) {
    marioh::eval::AccuracyOptions options;
    options.num_seeds = seeds;
    options.marioh_base.classifier.mlp.hidden = hidden;
    std::vector<std::string> row = {label};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy("MARIOH", dataset, options);
      row.push_back(marioh::util::TextTable::MeanStd(r.mean, r.std_dev));
      std::cerr << "[ablation] mlp=" << label << " " << dataset << " -> "
                << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
}

void SweepHardNegatives(const std::vector<std::string>& datasets,
                        int seeds) {
  marioh::util::TextTable table(
      "Ablation: hard-negative fraction (sub-cliques of true hyperedges)");
  std::vector<std::string> header = {"hard frac"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);
  for (double frac : {0.0, 0.25, 0.5}) {
    marioh::eval::AccuracyOptions options;
    options.num_seeds = seeds;
    options.marioh_base.classifier.hard_negative_fraction = frac;
    std::vector<std::string> row = {marioh::util::TextTable::Num(frac, 2)};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy("MARIOH", dataset, options);
      row.push_back(marioh::util::TextTable::MeanStd(r.mean, r.std_dev));
      std::cerr << "[ablation] hard=" << frac << " " << dataset << " -> "
                << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"hosts"}
            : std::vector<std::string>{"hosts", "enron", "pschool"};
  int seeds = quick ? 1 : 2;
  SweepNegativeRatio(datasets, seeds);
  SweepMlpCapacity(datasets, seeds);
  SweepHardNegatives(datasets, seeds);
  return 0;
}
