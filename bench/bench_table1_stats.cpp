// Table I: dataset summary — regenerates the paper's dataset-statistics
// table from the synthetic profiles and prints it side-by-side with the
// paper's reported numbers, quantifying the fidelity of the dataset
// substitution (DESIGN.md §3). Scale-reduced profiles (dblp, mag_topcs)
// intentionally deviate in |V|; the regime columns (Avg M_H, Avg w) are
// the ones that drive algorithm behavior.
//
// Usage: bench_table1_stats

#include <iostream>
#include <string>
#include <vector>

#include "gen/profiles.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  const char* dataset;
  double nodes;
  double hyperedges;
  double avg_mult;
  double graph_edges;
  double avg_weight;
};

// Values from Table I of the paper.
const std::vector<PaperRow> kPaper = {
    {"enron", 141, 889, 5.85, 5205, 9.18},
    {"pschool", 238, 7975, 6.90, 55043, 11.98},
    {"hschool", 318, 4254, 17.01, 72369, 22.24},
    {"crime", 308, 105, 1.01, 106, 1.03},
    {"hosts", 449, 159, 1.06, 168, 1.24},
    {"directors", 513, 101, 1.01, 102, 1.02},
    {"foursquare", 2254, 873, 1.00, 873, 1.02},
    {"dblp", 389330, 213328, 1.10, 235498, 1.28},
    {"eu", 891, 6805, 1.26, 8581, 4.62},
    {"mag_topcs", 48742, 25945, 1.00, 25945, 1.14},
};

}  // namespace

int main() {
  marioh::util::TextTable table(
      "Table I: dataset statistics, generated profile vs paper "
      "(paper numbers in parentheses)");
  // Note: the paper's |E_G| column exceeds C(|V|, 2) on P.School, so it
  // reports total edge weight rather than distinct edges; we print both.
  table.SetHeader({"Dataset", "|V|", "|E_H| total", "Avg M_H",
                   "distinct |E_G|", "total w (paper |E_G|)", "Avg w"});
  for (const PaperRow& paper : kPaper) {
    marioh::gen::GeneratedDataset data = marioh::gen::Generate(
        marioh::gen::ProfileByName(paper.dataset), 42);
    marioh::ProjectedGraph g = data.hypergraph.Project();
    auto cell = [](double mine, double theirs, int digits) {
      return marioh::util::TextTable::Num(mine, digits) + " (" +
             marioh::util::TextTable::Num(theirs, digits) + ")";
    };
    table.AddRow(
        {paper.dataset,
         cell(static_cast<double>(data.hypergraph.num_nodes()),
              paper.nodes, 0),
         cell(static_cast<double>(data.hypergraph.num_total_edges()),
              paper.hyperedges, 0),
         cell(data.hypergraph.AverageMultiplicity(), paper.avg_mult, 2),
         marioh::util::TextTable::Num(static_cast<double>(g.num_edges()),
                                      0),
         cell(static_cast<double>(g.TotalWeight()), paper.graph_edges, 0),
         cell(g.AverageWeight(), paper.avg_weight, 2)});
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
