// Microbenchmarks of the hot kernels inside MARIOH's reconstruction loop:
// MHH computation (Eq. (1)), maximal-clique enumeration, feature
// extraction, filtering, and clique peeling — each on both the mutable
// hash-map path and the CSR snapshot fast path, with thread sweeps for the
// parallel kernels. google-benchmark based; pass
// `--benchmark_out=bench_micro.json --benchmark_out_format=json` to record
// a machine-readable trajectory (CI uploads this as an artifact).

#include <benchmark/benchmark.h>

#include "core/features.hpp"
#include "core/filtering.hpp"
#include "gen/hypercl.hpp"
#include "obs/metrics.hpp"
#include "hypergraph/clique.hpp"
#include "hypergraph/csr.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using marioh::CliqueOptions;
using marioh::CsrGraph;
using marioh::NodeId;
using marioh::NodeSet;
using marioh::ProjectedGraph;

ProjectedGraph MakeGraph(size_t num_nodes, size_t num_edges) {
  marioh::util::Rng rng(7);
  marioh::Hypergraph h = marioh::gen::HyperClLike(
      num_nodes, num_edges, /*size_mean=*/3.2, /*degree_skew=*/0.7, &rng);
  return h.Project();
}

// ---- MHH (Eq. (1)) -------------------------------------------------------

void BM_Mhh(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = edges[i % edges.size()];
    benchmark::DoNotOptimize(g.Mhh(e.u, e.v));
    ++i;
  }
}
BENCHMARK(BM_Mhh)->Arg(500)->Arg(2000);

void BM_CsrMhh(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  CsrGraph csr(g);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = edges[i % edges.size()];
    benchmark::DoNotOptimize(csr.Mhh(e.u, e.v));
    ++i;
  }
}
BENCHMARK(BM_CsrMhh)->Arg(500)->Arg(2000);

// ---- CSR snapshot construction ------------------------------------------

void BM_CsrBuild(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(2000, 4000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph(g));
  }
}
BENCHMARK(BM_CsrBuild);

// ---- Maximal-clique enumeration -----------------------------------------

// Default public path (CSR snapshot, single thread, arena output).
void BM_MaximalCliques(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marioh::EnumerateMaximalCliques(g));
  }
}
BENCHMARK(BM_MaximalCliques)->Arg(200)->Arg(800);

// Sequential reference over the hash-map adjacency (the pre-CSR path).
void BM_MaximalCliquesHashmap(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marioh::MaximalCliquesHashMapReference(g));
  }
}
BENCHMARK(BM_MaximalCliquesHashmap)->Arg(200)->Arg(800);

// Thread sweep over the CSR fast path (snapshot built once, as in the
// reconstruction loop where one snapshot serves the whole iteration).
void BM_MaximalCliquesCsrThreads(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(800, 1600);
  CsrGraph csr(g);
  CliqueOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(marioh::EnumerateMaximalCliques(csr, options));
  }
}
BENCHMARK(BM_MaximalCliquesCsrThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- Clique emission layout ---------------------------------------------

// Arena emission: cliques land in the flat CliqueStore and stay there —
// the path the reconstruction loop consumes (snapshot built once, as in
// an iteration).
void BM_CliqueEmissionArena(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(800, 1600);
  CsrGraph csr(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marioh::EnumerateMaximalCliques(csr));
  }
}
BENCHMARK(BM_CliqueEmissionArena);

// Per-clique NodeSet materialization on top of the same enumeration (the
// deprecated copy-out shim): one heap allocation per clique, the cost the
// arena removed from the hot path.
void BM_CliqueEmissionNodeSets(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(800, 1600);
  CsrGraph csr(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        marioh::EnumerateMaximalCliques(csr).cliques.ToNodeSets());
  }
}
BENCHMARK(BM_CliqueEmissionNodeSets);

// ---- CSR snapshot patching ----------------------------------------------

// Peels maximal cliques of `base` until at least `percent` of the nodes
// are touched; returns the peeled graph and the sorted touched set.
std::pair<ProjectedGraph, std::vector<NodeId>> PeelUntilTouched(
    const ProjectedGraph& base, const CsrGraph& snapshot, int percent) {
  ProjectedGraph g = base;
  std::vector<NodeId> touched;
  std::vector<bool> seen(base.num_nodes(), false);
  size_t distinct = 0;
  const size_t want =
      (base.num_nodes() * static_cast<size_t>(percent) + 99) / 100;
  marioh::MaximalCliqueResult enumerated =
      marioh::EnumerateMaximalCliques(snapshot);
  for (marioh::CliqueView q : enumerated.cliques) {
    if (distinct >= want) break;
    if (!g.IsClique(q)) continue;
    g.PeelClique(q);
    for (NodeId u : q) {
      touched.push_back(u);
      if (!seen[u]) {
        seen[u] = true;
        ++distinct;
      }
    }
  }
  marioh::Canonicalize(&touched);
  return {std::move(g), std::move(touched)};
}

// Patch-based snapshot refresh at Arg(percent)% touched nodes — the
// incremental path of the reconstruction loop's snapshot upkeep.
void BM_CsrPatchRebuild(benchmark::State& state) {
  ProjectedGraph base = MakeGraph(2000, 4000);
  CsrGraph prev(base);
  auto [g, touched] =
      PeelUntilTouched(base, prev, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph(prev, g, touched));
  }
  state.counters["touched_nodes"] =
      static_cast<double>(touched.size());
}
BENCHMARK(BM_CsrPatchRebuild)->Arg(1)->Arg(10)->Arg(50);

// From-scratch build of the same peeled graph — what the patch replaces.
void BM_CsrPatchRebuildBaseline(benchmark::State& state) {
  ProjectedGraph base = MakeGraph(2000, 4000);
  CsrGraph prev(base);
  auto [g, touched] =
      PeelUntilTouched(base, prev, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph(g));
  }
  state.counters["touched_nodes"] =
      static_cast<double>(touched.size());
}
BENCHMARK(BM_CsrPatchRebuildBaseline)->Arg(1)->Arg(10)->Arg(50);

// ---- Feature extraction --------------------------------------------------

void BM_FeatureExtraction(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(500, 1500);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::EnumerateMaximalCliques(g).cliques.ToNodeSets();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.Extract(g, cliques[i % cliques.size()], true));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_FeatureExtractionCsr(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(500, 1500);
  CsrGraph csr(g);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::EnumerateMaximalCliques(g).cliques.ToNodeSets();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.Extract(csr, cliques[i % cliques.size()], true));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtractionCsr);

// Thread sweep of the batched extraction used by clique scoring.
void BM_FeatureExtractAllThreads(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(800, 2400);
  CsrGraph csr(g);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::EnumerateMaximalCliques(g).cliques.ToNodeSets();
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.ExtractAll(csr, cliques, true, threads));
  }
}
BENCHMARK(BM_FeatureExtractAllThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- Filtering (Algorithm 2) --------------------------------------------

void BM_FilteringThreads(benchmark::State& state) {
  ProjectedGraph base = MakeGraph(2000, 4000);
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ProjectedGraph g = base;
    marioh::Hypergraph h(g.num_nodes());
    state.ResumeTiming();
    benchmark::DoNotOptimize(marioh::core::Filtering(&g, &h, threads));
  }
}
BENCHMARK(BM_FilteringThreads)->Arg(1)->Arg(4);

// ---- Clique peeling ------------------------------------------------------

void BM_PeelClique(benchmark::State& state) {
  ProjectedGraph base = MakeGraph(500, 1500);
  std::vector<NodeSet> cliques = marioh::EnumerateMaximalCliques(base).cliques.ToNodeSets();
  for (auto _ : state) {
    state.PauseTiming();
    ProjectedGraph g = base;
    state.ResumeTiming();
    for (const NodeSet& q : cliques) {
      if (g.IsClique(q)) g.PeelClique(q);
    }
  }
}
BENCHMARK(BM_PeelClique);

// ---- End-to-end scoring scaling -----------------------------------------

void BM_ParallelScoringScaling(benchmark::State& state) {
  // Thread scaling of the clique-scoring hot loop (feature extraction is
  // the dominant cost inside BidirectionalSearch).
  ProjectedGraph g = MakeGraph(800, 2400);
  CsrGraph csr(g);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::EnumerateMaximalCliques(g).cliques.ToNodeSets();
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<double> sums(cliques.size());
    marioh::util::ParallelFor(cliques.size(), threads, [&](size_t i) {
      marioh::la::Vector f = extractor.Extract(csr, cliques[i], true);
      double s = 0;
      for (double v : f) s += v;
      sums[i] = s;
    });
    benchmark::DoNotOptimize(sums);
  }
}
BENCHMARK(BM_ParallelScoringScaling)->Arg(1)->Arg(2)->Arg(4);

// ---- Observability overhead guards --------------------------------------
// The obs instruments sit at stage/job granularity, never inside the
// kernels above — these guards keep the primitives themselves cheap
// enough that a future hot-path instrumentation stays honest: a counter
// add is one relaxed fetch_add, a disabled histogram observe is one
// relaxed load and a branch.

void BM_ObsCounterAdd(benchmark::State& state) {
  marioh::obs::MetricRegistry registry;
  marioh::obs::Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  marioh::obs::MetricRegistry registry;
  marioh::obs::Histogram* histogram =
      registry.GetHistogram("bench_seconds");
  double value = 1e-5;
  for (auto _ : state) {
    histogram->Observe(value);
    value = value < 1.0 ? value * 1.0000001 : 1e-5;
  }
  benchmark::DoNotOptimize(histogram->count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsHistogramObserveDisabled(benchmark::State& state) {
  marioh::obs::SetEnabled(false);
  marioh::obs::MetricRegistry registry;
  marioh::obs::Histogram* histogram =
      registry.GetHistogram("bench_seconds");
  for (auto _ : state) {
    histogram->Observe(1e-5);
  }
  benchmark::DoNotOptimize(histogram->count());
  marioh::obs::SetEnabled(true);
}
BENCHMARK(BM_ObsHistogramObserveDisabled);

}  // namespace

BENCHMARK_MAIN();
