// Microbenchmarks of the hot kernels inside MARIOH's reconstruction loop:
// MHH computation (Eq. (1)), maximal-clique enumeration, feature
// extraction, and clique peeling. google-benchmark based.

#include <benchmark/benchmark.h>

#include "core/features.hpp"
#include "gen/hypercl.hpp"
#include "hypergraph/clique.hpp"
#include "hypergraph/csr.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using marioh::NodeId;
using marioh::NodeSet;
using marioh::ProjectedGraph;

ProjectedGraph MakeGraph(size_t num_nodes, size_t num_edges) {
  marioh::util::Rng rng(7);
  marioh::Hypergraph h = marioh::gen::HyperClLike(
      num_nodes, num_edges, /*size_mean=*/3.2, /*degree_skew=*/0.7, &rng);
  return h.Project();
}

void BM_Mhh(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = edges[i % edges.size()];
    benchmark::DoNotOptimize(g.Mhh(e.u, e.v));
    ++i;
  }
}
BENCHMARK(BM_Mhh)->Arg(500)->Arg(2000);

void BM_MaximalCliques(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) * 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marioh::MaximalCliques(g));
  }
}
BENCHMARK(BM_MaximalCliques)->Arg(200)->Arg(800);

void BM_FeatureExtraction(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(500, 1500);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::MaximalCliques(g);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.Extract(g, cliques[i % cliques.size()], true));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_PeelClique(benchmark::State& state) {
  ProjectedGraph base = MakeGraph(500, 1500);
  std::vector<NodeSet> cliques = marioh::MaximalCliques(base);
  for (auto _ : state) {
    state.PauseTiming();
    ProjectedGraph g = base;
    state.ResumeTiming();
    for (const NodeSet& q : cliques) {
      if (g.IsClique(q)) g.PeelClique(q);
    }
  }
}
BENCHMARK(BM_PeelClique);

void BM_ParallelScoringScaling(benchmark::State& state) {
  // Thread scaling of the clique-scoring hot loop (feature extraction is
  // the dominant cost inside BidirectionalSearch).
  ProjectedGraph g = MakeGraph(800, 2400);
  marioh::core::FeatureExtractor extractor(
      marioh::core::FeatureMode::kMultiplicityAware);
  std::vector<NodeSet> cliques = marioh::MaximalCliques(g);
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<double> sums(cliques.size());
    marioh::util::ParallelFor(cliques.size(), threads, [&](size_t i) {
      marioh::la::Vector f = extractor.Extract(g, cliques[i], true);
      double s = 0;
      for (double v : f) s += v;
      sums[i] = s;
    });
    benchmark::DoNotOptimize(sums);
  }
}
BENCHMARK(BM_ParallelScoringScaling)->Arg(1)->Arg(2)->Arg(4);

void BM_CsrMhh(benchmark::State& state) {
  ProjectedGraph g = MakeGraph(2000, 4000);
  marioh::CsrGraph csr(g);
  auto edges = g.Edges();
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = edges[i % edges.size()];
    benchmark::DoNotOptimize(csr.Mhh(e.u, e.v));
    ++i;
  }
}
BENCHMARK(BM_CsrMhh);

}  // namespace

BENCHMARK_MAIN();
