// Table IX: link prediction AUC — handcrafted pair features (+ GCN link
// embeddings) on the projected graph vs hypergraphs reconstructed by each
// method vs the ground-truth hypergraph.
//
// Usage: bench_table9_linkpred [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "eval/linkpred.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

constexpr int kSeeds = 3;

double AverageAuc(const marioh::ProjectedGraph& g,
                  const marioh::Hypergraph* hypergraph, bool use_gcn) {
  marioh::util::RunningStats stats;
  for (int s = 0; s < kSeeds; ++s) {
    marioh::eval::LinkPredOptions options;
    options.seed = 500 + static_cast<uint64_t>(s);
    options.use_gcn = use_gcn;
    stats.Add(100.0 *
              marioh::eval::LinkPredictionAuc(g, hypergraph, options));
  }
  return stats.Mean();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // GCN embeddings are O(n^2)-dense; restrict to the small/mid profiles.
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "hosts"}
            : std::vector<std::string>{"enron", "crime", "hosts",
                                       "directors", "pschool", "eu"};
  const bool use_gcn = !quick;
  std::vector<std::string> methods = {"SHyRe-Unsup", "SHyRe-Count",
                                      "MARIOH"};

  marioh::util::TextTable table("Table IX: link prediction AUC (x100)");
  std::vector<std::string> header = {"Input"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Projected graph G"});
  for (const std::string& method : methods) {
    rows.push_back({"H^ by " + method});
  }
  rows.push_back({"Original hypergraph H"});

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    size_t row_idx = 0;
    double g_auc = AverageAuc(*data.g_target, nullptr, use_gcn);
    rows[row_idx++].push_back(marioh::util::TextTable::Num(g_auc));
    std::cerr << "[table9] projected / " << dataset << " AUC " << g_auc
              << "\n";
    for (const std::string& method : methods) {
      auto reconstructor = marioh::api::MustCreateMethod(method, 42);
      if (reconstructor->IsSupervised()) {
        reconstructor->Train(*data.g_source, *data.source);
      }
      marioh::Hypergraph reconstructed =
          reconstructor->Reconstruct(*data.g_target);
      double auc = AverageAuc(*data.g_target, &reconstructed, use_gcn);
      rows[row_idx++].push_back(marioh::util::TextTable::Num(auc));
      std::cerr << "[table9] " << method << " / " << dataset << " AUC "
                << auc << "\n";
    }
    double h_auc = AverageAuc(*data.g_target, data.target.get(), use_gcn);
    rows[row_idx++].push_back(marioh::util::TextTable::Num(h_auc));
  }
  for (auto& row : rows) table.AddRow(row);
  std::cout << table.Render() << std::endl;
  return 0;
}
