// Fig. 5: average runtime of MARIOH and every competitor across the
// dataset profiles (train + reconstruct wall clock).
//
// Usage: bench_fig5_runtime [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "hosts", "enron"}
            : std::vector<std::string>{"crime", "directors", "hosts",
                                       "enron", "foursquare", "pschool",
                                       "eu"};
  std::vector<std::string> methods = marioh::eval::Table2Methods();

  marioh::util::TextTable table(
      "Fig. 5: average runtime (seconds) per method");
  table.SetHeader({"Method", "Avg seconds", "Max seconds"});

  for (const std::string& method : methods) {
    marioh::util::RunningStats stats;
    double max_seconds = 0.0;
    for (const std::string& dataset : datasets) {
      marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
          dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
      auto reconstructor = marioh::api::MustCreateMethod(method, 42);
      marioh::util::Timer timer;
      if (reconstructor->IsSupervised()) {
        reconstructor->Train(*data.g_source, *data.source);
      }
      reconstructor->Reconstruct(*data.g_target);
      double elapsed = timer.Seconds();
      stats.Add(elapsed);
      max_seconds = std::max(max_seconds, elapsed);
      std::cerr << "[fig5] " << method << " / " << dataset << " "
                << elapsed << "s\n";
    }
    table.AddRow({method, marioh::util::TextTable::Num(stats.Mean(), 3),
                  marioh::util::TextTable::Num(max_seconds, 3)});
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
