// Online-appendix experiment: storage savings of the hypergraph
// representation over the projected graph. A clique of size N costs
// C(N, 2) edge records in the graph but only O(N) in the hypergraph; this
// bench quantifies the saving per dataset profile for the ground truth and
// for MARIOH's reconstruction.
//
// Usage: bench_appendix_storage [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"

namespace {

/// Record cells: graph rows are (u, v, w); hypergraph rows are the node
/// list plus a multiplicity.
size_t GraphCells(const marioh::ProjectedGraph& g) {
  return g.num_edges() * 3;
}

size_t HypergraphCells(const marioh::Hypergraph& h) {
  size_t cells = 0;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    cells += e.size() + 1;
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "pschool"}
            : marioh::gen::TableDatasets();

  marioh::util::TextTable table(
      "Appendix: storage cells, projected graph vs hypergraph");
  table.SetHeader({"Dataset", "Graph cells", "GT hypergraph",
                   "MARIOH H^", "Saving vs graph"});

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    auto method = marioh::api::MustCreateMethod("MARIOH", 42);
    method->Train(*data.g_source, *data.source);
    marioh::Hypergraph reconstructed = method->Reconstruct(*data.g_target);

    size_t graph_cells = GraphCells(*data.g_target);
    size_t truth_cells = HypergraphCells(*data.target);
    size_t recon_cells = HypergraphCells(reconstructed);
    double saving =
        100.0 * (1.0 - static_cast<double>(recon_cells) /
                           static_cast<double>(graph_cells));
    table.AddRow({dataset, std::to_string(graph_cells),
                  std::to_string(truth_cells),
                  std::to_string(recon_cells),
                  marioh::util::TextTable::Num(saving, 1) + "%"});
    std::cerr << "[storage] " << dataset << " done\n";
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
