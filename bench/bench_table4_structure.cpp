// Table IV: preservation of 12 structural properties (7 scalars compared
// by normalized difference, 5 distributions by the KS D-statistic),
// averaged over datasets, for the five strongest reconstruction methods.
//
// Usage: bench_table4_structure [--quick]

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "eval/structural.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<std::string> methods = {"Bayesian-MDL", "SHyRe-Count",
                                      "SHyRe-Motif", "SHyRe-Unsup",
                                      "MARIOH"};
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "hosts"}
            : std::vector<std::string>{"crime",      "hosts", "directors",
                                       "foursquare", "enron", "pschool"};

  // property name -> method -> stats over datasets.
  std::map<std::string, std::map<std::string, marioh::util::RunningStats>>
      errors;
  std::vector<std::string> property_order;
  std::map<std::string, marioh::util::RunningStats> overall;

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    for (const std::string& method : methods) {
      auto reconstructor = marioh::api::MustCreateMethod(method, 42);
      if (reconstructor->IsSupervised()) {
        reconstructor->Train(*data.g_source, *data.source);
      }
      marioh::Hypergraph reconstructed =
          reconstructor->Reconstruct(*data.g_target);
      marioh::eval::StructuralReport report =
          marioh::eval::CompareStructure(*data.target, reconstructed, 7);
      auto record = [&](const std::string& property, double err) {
        if (errors.count(property) == 0) property_order.push_back(property);
        errors[property][method].Add(err);
        overall[method].Add(err);
      };
      for (const auto& [property, err] : report.scalar_errors) {
        record(property, err);
      }
      for (const auto& [property, err] : report.distributional_errors) {
        record(property, err);
      }
      std::cerr << "[table4] " << method << " / " << dataset
                << " avg error " << report.AverageError() << "\n";
    }
  }

  marioh::util::TextTable table(
      "Table IV: structural-property preservation error (lower is better)");
  std::vector<std::string> header = {"Structural Property"};
  header.insert(header.end(), methods.begin(), methods.end());
  table.SetHeader(header);
  for (const std::string& property : property_order) {
    std::vector<std::string> row = {property};
    for (const std::string& method : methods) {
      const marioh::util::RunningStats& s = errors[property][method];
      row.push_back(
          marioh::util::TextTable::MeanStd(s.Mean(), s.Std()));
    }
    table.AddRow(row);
  }
  std::vector<std::string> row = {"Average (Overall)"};
  for (const std::string& method : methods) {
    row.push_back(marioh::util::TextTable::MeanStd(overall[method].Mean(),
                                                   overall[method].Std()));
  }
  table.AddRow(row);
  std::cout << table.Render() << std::endl;
  return 0;
}
