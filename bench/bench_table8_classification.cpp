// Table VIII: node classification — micro/macro F1 of an MLP trained on
// spectral embeddings from the projected graph, reconstructed hypergraphs,
// and the ground-truth hypergraph (P.School / H.School profiles).
//
// Usage: bench_table8_classification [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/classification.hpp"
#include "eval/clustering.hpp"
#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

constexpr int kSplits = 3;          // random train/test splits
constexpr double kTrainFraction = 0.7;

marioh::eval::F1Scores AverageF1(const marioh::la::Matrix& embedding,
                                 const std::vector<uint32_t>& labels,
                                 size_t num_classes) {
  marioh::util::RunningStats micro, macro;
  for (int s = 0; s < kSplits; ++s) {
    marioh::eval::F1Scores f1 = marioh::eval::NodeClassification(
        embedding, labels, num_classes, kTrainFraction,
        1000 + static_cast<uint64_t>(s));
    micro.Add(f1.micro);
    macro.Add(f1.macro);
  }
  return {micro.Mean(), macro.Mean()};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"pschool"}
            : std::vector<std::string>{"pschool", "hschool"};
  std::vector<std::string> methods = {"SHyRe-Unsup", "SHyRe-Motif",
                                      "SHyRe-Count", "MARIOH"};

  marioh::util::TextTable table(
      "Table VIII: node classification micro-F1 / macro-F1");
  std::vector<std::string> header = {"Input"};
  for (const std::string& d : datasets) {
    header.push_back(d + " micro");
    header.push_back(d + " macro");
  }
  table.SetHeader(header);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Projected graph G"});
  for (const std::string& method : methods) {
    rows.push_back({"H^ by " + method});
  }
  rows.push_back({"Original hypergraph H"});

  const size_t embed_dim = 16;
  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    auto push = [&](size_t row, const marioh::eval::F1Scores& f1) {
      rows[row].push_back(marioh::util::TextTable::Num(f1.micro, 4));
      rows[row].push_back(marioh::util::TextTable::Num(f1.macro, 4));
    };
    size_t row_idx = 0;
    push(row_idx++,
         AverageF1(marioh::eval::GraphSpectralEmbedding(*data.g_target,
                                                        embed_dim),
                   data.labels, data.num_classes));
    for (const std::string& method : methods) {
      auto reconstructor = marioh::api::MustCreateMethod(method, 42);
      if (reconstructor->IsSupervised()) {
        reconstructor->Train(*data.g_source, *data.source);
      }
      marioh::Hypergraph reconstructed =
          reconstructor->Reconstruct(*data.g_target);
      marioh::eval::F1Scores f1 = AverageF1(
          marioh::eval::HypergraphSpectralEmbedding(reconstructed,
                                                    embed_dim),
          data.labels, data.num_classes);
      push(row_idx++, f1);
      std::cerr << "[table8] " << method << " / " << dataset << " micro "
                << f1.micro << " macro " << f1.macro << "\n";
    }
    push(row_idx++,
         AverageF1(marioh::eval::HypergraphSpectralEmbedding(*data.target,
                                                             embed_dim),
                   data.labels, data.num_classes));
  }
  for (auto& row : rows) table.AddRow(row);
  std::cout << table.Render() << std::endl;
  return 0;
}
