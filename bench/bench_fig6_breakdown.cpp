// Fig. 6: runtime breakdown of MARIOH (train / filtering / bidirectional
// search) vs SHyRe-Count (train / inference) per dataset.
//
// Usage: bench_fig6_breakdown [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/marioh_method.hpp"
#include "baselines/shyre.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "enron"}
            : std::vector<std::string>{"crime",      "directors", "hosts",
                                       "enron",      "foursquare",
                                       "pschool",    "eu"};

  marioh::util::TextTable table(
      "Fig. 6: runtime breakdown (seconds), MARIOH vs SHyRe-Count");
  table.SetHeader({"Dataset", "MARIOH train", "MARIOH filter",
                   "MARIOH bidir", "SHyRe train", "SHyRe infer"});

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);

    marioh::api::MariohMethod marioh_method(
        marioh::core::MariohVariant::kFull, {});
    marioh_method.Train(*data.g_source, *data.source);
    marioh_method.Reconstruct(*data.g_target);
    const marioh::util::StageTimer& stages = marioh_method.stage_timer();

    marioh::baselines::Shyre::Options shyre_options;
    shyre_options.seed = 42;
    marioh::baselines::Shyre shyre(shyre_options);
    marioh::util::Timer train_timer;
    shyre.Train(*data.g_source, *data.source);
    double shyre_train = train_timer.Seconds();
    marioh::util::Timer infer_timer;
    shyre.Reconstruct(*data.g_target);
    double shyre_infer = infer_timer.Seconds();

    table.AddRow({dataset,
                  marioh::util::TextTable::Num(stages.Get("train"), 3),
                  marioh::util::TextTable::Num(stages.Get("filtering"), 3),
                  marioh::util::TextTable::Num(stages.Get("bidirectional"),
                                               3),
                  marioh::util::TextTable::Num(shyre_train, 3),
                  marioh::util::TextTable::Num(shyre_infer, 3)});
    std::cerr << "[fig6] " << dataset << " done\n";
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
