// Table V: transfer learning — methods are trained on a source dataset and
// evaluated on a different target dataset from the same domain:
// DBLP -> MAG fields, Eu -> {Eu, Enron}, P.School -> {P.School, H.School}.
//
// Usage: bench_table5_transfer [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "eval/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  marioh::eval::AccuracyOptions options;
  options.multiplicity_reduced = true;
  options.num_seeds = quick ? 1 : 3;
  options.time_budget_seconds = quick ? 30.0 : 120.0;

  // (source, target) pairs in the paper's column order.
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"dblp", "dblp"},         {"dblp", "mag_history"},
      {"dblp", "mag_topcs"},    {"dblp", "mag_geology"},
      {"eu", "eu"},             {"eu", "enron"},
      {"pschool", "pschool"},   {"pschool", "hschool"},
  };
  if (quick) {
    pairs = {{"dblp", "mag_history"}, {"eu", "enron"},
             {"pschool", "hschool"}};
  }
  std::vector<std::string> methods = {"SHyRe-Unsup", "SHyRe-Motif",
                                      "SHyRe-Count", "MARIOH"};

  marioh::util::TextTable table(
      "Table V: transfer learning Jaccard (x100), source -> target");
  std::vector<std::string> header = {"Method"};
  for (const auto& [src, dst] : pairs) header.push_back(src + "->" + dst);
  table.SetHeader(header);

  for (const std::string& method : methods) {
    std::vector<std::string> row = {method};
    for (const auto& [src, dst] : pairs) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunTransfer(method, src, dst, options);
      row.push_back(r.out_of_time
                        ? "OOT"
                        : marioh::util::TextTable::MeanStd(r.mean,
                                                           r.std_dev));
      std::cerr << "[table5] " << method << " / " << src << "->" << dst
                << " -> " << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
