// Fig. 4: hyperparameter sensitivity — Jaccard (multiplicity-reduced) and
// multi-Jaccard (multiplicity-preserved) as alpha, r, and theta_init vary,
// on a representative subset of datasets.
//
// Usage: bench_fig4_sensitivity [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/harness.hpp"
#include "util/table.hpp"

namespace {

void Sweep(const std::string& parameter,
           const std::vector<double>& values,
           const std::vector<std::string>& datasets, bool reduced,
           int num_seeds) {
  marioh::util::TextTable table(
      "Fig. 4 sweep: " + parameter + " vs " +
      (reduced ? std::string("Jaccard") : std::string("multi-Jaccard")) +
      " (x100)");
  std::vector<std::string> header = {parameter};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);

  for (double value : values) {
    marioh::eval::AccuracyOptions options;
    options.multiplicity_reduced = reduced;
    options.num_seeds = num_seeds;
    if (parameter == "alpha") {
      options.marioh_base.alpha = value;
    } else if (parameter == "r") {
      options.marioh_base.r_percent = value;
    } else {
      options.marioh_base.theta_init = value;
    }
    std::vector<std::string> row = {marioh::util::TextTable::Num(value, 3)};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy("MARIOH", dataset, options);
      row.push_back(marioh::util::TextTable::MeanStd(r.mean, r.std_dev));
      std::cerr << "[fig4] " << parameter << "=" << value << " / "
                << dataset << " -> " << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "hosts"}
            : std::vector<std::string>{"crime", "hosts", "enron",
                                       "pschool"};
  int seeds = quick ? 1 : 2;

  std::vector<double> alphas = {1.0 / 5, 1.0 / 15, 1.0 / 25, 1.0 / 35};
  std::vector<double> rs = quick ? std::vector<double>{20, 60, 100}
                                 : std::vector<double>{20, 40, 60, 80, 100};
  std::vector<double> thetas =
      quick ? std::vector<double>{0.5, 0.9}
            : std::vector<double>{0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  for (bool reduced : {true, false}) {
    Sweep("alpha", alphas, datasets, reduced, seeds);
    Sweep("r", rs, datasets, reduced, seeds);
    Sweep("theta_init", thetas, datasets, reduced, seeds);
  }
  return 0;
}
