// Table II: reconstruction accuracy (Jaccard similarity x100) in the
// multiplicity-reduced setting, every method x every dataset profile.
//
// Usage: bench_table2_accuracy [--quick]
//   --quick : fewer seeds and the faster dataset subset (CI-friendly).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  marioh::eval::AccuracyOptions options;
  options.multiplicity_reduced = true;
  options.num_seeds = quick ? 1 : 3;
  options.time_budget_seconds = quick ? 30.0 : 120.0;

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"crime", "directors", "hosts",
                                       "enron"}
            : marioh::gen::TableDatasets();
  std::vector<std::string> methods = marioh::api::Table2Roster();

  marioh::util::TextTable table(
      "Table II: Jaccard similarity (x100), multiplicity-reduced");
  std::vector<std::string> header = {"Method"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);

  for (const std::string& method : methods) {
    std::vector<std::string> row = {method};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy(method, dataset, options);
      row.push_back(r.out_of_time
                        ? "OOT"
                        : marioh::util::TextTable::MeanStd(r.mean,
                                                           r.std_dev));
      std::cerr << "[table2] " << method << " / " << dataset << " -> "
                << row.back() << " (" << r.mean_seconds << "s)\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
