// Table VII: node clustering — spectral clustering NMI on the P.School and
// H.School profiles, comparing the projected graph, hypergraphs
// reconstructed by each method, and the ground-truth hypergraph.
//
// Usage: bench_table7_clustering [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/clustering.hpp"
#include "api/registry.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"pschool"}
            : std::vector<std::string>{"pschool", "hschool"};
  std::vector<std::string> methods = {"SHyRe-Unsup", "SHyRe-Motif",
                                      "SHyRe-Count", "MARIOH"};

  marioh::util::TextTable table(
      "Table VII: node clustering NMI (spectral clustering)");
  std::vector<std::string> header = {"Input"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Projected graph G"});
  for (const std::string& method : methods) {
    rows.push_back({"H^ by " + method});
  }
  rows.push_back({"Original hypergraph H"});

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    size_t k = data.num_classes;
    size_t embed_dim = k;

    auto nmi_of_graph = [&](const marioh::ProjectedGraph& g) {
      marioh::la::Matrix embedding =
          marioh::eval::GraphSpectralEmbedding(g, embed_dim);
      return marioh::eval::SpectralClusteringNmi(embedding, data.labels, k,
                                                 7);
    };
    auto nmi_of_hypergraph = [&](const marioh::Hypergraph& h) {
      marioh::la::Matrix embedding =
          marioh::eval::HypergraphSpectralEmbedding(h, embed_dim);
      return marioh::eval::SpectralClusteringNmi(embedding, data.labels, k,
                                                 7);
    };

    size_t row_idx = 0;
    rows[row_idx++].push_back(
        marioh::util::TextTable::Num(nmi_of_graph(*data.g_target), 4));
    for (const std::string& method : methods) {
      auto reconstructor = marioh::api::MustCreateMethod(method, 42);
      if (reconstructor->IsSupervised()) {
        reconstructor->Train(*data.g_source, *data.source);
      }
      marioh::Hypergraph reconstructed =
          reconstructor->Reconstruct(*data.g_target);
      double nmi = nmi_of_hypergraph(reconstructed);
      rows[row_idx++].push_back(marioh::util::TextTable::Num(nmi, 4));
      std::cerr << "[table7] " << method << " / " << dataset << " NMI "
                << nmi << "\n";
    }
    rows[row_idx++].push_back(
        marioh::util::TextTable::Num(nmi_of_hypergraph(*data.target), 4));
  }
  for (auto& row : rows) table.AddRow(row);
  std::cout << table.Render() << std::endl;
  return 0;
}
