// Online-appendix experiment: feature importance of the multiplicity-aware
// clique features, measured by permutation importance — shuffle one
// feature group's columns across the evaluation set and report the drop in
// clique-classification accuracy. The paper's finding: multiplicity-
// derived features (edge multiplicity, MHH, MHH ratio) carry most of the
// signal.
//
// Usage: bench_appendix_importance [--quick]

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/features.hpp"
#include "eval/harness.hpp"
#include "hypergraph/clique.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using marioh::NodeSet;

struct FeatureGroup {
  std::string name;
  size_t begin;  // first feature index (inclusive)
  size_t end;    // last feature index (exclusive)
};

// Multiplicity-aware layout (23 dims; see FeatureExtractor):
// [0,5) weighted degree agg, [5,10) edge multiplicity agg,
// [10,15) MHH agg, [15,20) MHH-ratio agg, 20 size, 21 cut ratio,
// 22 maximal flag.
const std::vector<FeatureGroup> kGroups = {
    {"weighted degree", 0, 5}, {"edge multiplicity", 5, 10},
    {"MHH", 10, 15},           {"MHH ratio", 15, 20},
    {"clique size", 20, 21},   {"cut ratio", 21, 22},
    {"is maximal", 22, 23},
};

double Accuracy(const marioh::ml::Mlp& mlp, const marioh::la::Matrix& x,
                const std::vector<double>& y) {
  size_t correct = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    marioh::la::Vector row(x.Row(i), x.Row(i) + x.cols());
    double p = mlp.Predict(row);
    if ((p > 0.5) == (y[i] > 0.5)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"enron"}
            : std::vector<std::string>{"enron", "pschool", "eu"};

  marioh::util::TextTable table(
      "Appendix: permutation importance of multiplicity-aware features "
      "(accuracy drop)");
  std::vector<std::string> header = {"Feature group"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);
  std::vector<std::vector<std::string>> rows(kGroups.size());
  for (size_t i = 0; i < kGroups.size(); ++i) rows[i] = {kGroups[i].name};

  for (const std::string& dataset : datasets) {
    marioh::eval::PreparedDataset data = marioh::eval::PrepareDataset(
        dataset, /*multiplicity_reduced=*/true, /*seed=*/42);
    marioh::core::FeatureExtractor extractor(
        marioh::core::FeatureMode::kMultiplicityAware);

    // Labeled cliques of the source graph: hyperedges positive, maximal
    // cliques + random sub-cliques negative.
    std::vector<NodeSet> cliques;
    std::vector<double> labels;
    std::unordered_set<NodeSet, marioh::util::VectorHash> hyperedges;
    for (const auto& [e, m] : data.source->edges()) {
      (void)m;
      hyperedges.insert(e);
      cliques.push_back(e);
      labels.push_back(1.0);
    }
    marioh::util::Rng rng(7);
    for (const NodeSet& q : marioh::EnumerateMaximalCliques(*data.g_source).cliques.ToNodeSets()) {
      if (hyperedges.count(q) > 0) continue;
      cliques.push_back(q);
      labels.push_back(0.0);
      if (q.size() > 2) {
        NodeSet sub = rng.SampleWithoutReplacement(
            q, 2 + rng.UniformIndex(q.size() - 2));
        marioh::Canonicalize(&sub);
        if (sub.size() >= 2 && hyperedges.count(sub) == 0) {
          cliques.push_back(sub);
          labels.push_back(0.0);
        }
      }
    }

    marioh::la::Matrix x(cliques.size(), extractor.dim());
    for (size_t i = 0; i < cliques.size(); ++i) {
      marioh::la::Vector f =
          extractor.Extract(*data.g_source, cliques[i], true);
      std::copy(f.begin(), f.end(), x.Row(i));
    }
    marioh::ml::StandardScaler scaler;
    scaler.Fit(x);
    scaler.Transform(&x);
    marioh::ml::MlpOptions options;
    options.seed = 11;
    marioh::ml::Mlp mlp(extractor.dim(), 1, options);
    mlp.Fit(x, labels);
    double base = Accuracy(mlp, x, labels);

    for (size_t gi = 0; gi < kGroups.size(); ++gi) {
      // Permute the group's columns across rows and measure the drop.
      marioh::la::Matrix permuted = x;
      std::vector<size_t> perm(x.rows());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      marioh::util::Rng shuffle_rng(100 + gi);
      shuffle_rng.Shuffle(&perm);
      for (size_t i = 0; i < x.rows(); ++i) {
        for (size_t j = kGroups[gi].begin; j < kGroups[gi].end; ++j) {
          permuted(i, j) = x(perm[i], j);
        }
      }
      double dropped = base - Accuracy(mlp, permuted, labels);
      rows[gi].push_back(marioh::util::TextTable::Num(dropped, 4));
    }
    std::cerr << "[importance] " << dataset << " base accuracy " << base
              << "\n";
  }
  for (auto& row : rows) table.AddRow(row);
  std::cout << table.Render() << std::endl;
  return 0;
}
