// Fig. 7: scalability — runtime of MARIOH's Filtering and
// BidirectionalSearch steps on HyperCL-generated hypergraphs of growing
// size (DBLP-like statistics), with the log-log slope vs |E_G| reported.
// The paper finds both steps scale near-linearly (slope ~ 1).
//
// Usage: bench_fig7_scalability [--quick] [--threads N]
//
// --threads N runs the reconstruction's hot kernels on N threads
// (0 = all cores); results are identical for any value, only the
// timings change.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/marioh.hpp"
#include "eval/harness.hpp"
#include "gen/hypercl.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double LogLogSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  // Least-squares slope of log(y) on log(x), ignoring non-positive times.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0) continue;
    double lx = std::log(x[i]);
    double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom != 0 ? (static_cast<double>(n) * sxy - sx * sy) / denom
                    : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }

  // Train once on the DBLP-like profile (as in the paper, training is
  // independent of the scaled target size).
  marioh::eval::PreparedDataset train_data;
  {
    marioh::gen::GeneratedDataset dblp =
        marioh::gen::Generate(marioh::gen::ProfileByName("dblp"), 42);
    marioh::util::Rng rng(43);
    marioh::gen::SourceTargetSplit split = marioh::gen::SplitHypergraph(
        dblp.hypergraph.MultiplicityReduced(), &rng, 0.5);
    train_data.source = std::make_shared<const marioh::Hypergraph>(
        std::move(split.source));
    train_data.g_source = std::make_shared<const marioh::ProjectedGraph>(
        train_data.source->Project());
  }
  marioh::core::MariohOptions options;
  options.num_threads = threads;
  marioh::core::Marioh marioh(options);
  marioh.Train(*train_data.g_source, *train_data.source);

  std::vector<size_t> scales =
      quick ? std::vector<size_t>{1, 2, 4} : std::vector<size_t>{1, 2, 4,
                                                                 8, 16};
  const size_t base_nodes = 1000;
  const size_t base_edges = 600;

  marioh::util::TextTable table(
      "Fig. 7: scalability of Filtering and BidirectionalSearch");
  table.SetHeader({"|E_G|", "Filtering (s)", "Bidirectional (s)",
                   "Total (s)"});
  std::vector<double> edge_counts, filter_times, bidir_times;

  for (size_t scale : scales) {
    marioh::util::Rng rng(100 + scale);
    marioh::Hypergraph h = marioh::gen::HyperClLike(
        base_nodes * scale, base_edges * scale, /*size_mean=*/3.0,
        /*degree_skew=*/0.6, &rng);
    marioh::ProjectedGraph g = h.Project();

    // Fresh reconstructor sharing the trained classifier is not exposed;
    // re-time stages via a dedicated run. Stage timers accumulate, so
    // compute deltas.
    double filter_before = marioh.stage_timer().Get("filtering");
    double bidir_before = marioh.stage_timer().Get("bidirectional");
    marioh.Reconstruct(g);
    double filter_t = marioh.stage_timer().Get("filtering") - filter_before;
    double bidir_t =
        marioh.stage_timer().Get("bidirectional") - bidir_before;

    edge_counts.push_back(static_cast<double>(g.num_edges()));
    filter_times.push_back(filter_t);
    bidir_times.push_back(bidir_t);
    table.AddRow({std::to_string(g.num_edges()),
                  marioh::util::TextTable::Num(filter_t, 4),
                  marioh::util::TextTable::Num(bidir_t, 4),
                  marioh::util::TextTable::Num(filter_t + bidir_t, 4)});
    std::cerr << "[fig7] scale " << scale << ": " << g.num_edges()
              << " edges, filter " << filter_t << "s, bidir " << bidir_t
              << "s\n";
  }
  std::cout << table.Render();
  std::cout << "log-log slope (filtering):     "
            << marioh::util::TextTable::Num(
                   LogLogSlope(edge_counts, filter_times), 3)
            << "  (1.0 = linear)\n";
  std::cout << "log-log slope (bidirectional): "
            << marioh::util::TextTable::Num(
                   LogLogSlope(edge_counts, bidir_times), 3)
            << "  (1.0 = linear)\n";
  return 0;
}
