// Table VI: semi-supervised learning — MARIOH trained with only 10%, 20%,
// 50%, and 100% of the source hyperedges, against fully supervised
// baselines, on the DBLP-, Hosts-, and Enron-like profiles.
//
// Usage: bench_table6_semisup [--quick]

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  marioh::eval::AccuracyOptions options;
  options.multiplicity_reduced = true;
  options.num_seeds = quick ? 1 : 3;
  options.time_budget_seconds = quick ? 30.0 : 120.0;

  std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"hosts", "enron"}
            : std::vector<std::string>{"dblp", "hosts", "enron"};

  marioh::util::TextTable table(
      "Table VI: semi-supervised Jaccard (x100) vs supervision ratio");
  std::vector<std::string> header = {"Method"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  table.SetHeader(header);

  // Fully supervised baselines for context.
  for (const std::string method :
       {"Bayesian-MDL", "SHyRe-Motif", "SHyRe-Count"}) {
    std::vector<std::string> row = {method};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy(method, dataset, options);
      row.push_back(r.out_of_time
                        ? "OOT"
                        : marioh::util::TextTable::MeanStd(r.mean,
                                                           r.std_dev));
      std::cerr << "[table6] " << method << " / " << dataset << " -> "
                << row.back() << "\n";
    }
    table.AddRow(row);
  }

  // MARIOH at decreasing supervision fractions.
  for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
    marioh::eval::AccuracyOptions semi = options;
    semi.marioh_base.classifier.supervision_fraction = fraction;
    std::vector<std::string> row = {
        "MARIOH (" + std::to_string(static_cast<int>(fraction * 100)) +
        "%)"};
    for (const std::string& dataset : datasets) {
      marioh::eval::AccuracyResult r =
          marioh::eval::RunAccuracy("MARIOH", dataset, semi);
      row.push_back(r.out_of_time
                        ? "OOT"
                        : marioh::util::TextTable::MeanStd(r.mean,
                                                           r.std_dev));
      std::cerr << "[table6] MARIOH@" << fraction << " / " << dataset
                << " -> " << row.back() << "\n";
    }
    table.AddRow(row);
  }
  std::cout << table.Render() << std::endl;
  return 0;
}
