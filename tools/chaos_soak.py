#!/usr/bin/env python3
"""Chaos soak for marioh_served: net_soak under rotating fault injection.

Spawns the daemon with failpoint administration enabled, a fixed
MARIOH_FAILPOINTS_SEED (so a failing schedule replays exactly), and the
job watchdog armed, then drives four phases of traffic over concurrent
TCP connections while rotating the failpoint schedule between them:

  A  retry storm      session.reconstruct=error|p=0.3 while every client
                      submits with retries=4 — jobs must end DONE (the
                      retry path healed them) or, rarely, FAILED with the
                      transient status (retries exhausted: *accounted*,
                      not crashed).
  B  wire storm       net.read=error|p=0.2,net.write=short|p=0.2 —
                      simulated EAGAIN and 1-byte short writes; every
                      request must still complete exactly once.
  C  wedged job       session.reconstruct=delay:30000|count=1 — the
                      watchdog must detect the frozen heartbeat and
                      cancel the job within its bounded latency instead
                      of the 30 s stall.
  D  recovery         failpoints off — the same daemon, with faults
                      cleared, serves plain traffic flawlessly again.

A fifth phase exercises durability past process death on a fresh daemon
pair sharing one --journal-dir:

  E  kill-mid-load    a 1-worker daemon wedges its worker on a 30 s
                      delay failpoint, accepts a backlog of jobs, and is
                      SIGKILLed — no destructor, no flush. A second
                      daemon on the same journal dir must report every
                      accepted-but-unfinished job recovered (banner
                      recovered=N, stats jobs_recovered=N), run each to
                      DONE under its ORIGINAL job id, and keep the
                      counter partition exact: zero accepted jobs lost.

Then SIGTERMs the daemon and asserts from its --stats-json snapshot:

  * >= 200 requests served across >= 6 connections, zero crashes,
  * the service counter partition holds:
      accepted == done + failed + cancelled + deadline_exceeded
                  + queued + running
  * the fault machinery actually engaged: faults_injected > 0,
    jobs_retried > 0, jobs_stalled >= 1,
  * clean exit 0.

Between phases the harness also scrapes the `metrics` verb and asserts
the same partition holds *live* from the Prometheus exposition — chaos
must never produce even a transiently incoherent counter snapshot.

Usage: chaos_soak.py /path/to/marioh_served [stats.json]

Exit status 0 on success; nonzero with a diagnostic on any failure.
No dependencies beyond the Python 3 standard library.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

CONNECTIONS = 8          # concurrent clients per phase (>= 6 required)
JOBS_PHASE_A = 5         # retry-storm jobs per connection
JOBS_PHASE_B = 3         # wire-storm jobs per connection
JOBS_PHASE_D = 2         # recovery jobs per connection
JOBS_PHASE_E = 6         # backlog accepted, then SIGKILLed mid-load
FAILPOINT_SEED = "427"   # fixed: a failing run replays bit-for-bit
STALL_TIMEOUT = 1.0      # watchdog budget for phase C (seconds)


def fail(message):
    print("chaos_soak: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


class Client:
    """One line-protocol conversation over a fresh TCP connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=120)
        self.buf = b""
        self.requests = 0
        self.greeting = self.read_line()
        if not self.greeting.startswith("ok marioh_served client=conn-"):
            fail("bad greeting: %r" % self.greeting)

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail("connection closed mid-conversation")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def request(self, line):
        self.sock.sendall((line + "\n").encode())
        self.requests += 1
        reply = self.read_line()
        if not (reply.startswith("ok ") or reply.startswith("error ")):
            fail("malformed reply to %r: %r" % (line, reply))
        return reply

    def close(self):
        self.sock.close()

    def scrape_metrics(self):
        """Scrapes the `metrics` verb: `ok metrics lines=N` header, then N
        Prometheus text lines; returns {series: float} minus comments."""
        reply = self.request("metrics")
        if not reply.startswith("ok metrics lines="):
            fail("bad metrics header: %r" % reply)
        count = int(reply.split("lines=", 1)[1])
        series = {}
        for _ in range(count):
            line = self.read_line()
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            series[name] = float(value)
        return series


def assert_live_partition(client, where):
    """Scrapes the metrics endpoint and asserts the counter partition
    holds at this instant — mid-chaos, not just at shutdown."""
    series = client.scrape_metrics()
    terminal = (series["marioh_jobs_done_total"] +
                series["marioh_jobs_failed_total"] +
                series["marioh_jobs_cancelled_total"] +
                series["marioh_jobs_deadline_exceeded_total"] +
                series["marioh_jobs_queued"] +
                series["marioh_jobs_running"])
    if series["marioh_jobs_accepted_total"] != terminal:
        fail("%s: live partition violated: accepted=%s vs sum=%s"
             % (where, series["marioh_jobs_accepted_total"], terminal))
    print("chaos_soak: %s: live partition holds (accepted=%d, "
          "faults_injected=%d)"
          % (where, series["marioh_jobs_accepted_total"],
             series["marioh_faults_injected_total"]))


class Tally:
    """Thread-safe request / outcome accounting across worker threads."""

    def __init__(self):
        self.lock = threading.Lock()
        self.requests = 0
        self.done = 0
        self.failed_unavailable = 0


def submit_and_wait(client, tally, submit_line, allow_exhausted):
    reply = client.request(submit_line)
    if not reply.startswith("ok job "):
        fail("submit rejected: %r" % reply)
    job_id = reply.split()[2]
    reply = client.request("wait " + job_id)
    if "state=DONE" in reply:
        with tally.lock:
            tally.done += 1
    elif allow_exhausted and "state=FAILED" in reply and "UNAVAILABLE" in reply:
        # Retries exhausted under an unlucky p= draw sequence: the job
        # failed *cleanly*, carrying its transient status — that is the
        # accounting contract, not a soak failure.
        with tally.lock:
            tally.failed_unavailable += 1
    else:
        fail("job %s bad terminal reply: %r" % (job_id, reply))
    client.request("poll " + job_id)
    client.request("forget " + job_id)


def drive(port, index, tally, errors, jobs, submit_suffix, allow_exhausted):
    try:
        client = Client(port)
        for j in range(jobs):
            seed = index * 1000 + j + 1
            submit_and_wait(
                client, tally,
                "submit method=MaxClique target=soak.target "
                "truth=soak.truth seed=%d%s" % (seed, submit_suffix),
                allow_exhausted)
        # Protocol errors stay answered mid-chaos, never fatal.
        reply = client.request("definitely-not-a-verb")
        if not reply.startswith("error "):
            fail("unknown verb not an error: %r" % reply)
        reply = client.request("quit")
        if reply != "ok bye":
            fail("quit reply: %r" % reply)
        with tally.lock:
            tally.requests += client.requests
        client.close()
    except SystemExit:
        # fail() inside a worker thread only kills the thread; record it
        # so the main thread turns it into a process-level failure.
        errors.append("connection %d: assertion failed (see stderr)" % index)
    except Exception as exc:  # noqa: BLE001 - surface everything
        errors.append("connection %d: %r" % (index, exc))


def run_phase(name, port, tally, jobs, submit_suffix="",
              allow_exhausted=False):
    print("chaos_soak: phase %s: %d connections x %d jobs%s"
          % (name, CONNECTIONS, jobs,
             " " + submit_suffix if submit_suffix else ""))
    errors = []
    threads = [threading.Thread(target=drive,
                                args=(port, i, tally, errors, jobs,
                                      submit_suffix, allow_exhausted))
               for i in range(CONNECTIONS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        fail("phase %s: %s" % (name, "; ".join(errors)))


def read_banner(daemon):
    """Reads the daemon's startup banner and returns its key=value fields."""
    banner = daemon.stdout.readline().strip()
    fields = dict(f.split("=", 1) for f in banner.split()[2:] if "=" in f)
    if not banner.startswith("ok marioh_served") or "port" not in fields:
        fail("bad banner: %r" % banner)
    return fields


def parse_stats_line(reply):
    """Turns an `ok stats k=v ...` reply into a {key: int} dict."""
    fields = {}
    for token in reply.split():
        if "=" in token:
            key, value = token.split("=", 1)
            try:
                fields[key] = int(value)
            except ValueError:
                pass
    return fields


def run_kill_phase(binary, stats_path):
    """Phase E: SIGKILL a journaling daemon mid-load; its successor on the
    same journal dir must lose zero accepted jobs."""
    journal_dir = stats_path + ".journal"
    shutil.rmtree(journal_dir, ignore_errors=True)
    print("chaos_soak: phase E (kill-mid-load): %d jobs, then SIGKILL"
          % JOBS_PHASE_E)

    # Daemon A: one worker, wedged on a 30 s delay, accepts a backlog.
    # Every `ok job N` reply is preceded by an fsynced journal append, so
    # the SIGKILL below — no destructor, no flush — must not lose any.
    daemon = subprocess.Popen(
        [binary, "--port", "0", "--workers", "1",
         "--journal-dir", journal_dir, "--allow-failpoint-admin"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    ids = []
    try:
        port = int(read_banner(daemon)["port"])
        admin = Client(port)
        reply = admin.request("gen soak crime 42")
        if not reply.startswith("ok generated"):
            fail("phase E gen failed: %r" % reply)
        reply = admin.request("failpoints session.reconstruct=delay:30000")
        if not reply.startswith("ok failpoints"):
            fail("phase E failpoint admin rejected: %r" % reply)
        for s in range(JOBS_PHASE_E):
            reply = admin.request(
                "submit method=MaxClique target=soak.target "
                "truth=soak.truth seed=%d client=survivor" % (s + 1))
            if not reply.startswith("ok job "):
                fail("phase E submit rejected: %r" % reply)
            ids.append(reply.split()[2])
    finally:
        daemon.kill()  # SIGKILL: the worker dies mid-delay, queue and all
        daemon.wait()

    # Daemon B: same journal dir, no faults. The dataset comes back via
    # the datasets.manifest gen recipe, then every accepted-but-unfinished
    # job is re-admitted under its original id.
    daemon = subprocess.Popen(
        [binary, "--port", "0", "--workers", "2",
         "--journal-dir", journal_dir, "--stats-json", stats_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        fields = read_banner(daemon)
        if fields.get("recovered") != str(JOBS_PHASE_E):
            fail("phase E banner recovered=%s; expected %d (ids %s)"
                 % (fields.get("recovered"), JOBS_PHASE_E, ids))
        port = int(fields["port"])
        client = Client(port)
        for job_id in ids:
            reply = client.request("wait " + job_id)
            if "state=DONE" not in reply:
                fail("phase E recovered job %s did not finish: %r"
                     % (job_id, reply))
        stats = parse_stats_line(client.request("stats"))
        if stats.get("jobs_recovered") != JOBS_PHASE_E:
            fail("phase E stats jobs_recovered=%s; expected %d"
                 % (stats.get("jobs_recovered"), JOBS_PHASE_E))
        client.request("quit")
        client.close()

        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("phase E daemon did not exit within 60s of SIGTERM")
        if daemon.returncode != 0:
            fail("phase E daemon exit status %d" % daemon.returncode)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    with open(stats_path) as f:
        snapshot = json.load(f)
    terminal = (snapshot["done"] + snapshot["failed"] +
                snapshot["cancelled"] + snapshot["deadline_exceeded"] +
                snapshot["queued"] + snapshot["running"])
    if snapshot["accepted"] != terminal:
        fail("phase E partition violated: accepted=%d vs sum=%d in %s"
             % (snapshot["accepted"], terminal, json.dumps(snapshot)))
    if snapshot["jobs_recovered"] != JOBS_PHASE_E:
        fail("phase E snapshot jobs_recovered=%d; expected %d"
             % (snapshot["jobs_recovered"], JOBS_PHASE_E))
    if snapshot["done"] < JOBS_PHASE_E:
        fail("phase E snapshot done=%d < %d recovered jobs"
             % (snapshot["done"], JOBS_PHASE_E))
    shutil.rmtree(journal_dir, ignore_errors=True)
    print("chaos_soak: phase E: OK — %d jobs survived SIGKILL, zero lost, "
          "all DONE under original ids, partition holds" % JOBS_PHASE_E)


def main():
    if len(sys.argv) < 2:
        fail("usage: chaos_soak.py /path/to/marioh_served [stats.json]")
    binary = sys.argv[1]
    stats_path = sys.argv[2] if len(sys.argv) > 2 else "chaos_soak_stats.json"

    env = dict(os.environ)
    env["MARIOH_FAILPOINTS_SEED"] = FAILPOINT_SEED
    daemon = subprocess.Popen(
        [binary, "--port", "0", "--workers", "2",
         "--max-connections", "32", "--job-ttl", "600",
         "--stall-timeout", str(STALL_TIMEOUT),
         "--allow-failpoint-admin",
         "--stats-json", stats_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        banner = daemon.stdout.readline().strip()
        fields = dict(f.split("=", 1) for f in banner.split()[2:] if "=" in f)
        if not banner.startswith("ok marioh_served") or "port" not in fields:
            fail("bad banner: %r" % banner)
        port = int(fields["port"])

        # The admin connection seeds the shared dataset and rotates the
        # failpoint schedule between phases.
        admin = Client(port)
        tally = Tally()
        reply = admin.request("gen soak crime 42")
        if not reply.startswith("ok generated"):
            fail("gen failed: %r" % reply)

        # Phase A: transient reconstruct failures, healed by retries.
        reply = admin.request("failpoints session.reconstruct=error|p=0.3")
        if not reply.startswith("ok failpoints"):
            fail("failpoint admin rejected: %r" % reply)
        run_phase("A (retry storm)", port, tally, JOBS_PHASE_A,
                  " retries=4 backoff=0.01", allow_exhausted=True)
        assert_live_partition(admin, "after phase A")

        # Phase B: the wire itself misbehaves — injected EAGAIN on reads,
        # 1-byte short writes — yet every request completes exactly once.
        # (`failpoints` merges specs, so phase A's point is cleared first.)
        admin.request("failpoints off")
        reply = admin.request(
            "failpoints net.read=error|p=0.2,net.write=short|p=0.2")
        if not reply.startswith("ok failpoints"):
            fail("failpoint admin rejected: %r" % reply)
        run_phase("B (wire storm)", port, tally, JOBS_PHASE_B)
        admin.request("failpoints off")
        assert_live_partition(admin, "after phase B")

        # Phase C: one wedged job; the watchdog must cut the 30 s stall
        # down to ~stall_timeout.
        reply = admin.request(
            "failpoints session.reconstruct=delay:30000|count=1")
        if not reply.startswith("ok failpoints"):
            fail("failpoint admin rejected: %r" % reply)
        wedge = Client(port)
        t0 = time.monotonic()
        reply = wedge.request("submit method=MaxClique target=soak.target")
        if not reply.startswith("ok job "):
            fail("wedge submit rejected: %r" % reply)
        wedge_id = reply.split()[2]
        reply = wedge.request("wait " + wedge_id)
        elapsed = time.monotonic() - t0
        if "state=CANCELLED" not in reply or "stalled" not in reply:
            fail("wedged job not watchdog-cancelled: %r" % reply)
        if elapsed > 10 * STALL_TIMEOUT:
            fail("watchdog took %.1fs to cancel a %.1fs-stall-timeout job"
                 % (elapsed, STALL_TIMEOUT))
        print("chaos_soak: phase C (wedge): cancelled after %.2fs" % elapsed)
        wedge.request("quit")
        with tally.lock:
            tally.requests += wedge.requests
        wedge.close()

        # Phase D: faults cleared — the survivor serves plain traffic.
        admin.request("failpoints off")
        run_phase("D (recovery)", port, tally, JOBS_PHASE_D)
        assert_live_partition(admin, "after phase D")

        stats = admin.request("stats")
        print("chaos_soak: final stats: " + stats)
        admin.request("quit")
        with tally.lock:
            tally.requests += admin.requests
        admin.close()

        total_requests = tally.requests
        if total_requests < 200:
            fail("only %d requests driven; need >= 200" % total_requests)

        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not exit within 60s of SIGTERM")
        if daemon.returncode != 0:
            fail("daemon exit status %d" % daemon.returncode)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if not os.path.exists(stats_path):
        fail("daemon exited without writing %s" % stats_path)
    with open(stats_path) as f:
        snapshot = json.load(f)

    terminal = (snapshot["done"] + snapshot["failed"] +
                snapshot["cancelled"] + snapshot["deadline_exceeded"] +
                snapshot["queued"] + snapshot["running"])
    if snapshot["accepted"] != terminal:
        fail("partition violated: accepted=%d vs partition sum=%d in %s"
             % (snapshot["accepted"], terminal, json.dumps(snapshot)))
    if snapshot["faults_injected"] <= 0:
        fail("no faults were injected — the chaos schedule never engaged")
    if snapshot["jobs_retried"] <= 0:
        fail("no retries recorded despite the phase-A error storm")
    if snapshot["jobs_stalled"] < 1:
        fail("the phase-C wedge was never declared stalled")
    if snapshot["connections_total"] < 6:
        fail("expected >= 6 connections, snapshot says %d"
             % snapshot["connections_total"])
    if snapshot["lines_served"] < 200:
        fail("daemon served %d lines; harness drove %d requests"
             % (snapshot["lines_served"], total_requests))

    print("chaos_soak: phases A-D OK — %d requests over %d connections, "
          "%d faults injected, %d retries (%d jobs healed, %d exhausted "
          "cleanly), %d stall cancelled, partition holds, clean shutdown "
          "(%s)"
          % (total_requests, snapshot["connections_total"],
             snapshot["faults_injected"], snapshot["jobs_retried"],
             tally.done, tally.failed_unavailable,
             snapshot["jobs_stalled"], stats_path))

    run_kill_phase(binary, stats_path + ".recovery")
    print("chaos_soak: OK — all phases passed")


if __name__ == "__main__":
    main()
