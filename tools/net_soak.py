#!/usr/bin/env python3
"""Socketed soak for marioh_served.

Spawns the daemon on an ephemeral port, drives ~50 requests across
several concurrent TCP connections (gen / submit / wait / poll / stats /
forget plus deliberate protocol errors), then SIGTERMs it and asserts:

  * every request got a well-formed one-line reply (ok/error, never EOF
    mid-conversation),
  * the daemon exits 0 and writes its --stats-json snapshot,
  * the service counter partition holds in that snapshot:
      accepted == done + failed + cancelled + deadline_exceeded
                  + queued + running
    (all jobs terminal at shutdown, and rejected submits stay out of
    `accepted`),
  * the same partition holds *live*, scraped from the `metrics` verb
    mid-run while worker connections are still submitting — the
    registry's collection hooks publish mutex-coherent snapshots, so
    the invariant is exact at any instant, not just at quiescence,
  * with a metrics.json argument, the daemon also writes its full
    --metrics-json observability snapshot and it parses as JSON with
    the counters/gauges/histograms/spans sections.

Usage: net_soak.py /path/to/marioh_served [stats.json] [metrics.json]

Exit status 0 on success; nonzero with a diagnostic on any failure.
No dependencies beyond the Python 3 standard library.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

CONNECTIONS = 5
JOBS_PER_CONNECTION = 3  # gen is shared; each conn submits+waits this many


def fail(message):
    print("net_soak: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


class Client:
    """One line-protocol conversation over a fresh TCP connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.buf = b""
        self.greeting = self.read_line()
        if not self.greeting.startswith("ok marioh_served client=conn-"):
            fail("bad greeting: %r" % self.greeting)

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail("connection closed mid-conversation")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def request(self, line):
        self.sock.sendall((line + "\n").encode())
        reply = self.read_line()
        if not (reply.startswith("ok ") or reply.startswith("error ")):
            fail("malformed reply to %r: %r" % (line, reply))
        return reply

    def close(self):
        self.sock.close()

    def scrape_metrics(self):
        """Scrapes the `metrics` verb: reads the `ok metrics lines=N`
        header, then exactly N Prometheus text lines, and returns
        {series_signature: float} (comment lines skipped)."""
        reply = self.request("metrics")
        if not reply.startswith("ok metrics lines="):
            fail("bad metrics header: %r" % reply)
        count = int(reply.split("lines=", 1)[1])
        series = {}
        for _ in range(count):
            line = self.read_line()
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            series[name] = float(value)
        return series


def assert_partition(series, where):
    """accepted == terminals + queued + running, exactly, in a metrics
    scrape (counters are integers, so float equality is exact)."""
    terminal = (series["marioh_jobs_done_total"] +
                series["marioh_jobs_failed_total"] +
                series["marioh_jobs_cancelled_total"] +
                series["marioh_jobs_deadline_exceeded_total"] +
                series["marioh_jobs_queued"] +
                series["marioh_jobs_running"])
    if series["marioh_jobs_accepted_total"] != terminal:
        fail("%s: live partition violated: accepted=%s vs sum=%s"
             % (where, series["marioh_jobs_accepted_total"], terminal))


def drive_connection(port, index, errors):
    try:
        client = Client(port)
        for j in range(JOBS_PER_CONNECTION):
            seed = index * 100 + j + 1
            reply = client.request(
                "submit method=MaxClique target=soak.target "
                "truth=soak.truth seed=%d" % seed)
            if not reply.startswith("ok job "):
                fail("submit rejected: %r" % reply)
            job_id = reply.split()[2]
            reply = client.request("wait " + job_id)
            if "state=DONE" not in reply:
                fail("job %s did not finish DONE: %r" % (job_id, reply))
            client.request("poll " + job_id)
            client.request("forget " + job_id)
        # Protocol errors must be answered, not fatal.
        reply = client.request("definitely-not-a-verb")
        if not reply.startswith("error "):
            fail("unknown verb not an error: %r" % reply)
        client.request("stats")
        reply = client.request("quit")
        if reply != "ok bye":
            fail("quit reply: %r" % reply)
        client.close()
    except SystemExit:
        # fail() inside a worker thread only kills the thread; record it
        # so the main thread turns it into a process-level failure.
        errors.append("connection %d: assertion failed (see stderr)" % index)
    except Exception as exc:  # noqa: BLE001 - surface everything
        errors.append("connection %d: %r" % (index, exc))


def main():
    if len(sys.argv) < 2:
        fail("usage: net_soak.py /path/to/marioh_served "
             "[stats.json] [metrics.json]")
    binary = sys.argv[1]
    stats_path = sys.argv[2] if len(sys.argv) > 2 else "net_soak_stats.json"
    metrics_path = sys.argv[3] if len(sys.argv) > 3 else ""

    command = [binary, "--port", "0", "--workers", "2",
               "--max-connections", "32", "--job-ttl", "600",
               "--stats-json", stats_path]
    if metrics_path:
        command += ["--metrics-json", metrics_path]
    daemon = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = daemon.stdout.readline().strip()
        # "ok marioh_served port=NNNN workers=..."
        fields = dict(f.split("=", 1) for f in banner.split()[2:] if "=" in f)
        if not banner.startswith("ok marioh_served") or "port" not in fields:
            fail("bad banner: %r" % banner)
        port = int(fields["port"])

        # One connection seeds the shared dataset for everyone.
        seeder = Client(port)
        reply = seeder.request("gen soak crime 42")
        if not reply.startswith("ok generated"):
            fail("gen failed: %r" % reply)

        errors = []
        threads = [threading.Thread(target=drive_connection,
                                    args=(port, i, errors))
                   for i in range(CONNECTIONS)]
        for t in threads:
            t.start()
        # Scrape the metrics endpoint while the workers are mid-flight:
        # the partition must hold at any instant, not just at the end.
        live = seeder.scrape_metrics()
        assert_partition(live, "mid-run scrape")
        print("net_soak: mid-run partition holds (accepted=%d)"
              % live["marioh_jobs_accepted_total"])
        for t in threads:
            t.join()
        if errors:
            fail("; ".join(errors))

        final = seeder.scrape_metrics()
        assert_partition(final, "post-run scrape")
        if final["marioh_process_rss_bytes"] <= 0:
            fail("process RSS gauge missing from metrics scrape")

        stats = seeder.request("stats")
        print("net_soak: final stats: " + stats)
        seeder.request("quit")
        seeder.close()

        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not exit within 60s of SIGTERM")
        if daemon.returncode != 0:
            fail("daemon exit status %d" % daemon.returncode)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    if not os.path.exists(stats_path):
        fail("daemon exited without writing %s" % stats_path)
    with open(stats_path) as f:
        snapshot = json.load(f)

    terminal = (snapshot["done"] + snapshot["failed"] +
                snapshot["cancelled"] + snapshot["deadline_exceeded"] +
                snapshot["queued"] + snapshot["running"])
    if snapshot["accepted"] != terminal:
        fail("partition violated: accepted=%d vs partition sum=%d in %s"
             % (snapshot["accepted"], terminal, json.dumps(snapshot)))
    expected_jobs = CONNECTIONS * JOBS_PER_CONNECTION
    if snapshot["accepted"] < expected_jobs:
        fail("expected >= %d accepted jobs, snapshot says %d"
             % (expected_jobs, snapshot["accepted"]))
    if snapshot["connections_total"] < CONNECTIONS + 1:
        fail("expected >= %d connections, snapshot says %d"
             % (CONNECTIONS + 1, snapshot["connections_total"]))

    if metrics_path:
        if not os.path.exists(metrics_path):
            fail("daemon exited without writing %s" % metrics_path)
        with open(metrics_path) as f:
            metrics = json.load(f)
        for section in ("counters", "gauges", "histograms", "spans"):
            if section not in metrics:
                fail("metrics snapshot missing %r section" % section)
        counters = {m["name"]: m["value"] for m in metrics["counters"]}
        if counters.get("marioh_jobs_accepted_total") != snapshot["accepted"]:
            fail("metrics snapshot accepted=%s disagrees with stats %d"
             % (counters.get("marioh_jobs_accepted_total"),
                snapshot["accepted"]))
        print("net_soak: metrics snapshot OK (%d counters, %d spans)"
              % (len(metrics["counters"]), len(metrics["spans"])))

    print("net_soak: OK — %d jobs over %d connections, partition holds, "
          "clean shutdown (%s)"
          % (snapshot["accepted"], snapshot["connections_total"], stats_path))


if __name__ == "__main__":
    main()
