// Unit tests for the ML substrate: standard scaler, MLP training on
// separable problems (sigmoid and softmax heads), and the GCN.

#include <gtest/gtest.h>

#include <cmath>

#include "hypergraph/projected_graph.hpp"
#include "ml/gcn.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "util/rng.hpp"

namespace marioh::ml {
namespace {

TEST(StandardScaler, CentersAndScales) {
  la::Matrix x(4, 2);
  x(0, 0) = 1; x(1, 0) = 3; x(2, 0) = 5; x(3, 0) = 7;   // mean 4
  x(0, 1) = 10; x(1, 1) = 10; x(2, 1) = 10; x(3, 1) = 10;  // constant
  StandardScaler scaler;
  scaler.Fit(x);
  EXPECT_DOUBLE_EQ(scaler.mean()[0], 4.0);
  la::Matrix t = x;
  scaler.Transform(&t);
  double col_mean = (t(0, 0) + t(1, 0) + t(2, 0) + t(3, 0)) / 4.0;
  EXPECT_NEAR(col_mean, 0.0, 1e-12);
  // Constant dimension: centered but not divided by ~0.
  EXPECT_NEAR(t(0, 1), 0.0, 1e-12);
}

TEST(StandardScaler, TransformSingleVector) {
  la::Matrix x(2, 1);
  x(0, 0) = 0;
  x(1, 0) = 2;
  StandardScaler scaler;
  scaler.Fit(x);
  la::Vector v{2.0};
  scaler.Transform(&v);
  EXPECT_NEAR(v[0], 1.0, 1e-12);  // (2 - 1) / 1
}

TEST(Mlp, LearnsLinearlySeparable2D) {
  // y = 1 iff x0 + x1 > 0.
  util::Rng rng(1);
  const size_t n = 400;
  la::Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    y[i] = (x(i, 0) + x(i, 1) > 0) ? 1.0 : 0.0;
  }
  MlpOptions options;
  options.hidden = {16};
  options.epochs = 120;
  options.learning_rate = 3e-3;
  options.seed = 2;
  Mlp mlp(2, 1, options);
  double loss = mlp.Fit(x, y);
  EXPECT_LT(loss, 0.15);
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    double p = mlp.Predict({x(i, 0), x(i, 1)});
    if ((p > 0.5) == (y[i] > 0.5)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.95);
}

TEST(Mlp, LearnsXorWithHiddenLayer) {
  la::Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  std::vector<double> y{0, 1, 1, 0};
  MlpOptions options;
  options.hidden = {16};
  options.epochs = 800;
  options.batch_size = 4;
  options.learning_rate = 5e-3;
  options.seed = 3;
  Mlp mlp(2, 1, options);
  mlp.Fit(x, y);
  EXPECT_LT(mlp.Predict({0, 0}), 0.5);
  EXPECT_GT(mlp.Predict({0, 1}), 0.5);
  EXPECT_GT(mlp.Predict({1, 0}), 0.5);
  EXPECT_LT(mlp.Predict({1, 1}), 0.5);
}

TEST(Mlp, SoftmaxLearnsThreeClasses) {
  // Three well-separated blobs.
  util::Rng rng(4);
  const size_t per = 60;
  la::Matrix x(3 * per, 2);
  std::vector<double> y(3 * per);
  const double centers[3][2] = {{0, 0}, {5, 5}, {-5, 5}};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per; ++i) {
      size_t row = c * per + i;
      x(row, 0) = centers[c][0] + rng.Normal(0, 0.5);
      x(row, 1) = centers[c][1] + rng.Normal(0, 0.5);
      y[row] = static_cast<double>(c);
    }
  }
  MlpOptions options;
  options.hidden = {16};
  options.head = Head::kSoftmax;
  options.epochs = 150;
  options.learning_rate = 5e-3;
  options.seed = 5;
  Mlp mlp(2, 3, options);
  mlp.Fit(x, y);
  std::vector<uint32_t> pred = mlp.PredictClasses(x);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == static_cast<uint32_t>(y[i])) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.98);
}

TEST(Mlp, PredictProbaSumsToOne) {
  MlpOptions options;
  options.head = Head::kSoftmax;
  options.seed = 6;
  Mlp mlp(3, 4, options);
  la::Vector probs = mlp.PredictProba({0.1, -0.2, 0.3});
  double sum = 0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, DeterministicGivenSeed) {
  util::Rng rng(8);
  la::Matrix x(50, 3);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    y[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  MlpOptions options;
  options.epochs = 10;
  options.seed = 99;
  Mlp a(3, 1, options);
  Mlp b(3, 1, options);
  a.Fit(x, y);
  b.Fit(x, y);
  for (int t = 0; t < 5; ++t) {
    la::Vector probe{0.1 * t, -0.2 * t, 0.05};
    EXPECT_DOUBLE_EQ(a.Predict(probe), b.Predict(probe));
  }
}

TEST(Mlp, OutputsAreProbabilities) {
  MlpOptions options;
  options.seed = 12;
  Mlp mlp(2, 1, options);
  for (double v : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    double p = mlp.Predict({v, -v});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

ProjectedGraph TwoCliquesGraph() {
  // Two K4s joined by one bridge edge: 0-3 and 4-7.
  ProjectedGraph g(8);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.AddWeight(u, v, 1);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) g.AddWeight(u, v, 1);
  }
  g.AddWeight(3, 4, 1);
  return g;
}

TEST(Gcn, TrainingReducesLoss) {
  ProjectedGraph g = TwoCliquesGraph();
  GcnOptions options;
  options.epochs = 1;
  Gcn one(g, options);
  std::vector<std::pair<NodeId, NodeId>> pos, neg;
  for (const auto& e : g.Edges()) pos.push_back({e.u, e.v});
  neg = {{0, 5}, {1, 6}, {2, 7}, {0, 7}, {1, 4}};
  double loss_short = one.Fit(pos, neg);

  options.epochs = 150;
  Gcn many(g, options);
  double loss_long = many.Fit(pos, neg);
  EXPECT_LT(loss_long, loss_short);
}

TEST(Gcn, EmbeddingsHaveRequestedShape) {
  ProjectedGraph g = TwoCliquesGraph();
  GcnOptions options;
  options.output_dim = 5;
  Gcn gcn(g, options);
  EXPECT_EQ(gcn.Embeddings().rows(), 8u);
  EXPECT_EQ(gcn.Embeddings().cols(), 5u);
}

TEST(Gcn, NeighborsInSameCliqueScoreHigherThanCrossPairs) {
  ProjectedGraph g = TwoCliquesGraph();
  GcnOptions options;
  options.epochs = 200;
  options.seed = 21;
  Gcn gcn(g, options);
  std::vector<std::pair<NodeId, NodeId>> pos, neg;
  for (const auto& e : g.Edges()) pos.push_back({e.u, e.v});
  neg = {{0, 5}, {1, 6}, {2, 7}, {0, 6}, {1, 7}, {2, 5}};
  gcn.Fit(pos, neg);
  const la::Matrix& z = gcn.Embeddings();
  auto dot = [&](NodeId a, NodeId b) {
    double s = 0;
    for (size_t j = 0; j < z.cols(); ++j) s += z(a, j) * z(b, j);
    return s;
  };
  // Average within-clique score should exceed average cross-clique score.
  double within = (dot(0, 1) + dot(1, 2) + dot(5, 6) + dot(6, 7)) / 4.0;
  double across = (dot(0, 5) + dot(1, 6) + dot(2, 7)) / 3.0;
  EXPECT_GT(within, across);
}

}  // namespace
}  // namespace marioh::ml
