// Unit tests for the linear-algebra substrate: dense matrix ops, Jacobi
// symmetric eigendecomposition, singular values, and k-means.

#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen.hpp"
#include "la/kmeans.hpp"
#include "la/matrix.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace marioh::la {
namespace {

TEST(Matrix, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = a.Multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = static_cast<double>(i * 3 + j);
  }
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  Matrix tt = t.Transposed();
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(tt(i, j), a(i, j));
  }
}

TEST(Matrix, ApplyVector) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 0;
  a(1, 0) = 1; a(1, 1) = 3;
  Vector y = a.Apply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ScaleAndFrobenius) {
  Matrix a(1, 2);
  a(0, 0) = 3; a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 10.0);
}

TEST(VectorOps, DotNormAxpyDistance) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  Vector c = Axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(c[0], 9.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 27.0);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3; a(1, 1) = 1; a(2, 2) = 2;
  EigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  EigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  double v0 = eig.vectors(0, 0);
  double v1 = eig.vectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V diag(values) V^T must reproduce the input.
  util::Rng rng(5);
  const size_t n = 8;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  EigenResult eig = SymmetricEigen(a);
  Matrix d(n, n);
  for (size_t i = 0; i < n; ++i) d(i, i) = eig.values[i];
  Matrix rec = eig.vectors.Multiply(d).Multiply(eig.vectors.Transposed());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(SymmetricEigen, OrthonormalEigenvectors) {
  util::Rng rng(11);
  const size_t n = 6;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  EigenResult eig = SymmetricEigen(a);
  for (size_t c1 = 0; c1 < n; ++c1) {
    for (size_t c2 = 0; c2 < n; ++c2) {
      double dot = 0;
      for (size_t r = 0; r < n; ++r) {
        dot += eig.vectors(r, c1) * eig.vectors(r, c2);
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SmallestEigenvectors, PicksBottomOfSpectrum) {
  Matrix a(3, 3);
  a(0, 0) = 5; a(1, 1) = 1; a(2, 2) = 3;
  Matrix v = SmallestEigenvectors(a, 1);
  ASSERT_EQ(v.cols(), 1u);
  // Smallest eigenvalue 1 -> eigenvector e1.
  EXPECT_NEAR(std::fabs(v(1, 0)), 1.0, 1e-8);
}

TEST(SingularValues, KnownDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(1, 1) = 4;
  Vector sv = SingularValues(a);
  EXPECT_NEAR(sv[0], 4.0, 1e-8);
  EXPECT_NEAR(sv[1], 3.0, 1e-8);
}

TEST(SingularValues, RectangularMatchesGram) {
  // A = [[1,0],[0,1],[1,1]]: A^T A = [[2,1],[1,2]] -> eigen 3,1 ->
  // singular values sqrt(3), 1.
  Matrix a(3, 2);
  a(0, 0) = 1; a(1, 1) = 1; a(2, 0) = 1; a(2, 1) = 1;
  Vector sv = SingularValues(a);
  ASSERT_EQ(sv.size(), 2u);
  EXPECT_NEAR(sv[0], std::sqrt(3.0), 1e-8);
  EXPECT_NEAR(sv[1], 1.0, 1e-8);
}

TEST(TopSingularValues, PadsWithZeros) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  Vector sv = TopSingularValues(a, 4);
  ASSERT_EQ(sv.size(), 4u);
  EXPECT_NEAR(sv[0], 2.0, 1e-8);
  EXPECT_NEAR(sv[3], 0.0, 1e-12);
}

TEST(KMeans, SeparatesObviousClusters) {
  // Two tight blobs on a line.
  Matrix points(8, 1);
  for (size_t i = 0; i < 4; ++i) points(i, 0) = 0.0 + 0.01 * i;
  for (size_t i = 4; i < 8; ++i) points(i, 0) = 10.0 + 0.01 * i;
  util::Rng rng(3);
  KMeansResult result = KMeans(points, 2, &rng);
  EXPECT_EQ(result.assignments[0], result.assignments[3]);
  EXPECT_EQ(result.assignments[4], result.assignments[7]);
  EXPECT_NE(result.assignments[0], result.assignments[4]);
  EXPECT_LT(result.inertia, 0.01);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Matrix points(3, 2);
  points(0, 0) = 1; points(1, 0) = 5; points(2, 1) = 9;
  util::Rng rng(4);
  KMeansResult result = KMeans(points, 3, &rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicGivenSeed) {
  util::Rng fill(9);
  Matrix points(20, 2);
  for (size_t i = 0; i < 20; ++i) {
    points(i, 0) = fill.Normal();
    points(i, 1) = fill.Normal();
  }
  util::Rng r1(77), r2(77);
  KMeansResult a = KMeans(points, 3, &r1);
  KMeansResult b = KMeans(points, 3, &r2);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

}  // namespace
}  // namespace marioh::la
