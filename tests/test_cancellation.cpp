// The concurrency test battery for mid-kernel preemption (the
// CancelToken threaded from api::Service jobs through Session, the
// MARIOH reconstruction loop, ParallelFor bodies, and the Bron–Kerbosch
// recursion):
//
//  * an *untripped* token must not change a single output bit, at any
//    thread count — cancellation checks may only stop work early, never
//    alter what it computes;
//  * a *tripped* token must land within bounded kernel iterations: a
//    reconstruction that takes T seconds uncancelled returns kCancelled
//    (or kDeadlineExceeded) in a small fraction of T.
//
// The suite runs under TSan in CI alongside the service stress test.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/marioh.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace marioh {
namespace {

/// A prepared source/target split of a generator profile.
struct Workload {
  gen::SourceTargetSplit split;
  ProjectedGraph g_source;
  ProjectedGraph g_target;
};

Workload MakeWorkload(const std::string& profile, uint64_t seed) {
  Workload w;
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName(profile), seed);
  util::Rng rng(seed + 1);
  w.split = gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  w.g_source = w.split.source.Project();
  w.g_target = w.split.target.Project();
  return w;
}

Hypergraph RunMarioh(const Workload& w, int threads,
                     const util::CancelToken* cancel,
                     core::ReconstructionStats* stats = nullptr) {
  core::MariohOptions options;
  options.seed = 9;
  options.num_threads = threads;
  options.cancel = cancel;
  core::Marioh marioh(options);
  marioh.Train(w.g_source, w.split.source);
  Hypergraph h = marioh.Reconstruct(w.g_target);
  if (stats != nullptr) *stats = marioh.last_reconstruction_stats();
  return h;
}

// The preemption counterpart of the determinism contract: plumbing a
// token that never trips must leave the reconstruction bit-identical to
// a run with no token at all — across thread counts.
TEST(Cancellation, UntrippedTokenKeepsOutputBitIdentical) {
  Workload w = MakeWorkload("hosts", 5);
  Hypergraph reference = RunMarioh(w, 1, nullptr);
  ASSERT_GT(reference.num_unique_edges(), 0u);

  util::CancelToken token;  // never tripped
  for (int threads : {1, 2, 8}) {
    core::ReconstructionStats stats;
    Hypergraph gated = RunMarioh(w, threads, &token, &stats);
    EXPECT_FALSE(stats.cancelled);
    EXPECT_EQ(gated.edges(), reference.edges()) << "threads " << threads;
  }

  // An armed-but-distant deadline is also a no-op for the output.
  util::CancelToken distant;
  distant.SetDeadline(3600.0);
  core::ReconstructionStats stats;
  Hypergraph gated = RunMarioh(w, 2, &distant, &stats);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_EQ(gated.edges(), reference.edges());
}

// A token tripped before the run starts stops the kernels at their first
// preemption point: the reconstruction comes back flagged cancelled
// (partial — the caller's cue to discard it).
TEST(Cancellation, PreTrippedTokenFlagsTheReconstruction) {
  Workload w = MakeWorkload("hosts", 5);
  util::CancelToken token;
  token.Cancel();
  core::ReconstructionStats stats;
  RunMarioh(w, 2, &token, &stats);
  EXPECT_TRUE(stats.cancelled);
}

// Session maps the trip to a Status: kCancelled for Cancel(), and
// kDeadlineExceeded for the *hard* deadline (distinct from the soft
// time_budget_seconds OOT path, which still completes the run). Either
// way the partial reconstruction is discarded.
TEST(Cancellation, SessionMapsTripsToStatusesAndDiscardsPartialOutput) {
  Workload w = MakeWorkload("hosts", 5);

  util::CancelToken cancelled;
  cancelled.Cancel();
  api::SessionOptions options;
  options.method = "MARIOH";
  options.cancel = &cancelled;
  api::Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(w.g_source, w.split.source).code() ==
              api::StatusCode::kCancelled);

  util::CancelToken deadline;  // disarmed until after Train
  options.cancel = &deadline;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(w.g_source, w.split.source).ok());
  deadline.SetDeadline(0.0);  // trips at the first preemption point
  api::Status status = session.Reconstruct(w.g_target);
  EXPECT_EQ(status.code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(session.reconstruction(), nullptr);
}

// The bounded-latency acceptance test: a reconstruction that takes T
// seconds uncancelled must return kCancelled in a small fraction of T
// when the token trips mid-run. "eu" is the hard overlapping regime —
// the slowest profile in the battery — so T dominates the trip-to-stop
// latency by orders of magnitude.
TEST(Cancellation, MidReconstructCancelLandsWellBeforeCompletion) {
  Workload w = MakeWorkload("eu", 5);

  api::SessionOptions options;
  options.method = "MARIOH";
  options.marioh.num_threads = 2;
  api::Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(w.g_source, w.split.source).ok());
  util::Timer uncancelled;
  ASSERT_TRUE(session.Reconstruct(w.g_target).ok());
  double full_seconds = uncancelled.Seconds();

  // Trip the token from a second thread once a tenth of the uncancelled
  // time has passed — squarely mid-kernel. The tripper starts only after
  // Train so the trip can't land before the stage under test.
  util::CancelToken token;
  options.cancel = &token;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(w.g_source, w.split.source).ok());
  double trip_after = full_seconds / 10.0;
  std::thread tripper([&token, trip_after] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(trip_after));
    token.Cancel();
  });
  util::Timer cancelled;
  api::Status status = session.Reconstruct(w.g_target);
  double cancelled_seconds = cancelled.Seconds();
  tripper.join();

  EXPECT_EQ(status.code(), api::StatusCode::kCancelled)
      << status.ToString();
  EXPECT_EQ(session.reconstruction(), nullptr);
  // Generous bound for loaded CI boxes: the preemption points poll every
  // kernel item, so the real latency is microseconds — half of T means
  // the trip landed mid-run, not at the finish line.
  EXPECT_LT(cancelled_seconds, full_seconds * 0.5)
      << "uncancelled run took " << full_seconds << "s";
}

}  // namespace
}  // namespace marioh
