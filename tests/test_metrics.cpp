// Tests for reconstruction accuracy metrics (Jaccard / multi-Jaccard,
// Sect. II-B) and precision/recall.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace marioh::eval {
namespace {

Hypergraph Make(const std::vector<std::pair<NodeSet, uint32_t>>& edges) {
  Hypergraph h;
  for (const auto& [e, m] : edges) h.AddEdge(e, m);
  return h;
}

TEST(Jaccard, IdenticalHypergraphs) {
  Hypergraph h = Make({{{0, 1}, 1}, {{1, 2, 3}, 1}});
  EXPECT_DOUBLE_EQ(Jaccard(h, h), 1.0);
}

TEST(Jaccard, DisjointHypergraphs) {
  Hypergraph a = Make({{{0, 1}, 1}});
  Hypergraph b = Make({{{2, 3}, 1}});
  EXPECT_DOUBLE_EQ(Jaccard(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  Hypergraph truth = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{2, 3}, 1}});
  Hypergraph rec = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{4, 5}, 1}});
  // Intersection 2, union 4.
  EXPECT_DOUBLE_EQ(Jaccard(truth, rec), 0.5);
}

TEST(Jaccard, IgnoresMultiplicity) {
  Hypergraph a = Make({{{0, 1}, 5}});
  Hypergraph b = Make({{{0, 1}, 1}});
  EXPECT_DOUBLE_EQ(Jaccard(a, b), 1.0);
}

TEST(Jaccard, BothEmpty) {
  Hypergraph a, b;
  EXPECT_DOUBLE_EQ(Jaccard(a, b), 1.0);
}

TEST(Jaccard, OneEmpty) {
  Hypergraph a = Make({{{0, 1}, 1}});
  Hypergraph b;
  EXPECT_DOUBLE_EQ(Jaccard(a, b), 0.0);
}

TEST(MultiJaccard, IdenticalWithMultiplicities) {
  Hypergraph h = Make({{{0, 1}, 3}, {{1, 2, 3}, 2}});
  EXPECT_DOUBLE_EQ(MultiJaccard(h, h), 1.0);
}

TEST(MultiJaccard, PenalizesWrongMultiplicity) {
  Hypergraph truth = Make({{{0, 1}, 4}});
  Hypergraph rec = Make({{{0, 1}, 2}});
  // min 2 / max 4.
  EXPECT_DOUBLE_EQ(MultiJaccard(truth, rec), 0.5);
}

TEST(MultiJaccard, MixedEdges) {
  Hypergraph truth = Make({{{0, 1}, 2}, {{2, 3}, 1}});
  Hypergraph rec = Make({{{0, 1}, 1}, {{4, 5}, 3}});
  // mins: 1 + 0 + 0 = 1; maxes: 2 + 1 + 3 = 6.
  EXPECT_DOUBLE_EQ(MultiJaccard(truth, rec), 1.0 / 6.0);
}

TEST(MultiJaccard, ReducesToJaccardWhenAllOnes) {
  Hypergraph truth = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{2, 3}, 1}});
  Hypergraph rec = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{4, 5}, 1}});
  EXPECT_DOUBLE_EQ(MultiJaccard(truth, rec), Jaccard(truth, rec));
}

TEST(PrecisionRecall, Basics) {
  Hypergraph truth = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{2, 3}, 1},
                           {{3, 4}, 1}});
  Hypergraph rec = Make({{{0, 1}, 1}, {{1, 2}, 1}, {{7, 8}, 1}});
  EXPECT_DOUBLE_EQ(Precision(truth, rec), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(truth, rec), 0.5);
}

TEST(PrecisionRecall, EmptyReconstruction) {
  Hypergraph truth = Make({{{0, 1}, 1}});
  Hypergraph rec;
  EXPECT_DOUBLE_EQ(Precision(truth, rec), 0.0);
  EXPECT_DOUBLE_EQ(Recall(truth, rec), 0.0);
}

TEST(Metrics, SymmetryOfJaccard) {
  Hypergraph a = Make({{{0, 1}, 1}, {{1, 2}, 1}});
  Hypergraph b = Make({{{0, 1}, 1}, {{5, 6}, 1}, {{2, 3}, 1}});
  EXPECT_DOUBLE_EQ(Jaccard(a, b), Jaccard(b, a));
  EXPECT_DOUBLE_EQ(MultiJaccard(a, b), MultiJaccard(b, a));
}

}  // namespace
}  // namespace marioh::eval
