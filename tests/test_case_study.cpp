// Regression test for the Fig. 2 case study: MARIOH exactly restores the
// handcrafted ego sub-hypergraph (Jaccard and multi-Jaccard 1.0) from its
// projection, given same-domain training data — the paper's showcase
// example, locked as a test so it can never silently regress.

#include <gtest/gtest.h>

#include "baselines/shyre.hpp"
#include "core/filtering.hpp"
#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

Hypergraph EgoHypergraph() {
  Hypergraph ego;
  ego.AddEdge({0, 1, 2}, 1);
  ego.AddEdge({0, 3}, 2);  // the repeated pair of Fig. 2
  ego.AddEdge({0, 4, 5, 6}, 1);
  ego.AddEdge({0, 7}, 1);
  ego.AddEdge({4, 5}, 1);
  ego.AddEdge({8, 9, 10}, 1);
  ego.AddEdge({0, 8, 9, 10}, 1);
  return ego;
}

struct TrainedModels {
  core::Marioh marioh;
  baselines::Shyre shyre;
};

TrainedModels& Models() {
  static TrainedModels* models = [] {
    auto* m = new TrainedModels{core::Marioh(), baselines::Shyre()};
    gen::GeneratedDataset history =
        gen::Generate(gen::ProfileByName("dblp"), 5);
    util::Rng rng(6);
    gen::SourceTargetSplit split =
        gen::SplitHypergraph(history.hypergraph, &rng, 0.5);
    ProjectedGraph g_train = split.source.Project();
    m->marioh.Train(g_train, split.source);
    m->shyre.Train(g_train, split.source);
    return m;
  }();
  return *models;
}

TEST(CaseStudy, MariohRestoresEgoHypergraphExactly) {
  Hypergraph ego = EgoHypergraph();
  Hypergraph restored = Models().marioh.Reconstruct(ego.Project());
  EXPECT_DOUBLE_EQ(eval::Jaccard(ego, restored), 1.0);
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(ego, restored), 1.0);
  // Including the multiplicity-2 pair.
  EXPECT_EQ(restored.Multiplicity({0, 3}), 2u);
}

TEST(CaseStudy, ShyreCountIsStrictlyWorseHere) {
  // The paper's Fig. 2 contrast: the single-pass multiplicity-blind
  // baseline cannot fully restore this ego network.
  Hypergraph ego = EgoHypergraph();
  Hypergraph by_shyre = Models().shyre.Reconstruct(ego.Project());
  EXPECT_LT(eval::MultiJaccard(ego, by_shyre), 1.0);
}

TEST(CaseStudy, FilteringAloneCertifiesTheRepeatedPair) {
  // The multiplicity-2 pair {0,3} is exactly what Lemma 2 certifies:
  // w(0,3) = 2 with MHH(0,3) = 0.
  Hypergraph ego = EgoHypergraph();
  ProjectedGraph g = ego.Project();
  Hypergraph certified(g.num_nodes());
  core::Filtering(&g, &certified);
  EXPECT_EQ(certified.Multiplicity({0, 3}), 2u);
}

}  // namespace
}  // namespace marioh
