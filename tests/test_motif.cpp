// Tests for motif statistics (triangles, wedges, clustering coefficients,
// squares) and the kMotif feature mode used by SHyRe-Motif.

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "core/motif.hpp"
#include "hypergraph/projected_graph.hpp"

namespace marioh::core {
namespace {

ProjectedGraph Complete(size_t n) {
  ProjectedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddWeight(u, v, 1);
  }
  return g;
}

TEST(Motif, TrianglesThroughEdgeOnK4) {
  ProjectedGraph g = Complete(4);
  // In K4 every edge lies in 2 triangles.
  EXPECT_EQ(TrianglesThroughEdge(g, 0, 1), 2u);
  EXPECT_EQ(TrianglesThroughEdge(g, 2, 3), 2u);
}

TEST(Motif, TrianglesAtNode) {
  ProjectedGraph g = Complete(4);
  // Each node of K4 is in C(3,2) = 3 triangles.
  EXPECT_EQ(TrianglesAtNode(g, 0), 3u);
  // A path has none.
  ProjectedGraph path(3);
  path.AddWeight(0, 1, 1);
  path.AddWeight(1, 2, 1);
  EXPECT_EQ(TrianglesAtNode(path, 1), 0u);
}

TEST(Motif, WedgesAtNode) {
  ProjectedGraph g = Complete(4);
  EXPECT_EQ(WedgesAtNode(g, 0), 3u);  // C(3,2)
  ProjectedGraph single(2);
  single.AddWeight(0, 1, 1);
  EXPECT_EQ(WedgesAtNode(single, 0), 0u);
}

TEST(Motif, ClusteringCoefficient) {
  ProjectedGraph g = Complete(4);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(g, 0), 1.0);
  // Star center: no triangles.
  ProjectedGraph star(4);
  star.AddWeight(0, 1, 1);
  star.AddWeight(0, 2, 1);
  star.AddWeight(0, 3, 1);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(star, 0), 0.0);
  // Degree < 2: defined as 0.
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(star, 1), 0.0);
}

TEST(Motif, SquaresThroughEdge) {
  // 4-cycle 0-1-2-3-0: edge (0,1) participates in exactly one square via
  // x = 3 (neighbor of 0), y = 2 (neighbor of 1), edge (3,2).
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(2, 3, 1);
  g.AddWeight(3, 0, 1);
  EXPECT_EQ(SquaresThroughEdge(g, 0, 1), 1u);
  // A triangle has no squares.
  ProjectedGraph tri = Complete(3);
  EXPECT_EQ(SquaresThroughEdge(tri, 0, 1), 0u);
}

TEST(Motif, SquaresOnK4) {
  // K4: edge (0,1); x in {2,3}, y in {2,3}, x != y, both (2,3) and (3,2)
  // ordered pairs connected -> 2 squares (each 4-cycle counted once per
  // direction of the (x, y) pair).
  ProjectedGraph g = Complete(4);
  EXPECT_EQ(SquaresThroughEdge(g, 0, 1), 2u);
}

TEST(MotifFeatures, DimensionAndContent) {
  FeatureExtractor fx(FeatureMode::kMotif);
  EXPECT_EQ(fx.dim(), 23u);
  ProjectedGraph g = Complete(4);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  ASSERT_EQ(f.size(), 23u);
  // First 13 dims match the structural extractor exactly.
  FeatureExtractor structural(FeatureMode::kStructural);
  la::Vector s = structural.Extract(g, NodeSet{0, 1, 2}, true);
  for (size_t i = 0; i < 13; ++i) {
    EXPECT_DOUBLE_EQ(f[i], s[i]) << "dim " << i;
  }
  // Clustering coefficients in K4 are all 1 -> mean (slot 14) is 1.
  EXPECT_DOUBLE_EQ(f[14], 1.0);
  // Std of clustering (slot 17) is 0.
  EXPECT_DOUBLE_EQ(f[17], 0.0);
}

TEST(MotifFeatures, DiffersFromStructuralOnCycleRichGraphs) {
  // Two graphs with identical degrees/common-neighbor profiles for the
  // probe edge but different square counts must be distinguished by the
  // motif features.
  ProjectedGraph cycle(4);
  cycle.AddWeight(0, 1, 1);
  cycle.AddWeight(1, 2, 1);
  cycle.AddWeight(2, 3, 1);
  cycle.AddWeight(3, 0, 1);
  ProjectedGraph path(6);
  path.AddWeight(0, 1, 1);
  path.AddWeight(1, 2, 1);
  path.AddWeight(0, 3, 1);
  path.AddWeight(2, 4, 1);  // same degrees at 0,1 but no square
  FeatureExtractor fx(FeatureMode::kMotif);
  la::Vector a = fx.Extract(cycle, NodeSet{0, 1}, false);
  la::Vector b = fx.Extract(path, NodeSet{0, 1}, false);
  // Square-count aggregate (slots 18..22) must differ.
  EXPECT_NE(a[18], b[18]);
}

}  // namespace
}  // namespace marioh::core
