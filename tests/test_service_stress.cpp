// Seed-fixed concurrency stress test for the api::Service scheduler: N
// producer threads submit jobs with randomized priorities, clients,
// deadlines and budgets while randomly cancelling earlier ones, and a
// sampler thread keeps asserting the counter invariant
//
//   accepted = done + failed + cancelled + deadline_exceeded
//            + queued + running
//
// at arbitrary instants (every state transition and every stats() read
// happens under one mutex, so the books must balance in every snapshot,
// not just at quiescence). The suite runs under TSan in CI, where it
// doubles as the data-race battery for the CancelToken plumbing; it also
// writes the measured cancel-to-stop latencies to cancel_latency.json,
// which CI uploads next to bench_micro.json.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/request.hpp"
#include "api/service.hpp"
#include "eval/harness.hpp"

namespace marioh::api {
namespace {

constexpr int kProducers = 4;
constexpr int kJobsPerProducer = 12;

void CheckInvariant(const ServiceStats& stats) {
  EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                stats.deadline_exceeded + stats.queued +
                                stats.running);
  EXPECT_EQ(stats.queued, stats.queued_interactive + stats.queued_normal +
                              stats.queued_batch);
  EXPECT_LE(stats.preempted, stats.cancelled + stats.deadline_exceeded);
  EXPECT_LE(stats.cancel_latency_count, stats.cancelled);
  EXPECT_LE(stats.budget_overruns, stats.done);
  EXPECT_LE(stats.cancel_latency_total_seconds,
            stats.cancel_latency_max_seconds *
                    static_cast<double>(stats.cancel_latency_count) +
                1e-9);
}

TEST(ServiceStress, CountersReconcileUnderConcurrentSubmitAndCancel) {
  eval::PreparedDataset data =
      eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                           /*seed=*/1);
  auto cache = std::make_shared<DatasetCache>();
  ASSERT_TRUE(cache->Insert("crime.train", data.source, data.g_source).ok());
  ASSERT_TRUE(cache->Insert("crime.target", nullptr, data.g_target).ok());

  ServiceOptions options;
  options.num_workers = 2;
  Service service(cache, options);

  std::atomic<bool> producing{true};
  std::vector<std::thread> producers;
  std::mutex ids_mutex;
  std::vector<JobId> all_ids;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &ids_mutex, &all_ids, p] {
      // Seed fixed per producer: the submission stream is reproducible;
      // only the interleaving with the workers varies run to run.
      std::mt19937 rng(1234u + static_cast<unsigned>(p));
      std::vector<JobId> mine;
      for (int j = 0; j < kJobsPerProducer; ++j) {
        ReconstructRequest request;
        // Mostly the fast unsupervised method; every 4th job the slower
        // supervised one so cancels have something running to preempt.
        if (j % 4 == 0) {
          request.method = "MARIOH";
          request.train_dataset = "crime.train";
        } else {
          request.method = "MaxClique";
        }
        request.target_dataset = "crime.target";
        request.seed = 1 + rng() % 5;
        request.priority = static_cast<Priority>(rng() % 3);
        request.client_id = "producer-" + std::to_string(rng() % 3);
        switch (rng() % 6) {
          case 0:
            request.deadline_seconds = 0.0;  // guaranteed hard abort
            break;
          case 1:
            request.time_budget_seconds = 0.0;  // guaranteed soft overrun
            break;
          default:
            break;
        }
        StatusOr<JobId> id = service.Submit(request);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        mine.push_back(*id);
        // Randomly cancel one of this producer's earlier jobs; whatever
        // state it is in (queued/running/terminal) must be handled.
        if (rng() % 5 < 2) {
          // Any outcome is legal here (ok / kFailedPrecondition on a
          // terminal job); the invariant checks below are the oracle.
          service.Cancel(mine[rng() % mine.size()]);
        }
      }
      std::lock_guard<std::mutex> lock(ids_mutex);
      all_ids.insert(all_ids.end(), mine.begin(), mine.end());
    });
  }

  // The sampler hammers stats() while producers and workers run: the
  // invariant must hold in every mid-flight snapshot.
  std::thread sampler([&service, &producing] {
    while (producing.load()) {
      CheckInvariant(service.stats());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& producer : producers) producer.join();
  producing.store(false);
  sampler.join();

  for (JobId id : all_ids) {
    StatusOr<JobSnapshot> job = service.Wait(id);
    ASSERT_TRUE(job.ok());
    EXPECT_TRUE(job->terminal());
    EXPECT_GT(job->finish_seq, 0u);
    if (job->state == JobState::kDone) {
      EXPECT_NE(job->reconstruction, nullptr);
    } else {
      EXPECT_EQ(job->reconstruction, nullptr);
    }
  }

  ServiceStats stats = service.stats();
  CheckInvariant(stats);
  EXPECT_EQ(stats.accepted,
            static_cast<uint64_t>(kProducers * kJobsPerProducer));
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  // Roughly a sixth of the jobs carried deadline_seconds=0, so hard
  // aborts must have happened.
  EXPECT_GT(stats.deadline_exceeded, 0u);
  EXPECT_GT(stats.done, 0u);
  EXPECT_EQ(stats.failed, 0u);

  // Publish the measured cancel latencies for the CI artifact (empty
  // stats are valid: every Cancel may have caught its job queued).
  std::ofstream out("cancel_latency.json");
  ASSERT_TRUE(out.good());
  double mean =
      stats.cancel_latency_count == 0
          ? 0.0
          : stats.cancel_latency_total_seconds /
                static_cast<double>(stats.cancel_latency_count);
  out << "{\n"
      << "  \"cancel_latency_count\": " << stats.cancel_latency_count
      << ",\n"
      << "  \"cancel_latency_mean_seconds\": " << mean << ",\n"
      << "  \"cancel_latency_max_seconds\": "
      << stats.cancel_latency_max_seconds << ",\n"
      << "  \"preempted\": " << stats.preempted << ",\n"
      << "  \"cancelled\": " << stats.cancelled << ",\n"
      << "  \"deadline_exceeded\": " << stats.deadline_exceeded << "\n"
      << "}\n";
}

}  // namespace
}  // namespace marioh::api
