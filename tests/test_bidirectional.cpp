// Focused tests for Algorithm 3 (bidirectional search): threshold
// behavior, the r% sub-clique exploration, re-validation against the
// shrinking graph, and determinism.

#include <gtest/gtest.h>

#include "core/bidirectional.hpp"
#include "core/classifier.hpp"
#include "hypergraph/clique.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh::core {
namespace {

/// Trains a classifier on a small community dataset once per suite.
class BidirectionalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::GeneratedDataset data =
        gen::Generate(gen::ProfileByName("hosts"), 3);
    util::Rng split_rng(4);
    gen::SourceTargetSplit split = gen::SplitHypergraph(
        data.hypergraph.MultiplicityReduced(), &split_rng, 0.5);
    source_ = new Hypergraph(std::move(split.source));
    target_ = new Hypergraph(std::move(split.target));
    g_source_ = new ProjectedGraph(source_->Project());
    g_target_ = new ProjectedGraph(target_->Project());
    classifier_ =
        new CliqueClassifier(FeatureMode::kMultiplicityAware, {});
    util::Rng train_rng(5);
    classifier_->Train(*g_source_, *source_, &train_rng);
  }
  static void TearDownTestSuite() {
    delete classifier_;
    delete g_target_;
    delete g_source_;
    delete target_;
    delete source_;
  }

  static Hypergraph* source_;
  static Hypergraph* target_;
  static ProjectedGraph* g_source_;
  static ProjectedGraph* g_target_;
  static CliqueClassifier* classifier_;
};

Hypergraph* BidirectionalTest::source_ = nullptr;
Hypergraph* BidirectionalTest::target_ = nullptr;
ProjectedGraph* BidirectionalTest::g_source_ = nullptr;
ProjectedGraph* BidirectionalTest::g_target_ = nullptr;
CliqueClassifier* BidirectionalTest::classifier_ = nullptr;

TEST_F(BidirectionalTest, ThetaOnePutsEverythingInQneg) {
  // Scores are sigmoid outputs < 1, so theta = 1 means no clique passes
  // Phase 1; only Phase 2 sub-clique exploration can accept.
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 1.0;
  options.r_percent = 100.0;
  util::Rng rng(7);
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  EXPECT_EQ(stats.accepted_phase1, 0u);
  // Sub-cliques are scored but cannot pass theta = 1 either.
  EXPECT_EQ(stats.accepted_phase2, 0u);
  EXPECT_EQ(h.num_total_edges(), 0u);
  EXPECT_EQ(g.TotalWeight(), g_target_->TotalWeight());  // untouched
}

TEST_F(BidirectionalTest, RZeroDisablesSubcliqueSampling) {
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.99;  // keep most cliques below threshold
  options.r_percent = 0.0;
  util::Rng rng(8);
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  EXPECT_EQ(stats.subcliques_scored, 0u);
}

TEST_F(BidirectionalTest, RHundredExploresEveryNegClique) {
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 1.0;  // everything in Q_neg
  options.r_percent = 100.0;
  util::Rng rng(9);
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  // One sample per size k in [2, |Q|-1] per clique: the total equals
  // sum over cliques of (|Q| - 2); verify it is positive and bounded.
  size_t upper = 0;
  for (const NodeSet& q : EnumerateMaximalCliques(*g_target_).cliques.ToNodeSets()) {
    upper += q.size() > 2 ? q.size() - 2 : 0;
  }
  EXPECT_LE(stats.subcliques_scored, upper);
  EXPECT_GT(upper, 0u);
}

TEST_F(BidirectionalTest, ThetaZeroConsumesWeightEveryIteration) {
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.0;
  util::Rng rng(10);
  uint64_t before = g.TotalWeight();
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  EXPECT_GT(stats.accepted_phase1, 0u);
  EXPECT_LT(g.TotalWeight(), before);
}

TEST_F(BidirectionalTest, AcceptedHyperedgesAreCliquesOfPreGraph) {
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.3;
  util::Rng rng(11);
  BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_TRUE(g_target_->IsClique(e));
  }
}

TEST_F(BidirectionalTest, WeightConservation) {
  // Weight removed from the graph equals the total pairwise footprint of
  // the accepted hyperedges.
  ProjectedGraph g = *g_target_;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.2;
  util::Rng rng(12);
  uint64_t before = g.TotalWeight();
  BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  uint64_t footprint = 0;
  for (const auto& [e, m] : h.edges()) {
    footprint += static_cast<uint64_t>(e.size() * (e.size() - 1) / 2) * m;
  }
  EXPECT_EQ(before - g.TotalWeight(), footprint);
}

TEST_F(BidirectionalTest, DeterministicGivenSeed) {
  BidirectionalOptions options;
  options.theta = 0.5;
  ProjectedGraph g1 = *g_target_;
  ProjectedGraph g2 = *g_target_;
  Hypergraph h1(g1.num_nodes()), h2(g2.num_nodes());
  util::Rng r1(13), r2(13);
  BidirectionalSearch(&g1, *classifier_, options, &r1, &h1);
  BidirectionalSearch(&g2, *classifier_, options, &r2, &h2);
  EXPECT_EQ(h1.UniqueEdges(), h2.UniqueEdges());
}

TEST_F(BidirectionalTest, EmptyGraphIsNoOp) {
  ProjectedGraph g(10);
  Hypergraph h(10);
  BidirectionalOptions options;
  util::Rng rng(14);
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  EXPECT_EQ(stats.maximal_cliques, 0u);
  EXPECT_EQ(h.num_total_edges(), 0u);
}

TEST_F(BidirectionalTest, Size2CliquesHaveNoSubcliques) {
  // A graph that is a single edge: in Q_neg at theta = 1, but k ranges
  // over [2, |Q|-1] = empty, so nothing is scored.
  ProjectedGraph g(2);
  g.AddWeight(0, 1, 1);
  Hypergraph h(2);
  BidirectionalOptions options;
  options.theta = 1.0;
  options.r_percent = 100.0;
  util::Rng rng(15);
  BidirectionalStats stats =
      BidirectionalSearch(&g, *classifier_, options, &rng, &h);
  EXPECT_EQ(stats.subcliques_scored, 0u);
}

}  // namespace
}  // namespace marioh::core
