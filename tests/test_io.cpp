// Tests for text serialization: round trips, format tolerance (comments,
// blank lines, multiplicity suffixes), and error handling on malformed
// input.

#include <gtest/gtest.h>

#include <sstream>

#include "io/text_io.hpp"

namespace marioh::io {
namespace {

TEST(HypergraphIo, RoundTrip) {
  Hypergraph h;
  h.AddEdge({0, 1, 2}, 1);
  h.AddEdge({1, 3}, 4);
  h.AddEdge({2, 4, 5, 6}, 2);
  std::stringstream buffer;
  WriteHypergraph(h, buffer);
  Hypergraph parsed = ReadHypergraph(buffer);
  EXPECT_EQ(parsed.num_unique_edges(), h.num_unique_edges());
  EXPECT_EQ(parsed.num_total_edges(), h.num_total_edges());
  EXPECT_EQ(parsed.Multiplicity({1, 3}), 4u);
  EXPECT_EQ(parsed.Multiplicity({0, 1, 2}), 1u);
}

TEST(HypergraphIo, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# a co-authorship dump\n"
      "\n"
      "0 1 2\n"
      "   \n"
      "3 4 x 5\n");
  Hypergraph h = ReadHypergraph(in);
  EXPECT_EQ(h.num_unique_edges(), 2u);
  EXPECT_EQ(h.Multiplicity({3, 4}), 5u);
}

TEST(HypergraphIo, SkipsDegenerateEdges) {
  std::stringstream in("7\n5 5\n0 1\n");
  Hypergraph h = ReadHypergraph(in);
  EXPECT_EQ(h.num_unique_edges(), 1u);
  EXPECT_TRUE(h.Contains({0, 1}));
}

TEST(HypergraphIo, RejectsBadTokens) {
  std::stringstream in("0 banana\n");
  EXPECT_THROW(ReadHypergraph(in), std::invalid_argument);
}

TEST(HypergraphIo, MissingFileThrows) {
  EXPECT_THROW(ReadHypergraphFile("/nonexistent/path/h.txt"),
               std::invalid_argument);
}

TEST(ProjectedGraphIo, RoundTrip) {
  ProjectedGraph g(5);
  g.AddWeight(0, 1, 3);
  g.AddWeight(1, 4, 1);
  g.AddWeight(2, 3, 7);
  std::stringstream buffer;
  WriteProjectedGraph(g, buffer);
  ProjectedGraph parsed = ReadProjectedGraph(buffer);
  EXPECT_EQ(parsed.num_edges(), 3u);
  EXPECT_EQ(parsed.Weight(0, 1), 3u);
  EXPECT_EQ(parsed.Weight(2, 3), 7u);
  EXPECT_EQ(parsed.Weight(1, 4), 1u);
}

TEST(ProjectedGraphIo, DefaultWeightIsOne) {
  std::stringstream in("0 1\n2 3 9\n");
  ProjectedGraph g = ReadProjectedGraph(in);
  EXPECT_EQ(g.Weight(0, 1), 1u);
  EXPECT_EQ(g.Weight(2, 3), 9u);
}

TEST(ProjectedGraphIo, RejectsSelfLoops) {
  std::stringstream in("3 3 1\n");
  EXPECT_THROW(ReadProjectedGraph(in), std::invalid_argument);
}

TEST(ProjectedGraphIo, RejectsWrongArity) {
  std::stringstream in("1\n");
  EXPECT_THROW(ReadProjectedGraph(in), std::invalid_argument);
  std::stringstream in2("1 2 3 4\n");
  EXPECT_THROW(ReadProjectedGraph(in2), std::invalid_argument);
}

TEST(ProjectedGraphIo, EmptyInputGivesEmptyGraph) {
  std::stringstream in("# nothing\n");
  ProjectedGraph g = ReadProjectedGraph(in);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_TRUE(g.Empty());
}

TEST(Io, FileRoundTripThroughTempFile) {
  Hypergraph h;
  h.AddEdge({10, 20, 30}, 2);
  std::string path = testing::TempDir() + "/marioh_io_test.txt";
  WriteHypergraphFile(h, path);
  Hypergraph parsed = ReadHypergraphFile(path);
  EXPECT_EQ(parsed.Multiplicity({10, 20, 30}), 2u);
}

TEST(Io, HypergraphProjectionSurvivesSerialization) {
  // Project(parse(write(h))) == Project(h).
  Hypergraph h;
  h.AddEdge({0, 1, 2}, 3);
  h.AddEdge({2, 3}, 1);
  std::stringstream buffer;
  WriteHypergraph(h, buffer);
  Hypergraph parsed = ReadHypergraph(buffer);
  auto a = h.Project().Edges();
  auto b = parsed.Project().Edges();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

}  // namespace
}  // namespace marioh::io
