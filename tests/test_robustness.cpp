// Failure-injection and robustness tests: inputs that are NOT valid
// projections of any hypergraph (corrupted weights, adversarial noise),
// plus degenerate shapes. The library must stay safe — terminate, keep
// its invariants, never crash — even when the theoretical premises of
// Lemmas 1-2 are violated by the data.

#include <gtest/gtest.h>

#include "baselines/clique_covering.hpp"
#include "baselines/maxclique.hpp"
#include "baselines/shyre_unsup.hpp"
#include "core/filtering.hpp"
#include "core/marioh.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

/// A trained MARIOH instance shared by the robustness scenarios.
core::Marioh& TrainedMarioh() {
  static core::Marioh* instance = [] {
    auto* m = new core::Marioh();
    gen::GeneratedDataset data =
        gen::Generate(gen::ProfileByName("hosts"), 3);
    util::Rng rng(4);
    gen::SourceTargetSplit split =
        gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
    m->Train(split.source.Project(), split.source);
    return m;
  }();
  return *instance;
}

/// Corrupts a projection by randomly perturbing edge weights so it is no
/// longer the clique expansion of any hypergraph.
ProjectedGraph Corrupt(const ProjectedGraph& g, uint64_t seed) {
  ProjectedGraph out = g;
  util::Rng rng(seed);
  for (const auto& e : g.Edges()) {
    if (rng.Bernoulli(0.3)) {
      out.SubtractWeight(e.u, e.v, 1 + rng.UniformIndex(e.weight));
    } else if (rng.Bernoulli(0.3)) {
      out.AddWeight(e.u, e.v, 1 + rng.UniformIndex(4));
    }
  }
  return out;
}

TEST(Robustness, FilteringOnCorruptedWeightsStillTerminates) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 5);
  ProjectedGraph g = Corrupt(data.hypergraph.Project(), 6);
  Hypergraph h(g.num_nodes());
  core::FilteringStats stats = core::Filtering(&g, &h);
  // No formal guarantee survives corruption, but the mechanics must hold:
  // extracted multiplicity equals removed weight, graph is never negative.
  EXPECT_EQ(h.num_total_edges(), stats.total_multiplicity);
}

TEST(Robustness, MariohConsumesCorruptedGraphs) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 7);
  util::Rng rng(8);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph corrupted = Corrupt(split.target.Project(), 9);
  Hypergraph reconstructed = TrainedMarioh().Reconstruct(corrupted);
  // The loop must still fully explain the (corrupted) graph.
  EXPECT_EQ(reconstructed.Project().TotalWeight(),
            corrupted.TotalWeight());
}

TEST(Robustness, SingleNodeAndEmptyInputs) {
  core::Marioh& marioh = TrainedMarioh();
  EXPECT_EQ(marioh.Reconstruct(ProjectedGraph(0)).num_total_edges(), 0u);
  EXPECT_EQ(marioh.Reconstruct(ProjectedGraph(1)).num_total_edges(), 0u);
}

TEST(Robustness, StarGraphReconstruction) {
  // A star is a projection of pairwise hyperedges only; no triangles.
  ProjectedGraph star(8);
  for (NodeId v = 1; v < 8; ++v) star.AddWeight(0, v, 2);
  Hypergraph reconstructed = TrainedMarioh().Reconstruct(star);
  // Only size-2 hyperedges are possible (star has no larger cliques).
  for (const auto& [e, m] : reconstructed.edges()) {
    (void)m;
    EXPECT_EQ(e.size(), 2u);
  }
  EXPECT_EQ(reconstructed.Project().TotalWeight(), star.TotalWeight());
}

TEST(Robustness, UniformHugeWeights) {
  // Extreme multiplicities must not overflow or hang: K4 with weight 1000
  // per edge.
  ProjectedGraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.AddWeight(u, v, 1000);
  }
  Hypergraph reconstructed = TrainedMarioh().Reconstruct(g);
  EXPECT_EQ(reconstructed.Project().TotalWeight(), g.TotalWeight());
}

TEST(Robustness, BaselinesHandleEmptyAndTinyGraphs) {
  ProjectedGraph empty(5);
  EXPECT_EQ(baselines::MaxCliqueDecomposition().Reconstruct(empty)
                .num_total_edges(),
            0u);
  EXPECT_EQ(baselines::CliqueCovering().Reconstruct(empty)
                .num_total_edges(),
            0u);
  EXPECT_EQ(baselines::ShyreUnsup().Reconstruct(empty).num_total_edges(),
            0u);
  ProjectedGraph one_edge(2);
  one_edge.AddWeight(0, 1, 1);
  EXPECT_EQ(baselines::MaxCliqueDecomposition()
                .Reconstruct(one_edge)
                .num_unique_edges(),
            1u);
}

TEST(Robustness, DisconnectedComponentsAreAllExplained) {
  // Several disconnected cliques; nothing may be dropped.
  Hypergraph truth;
  truth.AddEdge({0, 1, 2}, 1);
  truth.AddEdge({10, 11}, 3);
  truth.AddEdge({20, 21, 22, 23}, 2);
  ProjectedGraph g = truth.Project();
  Hypergraph reconstructed = TrainedMarioh().Reconstruct(g);
  EXPECT_EQ(reconstructed.Project().TotalWeight(), g.TotalWeight());
}

TEST(Robustness, MaxIterationSafetyCapHolds) {
  // With max_iterations = 1 the reconstruction must return after a single
  // pass even though the graph still has edges.
  core::MariohOptions options;
  options.max_iterations = 1;
  options.theta_init = 1.0;  // nothing accepted in iteration 1
  core::Marioh marioh(options);
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("crime"), 11);
  util::Rng rng(12);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  marioh.Train(split.source.Project(), split.source);
  // Must return (no hang); the result may be partial.
  Hypergraph reconstructed =
      marioh.Reconstruct(split.target.Project());
  SUCCEED();
}

}  // namespace
}  // namespace marioh
