// Tests for the api::Session façade: the configure → train → reconstruct
// → evaluate protocol, string overrides, per-stage timing, the wall-clock
// budget (OOT semantics), the progress/cancellation callback, and the
// file-based convenience entry points — all failure modes as Status.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "eval/harness.hpp"
#include "io/text_io.hpp"

namespace marioh::api {
namespace {

eval::PreparedDataset SmallDataset() {
  return eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                              /*seed=*/1);
}

TEST(Session, WalksTheWholeProtocol) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  EXPECT_TRUE(session.method_info().supervised);

  ASSERT_TRUE(session.Train(*data.g_source, *data.source).ok());
  Status reconstructed = session.Reconstruct(*data.g_target);
  ASSERT_TRUE(reconstructed.ok()) << reconstructed.ToString();
  ASSERT_NE(session.reconstruction(), nullptr);
  EXPECT_GT(session.reconstruction()->num_unique_edges(), 0u);

  StatusOr<EvaluationResult> scores = session.Evaluate(*data.target);
  ASSERT_TRUE(scores.ok());
  // The crime profile is one of the easiest regimes in Table II; anything
  // below 0.5 Jaccard means the pipeline is broken, not merely inaccurate.
  EXPECT_GE(scores->jaccard, 0.5);
  EXPECT_LE(scores->jaccard, 1.0);
  EXPECT_EQ(scores->reconstructed_unique_edges,
            session.reconstruction()->num_unique_edges());

  // Per-stage timing was recorded and the budget was never exceeded.
  EXPECT_GT(session.stage_timer().Get("reconstruct"), 0.0);
  EXPECT_FALSE(session.deadline_exceeded());
}

TEST(Session, UnknownMethodIsANotFoundStatusNotAnAbort) {
  Session session;
  SessionOptions options;
  options.method = "NoSuchMethod";
  Status status = session.Configure(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("known methods"), std::string::npos);
  EXPECT_FALSE(session.configured());
}

TEST(Session, StagesBeforeConfigureFailCleanly) {
  eval::PreparedDataset data = SmallDataset();
  Session session;
  EXPECT_EQ(session.Train(*data.g_source, *data.source).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Reconstruct(*data.g_target).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Evaluate(*data.target).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Session, SupervisedMethodRequiresTrainBeforeReconstruct) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  Status result = session.Reconstruct(*data.g_target);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kFailedPrecondition);
}

TEST(Session, UnsupervisedMethodReconstructsWithoutTrain) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MaxClique";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  EXPECT_FALSE(session.method_info().supervised);
  Status result = session.Reconstruct(*data.g_target);
  ASSERT_TRUE(result.ok()) << result.ToString();
  ASSERT_NE(session.reconstruction(), nullptr);
  EXPECT_GT(session.reconstruction()->num_unique_edges(), 0u);
}

TEST(Session, ExhaustedTimeBudgetIsDeadlineExceededNotAnAbort) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MARIOH";
  options.time_budget_seconds = 0.0;  // any reconstruction overruns it
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(*data.g_source, *data.source).ok());
  // The overrunning reconstruction itself completes (the paper's OOT
  // accounting still scores the overrunning run) ...
  Status first = session.Reconstruct(*data.g_target);
  ASSERT_TRUE(first.ok()) << first.ToString();
  EXPECT_TRUE(session.deadline_exceeded());
  EXPECT_TRUE(session.Evaluate(*data.target).ok());
  // ... but no further budgeted stage may start.
  Status second = session.Reconstruct(*data.g_target);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(second.message().find("time budget"), std::string::npos);
}

TEST(Session, ProgressCallbackObservesStagesAndCanCancel) {
  eval::PreparedDataset data = SmallDataset();
  std::vector<std::string> stages;
  SessionOptions options;
  options.method = "MaxClique";
  options.progress = [&stages](const std::string& stage, double elapsed) {
    EXPECT_GE(elapsed, 0.0);
    stages.push_back(stage);
    return true;
  };
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Reconstruct(*data.g_target).ok());
  EXPECT_EQ(stages, std::vector<std::string>{"reconstruct"});

  options.progress = [](const std::string&, double) { return false; };
  Session cancelled;
  ASSERT_TRUE(cancelled.Configure(options).ok());
  Status result = cancelled.Reconstruct(*data.g_target);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kCancelled);
}

TEST(Session, StringOverridesConfigureTheSessionAndTheMethod) {
  SessionOptions options;
  ASSERT_TRUE(ApplySessionOverride(&options, "method=MARIOH-B").ok());
  ASSERT_TRUE(ApplySessionOverride(&options, "seed=9").ok());
  ASSERT_TRUE(
      ApplySessionOverride(&options, "time_budget_seconds=45").ok());
  ASSERT_TRUE(ApplySessionOverride(&options, "theta_init=0.8").ok());
  EXPECT_EQ(options.method, "MARIOH-B");
  EXPECT_EQ(options.seed, 9u);
  EXPECT_DOUBLE_EQ(options.time_budget_seconds, 45.0);
  // Method-level keys are validated at Configure time.
  Session session;
  EXPECT_TRUE(session.Configure(options).ok());

  EXPECT_EQ(ApplySessionOverride(&options, "garbage").code(),
            StatusCode::kInvalidArgument);
  SessionOptions fresh;
  EXPECT_EQ(ApplySessionOverride(&fresh, "seed=abc").code(),
            StatusCode::kInvalidArgument);
  // stoull would silently wrap a negative seed; it must be rejected.
  EXPECT_EQ(ApplySessionOverride(&fresh, "seed=-1").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(ApplySessionOverride(&options, "bogus_key=1").ok());
  Session rejects;
  Status status = rejects.Configure(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bogus_key"), std::string::npos);
}

TEST(Session, ThreadsOverrideConfiguresTheHotKernels) {
  {
    SessionOptions options;
    ASSERT_TRUE(ApplySessionOverride(&options, "threads=8").ok());
    EXPECT_EQ(options.marioh.num_threads, 8);
  }
  {
    SessionOptions options;
    ASSERT_TRUE(ApplySessionOverride(&options, "threads=0").ok());
    EXPECT_EQ(options.marioh.num_threads, 0);  // 0 = all cores
  }
  SessionOptions options;
  EXPECT_EQ(ApplySessionOverride(&options, "threads=-2").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplySessionOverride(&options, "threads=two").code(),
            StatusCode::kInvalidArgument);
}

TEST(Session, OverridesRejectEmptyKeysAndValues) {
  SessionOptions options;
  // Empty key ('=value') and empty value ('key=') each get a precise
  // InvalidArgument naming the problem — session- and method-level alike.
  Status empty_key = ApplySessionOverride(&options, "=0.8");
  EXPECT_EQ(empty_key.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty_key.message().find("empty key"), std::string::npos);
  for (const char* assignment :
       {"seed=", "method=", "threads=", "time_budget_seconds=",
        "theta_init="}) {
    Status status = ApplySessionOverride(&options, assignment);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << assignment;
    EXPECT_NE(status.message().find("empty value"), std::string::npos)
        << assignment;
  }
  // Nothing leaked into the override list or the applied-key ledger.
  EXPECT_TRUE(options.overrides.empty());
  EXPECT_TRUE(options.applied_session_keys.empty());
}

TEST(Session, DuplicateSessionLevelOverridesAreRejected) {
  for (const auto& [first, second] :
       std::vector<std::pair<const char*, const char*>>{
           {"seed=1", "seed=2"},
           {"method=MARIOH", "method=MaxClique"},
           {"threads=2", "threads=4"},
           {"time_budget_seconds=5", "time_budget_seconds=9"}}) {
    SessionOptions options;
    ASSERT_TRUE(ApplySessionOverride(&options, first).ok()) << first;
    Status status = ApplySessionOverride(&options, second);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << second;
    EXPECT_NE(status.message().find("duplicate session option"),
              std::string::npos)
        << status.message();
  }
  // A failed assignment claims nothing: the key can still be set once.
  SessionOptions options;
  EXPECT_EQ(ApplySessionOverride(&options, "seed=abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ApplySessionOverride(&options, "seed=5").ok());
  EXPECT_EQ(options.seed, 5u);
  // Method-level keys are not session state; factories see duplicates
  // and apply their own policy.
  EXPECT_TRUE(ApplySessionOverride(&options, "theta_init=0.8").ok());
  EXPECT_TRUE(ApplySessionOverride(&options, "theta_init=0.9").ok());
  EXPECT_EQ(options.overrides.size(), 2u);
}

TEST(Session, ThreadsOverrideDoesNotChangeTheReconstruction) {
  eval::PreparedDataset data = SmallDataset();
  auto run = [&](const char* threads) {
    SessionOptions options;
    options.method = "MARIOH";
    if (threads != nullptr) {
      EXPECT_TRUE(ApplySessionOverride(&options, threads).ok());
    }
    Session session;
    EXPECT_TRUE(session.Configure(options).ok());
    EXPECT_TRUE(session.Train(*data.g_source, *data.source).ok());
    EXPECT_TRUE(session.Reconstruct(*data.g_target).ok());
    return session.reconstruction()->edges();
  };
  auto sequential = run(nullptr);
  EXPECT_EQ(run("threads=4"), sequential);
}

TEST(Session, ReconstructionCountersLandInStageStats) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(*data.g_source, *data.source).ok());
  ASSERT_TRUE(session.Reconstruct(*data.g_target).ok());
  // The method's run counters are recorded under "reconstruct.<name>";
  // in particular a truncated clique enumeration would be visible here
  // (this small dataset never truncates).
  EXPECT_GT(session.stage_timer().Get("reconstruct.iterations"), 0.0);
  EXPECT_GT(session.stage_timer().Get("reconstruct.maximal_cliques"), 0.0);
  EXPECT_EQ(session.stage_timer().Get("reconstruct.cliques_truncated"),
            0.0);
  // Snapshot upkeep counters: every iteration's snapshot was either
  // patched or rebuilt, so the mix accounts for all of them.
  double snapshots =
      session.stage_timer().Get("reconstruct.snapshot_patches") +
      session.stage_timer().Get("reconstruct.snapshot_rebuilds");
  EXPECT_GT(snapshots, 0.0);
}

TEST(Session, SnapshotReuseOverrideIsAPureWallClockKnob) {
  eval::PreparedDataset data = SmallDataset();
  auto run = [&](const char* override_kv) {
    SessionOptions options;
    options.method = "MARIOH";
    if (override_kv != nullptr) {
      EXPECT_TRUE(ApplySessionOverride(&options, override_kv).ok());
    }
    Session session;
    EXPECT_TRUE(session.Configure(options).ok());
    EXPECT_TRUE(session.Train(*data.g_source, *data.source).ok());
    EXPECT_TRUE(session.Reconstruct(*data.g_target).ok());
    double patches =
        session.stage_timer().Get("reconstruct.snapshot_patches");
    return std::make_pair(session.reconstruction()->edges(), patches);
  };
  auto [default_edges, default_patches] = run(nullptr);
  auto [rebuild_edges, rebuild_patches] = run("snapshot_reuse=0");
  auto [patch_edges, patch_patches] = run("snapshot_reuse=1");
  // The policy changes only which snapshot route ran, never the result.
  EXPECT_EQ(rebuild_edges, default_edges);
  EXPECT_EQ(patch_edges, default_edges);
  EXPECT_EQ(rebuild_patches, 0.0);
  EXPECT_GT(patch_patches, 0.0);
}

TEST(Session, FileBasedRoundTripMatchesInMemoryRun) {
  eval::PreparedDataset data = SmallDataset();
  const std::string train_path = "session_test_train.hg";
  const std::string target_path = "session_test_target.eg";
  const std::string out_path = "session_test_out.hg";
  ASSERT_TRUE(io::TryWriteHypergraphFile(*data.source, train_path).ok());
  ASSERT_TRUE(
      io::TryWriteProjectedGraphFile(*data.g_target, target_path).ok());

  SessionOptions options;
  options.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.TrainFromFile(train_path).ok());
  Status reconstructed = session.ReconstructFromFile(target_path);
  ASSERT_TRUE(reconstructed.ok()) << reconstructed.ToString();
  ASSERT_TRUE(session.WriteReconstruction(out_path).ok());

  StatusOr<Hypergraph> round_trip = io::TryReadHypergraphFile(out_path);
  ASSERT_TRUE(round_trip.ok());
  ASSERT_NE(session.reconstruction(), nullptr);
  EXPECT_EQ(round_trip->num_unique_edges(),
            session.reconstruction()->num_unique_edges());

  // Missing files surface as NotFound, not exceptions or aborts.
  EXPECT_EQ(session.TrainFromFile("no_such_file.hg").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.ReconstructFromFile("no_such_file.eg").code(),
            StatusCode::kNotFound);

  std::remove(train_path.c_str());
  std::remove(target_path.c_str());
  std::remove(out_path.c_str());
}

TEST(Session, SharedCacheLoadsEachFileOnce) {
  eval::PreparedDataset data = SmallDataset();
  const std::string train_path = "session_cache_train.hg";
  const std::string target_path = "session_cache_target.eg";
  ASSERT_TRUE(io::TryWriteHypergraphFile(*data.source, train_path).ok());
  ASSERT_TRUE(
      io::TryWriteProjectedGraphFile(*data.g_target, target_path).ok());

  auto cache = std::make_shared<DatasetCache>();
  auto run = [&] {
    SessionOptions options;
    options.method = "MARIOH";
    options.cache = cache;
    Session session;
    EXPECT_TRUE(session.Configure(options).ok());
    EXPECT_TRUE(session.TrainFromFile(train_path).ok());
    EXPECT_TRUE(session.ReconstructFromFile(target_path).ok());
    return session.reconstruction()->edges();
  };
  auto first = run();

  // The files are gone, yet a second session sharing the cache still
  // runs — proof the data is served from the resident handles, not
  // re-read per run — and reconstructs identically.
  std::remove(train_path.c_str());
  std::remove(target_path.c_str());
  EXPECT_EQ(run(), first);
  EXPECT_EQ(cache->size(), 2u);  // one entry per path

  // Without the cache, the same session options now hit NotFound.
  SessionOptions uncached;
  uncached.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(uncached).ok());
  EXPECT_EQ(session.TrainFromFile(train_path).code(),
            StatusCode::kNotFound);
}

TEST(Session, ConfigureResetsStateForReuse) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MaxClique";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Reconstruct(*data.g_target).ok());
  EXPECT_NE(session.reconstruction(), nullptr);

  ASSERT_TRUE(session.Configure(options).ok());
  EXPECT_EQ(session.reconstruction(), nullptr);
  EXPECT_EQ(session.stage_timer().Total(), 0.0);
  EXPECT_EQ(session.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace marioh::api
