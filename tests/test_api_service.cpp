// Tests for the service-grade API stack: DatasetCache (named, immutable,
// load-once shared handles), the async job Service (Submit/SubmitBatch/
// Poll/Wait/Cancel on a worker pool, service counters), and the
// determinism contract the whole design rests on — N concurrent jobs over
// one shared dataset handle produce bit-identical hypergraphs to the same
// runs executed sequentially through Session.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/request.hpp"
#include "api/service.hpp"
#include "api/session.hpp"
#include "eval/harness.hpp"
#include "io/text_io.hpp"
#include "util/failpoint.hpp"

namespace marioh::api {
namespace {

eval::PreparedDataset SmallDataset() {
  return eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                              /*seed=*/1);
}

/// A cache pre-filled with the crime profile's three roles, sharing the
/// PreparedDataset's handles (zero copies).
std::shared_ptr<DatasetCache> CacheWithCrime(
    const eval::PreparedDataset& data) {
  auto cache = std::make_shared<DatasetCache>();
  EXPECT_TRUE(cache->Insert("crime.train", data.source, data.g_source).ok());
  EXPECT_TRUE(cache->Insert("crime.target", nullptr, data.g_target).ok());
  EXPECT_TRUE(cache->Insert("crime.truth", data.target, nullptr).ok());
  return cache;
}

/// Polls until the job leaves kQueued. True if it was observed kRunning
/// (false means it raced straight to a terminal state).
bool WaitUntilRunning(Service& service, JobId id) {
  for (;;) {
    StatusOr<JobSnapshot> job = service.Poll(id);
    if (!job.ok()) return false;
    if (job->state == JobState::kRunning) return true;
    if (job->terminal()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(DatasetCache, InsertGetEraseAndListing) {
  eval::PreparedDataset data = SmallDataset();
  DatasetCache cache;
  ASSERT_TRUE(cache.Insert("d", data.source, data.g_source).ok());
  EXPECT_TRUE(cache.Contains("d"));
  EXPECT_EQ(cache.size(), 1u);

  StatusOr<DatasetHandle> fetched = cache.Get("d");
  ASSERT_TRUE(fetched.ok());
  // Zero-copy: the cache shares the caller's objects, not copies.
  EXPECT_EQ(fetched->hypergraph.get(), data.source.get());
  EXPECT_EQ(fetched->graph.get(), data.g_source.get());

  // Unknown names are a NotFound listing the residents.
  Status missing = cache.Get("nope").status();
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_NE(missing.message().find("d"), std::string::npos);

  // Duplicate names are rejected; the original stays.
  EXPECT_EQ(cache.Insert("d", data.target, nullptr).status().code(),
            StatusCode::kAlreadyExists);

  // Eviction drops the name but never invalidates handles already out.
  ASSERT_TRUE(cache.Erase("d").ok());
  EXPECT_FALSE(cache.Contains("d"));
  EXPECT_EQ(cache.Erase("d").code(), StatusCode::kNotFound);
  EXPECT_GT(fetched->hypergraph->num_unique_edges(), 0u);

  // A dataset must hold something, under a non-empty name.
  EXPECT_EQ(cache.Insert("empty", nullptr, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.Insert("", data.source, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetCache, FileLoadsAreSharedAndLoadOnce) {
  eval::PreparedDataset data = SmallDataset();
  const std::string path = "cache_test_source.hg";
  ASSERT_TRUE(io::TryWriteHypergraphFile(*data.source, path).ok());

  DatasetCache cache;
  StatusOr<DatasetHandle> first = cache.LoadHypergraphFile("src", path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_hypergraph());
  ASSERT_TRUE(first->has_graph());  // projection comes with the load
  EXPECT_EQ(first->hypergraph->num_unique_edges(),
            data.source->num_unique_edges());

  // Load-once: the same name+path returns the identical handle even if
  // the file vanished in between — no re-read happens.
  std::remove(path.c_str());
  StatusOr<DatasetHandle> second = cache.LoadHypergraphFile("src", path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->hypergraph.get(), first->hypergraph.get());

  // The same name from a *different* path is a conflict, not a reload.
  EXPECT_EQ(cache.LoadHypergraphFile("src", "other.hg").status().code(),
            StatusCode::kAlreadyExists);
  // Missing files surface as NotFound under a fresh name.
  EXPECT_EQ(cache.LoadHypergraphFile("fresh", "no_such.hg").status().code(),
            StatusCode::kNotFound);
}

TEST(Session, HandleBasedStagesShareOneDatasetCopy) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MARIOH";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  ASSERT_TRUE(session.Train(data.train()).ok());
  ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
  ASSERT_NE(session.reconstruction(), nullptr);
  EXPECT_GT(session.reconstruction()->num_unique_edges(), 0u);

  // Ill-typed handles are precise InvalidArguments.
  EXPECT_EQ(session.Train(data.target_input()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Reconstruct(data.ground_truth()).code(),
            StatusCode::kInvalidArgument);
}

TEST(Session, TakeReconstructionMovesTheResultOut) {
  eval::PreparedDataset data = SmallDataset();
  SessionOptions options;
  options.method = "MaxClique";
  Session session;
  ASSERT_TRUE(session.Configure(options).ok());
  EXPECT_EQ(session.TakeReconstruction().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
  size_t unique = session.reconstruction()->num_unique_edges();
  StatusOr<Hypergraph> taken = session.TakeReconstruction();
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->num_unique_edges(), unique);
  EXPECT_EQ(session.reconstruction(), nullptr);
}

TEST(Service, SubmitValidatesBeforeQueueing) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));

  ReconstructRequest request;
  request.method = "NoSuchMethod";
  request.target_dataset = "crime.target";
  EXPECT_EQ(service.Submit(request).status().code(), StatusCode::kNotFound);

  request.method = "MARIOH";
  request.target_dataset = "";
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
  request.target_dataset = "no.such.dataset";
  EXPECT_EQ(service.Submit(request).status().code(), StatusCode::kNotFound);

  // A graph-only dataset cannot train; a hypergraph-only one cannot be a
  // target; a supervised method needs a train dataset at all.
  request.target_dataset = "crime.truth";
  request.train_dataset = "crime.train";
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kFailedPrecondition);
  request.target_dataset = "crime.target";
  request.train_dataset = "crime.target";
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kFailedPrecondition);
  request.train_dataset = "";
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kFailedPrecondition);

  // Reserved override keys belong in the typed request fields.
  request.train_dataset = "crime.train";
  request.overrides = {{"seed", "3"}};
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);

  // Nothing was admitted by any of the rejects.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(service.Poll(1).status().code(), StatusCode::kNotFound);
}

// The acceptance-criteria test: K concurrent jobs sharing one DatasetCache
// handle must produce bit-identical hypergraphs to the same runs executed
// sequentially through Session with the same seeds.
TEST(Service, ConcurrentJobsMatchSequentialSessionsBitForBit) {
  constexpr int kJobs = 4;
  eval::PreparedDataset data = SmallDataset();

  // Sequential reference runs, one Session each, seeds 1..K.
  std::vector<Hypergraph> reference;
  for (int s = 1; s <= kJobs; ++s) {
    SessionOptions options;
    options.method = "MARIOH";
    options.seed = static_cast<uint64_t>(s);
    Session session;
    ASSERT_TRUE(session.Configure(options).ok());
    ASSERT_TRUE(session.Train(data.train()).ok());
    ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
    StatusOr<Hypergraph> taken = session.TakeReconstruction();
    ASSERT_TRUE(taken.ok());
    reference.push_back(std::move(taken).value());
  }

  // The same K runs as concurrent service jobs on shared handles.
  ServiceOptions service_options;
  service_options.num_workers = kJobs;
  Service service(CacheWithCrime(data), service_options);
  std::vector<ReconstructRequest> batch;
  for (int s = 1; s <= kJobs; ++s) {
    ReconstructRequest request;
    request.method = "MARIOH";
    request.train_dataset = "crime.train";
    request.target_dataset = "crime.target";
    request.ground_truth_dataset = "crime.truth";
    request.seed = static_cast<uint64_t>(s);
    batch.push_back(request);
  }
  StatusOr<std::vector<JobId>> ids = service.SubmitBatch(batch);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), static_cast<size_t>(kJobs));

  for (int s = 0; s < kJobs; ++s) {
    StatusOr<JobSnapshot> job = service.Wait((*ids)[static_cast<size_t>(s)]);
    ASSERT_TRUE(job.ok());
    EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
    ASSERT_NE(job->reconstruction, nullptr);
    // Bit-identical output: same edge multiset, same multiplicities.
    EXPECT_EQ(job->reconstruction->edges(), reference[static_cast<size_t>(s)].edges())
        << "job seed " << s + 1;
    // Evaluation and stage stats rode along.
    ASSERT_TRUE(job->evaluation.has_value());
    EXPECT_GE(job->evaluation->jaccard, 0.5);
    EXPECT_GT(job->stage_stats.at("reconstruct"), 0.0);
    EXPECT_GT(job->stage_stats.at("reconstruct.iterations"), 0.0);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.done, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST(Service, CancelQueuedJobsOnASingleWorker) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.num_workers = 1;  // everything after the first job queues
  Service service(CacheWithCrime(data), options);

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  std::vector<JobId> ids;
  for (int s = 0; s < 4; ++s) {
    request.seed = static_cast<uint64_t>(s + 1);
    StatusOr<JobId> id = service.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Cancel the tail jobs; whichever already started/finished reports
  // FailedPrecondition — on a 1-worker pool at least the last ones are
  // still queued and cancel cleanly.
  size_t cancelled = 0;
  for (size_t i = 1; i < ids.size(); ++i) {
    if (service.Cancel(ids[i]).ok()) ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(service.Cancel(999).code(), StatusCode::kNotFound);

  size_t observed_cancelled = 0;
  for (JobId id : ids) {
    StatusOr<JobSnapshot> job = service.Wait(id);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(job->terminal());
    if (job->state == JobState::kCancelled) {
      ++observed_cancelled;
      EXPECT_EQ(job->status.code(), StatusCode::kCancelled);
      EXPECT_EQ(job->reconstruction, nullptr);
    } else {
      EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
    }
    // Cancelling a terminal job is a FailedPrecondition, not a crash.
    EXPECT_EQ(service.Cancel(id).code(), StatusCode::kFailedPrecondition);
  }
  // A Cancel that caught its job queued lands for sure; one that raced a
  // just-started job is best-effort, so observed <= issued.
  EXPECT_LE(observed_cancelled, cancelled);
  EXPECT_EQ(service.stats().cancelled, observed_cancelled);
}

TEST(Service, BudgetOverrunsAreCountedNotFatal) {
  constexpr int kJobs = 3;
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.num_workers = kJobs;
  Service service(CacheWithCrime(data), options);

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.ground_truth_dataset = "crime.truth";
  request.time_budget_seconds = 0.0;  // any reconstruction overruns
  std::vector<JobId> ids;
  for (int s = 0; s < kJobs; ++s) {
    request.seed = static_cast<uint64_t>(s + 1);
    StatusOr<JobId> id = service.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (JobId id : ids) {
    StatusOr<JobSnapshot> job = service.Wait(id);
    ASSERT_TRUE(job.ok());
    // The overrunning run still completes and scores (OOT semantics).
    EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
    EXPECT_TRUE(job->budget_overrun);
    EXPECT_TRUE(job->evaluation.has_value());
    // The overshoot amount is reported, not just the boolean.
    EXPECT_GT(job->stage_stats.at("budget_overrun_seconds"), 0.0);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.budget_overruns, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.done, static_cast<uint64_t>(kJobs));
  // Soft overruns are not the hard-deadline terminal state, and nothing
  // was preempted.
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.preempted, 0u);
}

// Priority classes and fair-share lanes decide dispatch order, proven
// exactly via finish_seq on a single worker: while a blocker job holds
// the only worker, six jobs queue up — a batch job first, then three
// from client "a" interleaved with one from client "b", then an
// interactive job last. Dispatch must run the interactive job first
// (submitted last — the priority-inversion check), round-robin a/b
// within the normal class, and leave batch for the end.
TEST(Service, FairSharePriorityOrderingOnOneWorker) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.num_workers = 1;
  Service service(CacheWithCrime(data), options);

  // The blocker is the slowest job we have (supervised MARIOH) so the
  // whole batch below queues while it runs.
  ReconstructRequest blocker;
  blocker.method = "MARIOH";
  blocker.train_dataset = "crime.train";
  blocker.target_dataset = "crime.target";
  StatusOr<JobId> blocker_id = service.Submit(blocker);
  ASSERT_TRUE(blocker_id.ok());
  ASSERT_TRUE(WaitUntilRunning(service, *blocker_id));

  ReconstructRequest base;
  base.method = "MaxClique";
  base.target_dataset = "crime.target";
  auto with = [&base](Priority priority, const std::string& client) {
    ReconstructRequest request = base;
    request.priority = priority;
    request.client_id = client;
    return request;
  };
  StatusOr<std::vector<JobId>> ids = service.SubmitBatch({
      with(Priority::kBatch, "d"),        // submitted first, runs last
      with(Priority::kNormal, "a"),       // A1
      with(Priority::kNormal, "b"),       // B1
      with(Priority::kNormal, "a"),       // A2
      with(Priority::kNormal, "a"),       // A3
      with(Priority::kInteractive, "c"),  // submitted last, runs first
  });
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();

  // The order is only deterministic if none of the six was dispatched
  // before all six were queued — i.e. the queue gauge still reads 6 in
  // one atomic stats snapshot (sub-millisecond submissions vs a
  // hundreds-of-milliseconds blocker: this is the overwhelmingly common
  // path, but don't turn a scheduler test into a flake on a loaded CI
  // box).
  ServiceStats mid = service.stats();
  bool deterministic = mid.queued == 6;
  if (deterministic) {
    EXPECT_EQ(mid.queued_interactive, 1u);
    EXPECT_EQ(mid.queued_normal, 4u);
    EXPECT_EQ(mid.queued_batch, 1u);
  }

  std::vector<JobSnapshot> jobs;
  for (JobId id : *ids) {
    StatusOr<JobSnapshot> job = service.Wait(id);
    ASSERT_TRUE(job.ok());
    EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
    EXPECT_GT(job->finish_seq, 0u);
    jobs.push_back(*job);
  }
  StatusOr<JobSnapshot> blocker_job = service.Wait(*blocker_id);
  ASSERT_TRUE(blocker_job.ok());

  if (deterministic) {
    // Submission order: D, A1, B1, A2, A3, C.
    // Expected dispatch:  blocker, C, A1, B1, A2, A3, D.
    EXPECT_EQ(blocker_job->finish_seq, 1u);
    EXPECT_EQ(jobs[5].finish_seq, 2u);  // interactive jumps every queue
    EXPECT_EQ(jobs[1].finish_seq, 3u);  // A1
    EXPECT_EQ(jobs[2].finish_seq, 4u);  // B1: round-robin beats FIFO
    EXPECT_EQ(jobs[3].finish_seq, 5u);  // A2
    EXPECT_EQ(jobs[4].finish_seq, 6u);  // A3
    EXPECT_EQ(jobs[0].finish_seq, 7u);  // batch yields to everything
  }
  // Snapshots echo the scheduling attributes either way.
  EXPECT_EQ(jobs[0].priority, Priority::kBatch);
  EXPECT_EQ(jobs[0].client_id, "d");
  EXPECT_EQ(jobs[5].priority, Priority::kInteractive);
}

// Cancelling a running job preempts it mid-kernel: the job ends
// kCancelled with a measured cancel-to-stop latency, and the service
// accounts it under preempted + the latency counters.
TEST(Service, CancelRunningJobMeasuresPreemptionLatency) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.num_workers = 1;
  Service service(CacheWithCrime(data), options);

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  if (!WaitUntilRunning(service, *id)) {
    GTEST_SKIP() << "job finished before Cancel could catch it running";
  }
  ASSERT_TRUE(service.Cancel(*id).ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  if (job->state == JobState::kDone) {
    // Best-effort contract: the job crossed the finish line between the
    // running-state observation and the token trip.
    EXPECT_EQ(service.stats().preempted, 0u);
    return;
  }
  EXPECT_EQ(job->state, JobState::kCancelled);
  EXPECT_EQ(job->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(job->reconstruction, nullptr);
  EXPECT_GE(job->cancel_latency_seconds, 0.0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.preempted, 1u);
  EXPECT_EQ(stats.cancel_latency_count, 1u);
  EXPECT_EQ(stats.cancel_latency_total_seconds, job->cancel_latency_seconds);
  EXPECT_EQ(stats.cancel_latency_max_seconds, job->cancel_latency_seconds);
}

// A hard deadline aborts the job with the dedicated terminal state —
// disjoint from both kCancelled and the soft budget_overrun path.
TEST(Service, HardDeadlineEndsJobsAsDeadlineExceeded) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.deadline_seconds = 0.0;  // trips at the first preemption point
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kDeadlineExceeded);
  EXPECT_EQ(job->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(job->reconstruction, nullptr);
  EXPECT_GT(job->finish_seq, 0u);
  // No explicit Cancel happened, so no cancel-latency sample.
  EXPECT_LT(job->cancel_latency_seconds, 0.0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.preempted, 1u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.budget_overruns, 0u);
  EXPECT_EQ(stats.cancel_latency_count, 0u);

  // Cancelling the already-aborted job is a precise FailedPrecondition.
  EXPECT_EQ(service.Cancel(*id).code(), StatusCode::kFailedPrecondition);
}

// The per-job kernel_threads field changes only the job's CPU share,
// never its output (the thread-count-invariance contract, job-level).
TEST(Service, KernelThreadsOverrideKeepsOutputIdentical) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.seed = 11;
  StatusOr<JobId> base = service.Submit(request);
  request.kernel_threads = 4;
  StatusOr<JobId> wide = service.Submit(request);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(wide.ok());
  StatusOr<JobSnapshot> base_job = service.Wait(*base);
  StatusOr<JobSnapshot> wide_job = service.Wait(*wide);
  ASSERT_TRUE(base_job.ok());
  ASSERT_TRUE(wide_job.ok());
  ASSERT_EQ(base_job->state, JobState::kDone)
      << base_job->status.ToString();
  ASSERT_EQ(wide_job->state, JobState::kDone)
      << wide_job->status.ToString();
  EXPECT_EQ(base_job->reconstruction->edges(),
            wide_job->reconstruction->edges());
}

TEST(Service, MethodLevelOverridesReachTheJob) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));

  // A bad override value is validated inside the job (Configure), so the
  // job fails cleanly rather than Submit.
  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.overrides = {{"theta_init", "oops"}};
  StatusOr<JobId> bad = service.Submit(request);
  ASSERT_TRUE(bad.ok());
  StatusOr<JobSnapshot> failed = service.Wait(*bad);
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(failed->status.message().find("theta_init"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1u);

  // A good override (threads=2) changes nothing about the output — the
  // determinism contract — and the job succeeds.
  request.overrides = {{"threads", "2"}};
  request.seed = 7;
  StatusOr<JobId> good = service.Submit(request);
  ASSERT_TRUE(good.ok());
  StatusOr<JobSnapshot> done = service.Wait(*good);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, JobState::kDone) << done->status.ToString();

  SessionOptions session_options;
  session_options.method = "MARIOH";
  session_options.seed = 7;
  Session session;
  ASSERT_TRUE(session.Configure(session_options).ok());
  ASSERT_TRUE(session.Train(data.train()).ok());
  ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
  EXPECT_EQ(done->reconstruction->edges(),
            session.reconstruction()->edges());
}

TEST(Service, ForgetRetiresTerminalJobsOnly) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));
  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  ASSERT_EQ(job->state, JobState::kDone);

  ASSERT_TRUE(service.Forget(*id).ok());
  // The job is gone from the table, but the snapshot's shared handle
  // keeps the result alive — and the monotone counters are unaffected.
  EXPECT_EQ(service.Poll(*id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Forget(*id).code(), StatusCode::kNotFound);
  EXPECT_GT(job->reconstruction->num_unique_edges(), 0u);
  EXPECT_EQ(service.stats().done, 1u);

  // A queued/running job cannot be forgotten.
  ServiceOptions one_worker;
  one_worker.num_workers = 1;
  Service busy(CacheWithCrime(data), one_worker);
  ReconstructRequest slow;
  slow.method = "MARIOH";
  slow.train_dataset = "crime.train";
  slow.target_dataset = "crime.target";
  StatusOr<JobId> first = busy.Submit(slow);
  StatusOr<JobId> second = busy.Submit(slow);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The second job sits behind the first on the single worker; unless
  // both raced to completion already, forgetting it is premature.
  Status premature = busy.Forget(*second);
  if (!premature.ok()) {
    EXPECT_EQ(premature.code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(busy.Wait(*second).ok());
  }
  ASSERT_TRUE(busy.Wait(*first).ok());
}

// Pin-aware LRU: under a byte budget the cache evicts the least recently
// used unpinned entry; entries whose handles are still held outside the
// cache are never evicted (dropping the name would free nothing).
TEST(DatasetCache, LruEvictionUnderByteBudgetSparesPinnedHandles) {
  eval::PreparedDataset data = SmallDataset();
  DatasetCache cache;
  EXPECT_EQ(cache.max_bytes(), 0u);  // unbounded by default

  // Measure one entry: an unpinned copy (the temporary StatusOr handle
  // is dropped immediately, so only the cache holds it).
  ASSERT_TRUE(
      cache.Insert("a", std::make_shared<Hypergraph>(*data.source), nullptr)
          .ok());
  const size_t entry_bytes = cache.total_bytes();
  ASSERT_GT(entry_bytes, 0u);

  // Room for exactly two entries of this size.
  cache.set_max_bytes(2 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(
      cache.Insert("b", std::make_shared<Hypergraph>(*data.source), nullptr)
          .ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch "a" so "b" becomes the LRU victim, then overflow with "c".
  ASSERT_TRUE(cache.Get("a").ok());
  ASSERT_TRUE(
      cache.Insert("c", std::make_shared<Hypergraph>(*data.source), nullptr)
          .ok());
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.total_bytes(), cache.max_bytes());

  // Pinning: hold live handles to both residents, then shrink the budget
  // below one entry. Nothing can be evicted — the cache stays over
  // budget rather than dropping names whose data must live on anyway.
  {
    StatusOr<DatasetHandle> pin_a = cache.Get("a");
    StatusOr<DatasetHandle> pin_c = cache.Get("c");
    ASSERT_TRUE(pin_a.ok());
    ASSERT_TRUE(pin_c.ok());
    cache.set_max_bytes(1);
    EXPECT_TRUE(cache.Contains("a"));
    EXPECT_TRUE(cache.Contains("c"));
    EXPECT_EQ(cache.evictions(), 1u);
  }

  // The pins are gone, so the entries are reclaimable; the next insert's
  // eviction pass clears them (the fresh entry itself is exempt, so an
  // over-budget dataset still loads).
  ASSERT_TRUE(
      cache.Insert("d", std::make_shared<Hypergraph>(*data.source), nullptr)
          .ok());
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
  EXPECT_EQ(cache.evictions(), 3u);
}

// Admission control: a full queue or a client over its in-flight quota
// gets kResourceExhausted at Submit time; rejects are counted in
// submits_rejected and never leak into accepted — the terminal/gauge
// partition of accepted stays exact.
TEST(Service, AdmissionCapsRejectSubmitsWithResourceExhausted) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queued_jobs = 2;
  options.max_inflight_per_client = 2;
  Service service(CacheWithCrime(data), options);

  // The blocker holds the only worker (running, so it does not count
  // against the queued cap; it does count against its client's quota).
  ReconstructRequest blocker;
  blocker.method = "MARIOH";
  blocker.train_dataset = "crime.train";
  blocker.target_dataset = "crime.target";
  blocker.client_id = "hog";
  StatusOr<JobId> blocker_id = service.Submit(blocker);
  ASSERT_TRUE(blocker_id.ok());
  ASSERT_TRUE(WaitUntilRunning(service, *blocker_id));

  ReconstructRequest quick;
  quick.method = "MaxClique";
  quick.target_dataset = "crime.target";

  // The client quota trips first: "hog" has 1 running + 1 queued.
  quick.client_id = "hog";
  StatusOr<JobId> hog_queued = service.Submit(quick);
  ASSERT_TRUE(hog_queued.ok());
  EXPECT_EQ(service.Submit(quick).status().code(),
            StatusCode::kResourceExhausted);

  // Another client still gets the last queue slot — then the global
  // queued cap trips for everyone.
  quick.client_id = "other";
  StatusOr<JobId> other_queued = service.Submit(quick);
  ASSERT_TRUE(other_queued.ok());
  quick.client_id = "third";
  EXPECT_EQ(service.Submit(quick).status().code(),
            StatusCode::kResourceExhausted);

  // Batch admission is atomic: a batch that would overflow is rejected
  // whole, admitting none of its members.
  quick.client_id = "fourth";
  EXPECT_EQ(service.SubmitBatch({quick, quick, quick}).status().code(),
            StatusCode::kResourceExhausted);

  ASSERT_TRUE(service.Wait(*blocker_id).ok());
  ASSERT_TRUE(service.Wait(*hog_queued).ok());
  ASSERT_TRUE(service.Wait(*other_queued).ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submits_rejected, 3u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                stats.deadline_exceeded + stats.queued +
                                stats.running);
}

// TTL retirement: terminal jobs past the TTL vanish at the next sweep
// (any job-table entry point, or the explicit RetireExpired the TCP
// server ticks). Monotone counters are unaffected; jobs_retired counts
// the drops.
TEST(Service, TtlRetiresTerminalJobs) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.job_ttl_seconds = 0.5;
  Service service(CacheWithCrime(data), options);

  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  ASSERT_EQ(job->state, JobState::kDone);

  // Within the TTL the record is still pollable; past it, the next
  // lookup sweeps first and the record is gone.
  ASSERT_TRUE(service.Poll(*id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_EQ(service.Poll(*id).status().code(), StatusCode::kNotFound);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_retired, 1u);
  EXPECT_EQ(stats.done, 1u);  // monotone history survives retirement
  // The snapshot's shared handle outlives the record.
  EXPECT_GT(job->reconstruction->num_unique_edges(), 0u);

  // The explicit sweep entry point (what the TCP server ticks) reports
  // its reaping.
  StatusOr<JobId> second = service.Submit(request);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(service.Wait(*second).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_EQ(service.RetireExpired(), 1u);
  EXPECT_EQ(service.stats().jobs_retired, 2u);
}

// The Forget-vs-TTL race resolves to kNotFound: forgetting a job the TTL
// already retired is indistinguishable from forgetting twice — never a
// crash, never a silent success.
TEST(Service, ForgetAfterTtlRetirementIsNotFound) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions options;
  options.job_ttl_seconds = 0.5;
  Service service(CacheWithCrime(data), options);

  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Wait(*id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  // Forget's entry sweep retires the job before the lookup runs.
  EXPECT_EQ(service.Forget(*id).code(), StatusCode::kNotFound);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_retired, 1u);
  EXPECT_EQ(stats.done, 1u);

  // With retirement disabled (negative TTL, the default), Forget still
  // owns the removal and TTL never interferes.
  Service keeper(CacheWithCrime(data));
  StatusOr<JobId> kept = keeper.Submit(request);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(keeper.Wait(*kept).ok());
  EXPECT_TRUE(keeper.Forget(*kept).ok());
  EXPECT_EQ(keeper.stats().jobs_retired, 0u);
}

// The wire grammar shared by the LineProtocol `submit` verb and the
// journal's accept records: every typed field round-trips exactly,
// defaults are omitted, and overrides survive in order.
TEST(RequestWire, SerializeParseRoundTripsEveryField) {
  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.ground_truth_dataset = "crime.truth";
  request.seed = 42;
  request.time_budget_seconds = 1.25;
  request.deadline_seconds = 0.3333333333333333;
  request.priority = Priority::kInteractive;
  request.client_id = "tenant-7";
  request.kernel_threads = 3;
  request.retry.max_attempts = 4;
  request.retry.initial_backoff_seconds = 0.01;
  request.retry.backoff_multiplier = 3.0;
  request.retry.max_backoff_seconds = 0.5;
  request.retry.jitter_fraction = 0.25;
  request.retry.retryable = {StatusCode::kUnavailable,
                             StatusCode::kInternal};
  request.overrides = {{"threads", "2"}, {"theta_init", "0.8"}};
  ASSERT_TRUE(ValidateRequestSerializable(request).ok());

  std::string wire = SerializeReconstructRequest(request);
  ReconstructRequest parsed;
  ASSERT_TRUE(ParseReconstructRequest(wire, &parsed).ok()) << wire;
  EXPECT_EQ(parsed.method, request.method);
  EXPECT_EQ(parsed.train_dataset, request.train_dataset);
  EXPECT_EQ(parsed.target_dataset, request.target_dataset);
  EXPECT_EQ(parsed.ground_truth_dataset, request.ground_truth_dataset);
  EXPECT_EQ(parsed.seed, request.seed);
  EXPECT_EQ(parsed.time_budget_seconds, request.time_budget_seconds);
  EXPECT_EQ(parsed.deadline_seconds, request.deadline_seconds);
  EXPECT_EQ(parsed.priority, request.priority);
  EXPECT_EQ(parsed.client_id, request.client_id);
  EXPECT_EQ(parsed.kernel_threads, request.kernel_threads);
  EXPECT_EQ(parsed.retry.max_attempts, request.retry.max_attempts);
  EXPECT_EQ(parsed.retry.initial_backoff_seconds,
            request.retry.initial_backoff_seconds);
  EXPECT_EQ(parsed.retry.backoff_multiplier,
            request.retry.backoff_multiplier);
  EXPECT_EQ(parsed.retry.max_backoff_seconds,
            request.retry.max_backoff_seconds);
  EXPECT_EQ(parsed.retry.jitter_fraction, request.retry.jitter_fraction);
  EXPECT_EQ(parsed.retry.retryable, request.retry.retryable);
  EXPECT_EQ(parsed.overrides, request.overrides);
  // The round trip is a fixed point: re-serializing yields the same line.
  EXPECT_EQ(SerializeReconstructRequest(parsed), wire);

  // A default request serializes to nothing but the defaults it omits.
  ReconstructRequest blank;
  ReconstructRequest reparsed;
  ASSERT_TRUE(
      ParseReconstructRequest(SerializeReconstructRequest(blank), &reparsed)
          .ok());
  EXPECT_EQ(reparsed.method, blank.method);
  EXPECT_EQ(reparsed.seed, blank.seed);
  EXPECT_EQ(reparsed.retry.max_attempts, 1);
}

TEST(RequestWire, ParserRejectsMalformedAndDuplicateTokens) {
  auto parse = [](const std::string& text) {
    ReconstructRequest request;
    return ParseReconstructRequest(text, &request);
  };
  // Malformed token shapes.
  Status bad_shape = parse("method=MARIOH oops");
  EXPECT_EQ(bad_shape.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_shape.message().find("expected key=value, got 'oops'"),
            std::string::npos);
  // Bad typed values name the key and the value.
  Status bad_value = parse("seed=banana");
  EXPECT_EQ(bad_value.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_value.message().find("bad value 'banana' for option 'seed'"),
            std::string::npos);
  EXPECT_EQ(parse("priority=urgent").code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parse("priority=urgent").message().find(
                "bad priority 'urgent' (expected batch, normal, or "
                "interactive)"),
            std::string::npos);
  Status bad_code = parse("retryable=unavailable,flaky");
  EXPECT_EQ(bad_code.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_code.message().find("bad retryable code 'flaky'"),
            std::string::npos);
  // Any duplicated key — typed or override — is a typo, not an overwrite.
  Status dup_typed = parse("seed=1 seed=2");
  EXPECT_EQ(dup_typed.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_typed.message().find("duplicate option 'seed'"),
            std::string::npos);
  Status dup_override = parse("threads=2 threads=4");
  EXPECT_EQ(dup_override.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_override.message().find("duplicate option 'threads'"),
            std::string::npos);
  // Unknown keys are overrides, vetted later by Submit — not a parse
  // error here.
  ReconstructRequest with_override;
  ASSERT_TRUE(
      ParseReconstructRequest("snapshot_reuse=0.3", &with_override).ok());
  ASSERT_EQ(with_override.overrides.size(), 1u);
  EXPECT_EQ(with_override.overrides[0].first, "snapshot_reuse");
}

TEST(RequestWire, ValidateRejectsWhatCannotRoundTrip) {
  ReconstructRequest request;
  request.target_dataset = "crime.target";
  ASSERT_TRUE(ValidateRequestSerializable(request).ok());
  // Whitespace in a string field would split into extra tokens.
  request.client_id = "two words";
  EXPECT_EQ(ValidateRequestSerializable(request).code(),
            StatusCode::kInvalidArgument);
  request.client_id = "ok";
  // An override key carrying '=' or shadowing a typed key would not
  // parse back to the same request.
  request.overrides = {{"a=b", "1"}};
  EXPECT_EQ(ValidateRequestSerializable(request).code(),
            StatusCode::kInvalidArgument);
  request.overrides = {{"seed", "9"}};
  EXPECT_EQ(ValidateRequestSerializable(request).code(),
            StatusCode::kInvalidArgument);
  request.overrides = {{"threads", ""}};
  EXPECT_EQ(ValidateRequestSerializable(request).code(),
            StatusCode::kInvalidArgument);
  request.overrides = {{"threads", "2"}};
  EXPECT_TRUE(ValidateRequestSerializable(request).ok());
}

// The crash-recovery acceptance test: kill a journaling Service mid-queue
// (destructor ≙ process death for queued/preempted jobs: none of them is
// journaled terminal), restart on the same journal dir, and require every
// lost job to be re-admitted under its original JobId/client/priority and
// to finish bit-identical to an undisturbed reference run — with the
// jobs_recovered counter and the terminal-partition invariant exact.
TEST(Service, JournalRecoveryReadmitsKilledJobsBitIdentical) {
  constexpr int kJobs = 3;
  eval::PreparedDataset data = SmallDataset();
  const std::string dir =
      testing::TempDir() + "/marioh_service_recovery_journal";
  std::filesystem::remove_all(dir);
  util::FailPoints::Clear();

  // Undisturbed reference runs, seeds 1..K.
  std::vector<Hypergraph> reference;
  for (int s = 1; s <= kJobs; ++s) {
    SessionOptions session_options;
    session_options.method = "MARIOH";
    session_options.seed = static_cast<uint64_t>(s);
    Session session;
    ASSERT_TRUE(session.Configure(session_options).ok());
    ASSERT_TRUE(session.Train(data.train()).ok());
    ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
    StatusOr<Hypergraph> taken = session.TakeReconstruction();
    ASSERT_TRUE(taken.ok());
    reference.push_back(std::move(taken).value());
  }

  ServiceOptions options;
  options.num_workers = 1;
  options.journal_dir = dir;

  // Life 1: the single worker wedges inside the first job's reconstruct
  // stage; everything else queues. Destroying the Service preempts the
  // runner and sweeps the queue — exactly what SIGKILL leaves behind.
  ASSERT_TRUE(
      util::FailPoints::Configure("session.reconstruct", "delay:30000"));
  {
    Service service(CacheWithCrime(data), options);
    ASSERT_TRUE(service.startup_status().ok())
        << service.startup_status().ToString();
    for (int s = 1; s <= kJobs; ++s) {
      ReconstructRequest request;
      request.method = "MARIOH";
      request.train_dataset = "crime.train";
      request.target_dataset = "crime.target";
      request.seed = static_cast<uint64_t>(s);
      request.client_id = "survivor";
      request.priority = Priority::kInteractive;
      StatusOr<JobId> id = service.Submit(request);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, static_cast<JobId>(s));
    }
    EXPECT_EQ(service.stats().jobs_recovered, 0u);
  }
  util::FailPoints::Clear();

  // Life 2: all K jobs come back under their original identities and
  // finish bit-identical to the reference.
  {
    Service service(CacheWithCrime(data), options);
    ASSERT_TRUE(service.startup_status().ok())
        << service.startup_status().ToString();
    ServiceStats at_boot = service.stats();
    EXPECT_EQ(at_boot.jobs_recovered, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(at_boot.accepted, static_cast<uint64_t>(kJobs));
    for (int s = 1; s <= kJobs; ++s) {
      StatusOr<JobSnapshot> job = service.Wait(static_cast<JobId>(s));
      ASSERT_TRUE(job.ok()) << job.status().ToString();
      EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
      EXPECT_EQ(job->client_id, "survivor");
      EXPECT_EQ(job->priority, Priority::kInteractive);
      ASSERT_NE(job->reconstruction, nullptr);
      EXPECT_EQ(job->reconstruction->edges(),
                reference[static_cast<size_t>(s - 1)].edges())
          << "recovered job " << s;
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.done, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                  stats.deadline_exceeded + stats.queued +
                                  stats.running);
    // Fresh submissions never collide with recovered ids.
    ReconstructRequest fresh;
    fresh.method = "MaxClique";
    fresh.target_dataset = "crime.target";
    StatusOr<JobId> next = service.Submit(fresh);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, static_cast<JobId>(kJobs + 1));
    ASSERT_TRUE(service.Wait(*next).ok());
  }

  // Life 3: every job reached a journaled terminal state, so a third
  // boot recovers nothing (and compaction had nothing left to keep).
  {
    Service service(CacheWithCrime(data), options);
    ASSERT_TRUE(service.startup_status().ok());
    EXPECT_EQ(service.stats().jobs_recovered, 0u);
    EXPECT_EQ(service.stats().accepted, 0u);
  }
  std::filesystem::remove_all(dir);
}

// Terminal records stick: an explicitly cancelled queued job must NOT
// resurrect, and a recovered job whose dataset vanished fails cleanly
// under its original id instead of poisoning startup.
TEST(Service, JournalRecoveryHonoursTerminalsAndMissingDatasets) {
  eval::PreparedDataset data = SmallDataset();
  const std::string dir =
      testing::TempDir() + "/marioh_service_recovery_terminals";
  std::filesystem::remove_all(dir);
  util::FailPoints::Clear();

  ServiceOptions options;
  options.num_workers = 1;
  options.journal_dir = dir;

  ASSERT_TRUE(
      util::FailPoints::Configure("session.reconstruct", "delay:30000"));
  {
    Service service(CacheWithCrime(data), options);
    ASSERT_TRUE(service.startup_status().ok());
    ReconstructRequest request;
    request.method = "MARIOH";
    request.train_dataset = "crime.train";
    request.target_dataset = "crime.target";
    StatusOr<JobId> wedged = service.Submit(request);    // id 1: runs, wedges
    StatusOr<JobId> queued = service.Submit(request);    // id 2: queued
    StatusOr<JobId> doomed = service.Submit(request);    // id 3: cancelled
    ASSERT_TRUE(wedged.ok());
    ASSERT_TRUE(queued.ok());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(WaitUntilRunning(service, *wedged));
    // Explicit cancel of a queued job journals a terminal CANCELLED.
    ASSERT_TRUE(service.Cancel(*doomed).ok());
  }
  util::FailPoints::Clear();

  // Life 2 boots with an EMPTY cache: ids 1 and 2 cannot re-admit and
  // must land kFailed under their original ids; id 3 stays gone.
  {
    Service service(std::make_shared<DatasetCache>(), options);
    ASSERT_TRUE(service.startup_status().ok())
        << service.startup_status().ToString();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.jobs_recovered, 2u);
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.failed, 2u);
    for (JobId id : {JobId{1}, JobId{2}}) {
      StatusOr<JobSnapshot> job = service.Poll(id);
      ASSERT_TRUE(job.ok()) << "job " << id;
      EXPECT_EQ(job->state, JobState::kFailed);
      EXPECT_NE(job->status.message().find("recovery could not re-admit"),
                std::string::npos);
    }
    EXPECT_EQ(service.Poll(3).status().code(), StatusCode::kNotFound);
    EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                  stats.deadline_exceeded + stats.queued +
                                  stats.running);
  }
  std::filesystem::remove_all(dir);
}

// The dataset manifest round trip: EnableManifest records loads and
// generated triples; RestoreFromManifest on a fresh cache brings every
// dataset back (files re-read, triples re-generated through the
// resolver), and malformed manifests are precise errors.
TEST(DatasetCache, ManifestRecordsAndRestoresDatasets) {
  eval::PreparedDataset data = SmallDataset();
  const std::string dir = testing::TempDir() + "/marioh_manifest_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string manifest = dir + "/datasets.manifest";
  const std::string hg_path = dir + "/source.hg";
  ASSERT_TRUE(io::TryWriteHypergraphFile(*data.source, hg_path).ok());

  {
    DatasetCache cache;
    ASSERT_TRUE(cache.EnableManifest(manifest).ok());
    ASSERT_TRUE(cache.LoadHypergraphFile("src", hg_path).ok());
    cache.RecordGenerated("syn", "crime", 7);
  }
  StatusOr<std::vector<DatasetCache::ManifestEntry>> entries =
      DatasetCache::ReadManifest(manifest);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);

  // Restore into a fresh cache; the resolver counts gen requests.
  DatasetCache restored;
  int generated = 0;
  Status status = restored.RestoreFromManifest(
      manifest, [&generated](const std::string& basename,
                             const std::string& profile, uint64_t seed) {
        ++generated;
        EXPECT_EQ(basename, "syn");
        EXPECT_EQ(profile, "crime");
        EXPECT_EQ(seed, 7u);
        return Status::Ok();
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(generated, 1);
  EXPECT_TRUE(restored.Contains("src"));

  // A missing manifest restores nothing, successfully.
  DatasetCache empty;
  EXPECT_TRUE(
      empty.RestoreFromManifest(dir + "/absent.manifest", nullptr).ok());
  // A malformed line is an error naming the line.
  {
    std::ofstream bad(dir + "/bad.manifest");
    bad << "hypergraph only_two\n";
  }
  EXPECT_EQ(DatasetCache::ReadManifest(dir + "/bad.manifest").status().code(),
            StatusCode::kInvalidArgument);
  // A vanished file fails the restore but names the casualty.
  std::filesystem::remove(hg_path);
  DatasetCache unlucky;
  Status lost = unlucky.RestoreFromManifest(manifest, nullptr);
  EXPECT_EQ(lost.code(), StatusCode::kUnavailable);
  EXPECT_NE(lost.message().find("src"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Service, UnsupervisedJobsSkipTraining) {
  eval::PreparedDataset data = SmallDataset();
  Service service(CacheWithCrime(data));
  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
  EXPECT_EQ(job->stage_stats.count("train"), 0u);
  ASSERT_NE(job->reconstruction, nullptr);
  EXPECT_GT(job->reconstruction->num_unique_edges(), 0u);
}

}  // namespace
}  // namespace marioh::api
