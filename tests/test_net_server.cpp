// Tests for the src/net/ serving layer: a real TcpServer on a loopback
// socket, driven by real TCP clients. The acceptance criterion is the
// same determinism contract the service layer proves, one layer up: N
// concurrent TCP clients sharing one dataset handle must produce
// bit-identical reconstructions to the same runs executed sequentially
// through Session. On top of that: admission control answers
// RESOURCE_EXHAUSTED at the configured caps, slow readers are
// disconnected by write-side backpressure, and malformed or oversized
// frames never kill the event loop.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/service.hpp"
#include "api/session.hpp"
#include "eval/harness.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_server.hpp"

namespace marioh::net {
namespace {

using api::DatasetCache;
using api::JobId;
using api::JobSnapshot;
using api::Service;
using api::ServiceOptions;
using api::StatusOr;

eval::PreparedDataset SmallDataset() {
  return eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                              /*seed=*/1);
}

std::shared_ptr<DatasetCache> CacheWithCrime(
    const eval::PreparedDataset& data) {
  auto cache = std::make_shared<DatasetCache>();
  EXPECT_TRUE(cache->Insert("crime.train", data.source, data.g_source).ok());
  EXPECT_TRUE(cache->Insert("crime.target", nullptr, data.g_target).ok());
  EXPECT_TRUE(cache->Insert("crime.truth", data.target, nullptr).ok());
  return cache;
}

/// A live server on an ephemeral loopback port: cache + service + event
/// loop on its own thread. Everything a test needs to speak real TCP.
class ServerFixture {
 public:
  ServerFixture(const eval::PreparedDataset& data, ServiceOptions sopts,
                TcpServerOptions nopts, EventLoopOptions lopts = {})
      : cache_(CacheWithCrime(data)),
        service_(std::make_unique<Service>(cache_, sopts)),
        loop_(lopts) {
    server_ = std::make_unique<TcpServer>(&loop_, cache_.get(),
                                          service_.get(), nopts);
    api::Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    loop_thread_ = std::thread([this] { loop_.Run(); });
  }

  ~ServerFixture() {
    loop_.Stop();
    loop_thread_.join();
    server_.reset();  // after Run returned, per the threading contract
  }

  uint16_t port() const { return server_->port(); }
  Service& service() { return *service_; }
  const TcpServer& server() const { return *server_; }
  const EventLoop& loop() const { return loop_; }
  std::thread& loop_thread() { return loop_thread_; }

 private:
  std::shared_ptr<DatasetCache> cache_;
  std::unique_ptr<Service> service_;
  EventLoop loop_;
  std::unique_ptr<TcpServer> server_;
  std::thread loop_thread_;
};

/// A blocking line-oriented TCP client; reads time out after 120 s so a
/// lost response fails the test instead of hanging it.
class Client {
 public:
  /// `rcvbuf_bytes` shrinks SO_RCVBUF before connecting (0 keeps the
  /// default) — a tiny receive window bounds how much an unread response
  /// stream the kernel can absorb, which the backpressure test relies on.
  explicit Client(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval timeout{120, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof rcvbuf_bytes);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port = ::htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~Client() { Close(); }

  bool connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Sends raw bytes; returns false once the server has hung up.
  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  /// Next '\n'-terminated line without the newline; "" on EOF/timeout.
  std::string ReadLine() {
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// One request, one response line.
  std::string Roundtrip(const std::string& line) {
    if (!Send(line)) return "";
    return ReadLine();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Parses "ok job N ..." into N; 0 on anything else.
JobId ParseJobId(const std::string& response) {
  if (response.rfind("ok job ", 0) != 0) return 0;
  return static_cast<JobId>(std::stoull(response.substr(7)));
}

bool WaitUntilRunning(Service& service, JobId id) {
  for (;;) {
    StatusOr<JobSnapshot> job = service.Poll(id);
    if (!job.ok()) return false;
    if (job->state == api::JobState::kRunning) return true;
    if (job->terminal()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// The acceptance-criteria test: 8 concurrent TCP clients, each its own
// connection (and therefore its own fair-share lane), each submitting a
// seeded MARIOH job over the shared crime handles and blocking in the
// protocol's `wait`. Every reconstruction must be bit-identical to the
// same seed's run through a sequential Session.
TEST(NetServer, ConcurrentClientsMatchSequentialSessionsBitForBit) {
  constexpr int kClients = 8;
  eval::PreparedDataset data = SmallDataset();

  std::vector<Hypergraph> reference;
  for (int s = 1; s <= kClients; ++s) {
    api::SessionOptions options;
    options.method = "MARIOH";
    options.seed = static_cast<uint64_t>(s);
    api::Session session;
    ASSERT_TRUE(session.Configure(options).ok());
    ASSERT_TRUE(session.Train(data.train()).ok());
    ASSERT_TRUE(session.Reconstruct(data.target_input()).ok());
    StatusOr<Hypergraph> taken = session.TakeReconstruction();
    ASSERT_TRUE(taken.ok());
    reference.push_back(std::move(taken).value());
  }

  ServerFixture fixture(data, ServiceOptions{}, TcpServerOptions{});
  std::vector<JobId> ids(kClients, 0);
  std::vector<std::string> waits(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fixture, &ids, &waits, i] {
      Client client(fixture.port());
      if (!client.connected()) return;
      client.ReadLine();  // greeting
      std::string submitted = client.Roundtrip(
          "submit method=MARIOH train=crime.train target=crime.target "
          "truth=crime.truth seed=" +
          std::to_string(i + 1));
      JobId id = ParseJobId(submitted);
      if (id == 0) return;
      ids[static_cast<size_t>(i)] = id;
      waits[static_cast<size_t>(i)] =
          client.Roundtrip("wait " + std::to_string(id));
      client.Roundtrip("quit");
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_NE(ids[static_cast<size_t>(i)], 0u) << "client " << i;
    EXPECT_NE(waits[static_cast<size_t>(i)].find("state=DONE"),
              std::string::npos)
        << "client " << i << ": " << waits[static_cast<size_t>(i)];
    // Bit-identity is checked on the service-side snapshot — the full
    // edge multiset, not the protocol's summary counts.
    StatusOr<JobSnapshot> job =
        fixture.service().Poll(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(job.ok());
    ASSERT_NE(job->reconstruction, nullptr);
    EXPECT_EQ(job->reconstruction->edges(),
              reference[static_cast<size_t>(i)].edges())
        << "client seed " << i + 1;
  }

  NetStatsSnapshot net = fixture.server().stats();
  EXPECT_EQ(net.connections_total, static_cast<uint64_t>(kClients));
  EXPECT_EQ(net.connections_rejected, 0u);
}

// Saturating the admission caps over TCP answers RESOURCE_EXHAUSTED —
// and the rejected submits never contaminate the accepted counters.
TEST(NetServer, AdmissionControlRejectsWithResourceExhausted) {
  eval::PreparedDataset data = SmallDataset();
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queued_jobs = 1;
  ServerFixture fixture(data, sopts, TcpServerOptions{});
  Client client(fixture.port());
  ASSERT_TRUE(client.connected());
  client.ReadLine();

  // The blocker occupies the only worker; once it runs, the queue is
  // empty and has room for exactly one more job.
  JobId blocker = ParseJobId(client.Roundtrip(
      "submit method=MARIOH train=crime.train target=crime.target"));
  ASSERT_NE(blocker, 0u);
  ASSERT_TRUE(WaitUntilRunning(fixture.service(), blocker));

  std::string queued = client.Roundtrip(
      "submit method=MaxClique target=crime.target");
  EXPECT_EQ(queued.rfind("ok job ", 0), 0u) << queued;
  std::string rejected = client.Roundtrip(
      "submit method=MaxClique target=crime.target");
  EXPECT_EQ(rejected.rfind("error RESOURCE_EXHAUSTED", 0), 0u) << rejected;

  // The reject is an error response, not a dead connection: the same
  // socket keeps serving.
  EXPECT_NE(client.Roundtrip("wait " + std::to_string(blocker))
                .find("state=DONE"),
            std::string::npos);

  api::ServiceStats stats = fixture.service().stats();
  EXPECT_EQ(stats.submits_rejected, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  // The terminal/gauge counters still partition accepted exactly.
  EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                stats.deadline_exceeded + stats.queued +
                                stats.running);
}

// Accepts past max_connections get one RESOURCE_EXHAUSTED line and an
// immediate close; the resident connections are untouched.
TEST(NetServer, ConnectionCapRejectsExtraClients) {
  eval::PreparedDataset data = SmallDataset();
  TcpServerOptions nopts;
  nopts.max_connections = 2;
  ServerFixture fixture(data, ServiceOptions{}, nopts);

  Client first(fixture.port());
  Client second(fixture.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  EXPECT_EQ(first.ReadLine().rfind("ok marioh_served", 0), 0u);
  EXPECT_EQ(second.ReadLine().rfind("ok marioh_served", 0), 0u);

  Client third(fixture.port());
  ASSERT_TRUE(third.connected());
  EXPECT_EQ(third.ReadLine().rfind("error RESOURCE_EXHAUSTED", 0), 0u);
  EXPECT_EQ(third.ReadLine(), "");  // server hung up

  // The survivors still serve; a freed slot readmits.
  EXPECT_EQ(first.Roundtrip("methods").rfind("ok methods", 0), 0u);
  first.Roundtrip("quit");
  first.Close();
  for (int i = 0; i < 500; ++i) {
    if (fixture.server().stats().connections_active < 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Client fourth(fixture.port());
  ASSERT_TRUE(fourth.connected());
  EXPECT_EQ(fourth.ReadLine().rfind("ok marioh_served", 0), 0u);

  EXPECT_GE(fixture.server().stats().connections_rejected, 1u);
}

// Write-side backpressure: a client that pipelines requests without ever
// reading responses fills its bounded output buffer and is disconnected
// instead of holding arbitrary server memory.
TEST(NetServer, SlowReaderIsDisconnectedByBackpressure) {
  eval::PreparedDataset data = SmallDataset();
  TcpServerOptions nopts;
  nopts.max_output_bytes = 16 * 1024;
  ServerFixture fixture(data, ServiceOptions{}, nopts);

  // A deliberately tiny receive buffer: the kernel can only absorb a few
  // tens of KB of unread responses before the server's own buffer has to
  // hold the rest.
  Client slow(fixture.port(), /*rcvbuf_bytes=*/4096);
  ASSERT_TRUE(slow.connected());
  // Never read: each `stats` response (~350 bytes) stacks up. Once the
  // socket buffers are full, the server-side buffer crosses the 16 KiB
  // cap and the connection is dropped mid-stream — visible here as a
  // failed send (RST) or the active-connection gauge hitting zero.
  std::string burst;
  for (int i = 0; i < 2000; ++i) burst += "stats\n";
  bool disconnected = false;
  for (int round = 0; round < 20 && !disconnected; ++round) {
    if (!slow.SendRaw(burst)) {
      disconnected = true;
      break;
    }
    for (int i = 0; i < 500 && !disconnected; ++i) {
      disconnected = fixture.server().stats().connections_active == 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(disconnected);

  // The loop survived its slow reader: a well-behaved client still gets
  // service.
  Client polite(fixture.port());
  ASSERT_TRUE(polite.connected());
  EXPECT_EQ(polite.ReadLine().rfind("ok marioh_served", 0), 0u);
  EXPECT_EQ(polite.Roundtrip("stats").rfind("ok stats", 0), 0u);
}

// Framing abuse — unknown verbs, binary junk, and a line far beyond
// max_line_bytes — produces error responses, never a dead loop. The
// oversized line is answered once and skipped; the connection then keeps
// serving normal requests.
TEST(NetServer, MalformedAndOversizedFramesDontKillTheLoop) {
  eval::PreparedDataset data = SmallDataset();
  TcpServerOptions nopts;
  nopts.max_line_bytes = 128;
  ServerFixture fixture(data, ServiceOptions{}, nopts);

  Client client(fixture.port());
  ASSERT_TRUE(client.connected());
  client.ReadLine();

  EXPECT_EQ(client.Roundtrip("no-such-verb a b c")
                .rfind("error INVALID_ARGUMENT", 0),
            0u);
  EXPECT_EQ(client.Roundtrip(std::string("\x01\x02\x7f garbage"))
                .rfind("error INVALID_ARGUMENT", 0),
            0u);

  // One 64 KiB line: rejected as soon as it exceeds the 128-byte frame
  // cap, discarded through its newline, connection intact.
  std::string oversized(64 * 1024, 'x');
  std::string response = client.Roundtrip(oversized);
  EXPECT_NE(response.find("request line exceeds 128 bytes"),
            std::string::npos)
      << response;

  // Still alive, still correct — a real request round-trips.
  EXPECT_EQ(client.Roundtrip("datasets").rfind("ok datasets", 0), 0u);
  EXPECT_EQ(client.Roundtrip("quit"), "ok bye");

  // And the server as a whole is unharmed.
  Client after(fixture.port());
  ASSERT_TRUE(after.connected());
  EXPECT_EQ(after.ReadLine().rfind("ok marioh_served", 0), 0u);
}

// The portable poll(2) backend is not just compile-time insurance: forced
// on at runtime (EventLoopOptions::force_poll, as --force-poll or
// MARIOH_NET_FORCE_POLL would), the same submit/wait slice must behave
// identically to the default epoll backend — correct results, same
// protocol responses, clean shutdown.
TEST(NetServer, PollBackendServesTheSameSlice) {
  eval::PreparedDataset data = SmallDataset();
  EventLoopOptions lopts;
  lopts.force_poll = true;
  ServerFixture fixture(data, ServiceOptions{}, TcpServerOptions{}, lopts);
  ASSERT_STREQ(fixture.loop().backend(), "poll");

  Client client(fixture.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.ReadLine().rfind("ok marioh_served", 0), 0u);
  EXPECT_EQ(client.Roundtrip("methods").rfind("ok methods", 0), 0u);
  JobId id = ParseJobId(client.Roundtrip(
      "submit method=MARIOH train=crime.train target=crime.target "
      "truth=crime.truth seed=1"));
  ASSERT_NE(id, 0u);
  std::string waited = client.Roundtrip("wait " + std::to_string(id));
  EXPECT_NE(waited.find("state=DONE"), std::string::npos) << waited;
  EXPECT_EQ(client.Roundtrip("quit"), "ok bye");
}

// EINTR regression: a signal delivered to the loop thread mid-epoll_wait
// (or mid-poll) must re-enter the wait, not kill Run(). We install a no-op
// SIGUSR1 handler (no SA_RESTART, so the syscall really does return
// EINTR), batter the loop thread with signals, and require the server to
// keep answering afterwards.
TEST(NetServer, EventLoopSurvivesEintrDuringRun) {
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately not SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  eval::PreparedDataset data = SmallDataset();
  {
    ServerFixture fixture(data, ServiceOptions{}, TcpServerOptions{});
    Client client(fixture.port());
    ASSERT_TRUE(client.connected());
    client.ReadLine();

    pthread_t loop_handle = fixture.loop_thread().native_handle();
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(::pthread_kill(loop_handle, SIGUSR1), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Still alive: a full request round-trips on the same loop.
    EXPECT_EQ(client.Roundtrip("datasets").rfind("ok datasets", 0), 0u);
    JobId id = ParseJobId(client.Roundtrip(
        "submit method=MaxClique target=crime.target"));
    ASSERT_NE(id, 0u);
    EXPECT_NE(client.Roundtrip("wait " + std::to_string(id))
                  .find("state=DONE"),
              std::string::npos);
    client.Roundtrip("quit");
  }  // the fixture's Stop/join also proves Run still exits cleanly

  ::sigaction(SIGUSR1, &previous, nullptr);
}

// The observability acceptance test: the `metrics` verb over TCP returns
// Prometheus text in which the accepted counter equals the sum of the
// terminal counters plus the queued/running gauges — exactly, because
// the Service publishes one mutex-coherent snapshot per collection. Also
// covers the framing (`ok metrics lines=N` + N raw lines), the
// single-line `metrics json` variant, and the `stats` verb still serving
// the legacy key order from the same registry.
TEST(NetServer, MetricsVerbExposesAnExactCounterPartition) {
  eval::PreparedDataset data = SmallDataset();
  ServerFixture fixture(data, ServiceOptions{}, TcpServerOptions{});
  Client client(fixture.port());
  ASSERT_TRUE(client.connected());
  client.ReadLine();  // greeting

  for (int i = 0; i < 2; ++i) {
    JobId id = ParseJobId(
        client.Roundtrip("submit method=MaxClique target=crime.target"));
    ASSERT_NE(id, 0u);
    EXPECT_NE(client.Roundtrip("wait " + std::to_string(id))
                  .find("state=DONE"),
              std::string::npos);
  }

  // The stats verb renders its legacy line from the registry — key order
  // unchanged, values from this fixture's Service.
  std::string stats = client.Roundtrip("stats");
  EXPECT_EQ(stats.rfind("ok stats accepted=2 queued=0 running=0 done=2", 0),
            0u)
      << stats;

  std::string header = client.Roundtrip("metrics");
  ASSERT_EQ(header.rfind("ok metrics lines=", 0), 0u) << header;
  int lines = std::atoi(header.c_str() + std::string("ok metrics lines=").size());
  ASSERT_GT(lines, 0);
  std::map<std::string, double> series;
  for (int i = 0; i < lines; ++i) {
    std::string line = client.ReadLine();
    ASSERT_FALSE(line.empty()) << "short metrics payload at line " << i;
    if (line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    series[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  // The connection is still line-synchronized after the framed payload.
  EXPECT_EQ(client.Roundtrip("datasets").rfind("ok datasets", 0), 0u);

  // Exact partition: accepted = terminals + queued + running.
  double terminals = series.at("marioh_jobs_done_total") +
                     series.at("marioh_jobs_failed_total") +
                     series.at("marioh_jobs_cancelled_total") +
                     series.at("marioh_jobs_deadline_exceeded_total") +
                     series.at("marioh_jobs_queued") +
                     series.at("marioh_jobs_running");
  EXPECT_EQ(series.at("marioh_jobs_accepted_total"), terminals);
  EXPECT_EQ(series.at("marioh_jobs_accepted_total"), 2.0);
  EXPECT_EQ(series.at("marioh_jobs_done_total"), 2.0);
  // The TcpServer hook publishes this fixture's connection counters.
  EXPECT_EQ(series.at("marioh_connections_total"), 1.0);
  EXPECT_EQ(series.at("marioh_connections_active"), 1.0);
  EXPECT_GE(series.at("marioh_lines_served_total"), 4.0);
  // Wait latency was observed for each job run (the global histogram is
  // cumulative across the binary, so >=, not ==).
  EXPECT_GE(series.at("marioh_wait_latency_seconds_count"), 2.0);
  EXPECT_GE(series.at("marioh_process_rss_bytes"), 1.0);

  std::string json = client.Roundtrip("metrics json");
  EXPECT_EQ(json.rfind("ok metrics-json {", 0), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"marioh_jobs_accepted_total\""), std::string::npos);

  EXPECT_EQ(client.Roundtrip("metrics bogus").rfind("error ", 0), 0u);
  client.Roundtrip("quit");
}

}  // namespace
}  // namespace marioh::net
