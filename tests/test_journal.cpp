// Tests for util::Journal — the write-ahead record log under the
// service's durability layer: record framing and replay order, CRC
// corruption and torn tails truncating cleanly at the last good record,
// segment rotation + compaction, fsync policy parsing, and the
// journal.append / journal.fsync / journal.replay failpoints.

#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/failpoint.hpp"

namespace marioh {
namespace {

using api::Status;
using api::StatusCode;
using api::StatusOr;
using util::FailPoints;
using util::Journal;
using util::JournalFsync;
using util::JournalOptions;
using util::JournalRecord;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Clear();
    dir_ = testing::TempDir() + "/marioh_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FailPoints::Clear();
    std::filesystem::remove_all(dir_);
  }

  /// Opens the journal collecting every replayed record into `replayed`.
  StatusOr<std::unique_ptr<Journal>> OpenCollecting(
      std::vector<JournalRecord>* replayed, JournalOptions options = {}) {
    return Journal::Open(
        dir_,
        [replayed](const JournalRecord& record) {
          replayed->push_back(record);
        },
        options);
  }

  /// Path of segment `wal-<seq>.log`.
  std::string SegmentPath(uint64_t seq) const {
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%08llu.log",
                  static_cast<unsigned long long>(seq));
    return dir_ + "/" + name;
  }

  std::string dir_;
};

TEST_F(JournalTest, AppendsReplayInOrderWithExactPayloads) {
  {
    StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE((*journal)->Append(1, "accept target=x", false).ok());
    ASSERT_TRUE((*journal)->Append(2, "accept target=y", false).ok());
    ASSERT_TRUE((*journal)->Append(1, "attempt 1", false).ok());
    // Binary payloads (embedded NUL, high bytes) must round-trip too.
    std::string binary("\x00\xff\x7f ok", 6);
    ASSERT_TRUE((*journal)->Append(3, binary, true).ok());
    EXPECT_EQ((*journal)->stats().records_appended, 4u);
  }
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(&replayed);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_EQ(replayed[0].key, 1u);
  EXPECT_EQ(replayed[0].payload, "accept target=x");
  EXPECT_FALSE(replayed[0].terminal);
  EXPECT_EQ(replayed[1].key, 2u);
  EXPECT_EQ(replayed[2].payload, "attempt 1");
  EXPECT_EQ(replayed[3].key, 3u);
  EXPECT_EQ(replayed[3].payload, std::string("\x00\xff\x7f ok", 6));
  EXPECT_TRUE(replayed[3].terminal);
  EXPECT_EQ((*journal)->stats().records_replayed, 4u);
  EXPECT_EQ((*journal)->stats().torn_tails_truncated, 0u);
}

TEST_F(JournalTest, TornTailTruncatesToLastGoodRecord) {
  {
    StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "first", false).ok());
    ASSERT_TRUE((*journal)->Append(2, "second", false).ok());
  }
  // Simulate a crash mid-write: chop the tail mid-record.
  uintmax_t full = std::filesystem::file_size(SegmentPath(1));
  std::filesystem::resize_file(SegmentPath(1), full - 3);
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(&replayed);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  // The second record was mid-write; the first survives untouched.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].payload, "first");
  EXPECT_EQ((*journal)->stats().torn_tails_truncated, 1u);
  EXPECT_GT((*journal)->stats().torn_bytes_dropped, 0u);
  // The truncation is physical: a third open sees a clean single-record
  // segment with no torn tail left to drop.
  ASSERT_TRUE((*journal)->Append(3, "third", false).ok());
}

TEST_F(JournalTest, CrcCorruptionTruncatesFromTheBadRecordOn) {
  {
    StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "good", false).ok());
    ASSERT_TRUE((*journal)->Append(2, "to-corrupt", false).ok());
    ASSERT_TRUE((*journal)->Append(3, "after", false).ok());
  }
  // Flip one payload byte of the middle record (17-byte header + 4
  // payload bytes puts the second record's payload at offset 21 + 17).
  {
    std::fstream file(SegmentPath(1),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(21 + 17 + 2);
    file.put('X');
  }
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(&replayed);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  // Everything from the corrupted record on is untrustworthy (framing
  // gives no way to re-sync past a bad record) and is dropped.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].payload, "good");
  EXPECT_EQ((*journal)->stats().torn_tails_truncated, 1u);
}

TEST_F(JournalTest, RotatesSegmentsPastThreshold) {
  JournalOptions options;
  options.rotate_bytes = 64;  // a couple of records per segment
  options.fsync = JournalFsync::kNever;
  StatusOr<std::unique_ptr<Journal>> journal =
      OpenCollecting(nullptr, options);
  ASSERT_TRUE(journal.ok());
  for (uint64_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(
        (*journal)->Append(key, "payload payload payload", false).ok());
  }
  EXPECT_GT((*journal)->stats().segments_created, 1u);
  EXPECT_GT((*journal)->segment_count(), 1u);
  // All keys still open: nothing compacts.
  EXPECT_EQ((*journal)->stats().segments_compacted, 0u);
}

TEST_F(JournalTest, CompactsSegmentsOnceAllTheirKeysAreTerminal) {
  JournalOptions options;
  options.rotate_bytes = 1;  // one record per segment
  options.fsync = JournalFsync::kNever;
  StatusOr<std::unique_ptr<Journal>> journal =
      OpenCollecting(nullptr, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(1, "accept a", false).ok());
  ASSERT_TRUE((*journal)->Append(2, "accept b", false).ok());
  size_t before = (*journal)->segment_count();
  ASSERT_TRUE((*journal)->Append(1, "terminal DONE", true).ok());
  ASSERT_TRUE((*journal)->Append(2, "terminal DONE", true).ok());
  // Every non-active segment now holds only closed keys.
  EXPECT_LT((*journal)->segment_count(), before);
  EXPECT_GT((*journal)->stats().segments_compacted, 0u);
  // Replay of the compacted journal sees no resurrected jobs.
  std::vector<JournalRecord> replayed;
  journal = StatusOr<std::unique_ptr<Journal>>(nullptr);  // close first
  journal = OpenCollecting(&replayed, options);
  ASSERT_TRUE(journal.ok());
  for (const JournalRecord& record : replayed) {
    EXPECT_TRUE(record.terminal || record.key == 0)
        << "non-terminal record for key " << record.key << " survived";
  }
}

TEST_F(JournalTest, TerminalKeysFromAPreviousLifeCompactAtOpen) {
  JournalOptions options;
  options.rotate_bytes = 1;
  options.fsync = JournalFsync::kNever;
  {
    StatusOr<std::unique_ptr<Journal>> journal =
        OpenCollecting(nullptr, options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "accept a", false).ok());
    ASSERT_TRUE((*journal)->Append(1, "terminal DONE", true).ok());
    ASSERT_TRUE((*journal)->Append(2, "accept b", false).ok());
  }
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> journal =
      OpenCollecting(&replayed, options);
  ASSERT_TRUE(journal.ok());
  // Key 2 is open, so its accept must survive; key 1's records may or
  // may not have compacted before the close, but after this open every
  // fully-terminal non-active segment is gone.
  bool saw_open_accept = false;
  for (const JournalRecord& record : replayed) {
    if (record.key == 2 && record.payload == "accept b") {
      saw_open_accept = true;
    }
  }
  EXPECT_TRUE(saw_open_accept);
}

TEST_F(JournalTest, OversizedPayloadIsRejectedUpFront) {
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
  ASSERT_TRUE(journal.ok());
  std::string huge(Journal::kMaxPayloadBytes + 1, 'x');
  Status status = (*journal)->Append(1, huge, false);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*journal)->stats().records_appended, 0u);
}

TEST_F(JournalTest, ParseJournalFsyncNames) {
  JournalFsync fsync = JournalFsync::kNever;
  EXPECT_TRUE(util::ParseJournalFsync("always", &fsync));
  EXPECT_EQ(fsync, JournalFsync::kAlways);
  EXPECT_TRUE(util::ParseJournalFsync("never", &fsync));
  EXPECT_EQ(fsync, JournalFsync::kNever);
  EXPECT_FALSE(util::ParseJournalFsync("sometimes", &fsync));
  EXPECT_EQ(fsync, JournalFsync::kNever);  // untouched on failure
}

TEST_F(JournalTest, AppendFailpointRejectsWithoutDurableRecord) {
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(1, "before", false).ok());
  std::string error;
  ASSERT_TRUE(FailPoints::Configure("journal.append", "error|count=1", &error))
      << error;
  Status injected = (*journal)->Append(2, "rejected", false);
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  ASSERT_TRUE((*journal)->Append(3, "after", false).ok());
  // The rejected append left nothing behind: replay sees keys 1 and 3.
  journal = StatusOr<std::unique_ptr<Journal>>(nullptr);
  std::vector<JournalRecord> replayed;
  journal = OpenCollecting(&replayed);
  ASSERT_TRUE(journal.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].key, 1u);
  EXPECT_EQ(replayed[1].key, 3u);
}

TEST_F(JournalTest, ShortAppendFailpointLeavesARealTornTail) {
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(1, "before the torn write", false).ok());
  std::string error;
  ASSERT_TRUE(FailPoints::Configure("journal.append", "short|count=1", &error))
      << error;
  Status torn = (*journal)->Append(2, "half of me hits the disk", false);
  EXPECT_EQ(torn.code(), StatusCode::kUnavailable);
  // Appends continue in a fresh segment past the abandoned one.
  ASSERT_TRUE((*journal)->Append(3, "after", false).ok());
  journal = StatusOr<std::unique_ptr<Journal>>(nullptr);
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> reopened = OpenCollecting(&replayed);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Replay truncates the genuine half-record and keeps both good ones.
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].key, 1u);
  EXPECT_EQ(replayed[1].key, 3u);
  EXPECT_EQ((*reopened)->stats().torn_tails_truncated, 1u);
}

TEST_F(JournalTest, FsyncFailpointRollsTheRecordBack) {
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(1, "durable", false).ok());
  std::string error;
  ASSERT_TRUE(FailPoints::Configure("journal.fsync", "error|count=1", &error))
      << error;
  Status injected = (*journal)->Append(2, "never durable", false);
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  ASSERT_TRUE((*journal)->Append(3, "durable again", false).ok());
  // The fsync-failed record was rolled back: a failed Append can never
  // resurrect as a replayed record.
  journal = StatusOr<std::unique_ptr<Journal>>(nullptr);
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> reopened = OpenCollecting(&replayed);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].key, 1u);
  EXPECT_EQ(replayed[1].key, 3u);
}

TEST_F(JournalTest, ReplayFailpointFailsOpen) {
  std::string error;
  ASSERT_TRUE(FailPoints::Configure("journal.replay", "error|count=1", &error))
      << error;
  StatusOr<std::unique_ptr<Journal>> journal = OpenCollecting(nullptr);
  EXPECT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kUnavailable);
  // Second open (failpoint exhausted) succeeds on the same directory.
  StatusOr<std::unique_ptr<Journal>> retried = OpenCollecting(nullptr);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(JournalTest, NeverFsyncStillReplaysCleanly) {
  JournalOptions options;
  options.fsync = JournalFsync::kNever;
  {
    StatusOr<std::unique_ptr<Journal>> journal =
        OpenCollecting(nullptr, options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(7, "page-cache only", false).ok());
    EXPECT_EQ((*journal)->stats().fsyncs, 0u);
  }
  std::vector<JournalRecord> replayed;
  StatusOr<std::unique_ptr<Journal>> journal =
      OpenCollecting(&replayed, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].key, 7u);
}

}  // namespace
}  // namespace marioh
