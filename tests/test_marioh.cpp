// End-to-end tests of the MARIOH reconstructor (Algorithm 1): classifier
// training, bidirectional search behavior, variants, termination, and the
// key correctness property — the reconstruction's projection matches the
// input projected graph's edge multiset exactly (every unit of edge weight
// is consumed by exactly one accepted hyperedge, plus filtering).

#include <gtest/gtest.h>

#include "core/bidirectional.hpp"
#include "core/classifier.hpp"
#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh::core {
namespace {

/// Small but non-trivial training pair: community hypergraph.
struct Fixture {
  Hypergraph source;
  Hypergraph target;
  ProjectedGraph g_source;
  ProjectedGraph g_target;
};

Fixture MakeFixture(uint64_t seed) {
  gen::DomainProfile profile = gen::ProfileByName("crime");
  gen::GeneratedDataset data = gen::Generate(profile, seed);
  util::Rng rng(seed ^ 0xf00dULL);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph.MultiplicityReduced(), &rng, 0.5);
  Fixture fx;
  fx.g_source = split.source.Project();
  fx.g_target = split.target.Project();
  fx.source = std::move(split.source);
  fx.target = std::move(split.target);
  return fx;
}

TEST(CliqueClassifier, TrainsAndScoresInUnitInterval) {
  Fixture fx = MakeFixture(1);
  CliqueClassifier classifier(FeatureMode::kMultiplicityAware, {});
  util::Rng rng(2);
  classifier.Train(fx.g_source, fx.source, &rng);
  EXPECT_TRUE(classifier.trained());
  auto [pos, neg] = classifier.train_counts();
  EXPECT_GT(pos, 0u);
  EXPECT_GT(neg, 0u);
  for (const auto& [e, m] : fx.source.edges()) {
    (void)m;
    double s = classifier.Score(fx.g_source, e, false);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(CliqueClassifier, PositivesScoreHigherThanRandomPairsOnAverage) {
  Fixture fx = MakeFixture(3);
  CliqueClassifier classifier(FeatureMode::kMultiplicityAware, {});
  util::Rng rng(4);
  classifier.Train(fx.g_source, fx.source, &rng);
  double pos_mean = 0.0;
  size_t pos_n = 0;
  for (const auto& [e, m] : fx.source.edges()) {
    (void)m;
    pos_mean += classifier.Score(fx.g_source, e, false);
    ++pos_n;
  }
  pos_mean /= static_cast<double>(pos_n);
  EXPECT_GT(pos_mean, 0.5);
}

TEST(CliqueClassifier, SemiSupervisedFractionReducesPositives) {
  Fixture fx = MakeFixture(5);
  ClassifierOptions full_opts;
  CliqueClassifier full(FeatureMode::kMultiplicityAware, full_opts);
  ClassifierOptions semi_opts;
  semi_opts.supervision_fraction = 0.2;
  CliqueClassifier semi(FeatureMode::kMultiplicityAware, semi_opts);
  util::Rng r1(6), r2(6);
  full.Train(fx.g_source, fx.source, &r1);
  semi.Train(fx.g_source, fx.source, &r2);
  EXPECT_LT(semi.train_counts().first, full.train_counts().first);
}

TEST(CliqueClassifier, HardNegativeSamplingTrainsAndScores) {
  Fixture fx = MakeFixture(6);
  ClassifierOptions options;
  options.hard_negative_fraction = 0.5;
  CliqueClassifier classifier(FeatureMode::kMultiplicityAware, options);
  util::Rng rng(7);
  classifier.Train(fx.g_source, fx.source, &rng);
  EXPECT_TRUE(classifier.trained());
  EXPECT_GT(classifier.train_counts().second, 0u);
  // Positives must still dominate random pairs on average.
  double pos_mean = 0.0;
  size_t n = 0;
  for (const auto& [e, m] : fx.source.edges()) {
    (void)m;
    pos_mean += classifier.Score(fx.g_source, e, false);
    ++n;
  }
  EXPECT_GT(pos_mean / static_cast<double>(n), 0.5);
}

TEST(BidirectionalSearch, AcceptsObviousCliqueAtLowTheta) {
  Fixture fx = MakeFixture(7);
  CliqueClassifier classifier(FeatureMode::kMultiplicityAware, {});
  util::Rng rng(8);
  classifier.Train(fx.g_source, fx.source, &rng);

  ProjectedGraph g = fx.g_target;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.0;  // accept everything above score 0
  util::Rng search_rng(9);
  BidirectionalStats stats =
      BidirectionalSearch(&g, classifier, options, &search_rng, &h);
  EXPECT_GT(stats.maximal_cliques, 0u);
  EXPECT_GT(stats.accepted_phase1, 0u);
  EXPECT_GT(h.num_total_edges(), 0u);
}

TEST(BidirectionalSearch, Phase2DisabledReproducesMariohB) {
  Fixture fx = MakeFixture(10);
  CliqueClassifier classifier(FeatureMode::kMultiplicityAware, {});
  util::Rng rng(11);
  classifier.Train(fx.g_source, fx.source, &rng);

  ProjectedGraph g = fx.g_target;
  Hypergraph h(g.num_nodes());
  BidirectionalOptions options;
  options.theta = 0.99;  // keep most cliques in Q_neg
  options.explore_subcliques = false;
  util::Rng search_rng(12);
  BidirectionalStats stats =
      BidirectionalSearch(&g, classifier, options, &search_rng, &h);
  EXPECT_EQ(stats.subcliques_scored, 0u);
  EXPECT_EQ(stats.accepted_phase2, 0u);
}

TEST(Marioh, ReconstructionConsumesEntireGraph) {
  // The loop runs until G' is empty, so the projection of the
  // reconstruction must equal the input projection exactly (same weighted
  // edge multiset): reconstruction is a lossless re-explanation of G.
  Fixture fx = MakeFixture(13);
  Marioh marioh;
  marioh.Train(fx.g_source, fx.source);
  Hypergraph reconstructed = marioh.Reconstruct(fx.g_target);
  ProjectedGraph reprojected = reconstructed.Project();
  auto expected = fx.g_target.Edges();
  auto actual = reprojected.Edges();
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].u, actual[i].u);
    EXPECT_EQ(expected[i].v, actual[i].v);
    EXPECT_EQ(expected[i].weight, actual[i].weight)
        << "edge (" << expected[i].u << "," << expected[i].v << ")";
  }
}

TEST(Marioh, RecoversDisjointCliquesExactly) {
  // Three disjoint hyperedges: trivially recoverable; Jaccard must be 1.
  Hypergraph truth;
  truth.AddEdge({0, 1, 2}, 1);
  truth.AddEdge({3, 4}, 1);
  truth.AddEdge({5, 6, 7, 8}, 1);
  ProjectedGraph g = truth.Project();
  Marioh marioh;
  marioh.Train(g, truth);  // train on itself (source == target domain)
  Hypergraph reconstructed = marioh.Reconstruct(g);
  EXPECT_DOUBLE_EQ(eval::Jaccard(truth, reconstructed), 1.0);
}

TEST(Marioh, VariantOptionsAreApplied) {
  MariohOptions base;
  MariohOptions m = OptionsForVariant(MariohVariant::kNoMulti, base);
  EXPECT_EQ(m.feature_mode, FeatureMode::kStructural);
  MariohOptions f = OptionsForVariant(MariohVariant::kNoFilter, base);
  EXPECT_FALSE(f.use_filtering);
  MariohOptions b = OptionsForVariant(MariohVariant::kNoBidir, base);
  EXPECT_FALSE(b.use_bidirectional);
  MariohOptions full = OptionsForVariant(MariohVariant::kFull, base);
  EXPECT_TRUE(full.use_filtering);
  EXPECT_TRUE(full.use_bidirectional);
}

TEST(Marioh, AllVariantsTerminateAndConsumeGraph) {
  Fixture fx = MakeFixture(17);
  for (MariohVariant variant :
       {MariohVariant::kFull, MariohVariant::kNoMulti,
        MariohVariant::kNoFilter, MariohVariant::kNoBidir}) {
    Marioh marioh(OptionsForVariant(variant));
    marioh.Train(fx.g_source, fx.source);
    Hypergraph reconstructed = marioh.Reconstruct(fx.g_target);
    EXPECT_EQ(reconstructed.Project().TotalWeight(),
              fx.g_target.TotalWeight());
  }
}

TEST(Marioh, DeterministicGivenSeed) {
  Fixture fx = MakeFixture(19);
  MariohOptions options;
  options.seed = 77;
  Marioh a(options), b(options);
  a.Train(fx.g_source, fx.source);
  b.Train(fx.g_source, fx.source);
  Hypergraph ha = a.Reconstruct(fx.g_target);
  Hypergraph hb = b.Reconstruct(fx.g_target);
  EXPECT_EQ(ha.UniqueEdges(), hb.UniqueEdges());
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(ha, hb), 1.0);
}

TEST(Marioh, StageTimerRecordsPhases) {
  Fixture fx = MakeFixture(23);
  Marioh marioh;
  marioh.Train(fx.g_source, fx.source);
  marioh.Reconstruct(fx.g_target);
  EXPECT_GT(marioh.stage_timer().Get("train"), 0.0);
  EXPECT_GT(marioh.stage_timer().Get("bidirectional"), 0.0);
  EXPECT_GE(marioh.stage_timer().Get("filtering"), 0.0);
}

TEST(Marioh, EmptyTargetGraphYieldsFilteredOnlyResult) {
  Fixture fx = MakeFixture(29);
  Marioh marioh;
  marioh.Train(fx.g_source, fx.source);
  ProjectedGraph empty(10);
  Hypergraph reconstructed = marioh.Reconstruct(empty);
  EXPECT_EQ(reconstructed.num_total_edges(), 0u);
}

TEST(Marioh, MultiplicityPreservedReconstruction) {
  // A repeated pair plus a triangle; multiplicities must be recoverable.
  Hypergraph truth;
  truth.AddEdge({0, 1}, 4);
  truth.AddEdge({2, 3, 4}, 2);
  ProjectedGraph g = truth.Project();
  Marioh marioh;
  marioh.Train(g, truth);
  Hypergraph reconstructed = marioh.Reconstruct(g);
  EXPECT_EQ(reconstructed.Multiplicity({0, 1}), 4u);
  // The triangle appears twice in the projection (weight 2 per edge).
  EXPECT_EQ(reconstructed.Project().Weight(2, 3), 2u);
}

}  // namespace
}  // namespace marioh::core
