// Tests for the fault-injection subsystem and the self-healing service
// behaviors built on it: failpoint spec parsing and firing semantics
// (count/after/p, deterministic seeding), the zero-cost/bit-identity
// contract when no failpoint fires, per-request retry with exponential
// backoff (retry-until-success and retries-exhausted), the job watchdog
// (a wedged job is detected and cancelled within its bounded latency),
// batch load shedding, and the protocol surface (retries=/backoff= submit
// keys, attempts= echo, the gated `failpoints` admin verb).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/request.hpp"
#include "api/service.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "eval/harness.hpp"
#include "net/line_protocol.hpp"
#include "util/failpoint.hpp"

namespace marioh {
namespace {

using api::DatasetCache;
using api::JobId;
using api::JobSnapshot;
using api::JobState;
using api::Priority;
using api::ReconstructRequest;
using api::Service;
using api::ServiceOptions;
using api::ServiceStats;
using api::StatusCode;
using api::StatusOr;
using util::FailAction;
using util::FailPoints;

/// Every test starts and ends with an empty registry — failpoints are
/// process-global, so leakage between tests would be order-dependent
/// flakiness.
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Clear(); }
  void TearDown() override { FailPoints::Clear(); }
};

eval::PreparedDataset SmallDataset() {
  return eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                              /*seed=*/1);
}

std::shared_ptr<DatasetCache> CacheWithCrime(
    const eval::PreparedDataset& data) {
  auto cache = std::make_shared<DatasetCache>();
  EXPECT_TRUE(cache->Insert("crime.train", data.source, data.g_source).ok());
  EXPECT_TRUE(cache->Insert("crime.target", nullptr, data.g_target).ok());
  EXPECT_TRUE(cache->Insert("crime.truth", data.target, nullptr).ok());
  return cache;
}

void ExpectPartitionHolds(const ServiceStats& stats) {
  EXPECT_EQ(stats.accepted, stats.done + stats.failed + stats.cancelled +
                                stats.deadline_exceeded + stats.queued +
                                stats.running);
}

// ---------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------

TEST_F(FaultsTest, SpecParsingAcceptsTheDocumentedGrammar) {
  EXPECT_FALSE(FailPoints::active());

  EXPECT_TRUE(FailPoints::Configure("a", "error"));
  EXPECT_TRUE(FailPoints::Configure("b", "delay:250|p=0.5"));
  EXPECT_TRUE(FailPoints::Configure("c", "short|after=2|count=3"));
  EXPECT_TRUE(FailPoints::active());
  EXPECT_EQ(FailPoints::Describe().size(), 3u);

  // Reconfiguring and removing.
  EXPECT_TRUE(FailPoints::Configure("a", "delay:1"));
  EXPECT_TRUE(FailPoints::Configure("a", "off"));
  EXPECT_TRUE(FailPoints::Configure("b", ""));
  EXPECT_EQ(FailPoints::Describe().size(), 1u);

  // Malformed specs are rejected with a message and change nothing.
  std::string error;
  EXPECT_FALSE(FailPoints::Configure("x", "explode", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FailPoints::Configure("x", "error|p=nope", &error));
  EXPECT_FALSE(FailPoints::Configure("x", "delay:", &error));
  EXPECT_FALSE(FailPoints::Configure("x", "error|p=1.5", &error));
  EXPECT_EQ(FailPoints::Describe().size(), 1u);

  // The MARIOH_FAILPOINTS list syntax, and "off" as a full reset.
  EXPECT_TRUE(FailPoints::ConfigureList("a=error,b=delay:5|count=2"));
  EXPECT_EQ(FailPoints::Describe().size(), 3u);  // a, b, c
  EXPECT_TRUE(FailPoints::ConfigureList("off"));
  EXPECT_FALSE(FailPoints::active());
}

TEST_F(FaultsTest, CountAfterAndProbabilityModifiers) {
  ASSERT_TRUE(FailPoints::Configure("counted", "error|count=2"));
  EXPECT_EQ(FailPoints::Eval("counted"), FailAction::kError);
  EXPECT_EQ(FailPoints::Eval("counted"), FailAction::kError);
  EXPECT_EQ(FailPoints::Eval("counted"), FailAction::kNone);
  EXPECT_EQ(FailPoints::Hits("counted"), 2u);

  ASSERT_TRUE(FailPoints::Configure("skipped", "error|after=2"));
  EXPECT_EQ(FailPoints::Eval("skipped"), FailAction::kNone);
  EXPECT_EQ(FailPoints::Eval("skipped"), FailAction::kNone);
  EXPECT_EQ(FailPoints::Eval("skipped"), FailAction::kError);

  // Unconfigured names never fire.
  EXPECT_EQ(FailPoints::Eval("no-such-point"), FailAction::kNone);

  // p= draws are a deterministic, seeded sequence: the same seed replays
  // the exact same fire/skip pattern.
  auto draw_pattern = [] {
    FailPoints::SetSeed(1234);
    EXPECT_TRUE(FailPoints::Configure("coin", "error|p=0.5"));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FailPoints::Eval("coin") == FailAction::kError);
    }
    EXPECT_TRUE(FailPoints::Configure("coin", "off"));
    return fired;
  };
  std::vector<bool> first = draw_pattern();
  std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second);
  // And the coin is a coin, not a constant.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultsTest, DelayActionSleepsAndIsInterruptible) {
  ASSERT_TRUE(FailPoints::Configure("sleepy", "delay:80"));
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(FailPoints::Eval("sleepy"), FailAction::kDelay);
  double slept = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_GE(slept, 0.07);

  // A tripped CancelToken aborts the sleep at the next 10 ms chunk.
  ASSERT_TRUE(FailPoints::Configure("wedge", "delay:10000"));
  util::CancelToken cancel;
  cancel.Cancel();
  t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(FailPoints::Eval("wedge", &cancel), FailAction::kDelay);
  slept = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
  EXPECT_LT(slept, 1.0);
}

// ---------------------------------------------------------------------
// Zero-cost / bit-identity when nothing fires
// ---------------------------------------------------------------------

// With no failpoint configured — and even with one configured that never
// fires — a reconstruction is bit-identical to the clean run. This is
// the "behavior-identical when inactive" half of the failpoint contract.
TEST_F(FaultsTest, InactiveFailpointsLeaveResultsBitIdentical) {
  eval::PreparedDataset data = SmallDataset();

  auto run = [&data] {
    api::SessionOptions options;
    options.method = "MARIOH";
    options.seed = 7;
    api::Session session;
    EXPECT_TRUE(session.Configure(options).ok());
    EXPECT_TRUE(session.Train(data.train()).ok());
    EXPECT_TRUE(session.Reconstruct(data.target_input()).ok());
    StatusOr<Hypergraph> taken = session.TakeReconstruction();
    EXPECT_TRUE(taken.ok());
    return std::move(taken).value();
  };

  ASSERT_FALSE(FailPoints::active());
  Hypergraph baseline = run();

  // Now the gates are *armed* (active() is true, Eval runs at every
  // site) but the point can never fire — output must not change.
  ASSERT_TRUE(
      FailPoints::Configure("session.reconstruct", "error|after=1000000"));
  ASSERT_TRUE(FailPoints::active());
  Hypergraph instrumented = run();
  EXPECT_EQ(baseline.edges(), instrumented.edges());
}

// ---------------------------------------------------------------------
// Retry / backoff through the Service
// ---------------------------------------------------------------------

TEST_F(FaultsTest, RetryUntilSuccessConsumesExactlyTheFailedAttempts) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  Service service(cache, ServiceOptions{});

  // The first two attempts die at the reconstruct stage boundary with
  // UNAVAILABLE; the third sails through.
  ASSERT_TRUE(
      FailPoints::Configure("session.reconstruct", "error|count=2"));

  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  request.retry.max_attempts = 3;
  request.retry.initial_backoff_seconds = 0.01;

  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
  EXPECT_EQ(job->attempts, 3);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_retried, 2u);
  EXPECT_EQ(stats.retries_exhausted, 0u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.failed, 0u);
  ExpectPartitionHolds(stats);
}

TEST_F(FaultsTest, RetriesExhaustedEndsFailedWithTheTransientStatus) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  Service service(cache, ServiceOptions{});

  // Every attempt fails: the job must end kFailed (not retry forever),
  // carrying the last UNAVAILABLE status and the full attempt count.
  ASSERT_TRUE(FailPoints::Configure("session.reconstruct", "error"));

  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  request.retry.max_attempts = 3;
  request.retry.initial_backoff_seconds = 0.01;

  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kFailed);
  EXPECT_EQ(job->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(job->attempts, 3);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_retried, 2u);
  EXPECT_EQ(stats.retries_exhausted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  ExpectPartitionHolds(stats);
}

TEST_F(FaultsTest, NonRetryableFailuresStayFailFast) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  Service service(cache, ServiceOptions{});

  // A permanent error (bad override value → not UNAVAILABLE) must not
  // consume retry attempts.
  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";
  request.retry.max_attempts = 5;
  request.retry.initial_backoff_seconds = 0.01;
  request.overrides.push_back({"theta_init", "not-a-number"});

  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kFailed);
  EXPECT_EQ(job->attempts, 1);
  EXPECT_EQ(service.stats().jobs_retried, 0u);
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

// A wedged job — its heartbeat frozen inside a 30 s injected stall — is
// detected and cancelled well before the stall would have ended:
// detection latency is bounded by stall_timeout + watchdog period, and
// the acceptance bound is 2x the stall timeout end to end.
TEST_F(FaultsTest, WatchdogCancelsAWedgedJobWithinBoundedLatency) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  ServiceOptions options;
  options.stall_timeout_seconds = 1.0;
  Service service(cache, options);

  ASSERT_TRUE(FailPoints::Configure("session.reconstruct",
                                    "delay:30000|count=1"));

  ReconstructRequest request;
  request.method = "MaxClique";
  request.target_dataset = "crime.target";

  auto t0 = std::chrono::steady_clock::now();
  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kCancelled) << job->status.ToString();
  EXPECT_NE(job->status.message().find("stalled"), std::string::npos)
      << job->status.ToString();
  // Bounded detection + stop: 2x the stall timeout, with nothing like
  // the 30 s injected stall ever elapsing.
  EXPECT_LT(elapsed, 2.0 * options.stall_timeout_seconds);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_stalled, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  ExpectPartitionHolds(stats);
}

// A healthy job under an enabled watchdog is left alone: its heartbeat
// advances at every kernel poll, so no stall is ever declared.
TEST_F(FaultsTest, WatchdogLeavesHealthyJobsAlone) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  ServiceOptions options;
  options.stall_timeout_seconds = 0.5;
  Service service(cache, options);

  ReconstructRequest request;
  request.method = "MARIOH";
  request.train_dataset = "crime.train";
  request.target_dataset = "crime.target";
  request.seed = 3;

  StatusOr<JobId> id = service.Submit(request);
  ASSERT_TRUE(id.ok());
  StatusOr<JobSnapshot> job = service.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
  EXPECT_EQ(service.stats().jobs_stalled, 0u);
}

// ---------------------------------------------------------------------
// Load shedding
// ---------------------------------------------------------------------

TEST_F(FaultsTest, BatchSubmitsAreShedUnderQueuePressure) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  ServiceOptions options;
  options.num_workers = 1;
  options.shed_batch_above_queued = 1;
  Service service(cache, options);

  // The first dequeued task stalls 500 ms *before* it starts running, so
  // the submitted job reliably sits in the queued gauge while we probe
  // the shedding threshold.
  ASSERT_TRUE(
      FailPoints::Configure("worker.task_start", "delay:500|count=1"));

  ReconstructRequest normal;
  normal.method = "MaxClique";
  normal.target_dataset = "crime.target";
  StatusOr<JobId> blocker = service.Submit(normal);
  ASSERT_TRUE(blocker.ok());

  ReconstructRequest batch = normal;
  batch.priority = Priority::kBatch;
  StatusOr<JobId> shed = service.Submit(batch);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("load shedding"),
            std::string::npos)
      << shed.status().ToString();

  // Interactive/normal traffic still admits at the same queue depth.
  ReconstructRequest interactive = normal;
  interactive.priority = Priority::kInteractive;
  StatusOr<JobId> admitted = service.Submit(interactive);
  EXPECT_TRUE(admitted.ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.loadshed_rejects, 1u);
  EXPECT_EQ(stats.submits_rejected, 1u);
  ExpectPartitionHolds(stats);

  EXPECT_TRUE(service.Wait(*blocker).ok());
  EXPECT_TRUE(service.Wait(*admitted).ok());
}

// ---------------------------------------------------------------------
// Protocol surface
// ---------------------------------------------------------------------

TEST_F(FaultsTest, ProtocolRetriesKeysAndGatedFailpointsVerb) {
  eval::PreparedDataset data = SmallDataset();
  std::shared_ptr<DatasetCache> cache = CacheWithCrime(data);
  Service service(cache, ServiceOptions{});
  net::LineProtocol protocol(cache.get(), &service);

  // The admin verb is locked until explicitly allowed.
  EXPECT_EQ(protocol.Handle("failpoints").response.rfind(
                "error FAILED_PRECONDITION", 0),
            0u);
  protocol.set_allow_failpoint_admin(true);
  EXPECT_EQ(protocol
                .Handle("failpoints session.reconstruct=error|count=1")
                .response.rfind("ok failpoints", 0),
            0u);
  EXPECT_EQ(protocol.Handle("failpoints").response.rfind("ok failpoints",
                                                         0),
            0u);
  EXPECT_EQ(protocol.Handle("failpoints not-a-spec").response.rfind(
                "error INVALID_ARGUMENT", 0),
            0u);

  // retries=/backoff= submit keys: one injected failure, one retry, and
  // the terminal job echoes attempts=2 (only then — a first-attempt
  // success stays byte-identical to the pre-retry protocol).
  net::LineProtocol::Result submitted = protocol.Handle(
      "submit method=MaxClique target=crime.target retries=2 "
      "backoff=0.01");
  ASSERT_EQ(submitted.response.rfind("ok job ", 0), 0u)
      << submitted.response;
  JobId id = std::stoull(submitted.response.substr(7));
  StatusOr<JobSnapshot> job = service.Wait(id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, JobState::kDone) << job->status.ToString();
  EXPECT_EQ(job->attempts, 2);
  EXPECT_NE(protocol.FormatJob(*job).find(" attempts=2"),
            std::string::npos);

  // Bad values are rejected at parse time.
  EXPECT_EQ(protocol.Handle("submit method=MaxClique target=crime.target "
                            "retries=-1")
                .response.rfind("error INVALID_ARGUMENT", 0),
            0u);
  EXPECT_EQ(protocol.Handle("submit method=MaxClique target=crime.target "
                            "backoff=-0.5")
                .response.rfind("error INVALID_ARGUMENT", 0),
            0u);

  EXPECT_EQ(protocol.Handle("failpoints off").response.rfind(
                "ok failpoints off", 0),
            0u);
}

}  // namespace
}  // namespace marioh
