// Tests for the self-registering method registry (api/registry.hpp): the
// paper rosters resolve, metadata agrees with the instantiated methods,
// duplicate registration is rejected, and unknown names come back as a
// diagnosable Status naming the candidates — never an abort.

#include <gtest/gtest.h>

#include <memory>

#include "api/registry.hpp"
#include "api/session.hpp"

namespace marioh::api {
namespace {

TEST(Status, DefaultIsOkAndErrorsCarryCodeAndMessage) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing thing");
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error = Status::InvalidArgument("nope");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
}

TEST(Registry, EveryTable2NameResolvesWithMatchingMetadata) {
  std::vector<std::string> roster = Table2Roster();
  ASSERT_EQ(roster.size(), 12u);
  for (const std::string& name : roster) {
    StatusOr<std::unique_ptr<Reconstructor>> method =
        MethodRegistry::Global().Create(name, MethodConfig{});
    ASSERT_TRUE(method.ok()) << method.status().ToString();
    EXPECT_EQ((*method)->Name(), name);
    StatusOr<MethodInfo> info = MethodRegistry::Global().Info(name);
    ASSERT_TRUE(info.ok());
    // The registry's supervised flag must agree with the instantiated
    // method's IsSupervised() — it is what the harness keys on.
    EXPECT_EQ(info->supervised, (*method)->IsSupervised()) << name;
  }
}

TEST(Registry, Table3IsTheMultiplicityAwareSubsetInRowOrder) {
  std::vector<std::string> roster = Table3Roster();
  ASSERT_EQ(roster.size(), 6u);
  EXPECT_EQ(roster.front(), "Bayesian-MDL");
  EXPECT_EQ(roster.back(), "MARIOH");
  for (const std::string& name : roster) {
    StatusOr<MethodInfo> info = MethodRegistry::Global().Info(name);
    ASSERT_TRUE(info.ok()) << name;
    EXPECT_TRUE(info->multiplicity_aware) << name;
  }
}

TEST(Registry, Table2RowOrderMatchesThePaper) {
  std::vector<std::string> expected = {
      "CFinder",      "Demon",       "MaxClique",   "CliqueCovering",
      "Bayesian-MDL", "SHyRe-Unsup", "SHyRe-Motif", "SHyRe-Count",
      "MARIOH-M",     "MARIOH-F",    "MARIOH-B",    "MARIOH"};
  EXPECT_EQ(Table2Roster(), expected);
}

TEST(Registry, UnknownNameReturnsNotFoundNamingCandidates) {
  StatusOr<std::unique_ptr<Reconstructor>> method =
      MethodRegistry::Global().Create("NoSuchMethod", MethodConfig{});
  ASSERT_FALSE(method.ok());
  EXPECT_EQ(method.status().code(), StatusCode::kNotFound);
  EXPECT_NE(method.status().message().find("NoSuchMethod"),
            std::string::npos);
  // The message must name the candidates so a CLI user can self-correct.
  EXPECT_NE(method.status().message().find("known methods"),
            std::string::npos);
  EXPECT_NE(method.status().message().find("MARIOH"), std::string::npos);
  EXPECT_NE(method.status().message().find("CFinder"), std::string::npos);
}

TEST(Registry, DuplicateRegistrationIsRejected) {
  MethodRegistry registry;
  MethodInfo info;
  info.name = "Dup";
  auto factory = [](const MethodConfig&)
      -> StatusOr<std::unique_ptr<Reconstructor>> {
    return Status::Internal("never constructed");
  };
  ASSERT_TRUE(registry.Register(info, factory).ok());
  Status dup = registry.Register(info, factory);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("Dup"), std::string::npos);
  // The global registry also rejects names the built-ins claimed.
  MethodInfo clash;
  clash.name = "MARIOH";
  Status global_dup = MethodRegistry::Global().Register(clash, factory);
  ASSERT_FALSE(global_dup.ok());
  EXPECT_EQ(global_dup.code(), StatusCode::kAlreadyExists);
}

TEST(Registry, FactoriesRejectUnknownAndMalformedOverrides) {
  MethodConfig config;
  config.overrides = {{"no_such_option", "1"}};
  StatusOr<std::unique_ptr<Reconstructor>> unknown_key =
      MethodRegistry::Global().Create("MARIOH", config);
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_EQ(unknown_key.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown_key.status().message().find("no_such_option"),
            std::string::npos);

  config.overrides = {{"theta_init", "not_a_number"}};
  StatusOr<std::unique_ptr<Reconstructor>> bad_value =
      MethodRegistry::Global().Create("MARIOH", config);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), StatusCode::kInvalidArgument);

  config.overrides = {{"theta_init", "0.8"}, {"r_percent", "10"}};
  EXPECT_TRUE(MethodRegistry::Global().Create("MARIOH", config).ok());

  config.overrides = {{"k", "4"}};
  EXPECT_TRUE(MethodRegistry::Global().Create("CFinder", config).ok());
  // CFinder's `k` is not a MaxClique option.
  StatusOr<std::unique_ptr<Reconstructor>> wrong_method =
      MethodRegistry::Global().Create("MaxClique", config);
  ASSERT_FALSE(wrong_method.ok());
  EXPECT_EQ(wrong_method.status().code(), StatusCode::kInvalidArgument);
}

TEST(Registry, NamesAreSortedAndContainTheFullRoster) {
  std::vector<std::string> names = MethodRegistry::Global().Names();
  ASSERT_GE(names.size(), 12u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : Table2Roster()) {
    EXPECT_TRUE(MethodRegistry::Global().Contains(name)) << name;
  }
}

}  // namespace
}  // namespace marioh::api
