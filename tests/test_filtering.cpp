// Tests for the theoretically-guaranteed filtering step (Algorithm 2,
// Lemmas 1-2), including the soundness property on random hypergraphs:
// every hyperedge that filtering extracts must be a true size-2 hyperedge
// with at least the extracted multiplicity.

#include <gtest/gtest.h>

#include "core/filtering.hpp"
#include "gen/hypercl.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace marioh::core {
namespace {

TEST(Filtering, IsolatedEdgeIsExtracted) {
  // A single weighted edge has no common neighbors: MHH = 0, so the full
  // weight is guaranteed size-2 multiplicity.
  ProjectedGraph g(2);
  g.AddWeight(0, 1, 3);
  Hypergraph h(2);
  FilteringStats stats = Filtering(&g, &h);
  EXPECT_EQ(stats.edges_identified, 1u);
  EXPECT_EQ(stats.total_multiplicity, 3u);
  EXPECT_EQ(h.Multiplicity({0, 1}), 3u);
  EXPECT_TRUE(g.Empty());
}

TEST(Filtering, TriangleFromOneHyperedgeExtractsNothing) {
  // {0,1,2} as a single size-3 hyperedge: every edge has MHH = 1 >= w = 1.
  Hypergraph truth;
  truth.AddEdge({0, 1, 2}, 1);
  ProjectedGraph g = truth.Project();
  Hypergraph h(3);
  FilteringStats stats = Filtering(&g, &h);
  EXPECT_EQ(stats.edges_identified, 0u);
  EXPECT_EQ(h.num_total_edges(), 0u);
  EXPECT_EQ(g.num_edges(), 3u);  // untouched
}

TEST(Filtering, MixedPairAndTriangle) {
  // Hyperedges: {0,1} x2 and {0,1,2} x1. w(0,1) = 3, MHH(0,1) = 1 ->
  // residual 2 guaranteed size-2 copies.
  Hypergraph truth;
  truth.AddEdge({0, 1}, 2);
  truth.AddEdge({0, 1, 2}, 1);
  ProjectedGraph g = truth.Project();
  Hypergraph h(3);
  Filtering(&g, &h);
  EXPECT_EQ(h.Multiplicity({0, 1}), 2u);
  EXPECT_EQ(g.Weight(0, 1), 1u);  // the triangle's contribution remains
  EXPECT_EQ(g.Weight(0, 2), 1u);
}

TEST(Filtering, PairsHiddenInsideTrianglesAreNotExtracted) {
  // Hyperedges {0,1}, {0,2}, {1,2}, {0,1,2}: every projected edge has
  // w = 2 and MHH = min(2,2) = 2, so the MHH upper bound cannot certify
  // any size-2 hyperedge here even though three exist — the bound is safe
  // but conservative; the classifier handles these cases instead.
  Hypergraph truth;
  truth.AddEdge({0, 1}, 1);
  truth.AddEdge({0, 2}, 1);
  truth.AddEdge({1, 2}, 1);
  truth.AddEdge({0, 1, 2}, 1);
  ProjectedGraph g = truth.Project();
  Hypergraph h(3);
  FilteringStats stats = Filtering(&g, &h);
  EXPECT_EQ(stats.edges_identified, 0u);
  EXPECT_EQ(g.Weight(0, 1), 2u);
  EXPECT_EQ(g.Weight(0, 2), 2u);
  EXPECT_EQ(g.Weight(1, 2), 2u);
}

TEST(Filtering, DominantPairBesideWeakTriangleIsExtracted) {
  // {0,1} x3 plus one triangle {0,1,2}: w(0,1) = 4, MHH(0,1) =
  // min(w(0,2), w(1,2)) = 1 -> residual 3 copies are certified.
  Hypergraph truth;
  truth.AddEdge({0, 1}, 3);
  truth.AddEdge({0, 1, 2}, 1);
  ProjectedGraph g = truth.Project();
  Hypergraph h(3);
  Filtering(&g, &h);
  EXPECT_EQ(h.Multiplicity({0, 1}), 3u);
  EXPECT_EQ(g.Weight(0, 1), 1u);
}

TEST(Filtering, EmptyGraphNoOp) {
  ProjectedGraph g(5);
  Hypergraph h(5);
  FilteringStats stats = Filtering(&g, &h);
  EXPECT_EQ(stats.edges_identified, 0u);
  EXPECT_TRUE(g.Empty());
}

// Soundness property (Lemma 2): on random hypergraphs, every extracted
// size-2 hyperedge must exist in the ground truth with multiplicity >= the
// extracted count. This is the theoretical guarantee the paper proves.
class FilteringSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilteringSoundness, ExtractionsAreTrueHyperedges) {
  util::Rng rng(GetParam());
  // Random hypergraph with many size-2 hyperedges mixed with larger ones.
  Hypergraph truth(30);
  size_t num_edges = 40;
  for (size_t i = 0; i < num_edges; ++i) {
    size_t size = 2 + static_cast<size_t>(rng.UniformInt(0, 2));
    NodeSet e;
    while (e.size() < size) {
      NodeId u = static_cast<NodeId>(rng.UniformIndex(30));
      if (std::find(e.begin(), e.end(), u) == e.end()) e.push_back(u);
    }
    truth.AddEdge(e, 1 + static_cast<uint32_t>(rng.UniformInt(0, 2)));
  }
  ProjectedGraph g = truth.Project();
  Hypergraph extracted(30);
  Filtering(&g, &extracted);
  for (const auto& [e, m] : extracted.edges()) {
    ASSERT_EQ(e.size(), 2u);
    EXPECT_GE(truth.Multiplicity(e), m)
        << "filtering extracted a non-existent or over-counted pair";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHypergraphs, FilteringSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Weight-conservation property: filtering only ever removes weight, and
// the removed weight equals the extracted multiplicity per edge.
class FilteringConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilteringConservation, WeightRemovedEqualsExtracted) {
  util::Rng rng(GetParam() * 131);
  Hypergraph truth = gen::HyperClLike(40, 60, 2.8, 0.6, &rng);
  ProjectedGraph g = truth.Project();
  uint64_t before = g.TotalWeight();
  Hypergraph extracted(truth.num_nodes());
  FilteringStats stats = Filtering(&g, &extracted);
  uint64_t after = g.TotalWeight();
  EXPECT_EQ(before - after, stats.total_multiplicity);
  EXPECT_EQ(extracted.num_total_edges(), stats.total_multiplicity);
}

INSTANTIATE_TEST_SUITE_P(RandomHypergraphs, FilteringConservation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace marioh::core
