// Parameterized cross-profile property tests for the baseline methods:
// output hyperedges are cliques of the input, edge-cover methods cover
// every edge, multiplicity-aware peeling conserves weight, and seeded
// methods are deterministic — on every fast dataset profile.

#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/bayesian_mdl.hpp"
#include "baselines/cfinder.hpp"
#include "baselines/clique_covering.hpp"
#include "baselines/demon.hpp"
#include "baselines/maxclique.hpp"
#include "baselines/shyre_unsup.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {
namespace {

ProjectedGraph TargetGraph(const std::string& profile, uint64_t seed) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName(profile), seed);
  util::Rng rng(seed ^ 0xa5a5ULL);
  gen::SourceTargetSplit split = gen::SplitHypergraph(
      data.hypergraph.MultiplicityReduced(), &rng, 0.5);
  return split.target.Project();
}

bool CoversAllEdges(const ProjectedGraph& g, const Hypergraph& h) {
  std::unordered_set<NodePair, util::PairHash> covered;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        covered.insert(MakePair(e[i], e[j]));
      }
    }
  }
  for (const auto& e : g.Edges()) {
    if (covered.count(MakePair(e.u, e.v)) == 0) return false;
  }
  return true;
}

class BaselineProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineProperties, MaxCliqueOutputsAreMaximalCliques) {
  ProjectedGraph g = TargetGraph(GetParam(), 3);
  Hypergraph h = MaxCliqueDecomposition().Reconstruct(g);
  EXPECT_TRUE(CoversAllEdges(g, h));
  for (const auto& [e, m] : h.edges()) {
    EXPECT_EQ(m, 1u);
    EXPECT_TRUE(g.IsClique(e));
  }
}

TEST_P(BaselineProperties, CliqueCoveringCoversAndEmitsCliques) {
  ProjectedGraph g = TargetGraph(GetParam(), 5);
  Hypergraph h = CliqueCovering(7).Reconstruct(g);
  EXPECT_TRUE(CoversAllEdges(g, h));
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_TRUE(g.IsClique(e));
  }
}

TEST_P(BaselineProperties, BayesianMdlCoverIsValid) {
  ProjectedGraph g = TargetGraph(GetParam(), 7);
  Hypergraph h = BayesianMdl(9, /*anneal_steps=*/200).Reconstruct(g);
  EXPECT_TRUE(CoversAllEdges(g, h));
  // Parsimony: never more hyperedges than edges.
  EXPECT_LE(h.num_unique_edges(), g.num_edges());
}

TEST_P(BaselineProperties, ShyreUnsupConservesTotalWeight) {
  ProjectedGraph g = TargetGraph(GetParam(), 9);
  Hypergraph h = ShyreUnsup().Reconstruct(g);
  EXPECT_EQ(h.Project().TotalWeight(), g.TotalWeight());
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_TRUE(g.IsClique(e));
  }
}

TEST_P(BaselineProperties, DemonCommunitiesAreConnectedSubsets) {
  ProjectedGraph g = TargetGraph(GetParam(), 11);
  Hypergraph h = Demon(1.0, 2, 13).Reconstruct(g);
  // Communities come from ego networks, so every member pair is within
  // two hops; verify membership stays within the graph's node range.
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    for (NodeId u : e) EXPECT_LT(u, g.num_nodes());
    EXPECT_GE(e.size(), 2u);
  }
}

TEST_P(BaselineProperties, SeededMethodsAreDeterministic) {
  ProjectedGraph g = TargetGraph(GetParam(), 15);
  Hypergraph a = CliqueCovering(21).Reconstruct(g);
  Hypergraph b = CliqueCovering(21).Reconstruct(g);
  EXPECT_EQ(a.UniqueEdges(), b.UniqueEdges());
  Hypergraph c = BayesianMdl(23, 100).Reconstruct(g);
  Hypergraph d = BayesianMdl(23, 100).Reconstruct(g);
  EXPECT_EQ(c.UniqueEdges(), d.UniqueEdges());
}

INSTANTIATE_TEST_SUITE_P(FastProfiles, BaselineProperties,
                         ::testing::Values("crime", "directors", "hosts",
                                           "enron"));

}  // namespace
}  // namespace marioh::baselines
