// Smoke test mirroring examples/quickstart.cpp: the whole public API —
// generate, split, project, train, reconstruct, score — must run end-to-end
// on a tiny synthetic graph and produce a sane reconstruction. The quickstart
// binary itself is additionally registered with ctest as
// `examples_quickstart_smoke` (see examples/CMakeLists.txt); this suite
// asserts on the intermediate values the example only prints.

#include <gtest/gtest.h>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

TEST(ExamplesSmoke, QuickstartPipelineRunsEndToEnd) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("crime"), /*seed=*/1);
  ASSERT_GT(data.hypergraph.num_nodes(), 0u);
  ASSERT_GT(data.hypergraph.num_unique_edges(), 0u);

  util::Rng rng(7);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();
  ASSERT_GT(g_source.num_edges(), 0u);
  ASSERT_GT(g_target.num_edges(), 0u);

  core::MariohOptions options;  // paper defaults
  core::Marioh marioh(options);
  marioh.Train(g_source, split.source);
  Hypergraph reconstructed = marioh.Reconstruct(g_target);
  ASSERT_GT(reconstructed.num_unique_edges(), 0u);

  // The crime profile is one of the easiest regimes in Table II; anything
  // below 0.5 Jaccard means the pipeline is broken, not merely inaccurate.
  const double jaccard = eval::Jaccard(split.target, reconstructed);
  const double multi_jaccard = eval::MultiJaccard(split.target, reconstructed);
  EXPECT_GE(jaccard, 0.5);
  EXPECT_GE(multi_jaccard, 0.5);
  EXPECT_LE(jaccard, 1.0);
  EXPECT_LE(multi_jaccard, 1.0);
}

}  // namespace
}  // namespace marioh
