// Smoke test mirroring examples/quickstart.cpp: the whole public API —
// generate, split, project, train, reconstruct, score — must run end-to-end
// on a tiny synthetic graph and produce a sane reconstruction. The quickstart
// binary itself is additionally registered with ctest as
// `examples_quickstart_smoke` (see examples/CMakeLists.txt); this suite
// asserts on the intermediate values the example only prints.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

namespace marioh {
namespace {

TEST(ExamplesSmoke, QuickstartPipelineRunsEndToEnd) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("crime"), /*seed=*/1);
  ASSERT_GT(data.hypergraph.num_nodes(), 0u);
  ASSERT_GT(data.hypergraph.num_unique_edges(), 0u);

  util::Rng rng(7);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();
  ASSERT_GT(g_source.num_edges(), 0u);
  ASSERT_GT(g_target.num_edges(), 0u);

  core::MariohOptions options;  // paper defaults
  core::Marioh marioh(options);
  marioh.Train(g_source, split.source);
  Hypergraph reconstructed = marioh.Reconstruct(g_target);
  ASSERT_GT(reconstructed.num_unique_edges(), 0u);

  // The crime profile is one of the easiest regimes in Table II; anything
  // below 0.5 Jaccard means the pipeline is broken, not merely inaccurate.
  const double jaccard = eval::Jaccard(split.target, reconstructed);
  const double multi_jaccard = eval::MultiJaccard(split.target, reconstructed);
  EXPECT_GE(jaccard, 0.5);
  EXPECT_GE(multi_jaccard, 0.5);
  EXPECT_LE(jaccard, 1.0);
  EXPECT_LE(multi_jaccard, 1.0);
}

// The CLI failure paths are part of the public API contract: bad input
// must produce a readable diagnostic and exit code 1 — never an abort
// (which std::system reports as a signal, failing WIFEXITED).
#if defined(MARIOH_CLI_PATH) && (defined(__unix__) || defined(__APPLE__))

/// Runs the CLI with `args`, captures combined stdout+stderr into
/// `output`, and returns the exit code (-1 if the process was killed by a
/// signal, e.g. an abort).
int RunCli(const std::string& args, std::string* output) {
  const std::string capture_path = "cli_smoke_output.txt";
  // Paths are quoted so a build tree under a directory with spaces works.
  std::string command = std::string("\"") + MARIOH_CLI_PATH + "\" " +
                        args + " > \"" + capture_path + "\" 2>&1";
  int raw = std::system(command.c_str());
  std::ifstream in(capture_path);
  std::ostringstream captured;
  captured << in.rdbuf();
  *output = captured.str();
  std::remove(capture_path.c_str());
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

TEST(ExamplesSmoke, CliUnknownMethodPrintsRosterAndExitsNonZero) {
  std::string output;
  int exit_code =
      RunCli("--method NoSuchMethod a.hg b.eg c.hg", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("NoSuchMethod"), std::string::npos) << output;
  EXPECT_NE(output.find("known methods"), std::string::npos) << output;
  EXPECT_NE(output.find("MARIOH"), std::string::npos) << output;
}

TEST(ExamplesSmoke, CliMissingInputFileIsAReadableErrorAndExitsNonZero) {
  std::string output;
  int exit_code = RunCli(
      "definitely_missing_train.hg missing_target.eg out.hg", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("cannot open"), std::string::npos) << output;
  EXPECT_NE(output.find("definitely_missing_train.hg"), std::string::npos)
      << output;
}

TEST(ExamplesSmoke, CliBadOverrideIsAReadableErrorAndExitsNonZero) {
  std::string output;
  int exit_code =
      RunCli("--set theta_init=oops a.hg b.eg c.hg", &output);
  EXPECT_EQ(exit_code, 1) << output;
  EXPECT_NE(output.find("theta_init"), std::string::npos) << output;
}

TEST(ExamplesSmoke, CliListMethodsExitsZero) {
  std::string output;
  int exit_code = RunCli("--list-methods", &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("MARIOH"), std::string::npos) << output;
  EXPECT_NE(output.find("CFinder"), std::string::npos) << output;
}

#endif  // MARIOH_CLI_PATH && unix

}  // namespace
}  // namespace marioh
