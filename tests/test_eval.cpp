// Tests for the evaluation substrate: structural properties (Table IV),
// NMI / spectral clustering (Table VII), F1 node classification
// (Table VIII), AUC / link prediction (Table IX), and the harness.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/classification.hpp"
#include "eval/clustering.hpp"
#include "eval/harness.hpp"
#include "eval/linkpred.hpp"
#include "eval/metrics.hpp"
#include "eval/structural.hpp"
#include "gen/profiles.hpp"
#include "util/rng.hpp"

namespace marioh::eval {
namespace {

TEST(Structural, IdenticalHypergraphsHaveNearZeroError) {
  gen::GeneratedDataset data = gen::Generate(gen::ProfileByName("crime"), 1);
  StructuralReport report =
      CompareStructure(data.hypergraph, data.hypergraph, 2);
  for (const auto& [name, err] : report.scalar_errors) {
    EXPECT_LT(err, 0.05) << name;
  }
  for (const auto& [name, err] : report.distributional_errors) {
    EXPECT_LT(err, 0.05) << name;
  }
  EXPECT_LT(report.AverageError(), 0.05);
}

TEST(Structural, ScalarsMatchHandComputation) {
  Hypergraph h;
  h.AddEdge({0, 1, 2}, 2);
  h.AddEdge({3, 4}, 1);
  ScalarProperties p = ComputeScalars(h, 3);
  EXPECT_DOUBLE_EQ(p.num_nodes, 5.0);
  EXPECT_DOUBLE_EQ(p.num_hyperedges, 2.0);
  // Degrees: 2,2,2,1,1 -> mean 8/5.
  EXPECT_DOUBLE_EQ(p.avg_node_degree, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(p.avg_edge_size, 2.5);
  EXPECT_DOUBLE_EQ(p.density, 2.0 / 5.0);
  // Overlapness: (3*2 + 2*1) / 5 = 8/5.
  EXPECT_DOUBLE_EQ(p.overlapness, 8.0 / 5.0);
  // The only triangle {0,1,2} is covered by a hyperedge.
  EXPECT_DOUBLE_EQ(p.simplicial_closure, 1.0);
}

TEST(Structural, DegradedReconstructionScoresWorse) {
  gen::GeneratedDataset data = gen::Generate(gen::ProfileByName("hosts"), 5);
  // "Reconstruction" that shatters every hyperedge into pairs.
  Hypergraph shattered(data.hypergraph.num_nodes());
  for (const auto& [e, m] : data.hypergraph.edges()) {
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        shattered.AddEdge({e[i], e[j]}, m);
      }
    }
  }
  StructuralReport good =
      CompareStructure(data.hypergraph, data.hypergraph, 6);
  StructuralReport bad = CompareStructure(data.hypergraph, shattered, 6);
  EXPECT_GT(bad.AverageError(), good.AverageError());
}

TEST(Nmi, PerfectAndIndependentPartitions) {
  std::vector<uint32_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(Nmi(a, a), 1.0, 1e-9);
  // Relabeled partition is still perfect.
  std::vector<uint32_t> relabeled{5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(Nmi(a, relabeled), 1.0, 1e-9);
  // Constant partition carries no information.
  std::vector<uint32_t> constant(6, 0);
  EXPECT_NEAR(Nmi(a, constant), 0.0, 1e-9);
}

TEST(Nmi, PartialAgreement) {
  std::vector<uint32_t> a{0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> b{0, 0, 1, 1, 1, 1};
  double nmi = Nmi(a, b);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(SpectralClustering, SeparatesTwoCliques) {
  // Two disjoint K5s: spectral clustering must recover the split exactly.
  ProjectedGraph g(10);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.AddWeight(u, v, 1);
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) g.AddWeight(u, v, 1);
  }
  la::Matrix embedding = GraphSpectralEmbedding(g, 2);
  std::vector<uint32_t> labels{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  double nmi = SpectralClusteringNmi(embedding, labels, 2, 7);
  EXPECT_NEAR(nmi, 1.0, 1e-6);
}

TEST(SpectralClustering, HypergraphEmbeddingSeparatesCommunities) {
  // Two groups of hyperedges over disjoint node sets.
  Hypergraph h;
  h.AddEdge({0, 1, 2}, 2);
  h.AddEdge({1, 2, 3}, 1);
  h.AddEdge({0, 3}, 1);
  h.AddEdge({4, 5, 6}, 2);
  h.AddEdge({5, 6, 7}, 1);
  h.AddEdge({4, 7}, 1);
  la::Matrix embedding = HypergraphSpectralEmbedding(h, 2);
  std::vector<uint32_t> labels{0, 0, 0, 0, 1, 1, 1, 1};
  double nmi = SpectralClusteringNmi(embedding, labels, 2, 9);
  EXPECT_NEAR(nmi, 1.0, 1e-6);
}

TEST(F1, HandComputedScores) {
  std::vector<uint32_t> truth{0, 0, 1, 1, 2, 2};
  std::vector<uint32_t> pred{0, 1, 1, 1, 2, 0};
  F1Scores f1 = ComputeF1(truth, pred, 3);
  // Class 0: tp=1, fp=1, fn=1 -> f1 = 0.5
  // Class 1: tp=2, fp=1, fn=0 -> f1 = 4/5
  // Class 2: tp=1, fp=0, fn=1 -> f1 = 2/3
  EXPECT_NEAR(f1.macro, (0.5 + 0.8 + 2.0 / 3.0) / 3.0, 1e-9);
  // Micro: tp=4, fp=2, fn=2 -> 8/12.
  EXPECT_NEAR(f1.micro, 8.0 / 12.0, 1e-9);
}

TEST(F1, PerfectPrediction) {
  std::vector<uint32_t> truth{0, 1, 2, 0, 1, 2};
  F1Scores f1 = ComputeF1(truth, truth, 3);
  EXPECT_DOUBLE_EQ(f1.micro, 1.0);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
}

TEST(NodeClassification, LearnsSeparableEmbedding) {
  // Embeddings directly encode the class.
  const size_t n = 60;
  la::Matrix embedding(n, 2);
  std::vector<uint32_t> labels(n);
  util::Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<uint32_t>(i % 3);
    embedding(i, 0) = static_cast<double>(labels[i]) + rng.Normal(0, 0.05);
    embedding(i, 1) = -static_cast<double>(labels[i]) + rng.Normal(0, 0.05);
  }
  F1Scores f1 = NodeClassification(embedding, labels, 3, 0.7, 13);
  EXPECT_GT(f1.micro, 0.9);
  EXPECT_GT(f1.macro, 0.9);
}

TEST(Auc, PerfectAndRandomScores) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8}, {0.1, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.2}, {0.9, 0.8}), 0.0);
  EXPECT_DOUBLE_EQ(Auc({0.5}, {0.5}), 0.5);  // tie -> midrank
  EXPECT_DOUBLE_EQ(Auc({}, {0.5}), 0.5);     // degenerate
}

TEST(Auc, HandComputedMixedCase) {
  // pos: 0.8, 0.4; neg: 0.6, 0.2. Pairs won: (0.8>0.6), (0.8>0.2),
  // (0.4<0.6 loses), (0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.8, 0.4}, {0.6, 0.2}), 0.75);
}

TEST(LinkPrediction, RunsOnGeneratedDataAndBeatsCoinFlip) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 17);
  ProjectedGraph g = data.hypergraph.Project();
  LinkPredOptions options;
  options.seed = 18;
  options.use_gcn = false;  // keep the unit test fast
  double auc = LinkPredictionAuc(g, &data.hypergraph, options);
  EXPECT_GT(auc, 0.6);
  EXPECT_LE(auc, 1.0);
}

TEST(Harness, PrepareDatasetSplitsAndProjects) {
  PreparedDataset data = PrepareDataset("crime", true, 21);
  EXPECT_GT(data.source->num_total_edges(), 0u);
  EXPECT_GT(data.target->num_total_edges(), 0u);
  EXPECT_EQ(data.g_source->num_nodes(), data.source->num_nodes());
  // Multiplicity-reduced: every hyperedge has multiplicity 1.
  for (const auto& [e, m] : data.source->edges()) {
    (void)e;
    EXPECT_EQ(m, 1u);
  }
}

TEST(Harness, TemporalSplitModeProducesValidHalves) {
  PreparedDataset data = PrepareDataset(
      "enron", /*multiplicity_reduced=*/false, 25, SplitMode::kTemporal);
  EXPECT_GT(data.source->num_total_edges(), 0u);
  EXPECT_GT(data.target->num_total_edges(), 0u);
  // Halves roughly balanced (the paper's 50/50 timestamp split).
  double frac =
      static_cast<double>(data.source->num_total_edges()) /
      static_cast<double>(data.source->num_total_edges() +
                          data.target->num_total_edges());
  EXPECT_NEAR(frac, 0.5, 0.1);
  // Reconstruction on the temporal split still runs end to end.
  core::Marioh marioh;
  marioh.Train(*data.g_source, *data.source);
  Hypergraph reconstructed = marioh.Reconstruct(*data.g_target);
  EXPECT_GT(eval::MultiJaccard(*data.target, reconstructed), 0.1);
}

TEST(Harness, RegistryBacksEveryTableRoster) {
  for (const std::string& name : Table2Methods()) {
    auto method = api::MustCreateMethod(name, 1);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->Name(), name);
  }
  for (const std::string& name : Table3Methods()) {
    EXPECT_NE(api::MustCreateMethod(name, 1), nullptr) << name;
  }
}

TEST(Harness, TryRunAccuracyReportsUnknownNames) {
  AccuracyOptions options;
  options.num_seeds = 1;
  api::StatusOr<AccuracyResult> bad_method =
      TryRunAccuracy("NoSuchMethod", "crime", options);
  ASSERT_FALSE(bad_method.ok());
  EXPECT_EQ(bad_method.status().code(), api::StatusCode::kNotFound);
  api::StatusOr<AccuracyResult> bad_profile =
      TryRunAccuracy("MaxClique", "no_such_profile", options);
  ASSERT_FALSE(bad_profile.ok());
  EXPECT_EQ(bad_profile.status().code(), api::StatusCode::kNotFound);
  EXPECT_NE(bad_profile.status().message().find("known profiles"),
            std::string::npos);
}

TEST(Harness, RunAccuracyProducesSaneNumbers) {
  AccuracyOptions options;
  options.num_seeds = 1;
  AccuracyResult result = RunAccuracy("MaxClique", "crime", options);
  EXPECT_GE(result.mean, 0.0);
  EXPECT_LE(result.mean, 100.0);
  EXPECT_EQ(result.seeds, 1);
  EXPECT_FALSE(result.out_of_time);
}

TEST(Harness, MariohBeatsMaxCliqueOnEnronProfile) {
  // The paper's headline: multiplicity-aware supervised reconstruction
  // dominates plain clique decomposition on heavy-duplication domains.
  AccuracyOptions options;
  options.num_seeds = 1;
  AccuracyResult marioh = RunAccuracy("MARIOH", "enron", options);
  AccuracyResult maxclique = RunAccuracy("MaxClique", "enron", options);
  EXPECT_GT(marioh.mean, maxclique.mean);
}

}  // namespace
}  // namespace marioh::eval
