// Unit tests for the clique feature extraction (Sect. III-D): dimensions,
// specific feature values on hand-computed graphs, and both feature modes.

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "hypergraph/hypergraph.hpp"

namespace marioh::core {
namespace {

/// Triangle 0-1-2 with weights w(0,1)=2, w(0,2)=1, w(1,2)=3, plus a
/// pendant edge 2-3 with weight 4.
ProjectedGraph FixtureGraph() {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 2);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 3);
  g.AddWeight(2, 3, 4);
  return g;
}

TEST(FeatureExtractor, MultiplicityAwareDimension) {
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  EXPECT_EQ(fx.dim(), 23u);
  ProjectedGraph g = FixtureGraph();
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  EXPECT_EQ(f.size(), 23u);
}

TEST(FeatureExtractor, StructuralDimension) {
  FeatureExtractor fx(FeatureMode::kStructural);
  EXPECT_EQ(fx.dim(), 13u);
  ProjectedGraph g = FixtureGraph();
  la::Vector f = fx.Extract(g, NodeSet{0, 1}, false);
  EXPECT_EQ(f.size(), 13u);
}

TEST(FeatureExtractor, WeightedDegreeAggregation) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  // Weighted degrees: node0 = 2+1 = 3, node1 = 2+3 = 5, node2 = 1+3+4 = 8.
  EXPECT_DOUBLE_EQ(f[0], 16.0);           // sum
  EXPECT_DOUBLE_EQ(f[1], 16.0 / 3.0);     // mean
  EXPECT_DOUBLE_EQ(f[2], 3.0);            // min
  EXPECT_DOUBLE_EQ(f[3], 8.0);            // max
}

TEST(FeatureExtractor, EdgeMultiplicityAggregation) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  // Edge multiplicities within the clique: 2, 1, 3.
  EXPECT_DOUBLE_EQ(f[5], 6.0);   // sum
  EXPECT_DOUBLE_EQ(f[6], 2.0);   // mean
  EXPECT_DOUBLE_EQ(f[7], 1.0);   // min
  EXPECT_DOUBLE_EQ(f[8], 3.0);   // max
}

TEST(FeatureExtractor, MhhFeatures) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  // MHH within the triangle: MHH(0,1) = min(w(0,2), w(1,2)) = min(1,3) = 1;
  // MHH(0,2) = min(w(0,1), w(2,1)) = min(2,3) = 2;
  // MHH(1,2) = min(w(1,0), w(2,0)) = min(2,1) = 1.
  // Slots 10..14 aggregate {1, 2, 1}.
  EXPECT_DOUBLE_EQ(f[10], 4.0);          // sum
  EXPECT_DOUBLE_EQ(f[12], 1.0);          // min
  EXPECT_DOUBLE_EQ(f[13], 2.0);          // max
  // MHH ratios: 1/2, 2/1, 1/3 -> slot 15 sum.
  EXPECT_NEAR(f[15], 0.5 + 2.0 + 1.0 / 3.0, 1e-12);
}

TEST(FeatureExtractor, CliqueLevelFeatures) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  EXPECT_DOUBLE_EQ(f[20], 3.0);  // clique size
  // Cut ratio: internal weight 6, boundary = wdeg sum 16 - 2*6 = 4
  // -> 6 / (6 + 4) = 0.6.
  EXPECT_DOUBLE_EQ(f[21], 0.6);
  EXPECT_DOUBLE_EQ(f[22], 1.0);  // maximal flag
  la::Vector f2 = fx.Extract(g, NodeSet{0, 1, 2}, false);
  EXPECT_DOUBLE_EQ(f2[22], 0.0);
}

TEST(FeatureExtractor, Size2CliqueHasOneEdge) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{2, 3}, true);
  // Only edge (2,3) with weight 4; min == max == mean == 4.
  EXPECT_DOUBLE_EQ(f[6], 4.0);
  EXPECT_DOUBLE_EQ(f[7], 4.0);
  EXPECT_DOUBLE_EQ(f[8], 4.0);
  EXPECT_DOUBLE_EQ(f[9], 0.0);  // std of single value
  EXPECT_DOUBLE_EQ(f[20], 2.0);
}

TEST(FeatureExtractor, StructuralUsesUnweightedDegrees) {
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kStructural);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  // Unweighted degrees: 2, 2, 3 -> sum 7.
  EXPECT_DOUBLE_EQ(f[0], 7.0);
  EXPECT_DOUBLE_EQ(f[2], 2.0);  // min
  EXPECT_DOUBLE_EQ(f[3], 3.0);  // max
}

TEST(FeatureExtractor, FeaturesChangeWhenGraphShrinks) {
  // Features must be recomputed against the residual graph: peeling an
  // overlapping clique changes the features of the remaining one.
  ProjectedGraph g = FixtureGraph();
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector before = fx.Extract(g, NodeSet{0, 1, 2}, true);
  g.PeelClique(NodeSet{1, 2});  // decrement w(1,2)
  la::Vector after = fx.Extract(g, NodeSet{0, 1, 2}, true);
  EXPECT_NE(before[5], after[5]);  // edge multiplicity sum changed
}

TEST(FeatureExtractor, IsolatedCliqueCutRatioIsOne) {
  ProjectedGraph g(3);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  FeatureExtractor fx(FeatureMode::kMultiplicityAware);
  la::Vector f = fx.Extract(g, NodeSet{0, 1, 2}, true);
  EXPECT_DOUBLE_EQ(f[21], 1.0);  // all weight internal
}

}  // namespace
}  // namespace marioh::core
