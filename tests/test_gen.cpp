// Tests for the dataset substrate: HyperCL generator, domain profiles
// (Table I statistics), and the source/target splitter.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/hypercl.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace marioh::gen {
namespace {

TEST(HyperCl, RespectsEdgeSizeSequence) {
  HyperClConfig config;
  config.degree_weights.assign(20, 1.0);
  config.edge_sizes = {2, 3, 4, 5};
  util::Rng rng(1);
  Hypergraph h = HyperCl(config, &rng);
  EXPECT_EQ(h.num_total_edges(), 4u);
  std::vector<size_t> sizes;
  for (const auto& [e, m] : h.edges()) {
    for (uint32_t i = 0; i < m; ++i) sizes.push_back(e.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 3, 4, 5}));
}

TEST(HyperCl, ClampsOversizedEdges) {
  HyperClConfig config;
  config.degree_weights.assign(3, 1.0);
  config.edge_sizes = {10};  // larger than the node set
  util::Rng rng(2);
  Hypergraph h = HyperCl(config, &rng);
  ASSERT_EQ(h.num_unique_edges(), 1u);
  EXPECT_EQ(h.UniqueEdges()[0].size(), 3u);
}

TEST(HyperCl, SkewConcentratesDegrees) {
  util::Rng r1(3), r2(3);
  Hypergraph flat = HyperClLike(200, 400, 3.0, 0.0, &r1);
  Hypergraph skewed = HyperClLike(200, 400, 3.0, 1.5, &r2);
  auto max_degree = [](const Hypergraph& h) {
    uint32_t mx = 0;
    for (uint32_t d : h.NodeDegrees()) mx = std::max(mx, d);
    return mx;
  };
  EXPECT_GT(max_degree(skewed), max_degree(flat));
}

TEST(HyperCl, DeterministicGivenSeed) {
  util::Rng r1(4), r2(4);
  Hypergraph a = HyperClLike(50, 80, 3.0, 0.7, &r1);
  Hypergraph b = HyperClLike(50, 80, 3.0, 0.7, &r2);
  EXPECT_EQ(a.UniqueEdges(), b.UniqueEdges());
}

TEST(Profiles, AllTableDatasetsGenerate) {
  for (const std::string& name : TableDatasets()) {
    GeneratedDataset data = Generate(ProfileByName(name), 42);
    EXPECT_GT(data.hypergraph.num_unique_edges(), 0u) << name;
    EXPECT_GT(data.hypergraph.num_nodes(), 0u) << name;
    // Every hyperedge has >= 2 nodes by construction.
    for (const auto& [e, m] : data.hypergraph.edges()) {
      (void)m;
      EXPECT_GE(e.size(), 2u) << name;
    }
  }
}

TEST(Profiles, EnronLikeIsHeavilyDuplicated) {
  GeneratedDataset data = Generate(ProfileByName("enron"), 7);
  // Table I: Enron's average hyperedge multiplicity is 5.85; ours must be
  // in the same heavy-duplication regime (paper-faithful shape, not exact).
  EXPECT_GT(data.hypergraph.AverageMultiplicity(), 3.0);
  EXPECT_LT(data.hypergraph.AverageMultiplicity(), 10.0);
}

TEST(Profiles, SparseProfilesHaveLowMultiplicity) {
  for (const std::string name : {"crime", "directors", "foursquare",
                                  "mag_topcs"}) {
    GeneratedDataset data = Generate(ProfileByName(name), 11);
    EXPECT_LT(data.hypergraph.AverageMultiplicity(), 1.2) << name;
  }
}

TEST(Profiles, HschoolHasExtremeDuplication) {
  GeneratedDataset data = Generate(ProfileByName("hschool"), 13);
  // Table I: H.School has avg M_H 17.01.
  EXPECT_GT(data.hypergraph.AverageMultiplicity(), 8.0);
}

TEST(Profiles, NodeCountsMatchTableI) {
  EXPECT_EQ(Generate(ProfileByName("enron"), 1).hypergraph.num_nodes(),
            141u);
  EXPECT_EQ(Generate(ProfileByName("pschool"), 1).hypergraph.num_nodes(),
            238u);
  EXPECT_EQ(Generate(ProfileByName("hschool"), 1).hypergraph.num_nodes(),
            318u);
  EXPECT_EQ(Generate(ProfileByName("foursquare"), 1).hypergraph.num_nodes(),
            2254u);
}

TEST(Profiles, SchoolProfilesExposeLabels) {
  GeneratedDataset p = Generate(ProfileByName("pschool"), 17);
  EXPECT_EQ(p.num_classes, 10u);
  ASSERT_EQ(p.labels.size(), p.hypergraph.num_nodes());
  for (uint32_t label : p.labels) EXPECT_LT(label, p.num_classes);
  GeneratedDataset h = Generate(ProfileByName("hschool"), 17);
  EXPECT_EQ(h.num_classes, 9u);
}

TEST(Profiles, DeterministicGivenSeed) {
  GeneratedDataset a = Generate(ProfileByName("hosts"), 23);
  GeneratedDataset b = Generate(ProfileByName("hosts"), 23);
  EXPECT_EQ(a.hypergraph.UniqueEdges(), b.hypergraph.UniqueEdges());
  GeneratedDataset c = Generate(ProfileByName("hosts"), 24);
  EXPECT_NE(a.hypergraph.UniqueEdges(), c.hypergraph.UniqueEdges());
}

TEST(Split, HalvesPartitionTheMultiset) {
  GeneratedDataset data = Generate(ProfileByName("pschool"), 29);
  util::Rng rng(30);
  SourceTargetSplit split = SplitHypergraph(data.hypergraph, &rng, 0.5);
  EXPECT_EQ(split.source.num_total_edges() + split.target.num_total_edges(),
            data.hypergraph.num_total_edges());
  // Every source/target hyperedge exists in the original.
  for (const auto& [e, m] : split.source.edges()) {
    EXPECT_GE(data.hypergraph.Multiplicity(e), 1u);
    EXPECT_LE(m, data.hypergraph.Multiplicity(e));
  }
  EXPECT_EQ(split.source.num_nodes(), data.hypergraph.num_nodes());
  EXPECT_EQ(split.target.num_nodes(), data.hypergraph.num_nodes());
}

TEST(Split, FractionControlsSizes) {
  GeneratedDataset data = Generate(ProfileByName("eu"), 31);
  util::Rng rng(32);
  SourceTargetSplit split = SplitHypergraph(data.hypergraph, &rng, 0.25);
  double frac = static_cast<double>(split.source.num_total_edges()) /
                static_cast<double>(data.hypergraph.num_total_edges());
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(Split, DeterministicGivenSeed) {
  GeneratedDataset data = Generate(ProfileByName("crime"), 33);
  util::Rng r1(34), r2(34);
  SourceTargetSplit a = SplitHypergraph(data.hypergraph, &r1, 0.5);
  SourceTargetSplit b = SplitHypergraph(data.hypergraph, &r2, 0.5);
  EXPECT_EQ(a.source.UniqueEdges(), b.source.UniqueEdges());
  EXPECT_EQ(a.target.UniqueEdges(), b.target.UniqueEdges());
}

TEST(SplitByTime, PartitionsAtQuantile) {
  std::vector<TimedHyperedge> events;
  for (uint32_t i = 0; i < 10; ++i) {
    events.push_back({{i, i + 1}, static_cast<double>(i)});
  }
  SourceTargetSplit split = SplitByTime(events, 0.5);
  EXPECT_EQ(split.source.num_total_edges(), 5u);
  EXPECT_EQ(split.target.num_total_edges(), 5u);
  // Earliest events go to the source.
  EXPECT_TRUE(split.source.Contains({0, 1}));
  EXPECT_TRUE(split.target.Contains({9, 10}));
}

TEST(SplitByTime, RepeatedHyperedgesSpreadAcrossHalves) {
  // The same hyperedge occurring before and after the cut appears in
  // both halves — recurring contacts, the multiplicity-preserved setting.
  std::vector<TimedHyperedge> events = {
      {{0, 1}, 0.1}, {{0, 1}, 0.9}, {{2, 3}, 0.2}, {{4, 5}, 0.8}};
  SourceTargetSplit split = SplitByTime(events, 0.5);
  EXPECT_TRUE(split.source.Contains({0, 1}));
  EXPECT_TRUE(split.target.Contains({0, 1}));
}

TEST(SplitByTime, AllEqualTimesFallsBackToIndexSplit) {
  std::vector<TimedHyperedge> events = {
      {{0, 1}, 1.0}, {{1, 2}, 1.0}, {{2, 3}, 1.0}, {{3, 4}, 1.0}};
  SourceTargetSplit split = SplitByTime(events, 0.5);
  EXPECT_GT(split.source.num_total_edges(), 0u);
  EXPECT_GT(split.target.num_total_edges(), 0u);
}

TEST(AttachTimestamps, OneEventPerOccurrence) {
  Hypergraph h;
  h.AddEdge({0, 1}, 3);
  h.AddEdge({1, 2, 3}, 1);
  util::Rng rng(5);
  std::vector<TimedHyperedge> events = AttachTimestamps(h, &rng);
  EXPECT_EQ(events.size(), 4u);
  for (const TimedHyperedge& e : events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, 1.0);
  }
}

TEST(SplitByTime, RoundTripWithAttachTimestamps) {
  GeneratedDataset data = Generate(ProfileByName("enron"), 37);
  util::Rng rng(38);
  std::vector<TimedHyperedge> events =
      AttachTimestamps(data.hypergraph, &rng);
  SourceTargetSplit split = SplitByTime(events, 0.5,
                                        data.hypergraph.num_nodes());
  EXPECT_EQ(split.source.num_total_edges() + split.target.num_total_edges(),
            data.hypergraph.num_total_edges());
  EXPECT_NEAR(static_cast<double>(split.source.num_total_edges()) /
                  static_cast<double>(data.hypergraph.num_total_edges()),
              0.5, 0.05);
}

TEST(Profiles, UnknownNameAborts) {
  EXPECT_DEATH(ProfileByName("not_a_dataset"), "MARIOH_CHECK");
}

}  // namespace
}  // namespace marioh::gen
