// Property tests for the reconstruction loop's hot path: the CSR snapshot
// fast path must agree exactly with the mutable hash-map path (clique
// sets, MHH values, features, scores), and every parallel kernel must
// produce identical results for any thread count — the determinism
// contract of docs/ARCHITECTURE.md.

#include <gtest/gtest.h>

#include <vector>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "core/filtering.hpp"
#include "core/marioh.hpp"
#include "core/motif.hpp"
#include "gen/hypercl.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "hypergraph/clique.hpp"
#include "hypergraph/csr.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

ProjectedGraph RandomGraph(uint64_t seed) {
  util::Rng rng(seed);
  Hypergraph h = gen::HyperClLike(80, 160, 3.2, 0.7, &rng);
  return h.Project();
}

class HotPathEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HotPathEquivalence, CliqueSetsMatchAcrossPathsAndThreadCounts) {
  ProjectedGraph g = RandomGraph(GetParam());
  CsrGraph csr(g);

  std::vector<NodeSet> reference = MaximalCliquesHashMapReference(g);
  CliqueOptions one_thread;
  CliqueStore single = EnumerateMaximalCliques(csr, one_thread).cliques;
  for (int threads : {1, 2, 8}) {
    CliqueOptions options;
    options.num_threads = threads;
    MaximalCliqueResult result = EnumerateMaximalCliques(csr, options);
    EXPECT_FALSE(result.truncated);
    // The arena output must match the sequential hash-map oracle
    // clique-for-clique, and the arena itself (offsets included) must be
    // identical for any thread count.
    EXPECT_EQ(result.cliques.ToNodeSets(), reference)
        << "threads=" << threads;
    EXPECT_TRUE(result.cliques == single) << "threads=" << threads;
  }
}

TEST_P(HotPathEquivalence, MhhAndMotifsMatchOnEveryEdge) {
  ProjectedGraph g = RandomGraph(GetParam());
  CsrGraph csr(g);
  for (const auto& e : g.Edges()) {
    EXPECT_EQ(csr.Mhh(e.u, e.v), g.Mhh(e.u, e.v));
    EXPECT_EQ(csr.CommonNeighborCount(e.u, e.v),
              g.CommonNeighborCount(e.u, e.v));
    EXPECT_EQ(core::TrianglesThroughEdge(csr, e.u, e.v),
              core::TrianglesThroughEdge(g, e.u, e.v));
    EXPECT_EQ(core::SquaresThroughEdge(csr, e.u, e.v),
              core::SquaresThroughEdge(g, e.u, e.v));
    // A tight cap exercises the ascending-id truncation on both paths.
    EXPECT_EQ(core::SquaresThroughEdge(csr, e.u, e.v, 3),
              core::SquaresThroughEdge(g, e.u, e.v, 3));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(core::ClusteringCoefficient(csr, u),
              core::ClusteringCoefficient(g, u));
    EXPECT_EQ(csr.WeightedDegree(u), g.WeightedDegree(u));
  }
  // IsClique agrees on actual cliques and on perturbed non-cliques.
  for (const NodeSet& q : EnumerateMaximalCliques(g).cliques.ToNodeSets()) {
    EXPECT_TRUE(csr.IsClique(q));
    NodeSet broken = q;
    broken.push_back(static_cast<NodeId>(g.num_nodes() - 1));
    Canonicalize(&broken);
    EXPECT_EQ(csr.IsClique(broken), g.IsClique(broken));
  }
}

TEST_P(HotPathEquivalence, FeaturesMatchBitForBitInAllModes) {
  ProjectedGraph g = RandomGraph(GetParam());
  CsrGraph csr(g);
  std::vector<NodeSet> cliques = EnumerateMaximalCliques(g).cliques.ToNodeSets();
  ASSERT_FALSE(cliques.empty());
  for (core::FeatureMode mode :
       {core::FeatureMode::kMultiplicityAware, core::FeatureMode::kStructural,
        core::FeatureMode::kMotif}) {
    core::FeatureExtractor extractor(mode);
    for (const NodeSet& q : cliques) {
      la::Vector hash_path = extractor.Extract(g, q, true);
      la::Vector csr_path = extractor.Extract(csr, q, true);
      EXPECT_EQ(hash_path, csr_path);
    }
    // Batched extraction: identical rows for any thread count.
    la::Matrix one = extractor.ExtractAll(csr, cliques, true, 1);
    for (int threads : {2, 8}) {
      la::Matrix many = extractor.ExtractAll(csr, cliques, true, threads);
      ASSERT_EQ(many.rows(), one.rows());
      for (size_t i = 0; i < one.rows(); ++i) {
        for (size_t j = 0; j < one.cols(); ++j) {
          EXPECT_EQ(many(i, j), one(i, j)) << "row " << i << " col " << j;
        }
      }
    }
  }
}

TEST_P(HotPathEquivalence, FilteringIsThreadCountInvariant) {
  ProjectedGraph base = RandomGraph(GetParam());
  ProjectedGraph g1 = base;
  Hypergraph h1(base.num_nodes());
  core::FilteringStats s1 = core::Filtering(&g1, &h1, 1);
  for (int threads : {2, 8}) {
    ProjectedGraph g = base;
    Hypergraph h(base.num_nodes());
    core::FilteringStats s = core::Filtering(&g, &h, threads);
    EXPECT_EQ(s.edges_identified, s1.edges_identified);
    EXPECT_EQ(s.total_multiplicity, s1.total_multiplicity);
    EXPECT_EQ(h.edges(), h1.edges());
    EXPECT_EQ(g.Edges().size(), g1.Edges().size());
  }
}

/// Asserts two snapshots are bit-identical: same nodes, rows, weights,
/// and precomputed aggregates.
void ExpectCsrIdentical(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.TotalWeight(), b.TotalWeight());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto an = a.Neighbors(u);
    auto bn = b.Neighbors(u);
    ASSERT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()))
        << "neighbor row differs at node " << u;
    auto aw = a.Weights(u);
    auto bw = b.Weights(u);
    ASSERT_TRUE(std::equal(aw.begin(), aw.end(), bw.begin(), bw.end()))
        << "weight row differs at node " << u;
    EXPECT_EQ(a.WeightedDegree(u), b.WeightedDegree(u)) << "node " << u;
  }
}

TEST_P(HotPathEquivalence, PatchedSnapshotMatchesFromScratchAfterPeels) {
  // Randomized peel sequences: repeatedly peel a random subset of the
  // current maximal cliques, patch the running snapshot with the touched
  // nodes, and demand bit-identity with a from-scratch build — including
  // chained patches of patches, as the reconstruction loop produces.
  ProjectedGraph g = RandomGraph(GetParam());
  CsrGraph snapshot(g);
  util::Rng rng(GetParam() * 977 + 13);
  for (int round = 0; round < 4 && !g.Empty(); ++round) {
    MaximalCliqueResult enumerated = EnumerateMaximalCliques(snapshot);
    std::vector<NodeId> touched;
    for (CliqueView q : enumerated.cliques) {
      if (!rng.Bernoulli(0.3)) continue;
      if (!g.IsClique(q)) continue;  // an earlier peel may have broken it
      g.PeelClique(q);
      touched.insert(touched.end(), q.begin(), q.end());
    }
    Canonicalize(&touched);
    snapshot = CsrGraph(snapshot, g, touched);
    ExpectCsrIdentical(snapshot, CsrGraph(g));
  }
  // An empty touched set must reproduce the snapshot exactly.
  CsrGraph unchanged(snapshot, g, {});
  ExpectCsrIdentical(unchanged, snapshot);
}

TEST_P(HotPathEquivalence, PatchIsThreadCountInvariant) {
  ProjectedGraph g = RandomGraph(GetParam());
  CsrGraph before(g);
  // Peel the first few maximal cliques to dirty some rows.
  MaximalCliqueResult enumerated = EnumerateMaximalCliques(before);
  std::vector<NodeId> touched;
  size_t peels = 0;
  for (CliqueView q : enumerated.cliques) {
    if (!g.IsClique(q)) continue;
    g.PeelClique(q);
    touched.insert(touched.end(), q.begin(), q.end());
    if (++peels == 5) break;
  }
  Canonicalize(&touched);
  CsrGraph one(before, g, touched, 1);
  ExpectCsrIdentical(one, CsrGraph(g));
  for (int threads : {2, 8, 0}) {
    CsrGraph many(before, g, touched, threads);
    ExpectCsrIdentical(many, one);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HotPathEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HotPathTruncation, CapFlagsAndBoundsTheResult) {
  // A matching of 6 disjoint edges = 6 maximal cliques.
  ProjectedGraph g(12);
  for (NodeId u = 0; u < 12; u += 2) g.AddWeight(u, u + 1, 1);
  CsrGraph csr(g);

  CliqueOptions capped;
  capped.max_cliques = 4;
  for (int threads : {1, 2, 8}) {
    capped.num_threads = threads;
    MaximalCliqueResult result = EnumerateMaximalCliques(csr, capped);
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.cliques.size(), 4u);
  }

  MaximalCliqueResult full = EnumerateMaximalCliques(csr);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.cliques.size(), 6u);
}

TEST(HotPathScoring, ScoreAllMatchesScalarScoresForAnyThreadCount) {
  util::Rng rng(21);
  Hypergraph h_source = gen::HyperClLike(60, 120, 3.0, 0.7, &rng);
  ProjectedGraph g_source = h_source.Project();
  core::CliqueClassifier classifier(core::FeatureMode::kMultiplicityAware,
                                    {});
  util::Rng train_rng(22);
  classifier.Train(g_source, h_source, &train_rng);

  ProjectedGraph g = RandomGraph(23);
  CsrGraph csr(g);
  std::vector<NodeSet> cliques = EnumerateMaximalCliques(g).cliques.ToNodeSets();
  ASSERT_FALSE(cliques.empty());
  std::vector<double> scalar;
  scalar.reserve(cliques.size());
  for (const NodeSet& q : cliques) {
    scalar.push_back(classifier.Score(g, q, true));
  }
  for (int threads : {1, 2, 8}) {
    std::vector<double> batched =
        classifier.ScoreAll(csr, cliques, true, threads);
    EXPECT_EQ(batched, scalar) << "threads=" << threads;
  }
}

TEST(HotPathEndToEnd, ReconstructionIsThreadCountInvariant) {
  gen::GeneratedDataset data = gen::Generate(gen::ProfileByName("hosts"), 3);
  util::Rng split_rng(4);
  gen::SourceTargetSplit split = gen::SplitHypergraph(
      data.hypergraph.MultiplicityReduced(), &split_rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();

  core::MariohOptions options;
  options.num_threads = 1;
  core::Marioh one(options);
  one.Train(g_source, split.source);
  Hypergraph h_one = one.Reconstruct(g_target);
  EXPECT_FALSE(one.last_reconstruction_stats().cliques_truncated);
  EXPECT_GT(one.last_reconstruction_stats().iterations, 0u);

  for (int threads : {4, 0}) {  // explicit fan-out and "all cores"
    options.num_threads = threads;
    core::Marioh many(options);
    many.Train(g_source, split.source);
    Hypergraph h_many = many.Reconstruct(g_target);
    EXPECT_EQ(h_many.edges(), h_one.edges()) << "threads=" << threads;
  }
}

TEST(HotPathEndToEnd, ReconstructionIsSnapshotPolicyInvariant) {
  // The snapshot_reuse threshold is a pure wall-clock knob: always-patch,
  // always-rebuild, and the default must reconstruct the exact same
  // hypergraph, while the patch/rebuild counters reflect the policy.
  gen::GeneratedDataset data = gen::Generate(gen::ProfileByName("hosts"), 3);
  util::Rng split_rng(4);
  gen::SourceTargetSplit split = gen::SplitHypergraph(
      data.hypergraph.MultiplicityReduced(), &split_rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();

  core::MariohOptions options;
  options.snapshot_reuse = 0.0;  // always rebuild
  core::Marioh rebuild(options);
  rebuild.Train(g_source, split.source);
  Hypergraph h_rebuild = rebuild.Reconstruct(g_target);
  EXPECT_EQ(rebuild.last_reconstruction_stats().snapshot_patches, 0u);
  EXPECT_GT(rebuild.last_reconstruction_stats().snapshot_rebuilds, 0u);

  options.snapshot_reuse = 1.0;  // always patch
  core::Marioh patch(options);
  patch.Train(g_source, split.source);
  Hypergraph h_patch = patch.Reconstruct(g_target);
  EXPECT_GT(patch.last_reconstruction_stats().snapshot_patches, 0u);
  // The only full build is the one before the first iteration (skipped
  // too when filtering's snapshot is patched instead).
  EXPECT_LE(patch.last_reconstruction_stats().snapshot_rebuilds, 1u);
  EXPECT_EQ(h_patch.edges(), h_rebuild.edges());

  core::Marioh defaults;  // default threshold: a mix is fine, output equal
  defaults.Train(g_source, split.source);
  Hypergraph h_default = defaults.Reconstruct(g_target);
  EXPECT_EQ(h_default.edges(), h_rebuild.edges());
}

}  // namespace
}  // namespace marioh
