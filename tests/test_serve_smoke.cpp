// Smoke test for the marioh_serve front end: drives the line protocol
// end-to-end over a pipe — load → submit → wait → stats → quit must exit
// 0 with the expected `ok ...` responses, and bad requests must produce
// `error ...` lines without killing the serving loop. Mirrors the
// test_examples_smoke CLI contract: never an abort.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/harness.hpp"
#include "io/text_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

namespace marioh {
namespace {

#if defined(MARIOH_SERVE_PATH) && (defined(__unix__) || defined(__APPLE__))

/// Feeds `script` to marioh_serve's stdin, captures combined
/// stdout+stderr into `output`, and returns the exit code (-1 if killed
/// by a signal, e.g. an abort).
int RunServe(const std::string& script, std::string* output) {
  const std::string script_path = "serve_smoke_input.txt";
  const std::string capture_path = "serve_smoke_output.txt";
  {
    std::ofstream out(script_path);
    out << script;
  }
  std::string command = std::string("\"") + MARIOH_SERVE_PATH +
                        "\" < \"" + script_path + "\" > \"" +
                        capture_path + "\" 2>&1";
  int raw = std::system(command.c_str());
  std::ifstream in(capture_path);
  std::ostringstream captured;
  captured << in.rdbuf();
  *output = captured.str();
  std::remove(script_path.c_str());
  std::remove(capture_path.c_str());
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

TEST(ServeSmoke, LoadSubmitWaitStatsQuitEndToEnd) {
  // Real files on disk, loaded through the `load` verb — the acceptance
  // path: load → submit → wait → stats → quit.
  eval::PreparedDataset data =
      eval::PrepareDataset("crime", /*multiplicity_reduced=*/true,
                           /*seed=*/1);
  const std::string train_path = "serve_smoke_train.hg";
  const std::string target_path = "serve_smoke_target.eg";
  ASSERT_TRUE(io::TryWriteHypergraphFile(*data.source, train_path).ok());
  ASSERT_TRUE(
      io::TryWriteProjectedGraphFile(*data.g_target, target_path).ok());

  std::string output;
  int exit_code = RunServe(
      "load hypergraph train " + train_path + "\n" +
          "load graph target " + target_path + "\n" +
          "datasets\n"
          "submit method=MARIOH train=train target=target seed=7\n"
          "wait 1\n"
          "stats\n"
          "quit\n",
      &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("ok marioh_serve"), std::string::npos) << output;
  EXPECT_NE(output.find("ok dataset train"), std::string::npos) << output;
  EXPECT_NE(output.find("ok dataset target"), std::string::npos) << output;
  EXPECT_NE(output.find("ok datasets target train"), std::string::npos)
      << output;
  EXPECT_NE(output.find("ok job 1"), std::string::npos) << output;
  EXPECT_NE(output.find("state=DONE"), std::string::npos) << output;
  EXPECT_NE(output.find("unique_edges="), std::string::npos) << output;
  EXPECT_NE(output.find("ok stats accepted=1"), std::string::npos)
      << output;
  EXPECT_NE(output.find("done=1"), std::string::npos) << output;
  EXPECT_NE(output.find("ok bye"), std::string::npos) << output;
  EXPECT_EQ(output.find("error"), std::string::npos) << output;

  std::remove(train_path.c_str());
  std::remove(target_path.c_str());
}

TEST(ServeSmoke, GeneratedDatasetsEvaluateInProcess) {
  // The file-free workflow: gen + ground-truth evaluation, two jobs
  // sharing the generated handles.
  std::string output;
  int exit_code = RunServe(
      "gen d crime 1\n"
      "submit method=MARIOH train=d.train target=d.target truth=d.truth "
      "seed=1\n"
      "submit method=MaxClique target=d.target truth=d.truth seed=2\n"
      "wait 1\n"
      "wait 2\n"
      "stats\n"
      "quit\n",
      &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("ok generated d.train d.target d.truth"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("jaccard="), std::string::npos) << output;
  EXPECT_NE(output.find("ok stats accepted=2"), std::string::npos)
      << output;
  EXPECT_NE(output.find("done=2"), std::string::npos) << output;
  EXPECT_EQ(output.find("error"), std::string::npos) << output;
}

TEST(ServeSmoke, BadRequestsAreErrorsNotCrashes) {
  std::string output;
  int exit_code = RunServe(
      "frobnicate\n"
      "load hypergraph broken no_such_file.hg\n"
      "gen x no_such_profile 1\n"
      "submit method=NoSuchMethod target=nowhere\n"
      "poll 42\n"
      "cancel 42\n"
      "wait notanumber\n"
      "stats\n"
      "quit\n",
      &output);
  // Every request failed, yet the loop served all of them and exited 0.
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("error INVALID_ARGUMENT: unknown request "
                        "'frobnicate'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("error NOT_FOUND"), std::string::npos) << output;
  EXPECT_NE(output.find("no_such_file.hg"), std::string::npos) << output;
  EXPECT_NE(output.find("no_such_profile"), std::string::npos) << output;
  EXPECT_NE(output.find("NoSuchMethod"), std::string::npos) << output;
  EXPECT_NE(output.find("no job with id 42"), std::string::npos) << output;
  EXPECT_NE(output.find("usage: wait <job-id>"), std::string::npos)
      << output;
  EXPECT_NE(output.find("ok stats accepted=0"), std::string::npos)
      << output;
  EXPECT_NE(output.find("ok bye"), std::string::npos) << output;
}

TEST(ServeSmoke, EofWithRunningJobsStillExitsZero) {
  // No quit line and a job possibly still running at EOF: the service
  // destructor must wind down cleanly.
  std::string output;
  int exit_code = RunServe(
      "gen d crime 2\n"
      "submit method=MARIOH train=d.train target=d.target seed=3\n",
      &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("ok job 1"), std::string::npos) << output;
  EXPECT_NE(output.find("ok bye"), std::string::npos) << output;
}

#endif  // MARIOH_SERVE_PATH && unix

// Keeps the suite non-empty on platforms without the pipe harness.
TEST(ServeSmoke, HarnessPlaceholder) { SUCCEED(); }

}  // namespace
}  // namespace marioh
