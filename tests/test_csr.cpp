// Tests for the immutable CSR snapshot, including equivalence properties
// against the mutable ProjectedGraph on random graphs.

#include <gtest/gtest.h>

#include "gen/hypercl.hpp"
#include "hypergraph/csr.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

TEST(CsrGraph, BasicAccessors) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 3);
  g.AddWeight(0, 2, 1);
  g.AddWeight(2, 3, 5);
  CsrGraph csr(g);
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.Degree(0), 2u);
  EXPECT_EQ(csr.Degree(3), 1u);
  EXPECT_EQ(csr.Weight(0, 1), 3u);
  EXPECT_EQ(csr.Weight(1, 0), 3u);
  EXPECT_EQ(csr.Weight(1, 3), 0u);
  EXPECT_EQ(csr.Weight(2, 2), 0u);
  EXPECT_TRUE(csr.HasEdge(2, 3));
  EXPECT_EQ(csr.TotalWeight(), 9u);
}

TEST(CsrGraph, NeighborsAreSorted) {
  ProjectedGraph g(6);
  g.AddWeight(3, 5, 1);
  g.AddWeight(3, 0, 1);
  g.AddWeight(3, 4, 1);
  g.AddWeight(3, 1, 1);
  CsrGraph csr(g);
  auto nbrs = csr.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraph, CommonNeighborsSortedMerge) {
  ProjectedGraph g(5);
  g.AddWeight(0, 2, 1);
  g.AddWeight(0, 3, 1);
  g.AddWeight(0, 4, 1);
  g.AddWeight(1, 3, 1);
  g.AddWeight(1, 4, 1);
  CsrGraph csr(g);
  std::vector<NodeId> common = csr.CommonNeighbors(0, 1);
  EXPECT_EQ(common, (std::vector<NodeId>{3, 4}));
}

TEST(CsrGraph, EmptyGraph) {
  ProjectedGraph g(3);
  CsrGraph csr(g);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.Degree(0), 0u);
  EXPECT_TRUE(csr.Neighbors(1).empty());
}

// Equivalence property: on random graphs the CSR snapshot agrees with the
// hash-map graph on every query.
class CsrEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrEquivalence, MatchesProjectedGraphEverywhere) {
  util::Rng rng(GetParam());
  Hypergraph h = gen::HyperClLike(60, 120, 3.0, 0.7, &rng);
  ProjectedGraph g = h.Project();
  CsrGraph csr(g);

  EXPECT_EQ(csr.num_nodes(), g.num_nodes());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  EXPECT_EQ(csr.TotalWeight(), g.TotalWeight());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(csr.Degree(u), g.Degree(u));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(csr.Weight(u, v), g.Weight(u, v))
          << "(" << u << "," << v << ")";
    }
  }
  // MHH equivalence on every edge (the hot kernel of Algorithm 2).
  for (const auto& e : g.Edges()) {
    EXPECT_EQ(csr.Mhh(e.u, e.v), g.Mhh(e.u, e.v));
    // Common neighbors agree as sets.
    std::vector<NodeId> a = csr.CommonNeighbors(e.u, e.v);
    std::vector<NodeId> b = g.CommonNeighbors(e.u, e.v);
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CsrEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace marioh
